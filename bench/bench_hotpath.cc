/**
 * @file
 * Hot-path microbenchmarks of the decode/execute split: simulated-
 * instruction throughput and per-measurement setup cost across the
 * three generations of the hot path --
 *
 *  - legacy: re-materialize the unrolled measurement code and decode
 *    every instruction on every measurement (pre-predecode);
 *  - switch dispatch: the predecoded Program through the frozen
 *    switch-based reference executor (Machine::executeReference);
 *  - threaded dispatch: the predecoded Program through the threaded
 *    computed-goto SoA executor with batched PMU accounting
 *    (Machine::execute, the production path).
 *
 * check_bench.py enforces two ratios from these numbers:
 * predecode_vs_legacy (BM_HotpathPredecoded / BM_HotpathLegacy, the
 * end-to-end win over the pre-predecode path) and
 * dispatch_vs_predecode (BM_HotpathPredecoded /
 * BM_HotpathSwitchDispatch, the threaded executor's >= 1.5x win over
 * switch dispatch on the same predecoded program).
 */

#include <benchmark/benchmark.h>

#include "core/codegen.hh"
#include "core/engine.hh"
#include "uarch/uarch.hh"
#include "x86/assembler.hh"

namespace
{

using namespace nb;

/** The measurement shape both paths run: a noMem readout around an
 *  unrolled ALU body -- no loop, so every dynamic instruction is a
 *  static instruction and the legacy path pays decode per dynamic
 *  instruction, exactly what the old executor did. */
core::GenParams
hotpathParams()
{
    core::GenParams p;
    p.body = x86::assemble("add RAX, RAX; imul RBX, RBX");
    p.localUnrollCount = 200;
    p.noMem = true;
    p.readouts = {{core::ReadoutItem::Kind::FixedPmc, 0, "Instructions"},
                  {core::ReadoutItem::Kind::FixedPmc, 1, "Core cycles"}};
    return p;
}

sim::Machine
hotpathMachine()
{
    sim::Machine machine(uarch::getMicroArch("Skylake"), 42);
    machine.setPrivilege(sim::Privilege::Kernel);
    machine.setInterruptsEnabled(false);
    return machine;
}

void
BM_HotpathLegacy(benchmark::State &state)
{
    setQuiet(true);
    auto machine = hotpathMachine();
    auto params = hotpathParams();
    std::uint64_t dynamic = 0;
    for (auto _ : state) {
        // What Runner::executeOnce did per measurement: materialize
        // unroll x body, then decode every instruction on the way in.
        machine.pmu().beginEpoch(); // as the Runner does per run
        auto code = core::generateMeasurementCode(params);
        auto stats =
            machine.execute(sim::Program::decode(machine.uarch(), code));
        dynamic += stats.instructions;
        benchmark::DoNotOptimize(stats.endCycle);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(dynamic));
}
BENCHMARK(BM_HotpathLegacy);

void
BM_HotpathSwitchDispatch(benchmark::State &state)
{
    // The predecoded program through the frozen switch-based reference
    // executor: the PR 5 hot path, kept as the parity baseline. The
    // dispatch_vs_predecode gate measures the threaded executor
    // against this.
    setQuiet(true);
    auto machine = hotpathMachine();
    auto params = hotpathParams();
    sim::Program prog =
        core::buildMeasurementProgram(params, machine.uarch());
    std::uint64_t dynamic = 0;
    for (auto _ : state) {
        machine.pmu().beginEpoch(); // as the Runner does per run
        auto stats = machine.executeReference(prog);
        dynamic += stats.instructions;
        benchmark::DoNotOptimize(stats.endCycle);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(dynamic));
}
BENCHMARK(BM_HotpathSwitchDispatch);

void
BM_HotpathPredecoded(benchmark::State &state)
{
    setQuiet(true);
    auto machine = hotpathMachine();
    auto params = hotpathParams();
    // Built once (per round/unroll version in the Runner), reused by
    // every measurement.
    sim::Program prog =
        core::buildMeasurementProgram(params, machine.uarch());
    std::uint64_t dynamic = 0;
    for (auto _ : state) {
        machine.pmu().beginEpoch(); // as the Runner does per run
        auto stats = machine.execute(prog);
        dynamic += stats.instructions;
        benchmark::DoNotOptimize(stats.endCycle);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(dynamic));
}
BENCHMARK(BM_HotpathPredecoded);

void
BM_HotpathBudget(benchmark::State &state)
{
    // BM_HotpathPredecoded with the cycle budget disarmed (Arg 0) vs
    // armed with a never-tripping budget (Arg 1). check_bench.py pins
    // the budget_overhead ratio (1 / 0) at <= 1.05x: the amortized
    // deadline check in the dispatch loop must stay in the noise.
    setQuiet(true);
    auto machine = hotpathMachine();
    auto params = hotpathParams();
    sim::Program prog =
        core::buildMeasurementProgram(params, machine.uarch());
    if (state.range(0) != 0)
        machine.setCycleBudget(1'000'000'000'000);
    std::uint64_t dynamic = 0;
    for (auto _ : state) {
        machine.pmu().beginEpoch(); // as the Runner does per run
        auto stats = machine.execute(prog);
        dynamic += stats.instructions;
        benchmark::DoNotOptimize(stats.endCycle);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(dynamic));
}
BENCHMARK(BM_HotpathBudget)->Arg(0)->Arg(1);

void
BM_MeasurementSetupLegacy(benchmark::State &state)
{
    // Per-measurement setup alone: materializing the unrolled vector
    // (one heap-allocated operand list per copied instruction).
    setQuiet(true);
    auto params = hotpathParams();
    for (auto _ : state) {
        auto code = core::generateMeasurementCode(params);
        benchmark::DoNotOptimize(code.size());
    }
}
BENCHMARK(BM_MeasurementSetupLegacy);

void
BM_MeasurementSetupPredecoded(benchmark::State &state)
{
    // The build the program cache pays once per (round, unroll
    // version): O(|body|), independent of the unroll factor.
    setQuiet(true);
    auto params = hotpathParams();
    const auto &ua = uarch::getMicroArch("Skylake");
    for (auto _ : state) {
        sim::Program prog = core::buildMeasurementProgram(params, ua);
        benchmark::DoNotOptimize(prog.virtualSize());
    }
}
BENCHMARK(BM_MeasurementSetupPredecoded);

void
BM_RunnerRepeatedSpec(benchmark::State &state)
{
    // End-to-end Session::run of one spec, program cache and assembly
    // memo hot: what a campaign pays for a repeated (or re-measured)
    // spec after this PR.
    setQuiet(true);
    Engine engine;
    SessionOptions opt;
    opt.mode = core::Mode::Kernel;
    Session session = engine.session(opt);
    core::BenchmarkSpec spec;
    spec.asmCode = "add RAX, RAX; imul RBX, RBX";
    spec.unrollCount = 100;
    spec.nMeasurements = 10;
    spec.warmUpCount = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            session.runOrThrow(spec).lines.size());
    }
}
BENCHMARK(BM_RunnerRepeatedSpec);

} // namespace

BENCHMARK_MAIN();
