/**
 * @file
 * E10 -- reproduces §IV-D: allocating physically-contiguous memory
 * beyond the 4 MB kmalloc limit with the greedy adjacent-chunk
 * algorithm. On a freshly booted system the algorithm succeeds for
 * large areas; with increasing fragmentation the success rate drops and
 * the tool proposes a reboot.
 */

#include <iomanip>
#include <iostream>

#include "common/logging.hh"
#include "kernel/kalloc.hh"

int
main()
{
    using namespace nb;
    using namespace nb::kernel;
    nb::setQuiet(true);

    std::cout << "# E10 (paper SIV-D): greedy physically-contiguous "
                 "allocation via kmalloc\n"
              << "# (4 MB per-call cap; success = contiguous 64 MB "
                 "area found within budget)\n\n";
    std::cout << "fragmentation   success-rate   avg-kmalloc-calls\n"
              << std::fixed << std::setprecision(2);

    for (double frag : {0.0, 0.05, 0.10, 0.20, 0.40, 0.80}) {
        int successes = 0;
        double calls = 0.0;
        constexpr int kTrials = 50;
        for (int trial = 0; trial < kTrials; ++trial) {
            sim::Memory mem;
            Rng rng(static_cast<std::uint64_t>(trial) * 977 + 13);
            KernelAllocator alloc(mem, &rng, frag);
            Addr used_before = alloc.physInUse();
            auto area = alloc.allocContiguous(64 * 1024 * 1024, 128);
            if (area)
                ++successes;
            calls += static_cast<double>(alloc.physInUse() -
                                         used_before) /
                     kKmallocMax;
        }
        std::cout << std::setw(8) << frag << "        "
                  << std::setw(6)
                  << static_cast<double>(successes) / kTrials
                  << "         " << std::setw(8) << calls / kTrials
                  << "\n";
    }
    std::cout << "\n# Shape (paper): succeeds reliably on a fresh "
                 "boot (adjacent kmalloc\n"
              << "# results); under fragmentation the greedy run "
                 "restarts often and\n"
              << "# eventually a reboot is proposed.\n";
    return 0;
}
