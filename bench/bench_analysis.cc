/**
 * @file
 * Google-benchmark measurements of the spec static analyzer: raw
 * analysis cost per spec, the report memo, and -- the ratio CI
 * guards -- a lint-enabled campaign vs the identical campaign with
 * linting off. analyzeSpecCached() memoizes whole reports on the
 * canonical spec key, so the steady-state overhead of opting into
 * lintLevel must stay near zero; see tools/check_bench.py
 * (lint_overhead).
 */

#include <benchmark/benchmark.h>

#include "analysis/analysis.hh"
#include "core/campaign.hh"

namespace
{

using namespace nb;

/** Same shape as bench_campaign's spec pool: cheap-but-real specs. */
std::vector<core::BenchmarkSpec>
uniqueSpecs(unsigned n, core::LintLevel lint)
{
    std::vector<core::BenchmarkSpec> specs(n);
    for (unsigned i = 0; i < n; ++i) {
        specs[i].asmCode =
            "mov RAX, " + std::to_string(i + 1) + "; add RAX, RAX";
        specs[i].unrollCount = 10;
        specs[i].nMeasurements = 3;
        specs[i].warmUpCount = 0;
        specs[i].lintLevel = lint;
    }
    return specs;
}

constexpr unsigned kCampaignSize = 200;

void
BM_AnalyzeSpec(benchmark::State &state)
{
    // Uncached single-spec analysis (assemble + decode + dataflow).
    const auto &ua = uarch::getMicroArch("Skylake");
    core::BenchmarkSpec spec;
    spec.asmCode = "mov R14, [R14]; add RAX, RBX; xor RDX, RDX";
    spec.asmInit = "mov [R14], R14";
    for (auto _ : state)
        benchmark::DoNotOptimize(
            analysis::analyzeSpec(ua, spec, {}).diagnostics.size());
}
BENCHMARK(BM_AnalyzeSpec);

void
BM_AnalyzeSpecCached(benchmark::State &state)
{
    // Steady state of the report memo: every call after the first is
    // a key build + hash lookup.
    const auto &ua = uarch::getMicroArch("Skylake");
    core::BenchmarkSpec spec;
    spec.asmCode = "mov R14, [R14]; add RAX, RBX; xor RDX, RDX";
    spec.asmInit = "mov [R14], R14";
    analysis::analyzeSpecCached(ua, spec, {});
    for (auto _ : state)
        benchmark::DoNotOptimize(
            analysis::analyzeSpecCached(ua, spec, {})
                .diagnostics.size());
}
BENCHMARK(BM_AnalyzeSpecCached);

void
BM_CampaignLint(benchmark::State &state)
{
    // The guarded ratio: an identical 200-spec campaign with linting
    // off (arg 0) vs every spec opted into LintLevel::Error (arg 1).
    setQuiet(true);
    Engine engine;
    CampaignOptions opt;
    opt.jobs = 2;
    opt.dedup = false;
    auto specs = uniqueSpecs(kCampaignSize,
                             state.range(0)
                                 ? core::LintLevel::Error
                                 : core::LintLevel::Off);
    engine.runCampaign(specs, opt); // warm replicas and the lint memo
    engine.resetStats();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            engine.runCampaign(specs, opt).outcomes.size());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kCampaignSize));
    if (state.range(0)) {
        auto stats = analysis::lintCacheCounters();
        state.counters["lint_hits"] =
            static_cast<double>(stats.hits);
        state.counters["lint_misses"] =
            static_cast<double>(stats.misses);
    }
}
BENCHMARK(BM_CampaignLint)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"lint"});

} // namespace

BENCHMARK_MAIN();
