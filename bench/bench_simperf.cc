/**
 * @file
 * Google-benchmark microbenchmarks of the simulator substrate itself:
 * replacement-policy updates, hierarchy accesses, assembly, and full
 * nanoBench invocations. These are performance (not correctness)
 * benchmarks for the reproduction's own infrastructure.
 */

#include <benchmark/benchmark.h>

#include "cache/hierarchy.hh"
#include "cachetools/policy_sim.hh"
#include "core/engine.hh"
#include "uarch/uarch.hh"
#include "x86/assembler.hh"

namespace
{

using namespace nb;

void
BM_PolicyUpdate(benchmark::State &state, const char *name)
{
    Rng rng(1);
    cachetools::PolicySim sim(cache::makePolicy(name, 16, &rng));
    Rng seq(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim.access(static_cast<int>(seq.nextBelow(24))));
    }
}
BENCHMARK_CAPTURE(BM_PolicyUpdate, lru, "LRU");
BENCHMARK_CAPTURE(BM_PolicyUpdate, plru, "PLRU");
BENCHMARK_CAPTURE(BM_PolicyUpdate, qlru, "QLRU_H11_M1_R0_U0");

void
BM_HierarchyAccess(benchmark::State &state)
{
    Rng rng(1);
    cache::Hierarchy h(uarch::getMicroArch("Skylake").cacheConfig,
                       &rng);
    h.setPrefetcherControl(cache::pf::kDisableAll);
    Rng addr_rng(2);
    for (auto _ : state) {
        Addr a = addr_rng.nextBelow(1ULL << 24) & ~Addr{63};
        benchmark::DoNotOptimize(
            h.access(a, cache::AccessType::Load).latency);
    }
}
BENCHMARK(BM_HierarchyAccess);

void
BM_Assemble(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            x86::assemble("mov R14, [R14+RSI*8+16]; add RAX, 5"));
    }
}
BENCHMARK(BM_Assemble);

void
BM_MachineExecute(benchmark::State &state)
{
    sim::Machine machine(uarch::getMicroArch("Skylake"), 42);
    machine.setPrivilege(sim::Privilege::Kernel);
    machine.setInterruptsEnabled(false);
    auto prog = sim::Program::decode(
        machine.uarch(),
        x86::assemble("mov R15, 100; l: add RAX, RBX; imul RCX, RCX; "
                      "dec R15; jnz l"));
    for (auto _ : state) {
        auto stats = machine.execute(prog);
        benchmark::DoNotOptimize(stats.instructions);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * 402)); // instructions per execute
}
BENCHMARK(BM_MachineExecute);

void
BM_FullNanoBenchRun(benchmark::State &state)
{
    setQuiet(true);
    Engine engine;
    SessionOptions opt;
    opt.mode = core::Mode::Kernel;
    Session session = engine.session(opt);
    core::BenchmarkSpec spec;
    spec.asmCode = "add RAX, RAX";
    spec.unrollCount = 100;
    spec.nMeasurements = 10;
    spec.warmUpCount = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            session.runOrThrow(spec).lines.size());
}
BENCHMARK(BM_FullNanoBenchRun);

void
BM_SessionSetupPooled(benchmark::State &state)
{
    // Cost of Engine::session() once the machine is pooled -- the
    // amortization the Engine API exists for (vs BM_SessionSetupCold).
    setQuiet(true);
    Engine engine;
    SessionOptions opt;
    opt.mode = core::Mode::Kernel;
    engine.session(opt); // warm the pool
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.session(opt).runner().mode());
}
BENCHMARK(BM_SessionSetupPooled);

void
BM_SessionSetupCold(benchmark::State &state)
{
    // Full machine + runner construction per session: what every
    // benchmark paid under the one-shot facade.
    setQuiet(true);
    std::uint64_t seed = 1;
    for (auto _ : state) {
        Engine engine;
        SessionOptions opt;
        opt.mode = core::Mode::Kernel;
        opt.seed = seed++; // defeat pooling: fresh machine each time
        benchmark::DoNotOptimize(engine.session(opt).runner().mode());
    }
}
BENCHMARK(BM_SessionSetupCold);

} // namespace

BENCHMARK_MAIN();
