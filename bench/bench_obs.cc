/**
 * @file
 * Google-benchmark measurements of the observability layer: the two
 * ratios CI guards -- a campaign with a disabled Tracer attached vs
 * the identical campaign with no tracer (trace_overhead, the
 * disabled-path cost the tentpole promises is near zero), and an
 * observed campaign vs the identical campaign without attached
 * ExecObservers (observe_overhead; the observer's counter bumps are
 * negligible next to assemble/decode, so this too pins near 1.0).
 * Both gated at 1.05x by tools/check_bench.py. Plus microbenchmarks
 * of the registry hot path (one relaxed atomic per update) and
 * tracer span recording.
 */

#include <benchmark/benchmark.h>

#include "common/logging.hh"
#include "core/campaign.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace
{

using namespace nb;

/** Same shape as bench_campaign's spec pool: cheap-but-real specs. */
std::vector<core::BenchmarkSpec>
uniqueSpecs(unsigned n)
{
    std::vector<core::BenchmarkSpec> specs(n);
    for (unsigned i = 0; i < n; ++i) {
        specs[i].asmCode =
            "mov RAX, " + std::to_string(i + 1) + "; add RAX, RAX";
        specs[i].unrollCount = 10;
        specs[i].nMeasurements = 3;
        specs[i].warmUpCount = 0;
    }
    return specs;
}

constexpr unsigned kCampaignSize = 200;

void
BM_CounterAdd(benchmark::State &state)
{
    // The registry hot path: one relaxed fetch_add per update.
    obs::Registry registry;
    obs::Counter &counter = registry.counter("bench.counter");
    for (auto _ : state)
        counter.add();
    benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterAdd);

void
BM_HistogramObserve(benchmark::State &state)
{
    obs::Histogram *hist;
    {
        static obs::Registry registry;
        hist = &registry.histogram("bench.hist",
                                   obs::phaseHistogramBounds());
    }
    double v = 0;
    for (auto _ : state) {
        hist->observe(v);
        v += 1e5;
        if (v > 2e9)
            v = 0;
    }
    benchmark::DoNotOptimize(hist->totalCount());
}
BENCHMARK(BM_HistogramObserve);

void
BM_TracerSpan(benchmark::State &state)
{
    // One begin/end pair on an enabled tracer (mutex + clock read).
    obs::Tracer tracer;
    tracer.enable();
    for (auto _ : state) {
        tracer.begin(0, "span");
        tracer.end(0, "span");
        if (tracer.eventCount() > 100000)
            tracer.clear();
    }
    benchmark::DoNotOptimize(tracer.eventCount());
}
BENCHMARK(BM_TracerSpan);

void
BM_CampaignTrace(benchmark::State &state)
{
    // The guarded ratio is trace:1 / trace:0 -- the DISABLED-path
    // cost the tentpole promises is near zero: arg 0 runs the
    // campaign with no tracer at all, arg 1 with a Tracer attached
    // but disabled (every span site pays its pointer check), and
    // arg 2 with tracing fully enabled (informational; recorded in
    // the CI artifact but not gated, since live span recording is
    // allowed to cost mutex + clock reads).
    setQuiet(true);
    Engine engine;
    obs::Tracer tracer;
    if (state.range(0) > 1)
        tracer.enable();
    CampaignOptions opt;
    opt.jobs = 2;
    opt.dedup = false;
    opt.trace = state.range(0) ? &tracer : nullptr;
    auto specs = uniqueSpecs(kCampaignSize);
    engine.runCampaign(specs, opt); // warm replicas + program caches
    engine.resetStats();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engine.runCampaign(specs, opt).outcomes.size());
        tracer.clear();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kCampaignSize));
}
BENCHMARK(BM_CampaignTrace)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"trace"});

void
BM_CampaignObserve(benchmark::State &state)
{
    // The guarded ratio: an identical 200-spec campaign without (arg
    // 0) vs with (arg 1) per-worker ExecObservers attached. The
    // observer hooks in the dispatch loop are one predicted branch
    // each when detached.
    setQuiet(true);
    Engine engine;
    CampaignOptions opt;
    opt.jobs = 2;
    opt.dedup = false;
    opt.observe = state.range(0) != 0;
    auto specs = uniqueSpecs(kCampaignSize);
    engine.runCampaign(specs, opt); // warm replicas + program caches
    engine.resetStats();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            engine.runCampaign(specs, opt).outcomes.size());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kCampaignSize));
}
BENCHMARK(BM_CampaignObserve)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"observe"});

} // namespace

BENCHMARK_MAIN();
