/**
 * @file
 * E8 -- reproduces the §III-F trade-off between loops and unrolling:
 *
 *  - for port-usage measurements, the loop's own µops (DEC/JNZ) compete
 *    for ports with the benchmark and distort the counts; pure
 *    unrolling is better;
 *  - for cache-miss measurements, a loop keeps the code small with no
 *    extra memory accesses; extreme unrolling blows the code footprint
 *    past the instruction cache and slows the front end.
 */

#include <iomanip>
#include <iostream>

#include "core/engine.hh"

namespace
{

using namespace nb::core;

BenchmarkResult
run(std::uint64_t unroll, std::uint64_t loop, const std::string &code,
    bool basic_mode = false)
{
    // One engine for the whole driver: every run() reuses the same
    // pooled Skylake machine instead of rebuilding it.
    static nb::Engine engine;
    nb::SessionOptions opt;
    opt.uarch = "Skylake";
    opt.mode = Mode::Kernel;
    nb::Session session = engine.session(opt);
    BenchmarkSpec spec;
    spec.asmCode = code;
    spec.unrollCount = unroll;
    spec.loopCount = loop;
    spec.basicMode = basic_mode;
    spec.warmUpCount = 2;
    spec.config = CounterConfig::parseString(
        "A1.01 UOPS_DISPATCHED_PORT.PORT_0\n"
        "A1.40 UOPS_DISPATCHED_PORT.PORT_6\n"
        "0E.01 UOPS_ISSUED.ANY\n");
    return session.runOrThrow(spec);
}

} // namespace

int
main()
{
    nb::setQuiet(true);
    std::cout << "# E8 (paper SIII-F): loops vs unrolling\n\n";

    // Port-competition benchmark (§III-F: "the µops of the loop code
    // compete for ports with the µops of the benchmark"): two
    // independent shifts saturate ports 0 and 6 -> 0.5 cycles per
    // shift when unrolled; the loop's JNZ steals p0/p6 slots.
    std::cout << "## throughput of 2 independent shifts (true: 0.50 "
                 "cycles/shl on p0+p6)\n";
    std::cout << "config               cycles/shl   P0+P6/shl\n"
              << std::fixed << std::setprecision(3);
    struct
    {
        const char *name;
        std::uint64_t unroll;
        std::uint64_t loop;
    } configs[] = {
        {"unroll=200,loop=0", 200, 0},
        {"unroll=1,loop=200", 1, 200},
        {"unroll=10,loop=20", 10, 20},
    };
    for (const auto &c : configs) {
        // Basic mode (localUnroll 0 vs n) keeps the loop overhead in
        // the measurement, exposing the port competition.
        auto r = run(c.unroll, c.loop, "shl RAX, 1; shl RBX, 1", true);
        double ports = (r["UOPS_DISPATCHED_PORT.PORT_0"] +
                        r["UOPS_DISPATCHED_PORT.PORT_6"]) /
                       2.0;
        std::cout << std::left << std::setw(20) << c.name << std::right
                  << std::setw(10) << r["Core cycles"] / 2.0
                  << std::setw(12) << ports << "\n";
    }
    std::cout << "# With loop_count, the DEC/JNZ µops compete for "
                 "ports 0/6 and slow the\n"
              << "# benchmark; pure unrolling measures the true "
                 "throughput (SIII-F).\n\n";

    // Front-end footprint: huge unrolling vs loop for the same work.
    std::cout << "## total work: 40000 independent adds (issue-bound: "
                 "0.25 cycles each)\n";
    std::cout << "config                cycles/add\n";
    const char *adds = "add RAX, 1; add RBX, 1; add RSI, 1; add RDI, 1";
    {
        auto r = run(10000, 0, adds);
        std::cout << std::left << std::setw(22) << "unroll=10000,loop=0"
                  << std::right << r["Core cycles"] / 4.0 << "\n";
    }
    {
        auto r = run(10, 1000, adds);
        std::cout << std::left << std::setw(22) << "unroll=10,loop=1000"
                  << std::right << r["Core cycles"] / 4.0 << "\n";
    }
    std::cout << "# The fully unrolled version no longer fits the "
                 "instruction cache\n"
              << "# and decodes slower; the loop version stays "
                 "issue-bound (SIII-F).\n";
    return 0;
}
