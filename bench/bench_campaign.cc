/**
 * @file
 * Google-benchmark measurements of the campaign executor: serial
 * single-session baseline vs the worker pool at several widths, and
 * the dedup-cache speedup on campaigns with repeated specs. The CI
 * bench-regression job compares the resulting ratios (parallel vs
 * serial throughput, dedup vs no-dedup) against a committed baseline;
 * see tools/check_bench.py.
 */

#include <benchmark/benchmark.h>

#include "core/campaign.hh"

namespace
{

using namespace nb;

/** Cheap-but-real specs (short bodies, few measurements) so a
 *  200-spec campaign fits in a benchmark iteration. */
std::vector<core::BenchmarkSpec>
uniqueSpecs(unsigned n)
{
    std::vector<core::BenchmarkSpec> specs(n);
    for (unsigned i = 0; i < n; ++i) {
        specs[i].asmCode =
            "mov RAX, " + std::to_string(i + 1) + "; add RAX, RAX";
        specs[i].unrollCount = 10;
        specs[i].nMeasurements = 3;
        specs[i].warmUpCount = 0;
    }
    return specs;
}

constexpr unsigned kCampaignSize = 200;

void
BM_CampaignSerialBatch(benchmark::State &state)
{
    // The pre-campaign way: one Session, runBatch() in spec order.
    setQuiet(true);
    Engine engine;
    Session session = engine.session({});
    auto specs = uniqueSpecs(kCampaignSize);
    for (auto _ : state)
        benchmark::DoNotOptimize(session.runBatch(specs).size());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kCampaignSize));
}
BENCHMARK(BM_CampaignSerialBatch)->Unit(benchmark::kMillisecond);

void
BM_CampaignJobs(benchmark::State &state)
{
    setQuiet(true);
    Engine engine;
    CampaignOptions opt;
    opt.jobs = static_cast<unsigned>(state.range(0));
    opt.dedup = false; // pure fan-out: every spec executes
    auto specs = uniqueSpecs(kCampaignSize);
    engine.runCampaign(specs, opt); // warm the worker replicas
    engine.resetStats();            // fresh measurement window
    for (auto _ : state)
        benchmark::DoNotOptimize(
            engine.runCampaign(specs, opt).outcomes.size());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kCampaignSize));
    state.counters["pool_hits"] =
        static_cast<double>(engine.poolHits());
    state.counters["machines_constructed"] =
        static_cast<double>(engine.machinesConstructed());
}
BENCHMARK(BM_CampaignJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_CampaignDedup(benchmark::State &state)
{
    // 200 input specs, 25 unique (8 duplicates each): the dedup cache
    // runs 25 and serves 175 -- compare against BM_CampaignNoDedup.
    setQuiet(true);
    Engine engine;
    CampaignOptions opt;
    opt.jobs = 1;
    auto unique = uniqueSpecs(kCampaignSize / 8);
    std::vector<core::BenchmarkSpec> specs;
    for (unsigned i = 0; i < kCampaignSize; ++i)
        specs.push_back(unique[i % unique.size()]);
    opt.dedup = static_cast<bool>(state.range(0));
    engine.runCampaign(specs, opt);
    engine.resetStats();
    std::size_t cache_hits = 0;
    for (auto _ : state) {
        auto campaign = engine.runCampaign(specs, opt);
        cache_hits = campaign.report.cacheHits;
        benchmark::DoNotOptimize(campaign.outcomes.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kCampaignSize));
    state.counters["cache_hits"] = static_cast<double>(cache_hits);
}
BENCHMARK(BM_CampaignDedup)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"dedup"});

void
BM_SpecCanonicalKey(benchmark::State &state)
{
    core::BenchmarkSpec spec;
    spec.asmCode = "mov R14, [R14+RSI*8+16]; add RAX, 5";
    spec.asmInit = "mov [R14], R14";
    spec.config = core::CounterConfig::forMicroArch("Skylake");
    for (auto _ : state)
        benchmark::DoNotOptimize(specHash(spec));
}
BENCHMARK(BM_SpecCanonicalKey);

} // namespace

BENCHMARK_MAIN();
