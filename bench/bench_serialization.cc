/**
 * @file
 * E3 -- reproduces §IV-A1: the comparison of serialization strategies
 * for counter reads. Unfenced reads are reordered by the OOO engine and
 * under-count; CPUID serializes but has a variable latency and µop
 * count (Paoloni); LFENCE gives exact, repeatable results. The paper's
 * recommendation (use LFENCE) falls out of the variance numbers.
 */

#include <iomanip>
#include <iostream>

#include "common/stats.hh"
#include "core/engine.hh"

namespace
{

struct Row
{
    double mean = 0.0;
    double sd = 0.0;
    double err = 0.0;
};

Row
measure(nb::core::SerializeMode mode, const std::string &body,
        std::uint64_t unroll, double truth)
{
    using namespace nb::core;
    static nb::Engine engine;
    nb::SessionOptions opt;
    opt.uarch = "Skylake";
    opt.mode = Mode::Kernel;
    nb::Session session = engine.session(opt);
    BenchmarkSpec spec;
    spec.asmCode = body;
    spec.unrollCount = unroll;
    spec.warmUpCount = 1;
    spec.serialize = mode;
    // One batch of 15 identical specs against the pooled machine.
    auto outcomes = session.runBatch(
        std::vector<BenchmarkSpec>(15, spec));
    std::vector<double> values;
    for (const auto &outcome : outcomes)
        values.push_back(outcome.resultOrThrow()["Core cycles"]);
    Row row;
    row.mean = nb::mean(values);
    row.sd = nb::stddev(values);
    row.err = row.mean - truth;
    return row;
}

} // namespace

int
main()
{
    nb::setQuiet(true);
    std::cout << "# E3 (paper SIV-A1): serializing counter reads\n";
    std::cout << "# benchmark: imul RAX, RAX (true latency 3.00 "
                 "cycles), 15 repetitions each\n\n";
    std::cout << "serialization   mean-cyc   stddev     error\n"
              << std::fixed << std::setprecision(3);
    struct
    {
        const char *name;
        nb::core::SerializeMode mode;
    } modes[] = {
        {"none", nb::core::SerializeMode::None},
        {"cpuid", nb::core::SerializeMode::Cpuid},
        {"lfence", nb::core::SerializeMode::Lfence},
    };
    for (const auto &m : modes) {
        Row row = measure(m.mode, "imul RAX, RAX", 20, 3.0);
        std::cout << std::left << std::setw(16) << m.name << std::right
                  << std::setw(8) << row.mean << std::setw(10) << row.sd
                  << std::setw(10) << row.err << "\n";
    }
    std::cout << "\n# Expected shape (paper): LFENCE exact and stable; "
                 "CPUID noisy\n# (variable latency/uop count); no "
                 "serialization under-counts.\n";
    return 0;
}
