/**
 * @file
 * E1 -- reproduces the paper's §III-A example: measuring the L1 data
 * cache latency on a Skylake-based system with
 *
 *   ./nanoBench.sh -asm "mov R14, [R14]" -asm_init "mov [R14], R14"
 *                  -config cfg_Skylake.txt
 *
 * Expected (paper): 1.00 instructions, 4.00 core cycles, 3.52 reference
 * cycles, ports 2/3 at 0.50 each, L1_HIT 1.00.
 */

#include <iostream>

#include "core/nanobench.hh"

int
main()
{
    using namespace nb::core;
    nb::setQuiet(true);

    NanoBenchOptions opt;
    opt.uarch = "Skylake";
    opt.mode = Mode::Kernel;
    opt.spec.asmCode = "mov R14, [R14]";
    opt.spec.asmInit = "mov [R14], R14";
    opt.spec.unrollCount = 100;
    opt.spec.warmUpCount = 2;
    opt.spec.config = CounterConfig::forMicroArch("Skylake");

    NanoBench bench(opt);
    std::cout << "# E1 (paper SIII-A): L1 data cache latency, Skylake\n";
    std::cout << "# nanoBench -asm \"mov R14, [R14]\" -asm_init "
                 "\"mov [R14], R14\" -config cfg_Skylake.txt\n\n";
    std::cout << bench.run(bench.options().spec).format();
    std::cout << "\n# Paper reference: Core cycles 4.00, Reference "
                 "cycles 3.52,\n# PORT_2/PORT_3 0.50 each, L1_HIT "
                 "1.00.\n";
    return 0;
}
