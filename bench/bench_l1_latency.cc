/**
 * @file
 * E1 -- reproduces the paper's §III-A example: measuring the L1 data
 * cache latency on a Skylake-based system with
 *
 *   ./nanoBench.sh -asm "mov R14, [R14]" -asm_init "mov [R14], R14"
 *                  -config cfg_Skylake.txt
 *
 * Expected (paper): 1.00 instructions, 4.00 core cycles, 3.52 reference
 * cycles, ports 2/3 at 0.50 each, L1_HIT 1.00.
 */

#include <iostream>

#include "core/engine.hh"

int
main()
{
    using namespace nb;
    using namespace nb::core;
    nb::setQuiet(true);

    Engine engine;
    SessionOptions opt;
    opt.uarch = "Skylake";
    opt.mode = Mode::Kernel;
    opt.config = CounterConfig::forMicroArch("Skylake");
    Session session = engine.session(opt);

    BenchmarkSpec spec;
    spec.asmCode = "mov R14, [R14]";
    spec.asmInit = "mov [R14], R14";
    spec.unrollCount = 100;
    spec.warmUpCount = 2;

    std::cout << "# E1 (paper SIII-A): L1 data cache latency, Skylake\n";
    std::cout << "# nanoBench -asm \"mov R14, [R14]\" -asm_init "
                 "\"mov [R14], R14\" -config cfg_Skylake.txt\n\n";
    std::cout << session.runOrThrow(spec).format();
    std::cout << "\n# Paper reference: Core cycles 4.00, Reference "
                 "cycles 3.52,\n# PORT_2/PORT_3 0.50 each, L1_HIT "
                 "1.00.\n";
    return 0;
}
