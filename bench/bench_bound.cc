/**
 * @file
 * Google-benchmark measurements of the static performance-bound
 * analyzer: raw analysis cost per spec (assemble + decode + longest
 * path + port enumeration), the report memo, and -- the ratio CI
 * guards -- a campaign where every spec is also bound-analyzed vs
 * the identical campaign without. analyzeBoundsCached() memoizes
 * whole reports on the canonical spec key, so the steady-state cost
 * of bound analysis on the campaign path must stay near zero; see
 * tools/check_bench.py (bound_overhead).
 */

#include <benchmark/benchmark.h>

#include "analysis/bound.hh"
#include "core/campaign.hh"

namespace
{

using namespace nb;

/** Same shape as bench_campaign's spec pool: cheap-but-real specs. */
std::vector<core::BenchmarkSpec>
uniqueSpecs(unsigned n)
{
    std::vector<core::BenchmarkSpec> specs(n);
    for (unsigned i = 0; i < n; ++i) {
        specs[i].asmCode =
            "mov RAX, " + std::to_string(i + 1) + "; add RAX, RAX";
        specs[i].unrollCount = 10;
        specs[i].nMeasurements = 3;
        specs[i].warmUpCount = 0;
    }
    return specs;
}

constexpr unsigned kCampaignSize = 200;

void
BM_BoundCold(benchmark::State &state)
{
    // Uncached single-spec analysis: assemble + decode + dependency
    // closure + binding-set port enumeration.
    const auto &ua = uarch::getMicroArch("Skylake");
    core::BenchmarkSpec spec;
    spec.asmCode = "mov R14, [R14]; add RAX, RBX; xor RDX, RDX";
    spec.asmInit = "mov [R14], R14";
    spec.unrollCount = 100;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            analysis::analyzeBounds(ua, spec).bound());
}
BENCHMARK(BM_BoundCold);

void
BM_BoundMemoized(benchmark::State &state)
{
    // Steady state of the bound memo: every call after the first is a
    // key build + hash lookup.
    const auto &ua = uarch::getMicroArch("Skylake");
    core::BenchmarkSpec spec;
    spec.asmCode = "mov R14, [R14]; add RAX, RBX; xor RDX, RDX";
    spec.asmInit = "mov [R14], R14";
    spec.unrollCount = 100;
    analysis::analyzeBoundsCached(ua, spec);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            analysis::analyzeBoundsCached(ua, spec).bound());
}
BENCHMARK(BM_BoundMemoized);

void
BM_CampaignBound(benchmark::State &state)
{
    // The guarded ratio: an identical 200-spec campaign plain (arg 0)
    // vs every spec also run through the memoized bound analyzer
    // (arg 1), the -explain / R7 consistency flow.
    setQuiet(true);
    Engine engine;
    const auto &ua = uarch::getMicroArch("Skylake");
    CampaignOptions opt;
    opt.jobs = 2;
    opt.dedup = false;
    auto specs = uniqueSpecs(kCampaignSize);
    if (state.range(0))
        for (const auto &spec : specs)
            analysis::analyzeBoundsCached(ua, spec); // warm the memo
    engine.runCampaign(specs, opt); // warm the replica pool
    engine.resetStats();
    for (auto _ : state) {
        if (state.range(0)) {
            double acc = 0;
            for (const auto &spec : specs)
                acc += analysis::analyzeBoundsCached(ua, spec).bound();
            benchmark::DoNotOptimize(acc);
        }
        benchmark::DoNotOptimize(
            engine.runCampaign(specs, opt).outcomes.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kCampaignSize));
    if (state.range(0)) {
        auto stats = analysis::boundCacheCounters();
        state.counters["bound_hits"] =
            static_cast<double>(stats.hits);
        state.counters["bound_misses"] =
            static_cast<double>(stats.misses);
    }
}
BENCHMARK(BM_CampaignBound)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"bound"});

} // namespace

BENCHMARK_MAIN();
