/**
 * @file
 * E5 -- regenerates **Figure 1** of the paper: the Ivy Bridge age graph
 * for the access sequence "<WBINVD> B0 ... B11" in the probabilistic
 * dedicated sets (768-831). For each block Bi and each number n of
 * fresh blocks, the curve shows how often Bi still hits in the L3.
 *
 * Expected shape (§VI-D): the curves for Bi and Bi+1 are similar but
 * shifted by about 16; for B0, about 15/16 of the blocks are evicted as
 * soon as the first fresh blocks arrive, while the remaining ~1/16
 * stay in the cache relatively long -- the signature of
 * QLRU_H11_MR161_R1_U2 insertion.
 */

#include <iomanip>
#include <iostream>

#include "cachetools/cacheseq.hh"
#include "cachetools/infer.hh"
#include "core/engine.hh"

int
main(int argc, char **argv)
{
    using namespace nb;
    using namespace nb::cachetools;
    nb::setQuiet(true);

    // Full range 0..200 like the paper; a smaller sweep with --quick.
    bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    unsigned max_fresh = quick ? 96 : 200;
    unsigned step = quick ? 16 : 8;
    unsigned reps = quick ? 8 : 16;

    Engine engine;
    SessionOptions opt;
    opt.uarch = "IvyBridge";
    opt.mode = core::Mode::Kernel;
    Session session = engine.session(opt);

    CacheSeqOptions co;
    co.level = CacheLevel::L3;
    co.set = 800; // probabilistic dedicated sets: 768-831 (§VI-D)
    co.cbox = 0;
    co.repetitions = reps;
    CacheSeq cs(session, co);
    HardwareSetProbe probe(cs, 12);

    std::cout << "# E5: Figure 1 -- Ivy Bridge age graph, sequence "
                 "<WBINVD> B0...B11,\n"
              << "# set 800 (dedicated, probabilistic), C-Box 0, "
              << reps << " repetitions/point.\n"
              << "# Columns: L3 hit probability of re-accessing Bi "
                 "after n fresh blocks.\n";
    auto graph = computeAgeGraph(probe, 12, max_fresh, step);
    std::cout << graph.toCsv();

    // Quantify the two headline shape features.
    double b0_early = graph.hitRate[0][16 / step];
    double b0_late = 0.0;
    unsigned late_points = 0;
    for (std::size_t p = 0; p < graph.freshCounts.size(); ++p) {
        if (graph.freshCounts[p] >= 32 && graph.freshCounts[p] <= 80) {
            b0_late += graph.hitRate[0][p];
            ++late_points;
        }
    }
    b0_late /= late_points ? late_points : 1;
    std::cout << std::fixed << std::setprecision(3);
    std::cout << "\n# B0 survival after 16 fresh blocks: " << b0_early
              << " (paper: ~1/16 = 0.0625 long-lived fraction)\n";
    std::cout << "# B0 mean survival for n in [32, 80]: " << b0_late
              << " (the long tail of the lucky 1/16)\n";
    return 0;
}
