/**
 * @file
 * E9 -- reproduces the §III-I motivation for noMem mode: a benchmark
 * whose accesses map to the same cache set as the memory location that
 * the default counter-readout writes to. In memory mode the readout's
 * stores perturb the measured set; in noMem mode the counter values
 * stay in registers and the measurement is clean.
 */

#include <iomanip>
#include <iostream>

#include "core/engine.hh"

namespace
{

using namespace nb;
using namespace nb::core;

/** Hits measured for a working set that exactly fills one L1 set. */
double
measure(bool no_mem)
{
    // A fresh engine per variant: both measurements start from an
    // identical cold machine (same seed, no pooled state).
    Engine engine;
    SessionOptions opt;
    opt.uarch = "Skylake";
    opt.mode = Mode::Kernel;
    Session session = engine.session(opt);
    auto &machine = session.machine();

    // Find the L1 set the counter-readout results area maps to, and
    // build an 8-block working set in that same L1 set.
    Addr r14 = session.runner().r14Area();
    Addr result_area_set =
        machine.caches().l1().setIndex(machine.memory().translate(
            session.runner().r14Area())); // proxy: use a fixed set anyway
    (void)result_area_set;

    // Blocks r14 + set_offset + k * 4 KB share one L1 set.
    std::string init, body;
    for (int k = 0; k < 8; ++k) {
        std::string addr = "[R14+" + std::to_string(k * 4096) + "]";
        init += "mov RBX, " + addr + ";";
        body += "mov RBX, " + addr + ";";
    }
    (void)r14;

    BenchmarkSpec spec;
    spec.asmInit = init;  // warm the 8 blocks (fills the set exactly)
    spec.asmCode = body;  // re-access: should be 8 hits
    spec.unrollCount = 1;
    spec.basicMode = true;
    spec.warmUpCount = 0;
    spec.nMeasurements = 5;
    spec.agg = Aggregate::Mean;
    spec.noMem = no_mem;
    spec.fixedCounters = false;
    spec.config = CounterConfig::parseString(
        "D1.01 MEM_LOAD_RETIRED.L1_HIT\nD1.08 MEM_LOAD_RETIRED.L1_MISS");
    auto result = session.runOrThrow(spec);
    return result["MEM_LOAD_RETIRED.L1_HIT"];
}

} // namespace

int
main()
{
    nb::setQuiet(true);
    std::cout << "# E9 (paper SIII-I): noMem mode\n"
              << "# 8 blocks exactly filling one L1 set are warmed in "
                 "the init phase\n"
              << "# and re-accessed in the measured phase (expected: "
                 "8.00 hits).\n\n";
    double with_mem = measure(false);
    double no_mem = measure(true);
    std::cout << std::fixed << std::setprecision(2);
    std::cout << "mode       measured L1 hits (of 8)\n";
    std::cout << "memory     " << with_mem << "\n";
    std::cout << "noMem      " << no_mem << "\n\n";
    std::cout << "# In memory mode the counter readout's own stores "
                 "can evict blocks\n"
              << "# of the set under test; noMem keeps the state "
                 "intact (SIII-I).\n";
    return 0;
}
