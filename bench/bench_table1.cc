/**
 * @file
 * E4 -- regenerates **Table I** of the paper: the replacement policies
 * of L1, L2, and L3 for the ten Intel Core generations, recovered with
 * the inference tools of §VI-C running against the simulated machines.
 *
 * L1/L2 policies are found with the permutation-policy tool where it
 * applies (PLRU) and the random-sequence tool otherwise; L3 policies
 * with the random-sequence tool. Adaptive L3s (IvyBridge, Haswell,
 * Broadwell) are probed in their dedicated leader sets (§VI-D): the
 * deterministic group is identified by name; the probabilistic group is
 * reported as non-deterministic (its analysis is Figure 1 / E5).
 */

#include <iomanip>
#include <iostream>

#include "cachetools/cacheseq.hh"
#include "cachetools/infer.hh"
#include "core/engine.hh"

namespace
{

using namespace nb;
using namespace nb::cachetools;

/** Policy of one level via the §VI-C toolchain. */
std::string
inferLevel(Session &session, CacheLevel level, unsigned set,
           unsigned cbox, unsigned assoc)
{
    CacheSeqOptions co;
    co.level = level;
    co.set = set;
    co.cbox = cbox;
    CacheSeq cs(session, co);
    HardwareSetProbe probe(cs, assoc);

    // Tool 1 (permutation policies, [15]); applies to power-of-two
    // associativities.
    if ((assoc & (assoc - 1)) == 0) {
        Rng rng(1);
        if (auto name = identifyPermutationPolicy(probe, &rng))
            return *name;
    }
    // Tool 2 (random sequences vs candidate simulations).
    Rng rng(2);
    auto id = identifyPolicy(probe, rng, 90);
    if (!id.deterministic)
        return "non-deterministic (see E5)";
    if (id.matches.empty())
        return "UNKNOWN";
    // Observationally equivalent variants (e.g. R0/R1 with U0, §VI-B2)
    // may survive together; report the first (paper naming).
    std::string out = id.matches.front();
    if (id.matches.size() > 1)
        out += " (+" + std::to_string(id.matches.size() - 1) + " equiv)";
    return out;
}

} // namespace

int
main()
{
    nb::setQuiet(true);
    std::cout
        << "# E4: Table I -- replacement policies used by recent Intel "
           "CPUs\n"
        << "# (recovered by the inference tools; '(+n equiv)' marks\n"
        << "#  observationally equivalent QLRU variants, SVI-B2)\n\n";
    std::cout << std::left << std::setw(13) << "uarch" << std::setw(18)
              << "CPU" << std::setw(8) << "L1"
              << std::setw(30) << "L2" << "L3\n";
    std::cout << std::string(100, '-') << "\n";

    Engine engine;
    for (const auto &name : nb::uarch::tableOneMicroArchNames()) {
        SessionOptions opt;
        opt.uarch = name;
        opt.mode = core::Mode::Kernel;
        Session session = engine.session(opt);
        const auto &cfg = session.machine().uarch().cacheConfig;

        std::string l1 =
            inferLevel(session, CacheLevel::L1, 7, 0, cfg.l1.assoc);
        std::string l2 =
            inferLevel(session, CacheLevel::L2, 77, 0, cfg.l2.assoc);
        std::string l3;
        if (!cfg.l3Dueling.empty()) {
            // Adaptive: probe one leader set of each group (§VI-D).
            std::string a = inferLevel(session, CacheLevel::L3, 520, 0,
                                       cfg.l3.assoc);
            std::string b = inferLevel(session, CacheLevel::L3, 800, 0,
                                       cfg.l3.assoc);
            l3 = "adaptive: " + a + " / " + b;
        } else {
            l3 = inferLevel(session, CacheLevel::L3, 33, 0, cfg.l3.assoc);
        }
        std::cout << std::left << std::setw(13) << name << std::setw(18)
                  << session.machine().uarch().cpu << std::setw(8) << l1
                  << std::setw(30) << l2 << l3 << "\n";
    }

    std::cout << "\n# Paper reference (Table I):\n"
              << "#   L1: PLRU everywhere; L2: PLRU through Broadwell,\n"
              << "#   QLRU_H00_M1_R2_U1 on SKL/KBL/CFL, "
                 "QLRU_H00_M1_R0_U1 on CNL;\n"
              << "#   L3: MRU (NHM/WSM), MRU* (SNB), adaptive "
                 "(IVB/HSW/BDW),\n"
              << "#   QLRU_H11_M1_R0_U0 (SKL/KBL/CFL/CNL).\n";
    return 0;
}
