/**
 * @file
 * E6 -- case study I (§V): latency, throughput, and port usage of every
 * instruction variant of the modelled ISA, in the style of uops.info.
 * The paper's tool covers >12,000 variants on real silicon; this
 * regenerates the table for the full modelled instruction set on four
 * representative microarchitectures, including privileged instructions
 * (which only nanoBench's kernel-space version can benchmark).
 */

#include <iostream>

#include "core/engine.hh"
#include "uops/characterize.hh"

int
main(int argc, char **argv)
{
    using namespace nb;
    nb::setQuiet(true);

    std::vector<std::string> uarchs = {"Skylake"};
    if (argc > 1 && std::string(argv[1]) == "--all")
        uarchs = {"Nehalem", "IvyBridge", "Haswell", "Skylake", "Zen"};

    Engine engine;
    for (const auto &name : uarchs) {
        SessionOptions opt;
        opt.uarch = name;
        opt.mode = core::Mode::Kernel;
        Session session = engine.session(opt);
        uops::Characterizer tool(session);

        std::cout << "# E6 (paper SV): instruction characterization on "
                  << name << " (" << session.machine().uarch().cpu
                  << ")\n";
        std::cout << uops::Characterizer::tableHeader() << "\n";
        std::cout << std::string(70, '-') << "\n";
        for (const auto &result : tool.characterizeAll())
            std::cout << result.tableRow() << "\n";
        std::cout << "\n";
    }
    std::cout << "# Reference points (Skylake): ADD r,r lat 1 tput "
                 "0.25; IMUL r,r lat 3 tput 1 (p1);\n"
              << "# load lat 4 tput 0.5 (p2+p3); store tput 1 (p4); "
                 "64-bit DIV lat ~36, blocking.\n";
    return 0;
}
