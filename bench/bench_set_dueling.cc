/**
 * @file
 * E7 -- reproduces the set-dueling findings of §VI-C3/§VI-D:
 *  - Ivy Bridge: dedicated sets 512-575 and 768-831 in ALL slices;
 *  - Haswell: the same sets, but only in slice 0;
 *  - Broadwell: the two leader groups swapped between slices 0 and 1
 *    (the configuration Briongos et al. mis-attributed, §VI-D).
 */

#include <iostream>

#include "cachetools/dueling_scan.hh"
#include "core/engine.hh"

int
main(int argc, char **argv)
{
    using namespace nb;
    using namespace nb::cachetools;
    nb::setQuiet(true);

    bool quick = argc > 1 && std::string(argv[1]) == "--quick";

    Engine engine;
    for (const char *name : {"IvyBridge", "Haswell", "Broadwell"}) {
        SessionOptions opt;
        opt.uarch = name;
        opt.mode = core::Mode::Kernel;
        Session session = engine.session(opt);
        const auto &duel =
            session.machine().uarch().cacheConfig.l3Dueling;

        DuelingScanner scanner(session, duel.policyA, duel.policyB);
        DuelingScanOptions so;
        so.setLo = 448;
        so.setHi = 895;
        so.stride = quick ? 32 : 16;
        so.reps = 2;
        auto result = scanner.scan(so);

        std::cout << "# E7: dedicated (leader) sets on " << name << " ("
                  << session.machine().uarch().cpu << ")\n";
        std::cout << "#   duel: A=" << duel.policyA
                  << "  B=" << duel.policyB << "\n";
        std::cout << result.summary() << "\n";
    }
    std::cout << "# Paper reference (SVI-D): IVB 512-575/768-831 in all "
                 "slices;\n"
              << "# HSW same sets in slice 0 only; BDW policy groups "
                 "crossed over slices 0/1.\n";
    return 0;
}
