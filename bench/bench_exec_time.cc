/**
 * @file
 * E2 -- reproduces the paper's §III-K execution-time experiment: a
 * single NOP with unrollCount = 100, loopCount = 0, nMeasurements = 10,
 * and a configuration file with four events. The paper reports ~15 ms
 * for the kernel version and ~50 ms for the user-space version on an
 * i7-8700K. Absolute times differ on a simulator; the shape (kernel
 * clearly cheaper than user space, in both host time and simulated
 * work) is what this reproduces.
 */

#include <chrono>
#include <iomanip>
#include <iostream>

#include "core/engine.hh"

namespace
{

struct Sample
{
    double hostMillis = 0.0;
    double simKilocycles = 0.0;
};

Sample
measure(nb::Engine &engine, nb::core::Mode mode)
{
    using namespace nb::core;
    nb::SessionOptions opt;
    opt.uarch = "CoffeeLake"; // the i7-8700K of §III-K
    opt.mode = mode;
    nb::Session session = engine.session(opt);

    BenchmarkSpec spec;
    spec.asmCode = "nop";
    spec.unrollCount = 100;
    spec.loopCount = 0;
    spec.nMeasurements = 10;
    spec.warmUpCount = 0;
    spec.config = CounterConfig::parseString(
        "0E.01 UOPS_ISSUED.ANY\n"
        "A1.01 UOPS_DISPATCHED_PORT.PORT_0\n"
        "A1.02 UOPS_DISPATCHED_PORT.PORT_1\n"
        "B1.01 UOPS_EXECUTED.THREAD\n");

    // Warm one run (module load, page mapping), then time.
    session.runOrThrow(spec);
    constexpr int kReps = 20;
    auto t0 = std::chrono::steady_clock::now();
    nb::Cycles cycles = 0;
    for (int i = 0; i < kReps; ++i)
        cycles += session.runOrThrow(spec).lastRunCycles;
    auto t1 = std::chrono::steady_clock::now();
    Sample s;
    s.hostMillis =
        std::chrono::duration<double, std::milli>(t1 - t0).count() /
        kReps;
    s.simKilocycles = static_cast<double>(cycles) / kReps / 1e3;
    return s;
}

} // namespace

int
main()
{
    nb::setQuiet(true);
    std::cout << "# E2 (paper SIII-K): execution time of one nanoBench "
                 "invocation\n";
    std::cout << "# NOP benchmark, unroll=100, loop=0, n=10, 4 events "
                 "(i7-8700K model)\n\n";
    nb::Engine engine;
    auto kernel = measure(engine, nb::core::Mode::Kernel);
    auto user = measure(engine, nb::core::Mode::User);
    std::cout << std::fixed << std::setprecision(2);
    std::cout << "version      host-ms/run   simulated-kcycles/run\n";
    std::cout << "kernel       " << std::setw(8) << kernel.hostMillis
              << "      " << std::setw(10) << kernel.simKilocycles
              << "\n";
    std::cout << "user         " << std::setw(8) << user.hostMillis
              << "      " << std::setw(10) << user.simKilocycles
              << "\n\n";
    std::cout << "# Paper reference: ~15 ms kernel vs ~50 ms user "
                 "(x86 silicon).\n";
    std::cout << "# Reproduced shape: kernel < user ("
              << (kernel.simKilocycles < user.simKilocycles ? "yes"
                                                            : "NO")
              << " in simulated work, "
              << (kernel.hostMillis < user.hostMillis ? "yes" : "NO")
              << " in host time).\n";
    return 0;
}
