/**
 * @file
 * E11 -- the paper's stated future-work direction (§VIII): TLB
 * characterization with the nanoBench methodology. Measures the L1
 * DTLB and STLB capacities and the translation penalties on the
 * simulated machines; the modelled ground truth is 64-entry DTLB,
 * 1536-entry STLB, +7 cycles for an STLB hit and +26 for a page walk.
 */

#include <iomanip>
#include <iostream>

#include "cachetools/tlbtool.hh"
#include "core/engine.hh"

int
main()
{
    using namespace nb;
    nb::setQuiet(true);

    std::cout << "# E11 (paper SVIII future work): data-TLB "
                 "characterization\n"
              << "# (cyclic page sweeps, DTLB_LOAD_MISSES.* events, "
                 "kernel runner)\n\n";
    std::cout << "uarch        DTLB-entries  STLB-entries  "
                 "STLB-hit-penalty  walk-penalty\n"
              << std::fixed << std::setprecision(1);
    Engine engine;
    for (const char *name : {"Skylake", "Haswell"}) {
        SessionOptions opt;
        opt.uarch = name;
        opt.mode = core::Mode::Kernel;
        Session session = engine.session(opt);
        auto tlb = cachetools::measureTlb(session);
        std::cout << std::left << std::setw(13) << name << std::right
                  << std::setw(8) << tlb.dtlbEntries << std::setw(14)
                  << tlb.stlbEntries << std::setw(14) << tlb.stlbPenalty
                  << std::setw(15) << tlb.walkPenalty << "\n";
    }
    std::cout << "\n# Modelled ground truth: DTLB 64, STLB 1536, "
                 "+7 cycles STLB hit, +26 walk.\n";
    return 0;
}
