/**
 * @file
 * Google-benchmark measurements of full-catalog instruction-table
 * characterization (§V): the serial single-session characterizer vs
 * the campaign-backed builder at several worker counts, plus the
 * dedup effect of the shared throughput/port specs. The CI
 * bench-regression job compares the parallel-vs-serial ratio against
 * a committed baseline; see tools/check_bench.py.
 */

#include <benchmark/benchmark.h>

#include "uops/table.hh"

namespace
{

using namespace nb;

void
BM_TableSerial(benchmark::State &state)
{
    // The pre-campaign way: one Session, every planned spec in order.
    setQuiet(true);
    Engine engine;
    Session session = engine.session({});
    uops::Characterizer tool(session);
    for (auto _ : state)
        benchmark::DoNotOptimize(tool.characterizeAll().size());
    state.counters["variants"] = static_cast<double>(
        tool.variantCatalog().size());
}
BENCHMARK(BM_TableSerial)->Unit(benchmark::kMillisecond);

void
BM_TableCampaign(benchmark::State &state)
{
    setQuiet(true);
    Engine engine;
    uops::TableBuildOptions opt;
    opt.jobs = static_cast<unsigned>(state.range(0));
    uops::buildInstructionTable(engine, opt); // warm worker replicas
    engine.resetStats();
    std::size_t cache_hits = 0;
    for (auto _ : state) {
        auto build = uops::buildInstructionTable(engine, opt);
        cache_hits = build.report.cacheHits;
        benchmark::DoNotOptimize(build.table.rows.size());
    }
    state.counters["cache_hits"] = static_cast<double>(cache_hits);
    state.counters["machines_constructed"] =
        static_cast<double>(engine.machinesConstructed());
}
BENCHMARK(BM_TableCampaign)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_TableNoDedup(benchmark::State &state)
{
    // Without dedup every variant's throughput benchmark runs twice
    // (once for the throughput decoder, once for ports).
    setQuiet(true);
    Engine engine;
    uops::TableBuildOptions opt;
    opt.jobs = 1;
    opt.dedup = false;
    uops::buildInstructionTable(engine, opt);
    engine.resetStats();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            uops::buildInstructionTable(engine, opt).table.rows.size());
    }
}
BENCHMARK(BM_TableNoDedup)->Unit(benchmark::kMillisecond);

void
BM_TableSerialization(benchmark::State &state)
{
    setQuiet(true);
    Engine engine;
    uops::TableBuildOptions opt;
    opt.jobs = 2;
    auto build = uops::buildInstructionTable(engine, opt);
    for (auto _ : state) {
        auto json = build.table.toJson();
        auto parsed = uops::InstructionTable::fromJson(json);
        benchmark::DoNotOptimize(parsed.rows.size());
    }
}
BENCHMARK(BM_TableSerialization)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
