/**
 * @file
 * Google-benchmark measurements of machine-profile construction (§VI):
 * the serial path (one runner, every planned spec in plan order) vs
 * the campaign-backed builder at several worker counts, plus the
 * serialization round-trip. The CI bench-regression job compares the
 * parallel-vs-serial ratio against a committed baseline; see
 * tools/check_bench.py.
 */

#include <benchmark/benchmark.h>

#include "profile/build.hh"

namespace
{

using namespace nb;

/** Reduced sizing so one build is bench-sized (~100 specs). */
profile::ProfileOptions
benchOptions()
{
    profile::ProfileOptions opt;
    opt.maxAssoc = 12;
    opt.policySequences = 8;
    opt.tlbMaxPages = 256;
    opt.duelingScan = false;
    return opt;
}

void
BM_ProfileSerial(benchmark::State &state)
{
    // The pre-campaign way: plan once, run every spec in order on one
    // machine prepared like a worker.
    setQuiet(true);
    profile::ProfilePlan plan =
        profile::planMachineProfile(benchOptions());
    for (auto _ : state) {
        sim::Machine machine(uarch::getMicroArch(plan.uarch),
                             plan.seed);
        core::Runner runner(machine, plan.mode);
        profile::prepareProfileMachine(runner, plan);
        std::vector<RunOutcome> outcomes;
        outcomes.reserve(plan.specs.size());
        for (const auto &spec : plan.specs)
            outcomes.push_back(runSpecOnRunner(runner, spec));
        auto profile = profile::decodeMachineProfile(plan, outcomes);
        benchmark::DoNotOptimize(profile.levels.size());
    }
    state.counters["specs"] = static_cast<double>(plan.specs.size());
}
BENCHMARK(BM_ProfileSerial)->Unit(benchmark::kMillisecond);

void
BM_ProfileCampaign(benchmark::State &state)
{
    setQuiet(true);
    Engine engine;
    profile::ProfileOptions opt = benchOptions();
    opt.jobs = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        auto build = profile::buildMachineProfile(engine, opt);
        benchmark::DoNotOptimize(build.profile.levels.size());
    }
}
BENCHMARK(BM_ProfileCampaign)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_ProfileSerialization(benchmark::State &state)
{
    setQuiet(true);
    Engine engine;
    profile::ProfileOptions opt = benchOptions();
    opt.jobs = 2;
    auto build = profile::buildMachineProfile(engine, opt);
    for (auto _ : state) {
        auto json = build.profile.toJson();
        auto parsed = profile::MachineProfile::fromJson(json);
        auto csv = parsed.toCsv();
        auto back = profile::MachineProfile::fromCsv(csv);
        benchmark::DoNotOptimize(back.levels.size());
    }
}
BENCHMARK(BM_ProfileSerialization)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
