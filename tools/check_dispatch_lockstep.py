#!/usr/bin/env python3
"""Lockstep check between the OpClass enum and the threaded dispatcher.

The threaded executor (src/sim/dispatch.cc) indexes a computed-goto
handler table by OpClass, so the table must list exactly one `&&op_*`
label per enumerator *in declaration order* -- a reordered or missing
entry silently dispatches the wrong semantics with no compiler
diagnostic beyond the table-size static_assert. This script re-derives
the contract from the sources so CI catches drift at review time:

  1. parses the OpClass enumerators from src/sim/program.hh
     (NumClasses excluded),
  2. parses the `&&op_*` labels out of the dispatcher's handlers[]
     table in declaration order,
  3. checks one-to-one positional correspondence, comparing the
     CamelCase enumerator against the snake_case label with
     underscores stripped (AddAdc <-> op_add_adc, SFence <->
     op_sfence),
  4. checks every table label has a matching `op_<name>:` handler
     definition in dispatch.cc,
  5. checks the scheduling-primitive lambdas in dispatch.cc still
     name-match their frozen Machine counterparts in machine.cc
     (issue_slot <-> Machine::issueSlot, dispatch_uop <->
     Machine::dispatchUop, retire_insn <-> Machine::retireInstr),
     which tests/test_dispatch_parity.cc diffs cycle-for-cycle,
  6. checks the table-size static_assert against kNumOpClasses is
     still present.

Usage:
  check_dispatch_lockstep.py [--repo /path/to/repo]
"""

import argparse
import pathlib
import re
import sys

# dispatch.cc scheduling lambda -> frozen Machine member it mirrors
PRIMITIVE_PAIRS = {
    "issue_slot": "issueSlot",
    "dispatch_uop": "dispatchUop",
    "retire_insn": "retireInstr",
}


def parse_opclass(program_hh):
    text = program_hh.read_text()
    match = re.search(
        r"enum class OpClass[^{]*\{(.*?)\};", text, re.DOTALL
    )
    if not match:
        sys.exit(f"error: no OpClass enum found in {program_hh}")
    names = []
    for line in match.group(1).splitlines():
        line = re.sub(r"//.*", "", line).strip().rstrip(",")
        if re.fullmatch(r"[A-Za-z_]\w*", line):
            names.append(line)
    if not names or names[-1] != "NumClasses":
        sys.exit(
            "error: OpClass parse failed (expected a trailing "
            "NumClasses sentinel)"
        )
    return names[:-1]


def parse_handler_table(dispatch_cc):
    text = dispatch_cc.read_text()
    match = re.search(
        r"handlers\[\]\s*=\s*\{(.*?)\};", text, re.DOTALL
    )
    if not match:
        sys.exit(f"error: no handlers[] table found in {dispatch_cc}")
    return re.findall(r"&&(op_\w+)", match.group(1)), text


def fold(name):
    """Case/underscore-insensitive spelling: AddAdc == op_add_adc."""
    return name.lower().replace("_", "").removeprefix("op")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repo",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repository root (default: this script's parent)",
    )
    args = parser.parse_args()
    src = args.repo / "src" / "sim"

    enumerators = parse_opclass(src / "program.hh")
    labels, dispatch_text = parse_handler_table(src / "dispatch.cc")
    machine_text = (src / "machine.cc").read_text()

    failed = False

    def fail(msg):
        nonlocal failed
        failed = True
        print(f"error: {msg}")

    # 3. positional one-to-one correspondence
    if len(labels) != len(enumerators):
        fail(
            f"handlers[] has {len(labels)} entries but OpClass has "
            f"{len(enumerators)} enumerators"
        )
    for i, (enum_name, label) in enumerate(zip(enumerators, labels)):
        if fold(enum_name) != fold(label):
            fail(
                f"handlers[{i}] is &&{label} but OpClass slot {i} is "
                f"{enum_name} (expected op_{enum_name} in snake_case)"
            )

    # 4. every label has a handler definition
    for label in labels:
        if not re.search(rf"^\s*{label}:", dispatch_text, re.MULTILINE):
            fail(f"no '{label}:' handler definition in dispatch.cc")

    # 5. scheduling primitives stay name-paired with Machine
    for lam, member in PRIMITIVE_PAIRS.items():
        if not re.search(rf"\bauto {lam}\s*=", dispatch_text):
            fail(f"dispatch.cc lost the '{lam}' scheduling lambda")
        if not re.search(rf"\bMachine::{member}\b", machine_text):
            fail(f"machine.cc lost the 'Machine::{member}' primitive")

    # 6. the compile-time size guard is still in place
    if not re.search(
        r"static_assert\(sizeof\(handlers\)\s*/\s*sizeof\(handlers\[0\]\)"
        r"\s*==\s*\n?\s*kNumOpClasses\)",
        dispatch_text,
    ):
        fail("dispatch.cc lost the handlers[] size static_assert")

    if failed:
        sys.exit("error: dispatch lockstep check failed (see above)")
    print(
        f"dispatch lockstep check passed: {len(enumerators)} OpClass "
        f"handlers in declaration order, "
        f"{len(PRIMITIVE_PAIRS)} primitive pairs"
    )


if __name__ == "__main__":
    main()
