#!/usr/bin/env python3
"""Bench-regression gate for CI.

Merges one or more google-benchmark JSON outputs (bench_simperf,
bench_campaign, bench_table) into a single BENCH_ci.json artifact and compares
machine-independent RATIOS between benchmarks against a committed
baseline (bench/BENCH_baseline.json). Ratios, not absolute times, so
the check is robust to runner speed; a ratio more than `tolerance`
times worse than its baseline fails the job.

Checked ratios:
  pooled_setup_ratio      BM_SessionSetupPooled / BM_SessionSetupCold
                          (the Engine-pool amortization; regresses if
                          pooled sessions start paying construction)
  campaign_jobs4_vs_serial  BM_CampaignJobs/4 / BM_CampaignSerialBatch
                          (parallel campaign throughput vs the
                          single-session batch; regresses if the
                          worker pool stops scaling)
  dedup_vs_nodedup        BM_CampaignDedup/dedup:1 / dedup:0
                          (the spec-level result cache)
  table_jobs4_vs_serial   BM_TableCampaign/4 / BM_TableSerial
                          (full-catalog characterization through the
                          campaign executor vs the serial
                          characterizer; regresses if the table
                          workload stops scaling)
  table_dedup_vs_nodedup  BM_TableCampaign/1 / BM_TableNoDedup
                          (the shared throughput/port specs executing
                          once instead of twice)
  profile_jobs4_vs_serial BM_ProfileCampaign/4 / BM_ProfileSerial
                          (machine-profile construction through the
                          campaign executor -- fresh machine per spec,
                          so layout-invariant -- vs the serial
                          plan-order run on one machine; regresses if
                          the profile workload stops scaling or the
                          per-spec machine construction gets dearer)
  predecode_vs_legacy     BM_HotpathPredecoded / BM_HotpathLegacy
                          (the predecoded-program hot path vs
                          re-materializing + re-decoding the unrolled
                          measurement code per execution; ratcheted
                          for the threaded executor -- the baseline
                          now encodes >= 2.5x simulated-instruction
                          throughput end to end)
  dispatch_vs_predecode   BM_HotpathPredecoded / BM_HotpathSwitchDispatch
                          (the threaded computed-goto SoA executor
                          with batched PMU accounting vs the frozen
                          switch-based reference on the SAME
                          predecoded program; the baseline encodes
                          the >= 1.5x win threaded dispatch must
                          keep delivering)
  lint_overhead           BM_CampaignLint/lint:1 / BM_CampaignLint/lint:0
                          (an identical campaign with every spec opted
                          into LintLevel::Error vs linting off; the
                          report memo keys on the canonical spec key,
                          so steady-state lint cost must stay near
                          zero)
  bound_overhead          BM_CampaignBound/bound:1 / BM_CampaignBound/bound:0
                          (an identical campaign with every spec also
                          run through the memoized static bound
                          analyzer vs the plain campaign; the bound
                          memo keys on the canonical spec key, so
                          steady-state bound analysis must stay near
                          zero)
  trace_overhead          BM_CampaignTrace/trace:1 / BM_CampaignTrace/trace:0
                          (an identical campaign with a DISABLED
                          obs::Tracer attached vs no tracer at all;
                          the disabled path is one pointer check per
                          span site, so the ratio carries its own
                          tight 1.05x tolerance in the baseline
                          "tolerances" map. trace:2 -- tracing fully
                          enabled -- rides along in the artifact but
                          is not gated)
  observe_overhead        BM_CampaignObserve/observe:1 / BM_CampaignObserve/observe:0
                          (an identical campaign with per-worker
                          ExecObservers attached vs detached; the
                          observer's relaxed counter bumps are
                          negligible next to assemble/decode, so this
                          is gated at 1.05x like trace_overhead)
  budget_overhead         BM_HotpathBudget/1 / BM_HotpathBudget/0
                          (the threaded-dispatch hot path with a
                          never-tripping cycle budget armed vs
                          disarmed; the amortized deadline check is
                          one masked compare per instruction, so this
                          is pinned at 1.05x in the tolerances map --
                          budgets must never tax dispatch)

Per-ratio tolerances: the baseline file may carry a "tolerances" map
overriding --tolerance for individual ratios (used to pin the two
disabled-path observability overheads at 1.05x instead of 2x).

Usage:
  check_bench.py --baseline bench/BENCH_baseline.json \
      --out BENCH_ci.json simperf.json campaign.json table.json \
      profile.json hotpath.json analysis.json bound.json obs.json
"""

import argparse
import json
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# ratio name -> (numerator benchmark, denominator benchmark)
RATIOS = {
    "pooled_setup_ratio": ("BM_SessionSetupPooled", "BM_SessionSetupCold"),
    "campaign_jobs4_vs_serial": ("BM_CampaignJobs/4", "BM_CampaignSerialBatch"),
    "dedup_vs_nodedup": ("BM_CampaignDedup/dedup:1", "BM_CampaignDedup/dedup:0"),
    "table_jobs4_vs_serial": ("BM_TableCampaign/4", "BM_TableSerial"),
    "table_dedup_vs_nodedup": ("BM_TableCampaign/1", "BM_TableNoDedup"),
    "profile_jobs4_vs_serial": ("BM_ProfileCampaign/4", "BM_ProfileSerial"),
    "predecode_vs_legacy": ("BM_HotpathPredecoded", "BM_HotpathLegacy"),
    "dispatch_vs_predecode": ("BM_HotpathPredecoded", "BM_HotpathSwitchDispatch"),
    "lint_overhead": ("BM_CampaignLint/lint:1", "BM_CampaignLint/lint:0"),
    "bound_overhead": ("BM_CampaignBound/bound:1", "BM_CampaignBound/bound:0"),
    "trace_overhead": ("BM_CampaignTrace/trace:1", "BM_CampaignTrace/trace:0"),
    "observe_overhead": ("BM_CampaignObserve/observe:1", "BM_CampaignObserve/observe:0"),
    "budget_overhead": ("BM_HotpathBudget/1", "BM_HotpathBudget/0"),
}


def load_benchmarks(paths):
    merged = {"benchmarks": []}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        if "context" in doc and "context" not in merged:
            merged["context"] = doc["context"]
        merged["benchmarks"].extend(doc.get("benchmarks", []))
    return merged


def real_time_ns(benchmarks, name):
    for entry in benchmarks:
        if entry.get("name") == name and entry.get("run_type", "iteration") == "iteration":
            unit = TIME_UNIT_NS.get(entry.get("time_unit", "ns"))
            if unit is None:
                sys.exit(f"error: unknown time unit in entry '{name}'")
            return entry["real_time"] * unit
    sys.exit(f"error: benchmark '{name}' not found in the merged results")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="+", help="google-benchmark JSON files")
    parser.add_argument("--baseline", required=True, help="committed baseline ratios")
    parser.add_argument("--out", help="write the merged results here (the CI artifact)")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="fail when a ratio is more than this factor worse than baseline "
        "(overridable per ratio via the baseline's \"tolerances\" map)",
    )
    args = parser.parse_args()

    merged = load_benchmarks(args.inputs)
    with open(args.baseline) as f:
        baseline = json.load(f)

    observed = {}
    for ratio_name, (numerator, denominator) in RATIOS.items():
        observed[ratio_name] = real_time_ns(
            merged["benchmarks"], numerator
        ) / real_time_ns(merged["benchmarks"], denominator)

    if args.out:
        merged["ratios"] = observed
        with open(args.out, "w") as f:
            json.dump(merged, f, indent=2)

    failed = False
    for ratio_name, value in observed.items():
        reference = baseline.get("ratios", {}).get(ratio_name)
        if reference is None:
            print(f"warn: no baseline for {ratio_name} (observed {value:.4g})")
            continue
        tolerance = baseline.get("tolerances", {}).get(ratio_name, args.tolerance)
        limit = reference * tolerance
        verdict = "ok" if value <= limit else "REGRESSION"
        print(
            f"{ratio_name}: observed {value:.4g}, baseline {reference:.4g}, "
            f"limit {limit:.4g} -> {verdict}"
        )
        if value > limit:
            failed = True

    if failed:
        sys.exit("error: benchmark regression detected (see ratios above)")
    print("bench check passed")


if __name__ == "__main__":
    main()
