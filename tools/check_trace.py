#!/usr/bin/env python3
"""Well-formedness gate for obs::Tracer Chrome-trace output.

Validates a trace file produced by `nanobench ... -trace FILE` (or any
obs::Tracer::writeFile output) the way Perfetto / chrome://tracing
would consume it:

  * the document is a JSON array of event objects (the Chrome
    trace-event "JSON Array Format"; an object with a "traceEvents"
    array is also accepted),
  * every event carries string "name"/"ph" and integer "pid"/"tid",
  * "ph" is one of B/E/X/M/i, and every non-metadata event carries a
    numeric non-negative "ts",
  * timestamps are globally non-decreasing in file order (the tracer
    stamps events under its mutex, so emission order IS time order),
  * per (pid, tid) lane, B/E events pair up like a bracket language:
    every E matches the name of the innermost open B, and no lane ends
    with an open span,
  * instant events ('i') carry a scope "s".

Exit status is non-zero on the first malformed trace, so CI can use
this directly as a smoke test. --require NAME (repeatable) asserts
that a complete span (or instant/metadata event) with that exact name
is present -- the CI smoke job uses it to prove the campaign and
worker lanes actually got populated.

Usage:
  check_trace.py trace.json --require campaign --require session
"""

import argparse
import json
import sys

VALID_PHASES = {"B", "E", "X", "M", "i"}


def fail(msg):
    sys.exit(f"error: {msg}")


def load_events(path):
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, dict):
        doc = doc.get("traceEvents")
    if not isinstance(doc, list):
        fail(f"{path}: expected a JSON array of trace events")
    return doc


def check(path, events):
    if not events:
        fail(f"{path}: trace is empty")
    open_spans = {}  # (pid, tid) -> stack of open B names
    seen_names = set()
    last_ts = None
    for i, event in enumerate(events):
        where = f"{path}: event {i}"
        if not isinstance(event, dict):
            fail(f"{where}: not an object")
        name = event.get("name")
        ph = event.get("ph")
        if not isinstance(name, str) or not name:
            fail(f"{where}: missing or empty \"name\"")
        if ph not in VALID_PHASES:
            fail(f"{where} ('{name}'): bad phase {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                fail(f"{where} ('{name}'): missing integer \"{key}\"")
        if ph == "M":
            # Metadata events (thread_name etc.) carry no timestamp.
            seen_names.add(event.get("args", {}).get("name", name))
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{where} ('{name}'): missing or negative \"ts\"")
        if last_ts is not None and ts < last_ts:
            fail(f"{where} ('{name}'): ts {ts} < previous {last_ts}")
        last_ts = ts
        lane = (event["pid"], event["tid"])
        if ph == "B":
            open_spans.setdefault(lane, []).append(name)
        elif ph == "E":
            stack = open_spans.get(lane)
            if not stack:
                fail(f"{where} ('{name}'): E with no open span on lane {lane}")
            top = stack.pop()
            if top != name:
                fail(f"{where}: E '{name}' does not match open B '{top}'")
            seen_names.add(name)
        elif ph == "i":
            if not isinstance(event.get("s"), str):
                fail(f"{where} ('{name}'): instant event without scope \"s\"")
            seen_names.add(name)
        else:  # X: a complete span
            seen_names.add(name)
    for lane, stack in open_spans.items():
        if stack:
            fail(f"{path}: lane {lane} ends with open span(s) {stack}")
    return seen_names


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("traces", nargs="+", help="Chrome trace JSON files")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="assert a completed event with this exact name is present",
    )
    args = parser.parse_args()

    for path in args.traces:
        events = load_events(path)
        seen = check(path, events)
        for name in args.require:
            if name not in seen:
                fail(f"{path}: required event '{name}' not found")
        print(f"{path}: {len(events)} events ok"
              + (f", has {args.require}" if args.require else ""))


if __name__ == "__main__":
    main()
