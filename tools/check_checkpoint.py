#!/usr/bin/env python3
"""Schema gate for campaign checkpoint journals.

A checkpoint journal (nanobench -checkpoint FILE) is line-oriented
JSON: a header object followed by one entry object per settled unique
spec. This validates the schema CI-side so the -resume contract --
"anything the writer emits, the loader accepts" -- is pinned from the
outside, not just by the C++ round-trip tests:

  header   {"nb_checkpoint": 1, "uarch": str, "mode": str,
            "total_specs": int, "unique_specs": int}
  entry    {"key": str, "ok": 1, "result": {...}}       (success)
           {"key": str, "ok": 0, "code": str,
            "transient": 0|1, "message": str}           (failure)

Success results must carry the BenchmarkResult shape (uarch, mode,
spec echo, lines of {name, value}); failure codes must be one of the
RunError code names. Booleans are 0/1 numbers (the library's JSON
subset has no true/false). Entry keys must be unique; the entry count
must not exceed unique_specs from the header.

A torn final line (the journal of a campaign killed mid-write) is
tolerated only with --allow-torn-tail, which is how the CI
kill-and-resume smoke invokes this on the interrupted journal.

Usage:
  check_checkpoint.py [--allow-torn-tail] FILE...
"""

import argparse
import json
import sys

RUN_ERROR_CODES = {
    "invalid-spec",
    "assembly-error",
    "unsupported",
    "lint-error",
    "execution-error",
    "budget-exceeded",
    "cancelled",
}


def fail(path, lineno, why):
    sys.exit(f"error: {path}:{lineno}: {why}")


def check_header(path, obj):
    if obj.get("nb_checkpoint") != 1:
        fail(path, 1, "header is not a version-1 checkpoint marker")
    for field, kind in (("uarch", str), ("mode", str),
                        ("total_specs", int), ("unique_specs", int)):
        if not isinstance(obj.get(field), kind):
            fail(path, 1, f"header field '{field}' missing or not {kind.__name__}")
    if obj["unique_specs"] > obj["total_specs"]:
        fail(path, 1, "header claims more unique specs than total specs")


def check_result(path, lineno, result, header):
    if not isinstance(result, dict):
        fail(path, lineno, "'result' is not an object")
    for field in ("uarch", "mode", "spec"):
        if not isinstance(result.get(field), str):
            fail(path, lineno, f"result field '{field}' missing or not a string")
    if result["uarch"] != header["uarch"] or result["mode"] != header["mode"]:
        fail(path, lineno, "result uarch/mode disagree with the journal header")
    lines = result.get("lines")
    if not isinstance(lines, list):
        fail(path, lineno, "result field 'lines' missing or not an array")
    for line in lines:
        if not isinstance(line, dict) or not isinstance(line.get("name"), str) \
                or not isinstance(line.get("value"), (int, float)):
            fail(path, lineno, "result line is not {name: str, value: number}")


def check_entry(path, lineno, obj, header, seen_keys):
    key = obj.get("key")
    if not isinstance(key, str) or not key:
        fail(path, lineno, "entry field 'key' missing or empty")
    if key in seen_keys:
        fail(path, lineno, "duplicate canonical key")
    seen_keys.add(key)
    ok = obj.get("ok")
    if ok not in (0, 1):
        fail(path, lineno, "entry field 'ok' must be 0 or 1")
    if ok == 1:
        if "result" not in obj:
            fail(path, lineno, "ok entry without a 'result'")
        check_result(path, lineno, obj["result"], header)
    else:
        if obj.get("code") not in RUN_ERROR_CODES:
            fail(path, lineno, f"unknown error code {obj.get('code')!r}")
        if obj.get("transient") not in (0, 1):
            fail(path, lineno, "entry field 'transient' must be 0 or 1")
        if not isinstance(obj.get("message"), str):
            fail(path, lineno, "entry field 'message' missing or not a string")


def check_file(path, allow_torn_tail):
    with open(path) as f:
        lines = [line for line in f.read().split("\n") if line.strip()]
    if not lines:
        sys.exit(f"error: {path}: empty journal")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as e:
        fail(path, 1, f"header is not valid JSON ({e})")
    check_header(path, header)
    seen_keys = set()
    entries = 0
    for i, line in enumerate(lines[1:], start=2):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            if allow_torn_tail and i == len(lines):
                print(f"{path}: tolerating torn final line (--allow-torn-tail)")
                break
            fail(path, i, f"entry is not valid JSON ({e})")
        check_entry(path, i, obj, header, seen_keys)
        entries += 1
    if entries > header["unique_specs"]:
        sys.exit(f"error: {path}: {entries} entries but the header "
                 f"claims {header['unique_specs']} unique specs")
    print(f"{path}: ok ({entries}/{header['unique_specs']} unique specs journalled)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="checkpoint journals")
    parser.add_argument("--allow-torn-tail", action="store_true",
                        help="tolerate one torn (truncated) final line")
    args = parser.parse_args()
    for path in args.files:
        check_file(path, args.allow_torn_tail)


if __name__ == "__main__":
    main()
