/**
 * @file
 * Quickstart: the paper's §III-A example through the Engine / Session
 * API.
 *
 * Measures the L1 data-cache latency on a simulated Skylake by chasing
 * a pointer through R14, with the store that creates the pointer in the
 * (unmeasured) initialization phase:
 *
 *   ./nanoBench.sh -asm "mov R14, [R14]" -asm_init "mov [R14], R14"
 *                  -config cfg_Skylake.txt
 *
 * Then runs a small batch against the same cached machine, showing the
 * three things the API adds over the old one-shot NanoBench facade:
 * machine pooling, per-spec error reporting, and structured results.
 *
 * Build and run:  ./build/examples/quickstart
 */

#include <iostream>

#include "core/engine.hh"

int
main()
{
    using namespace nb;
    using namespace nb::core;

    // An Engine pools simulated machines; a Session is a handle on one
    // of them, selected by (uarch, mode, seed).
    Engine engine;

    SessionOptions options;
    options.uarch = "Skylake";       // any name from -list_uarchs
    options.mode = Mode::Kernel;     // kernel-space variant (§III-D)
    options.config = CounterConfig::forMicroArch("Skylake");
    Session session = engine.session(options);

    // The microbenchmark: body, init, and repetition parameters
    // (unrollCount defaults to 100, warmUpCount to 2, §III-E).
    BenchmarkSpec spec;
    spec.asmCode = "mov R14, [R14]";   // chase the pointer
    spec.asmInit = "mov [R14], R14";   // plant the pointer

    // run() reports failures as data instead of aborting.
    RunOutcome outcome = session.run(spec);
    if (!outcome.ok()) {
        std::cerr << "benchmark failed ("
                  << runErrorCodeName(outcome.error().code)
                  << "): " << outcome.error().message << "\n";
        return 1;
    }
    const BenchmarkResult &result = outcome.result();
    std::cout << result.format();

    // Individual values are addressable by name; find() returns
    // std::nullopt for missing lines, operator[] throws.
    std::cout << "\nThe L1 data cache latency is "
              << result["Core cycles"] << " cycles.\n";

    // A batch runs many specs against the same warmed-up machine; the
    // machine is constructed once, results come back in spec order.
    std::vector<BenchmarkSpec> batch(3);
    batch[0].asmCode = "add RAX, RAX";      // 1-cycle dependency chain
    batch[1].asmCode = "imul RAX, RAX";     // 3-cycle dependency chain
    batch[2].asmCode = "not an instruction"; // fails, batch continues
    std::cout << "\nBatch of " << batch.size()
              << " specs on one pooled machine ("
              << engine.machinesConstructed() << " machine built):\n";
    for (const auto &o : session.runBatch(batch)) {
        if (o.ok()) {
            std::cout << "  " << o.result().specEcho << " -> "
                      << *o.result().find("Core cycles")
                      << " cycles/iteration\n";
        } else {
            std::cout << "  error ("
                      << runErrorCodeName(o.error().code) << "): "
                      << o.error().message << "\n";
        }
    }

    // Results serialize for machine consumption (also: toCsv()).
    std::cout << "\nAs JSON:\n" << result.toJson();
    return 0;
}
