/**
 * @file
 * Quickstart: the paper's §III-A example through the public C++ API.
 *
 * Measures the L1 data-cache latency on a simulated Skylake by chasing
 * a pointer through R14, with the store that creates the pointer in the
 * (unmeasured) initialization phase:
 *
 *   ./nanoBench.sh -asm "mov R14, [R14]" -asm_init "mov [R14], R14"
 *                  -config cfg_Skylake.txt
 *
 * Build and run:  ./build/examples/quickstart
 */

#include <iostream>

#include "core/nanobench.hh"

int
main()
{
    using namespace nb::core;

    NanoBenchOptions options;
    options.uarch = "Skylake";       // any name from -list_uarchs
    options.mode = Mode::Kernel;     // kernel-space variant (§III-D)

    // The microbenchmark: body, init, and repetition parameters.
    options.spec.asmCode = "mov R14, [R14]";   // chase the pointer
    options.spec.asmInit = "mov [R14], R14";   // plant the pointer
    options.spec.unrollCount = 100;
    options.spec.warmUpCount = 2;
    options.spec.config = CounterConfig::forMicroArch("Skylake");

    NanoBench bench(options);
    BenchmarkResult result = bench.run(options.spec);

    std::cout << result.format();

    // Individual values are addressable by name:
    std::cout << "\nThe L1 data cache latency is "
              << result["Core cycles"] << " cycles.\n";
    return 0;
}
