/**
 * @file
 * Instruction characterization (paper §V / uops.info): measure latency,
 * throughput, µop count, and port usage of chosen instructions,
 * including privileged ones -- which is only possible in kernel mode,
 * the headline capability of nanoBench.
 *
 * Usage: ./build/examples/instruction_table [uarch] [asm...]
 *   e.g. ./build/examples/instruction_table Haswell "imul RAX, RBX"
 */

#include <iostream>

#include "core/engine.hh"
#include "uops/characterize.hh"
#include "x86/assembler.hh"

int
main(int argc, char **argv)
{
    using namespace nb;
    nb::setQuiet(true);

    std::string uarch = argc > 1 ? argv[1] : "Skylake";
    Engine engine;
    SessionOptions opt;
    opt.uarch = uarch;
    opt.mode = core::Mode::Kernel;
    Session session = engine.session(opt);
    uops::Characterizer tool(session);

    std::vector<std::string> requests;
    for (int i = 2; i < argc; ++i)
        requests.push_back(argv[i]);
    if (requests.empty()) {
        requests = {
            "add RAX, RBX",      "imul RAX, RBX", "mov RAX, [R14]",
            "mov [R14], RAX",    "div RBX",       "vaddps YMM1, YMM2, YMM3",
            "popcnt RAX, RBX",   "nop",
            // Privileged: no pre-nanoBench tool could measure these.
            "rdmsr",             "wbinvd",        "cli",
        };
    }

    std::cout << "Instruction characterization on " << uarch << " ("
              << session.machine().uarch().cpu << "), kernel mode\n\n";
    std::cout << uops::Characterizer::tableHeader() << "\n";
    std::cout << std::string(70, '-') << "\n";
    for (const auto &text : requests) {
        auto insn = x86::assemble(text);
        if (insn.size() != 1) {
            std::cout << text << ": expected exactly one instruction\n";
            continue;
        }
        std::cout << tool.characterize(insn[0]).tableRow() << "\n";
    }
    return 0;
}
