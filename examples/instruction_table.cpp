/**
 * @file
 * Instruction characterization (paper §V / uops.info): measure latency,
 * throughput, µop count, and port usage -- including privileged
 * instructions, which is only possible in kernel mode, the headline
 * capability of nanoBench.
 *
 * With no instructions given, the FULL variant catalog is
 * characterized through the parallel campaign executor
 * (buildInstructionTable): the planner emits plain BenchmarkSpecs,
 * Engine::runCampaign() fans them across workers (deduping the shared
 * throughput/port specs), and the decoded rows come back as an
 * InstructionTable that can be serialized and diffed.
 *
 * Usage: ./build/examples/instruction_table [uarch] [asm...]
 *   e.g. ./build/examples/instruction_table Haswell
 *        ./build/examples/instruction_table Haswell "imul RAX, RBX"
 */

#include <iomanip>
#include <iostream>

#include "uops/table.hh"
#include "x86/assembler.hh"

int
main(int argc, char **argv)
{
    using namespace nb;
    nb::setQuiet(true);

    std::string uarch = argc > 1 ? argv[1] : "Skylake";
    std::vector<std::string> requests;
    for (int i = 2; i < argc; ++i)
        requests.push_back(argv[i]);

    Engine engine;
    SessionOptions opt;
    opt.uarch = uarch;
    opt.mode = core::Mode::Kernel;

    if (requests.empty()) {
        // Full catalog, campaign-backed.
        uops::TableBuildOptions table_opt;
        table_opt.session = opt;
        table_opt.jobs = 2;
        auto build = uops::buildInstructionTable(engine, table_opt);

        std::cout << build.table.format();
        std::cout << "\ncampaign: " << build.report.uniqueSpecs
                  << " unique specs over " << build.report.jobs
                  << " workers, " << build.report.cacheHits
                  << " dedup hits (the shared throughput/port specs), "
                  << std::fixed << std::setprecision(2)
                  << build.report.wallSeconds << " s wall\n";
        if (build.table.errorCount() != 0) {
            std::cout << build.table.errorCount()
                      << " variant(s) errored\n";
            return 1;
        }
        // Round-trip demo: the table survives JSON serialization.
        auto parsed =
            uops::InstructionTable::fromJson(build.table.toJson());
        std::cout << "JSON round-trip: " << parsed.rows.size()
                  << " rows, diff "
                  << (uops::diffTables(build.table, parsed).empty()
                          ? "clean"
                          : "DIRTY")
                  << "\n";
        return 0;
    }

    // Chosen instructions only: the classic per-variant tool.
    Session session = engine.session(opt);
    uops::Characterizer tool(session);
    std::cout << "Instruction characterization on " << uarch << " ("
              << session.machine().uarch().cpu << "), kernel mode\n\n";
    std::cout << uops::Characterizer::tableHeader() << "\n";
    std::cout << std::string(70, '-') << "\n";
    for (const auto &text : requests) {
        auto insn = x86::assemble(text);
        if (insn.size() != 1) {
            std::cout << text << ": expected exactly one instruction\n";
            continue;
        }
        std::cout << tool.characterize(insn[0]).tableRow() << "\n";
    }
    return 0;
}
