/**
 * @file
 * Campaign: run a uops.info-style batch of benchmarks (§V) across a
 * pool of worker threads with a progress callback.
 *
 * Builds a small instruction-latency campaign (with some deliberate
 * duplicates and one failing spec), fans it out over 4 workers -- each
 * worker gets its own machine replica, so results are deterministic
 * and in input order -- and prints the per-spec outcomes plus the
 * CampaignReport (wall time, per-worker counts, error histogram,
 * dedup-cache stats).
 *
 * The CLI equivalent:
 *
 *   ./build/nanobench -spec_file specs.txt -jobs 4 -progress -report -
 *
 * Build and run:  ./build/examples/campaign
 */

#include <iostream>

#include "core/campaign.hh"

int
main()
{
    using namespace nb;
    using namespace nb::core;

    // The work list: latency chains for a few instructions, measured
    // twice (duplicates -- the dedup cache will run each once), plus
    // one spec that fails to assemble.
    std::vector<BenchmarkSpec> specs;
    for (int round = 0; round < 2; ++round) {
        for (const char *body :
             {"add RAX, RAX", "imul RAX, RAX", "mov R14, [R14]",
              "popcnt RAX, RAX", "xor RAX, RAX; bsf RAX, RBX"}) {
            BenchmarkSpec spec;
            spec.asmCode = body;
            spec.asmInit = "mov [R14], R14";
            specs.push_back(spec);
        }
    }
    specs[7].asmCode = "this assembles on no known CPU";

    Engine engine;
    CampaignOptions options;
    options.jobs = 4;               // worker threads (0 = all cores)
    options.session.uarch = "Skylake";
    options.session.config = CounterConfig::forMicroArch("Skylake");
    options.progress = [](const CampaignProgress &event) {
        // Called under the campaign's own mutex: no locking needed
        // here even though workers run concurrently. Start events
        // carry the spec in flight; settle events bump the count.
        if (event.starting) {
            std::cerr << "\rrunning " << event.specLabel << " ...";
            return;
        }
        std::cerr << "\rmeasured " << event.done << "/" << event.total
                  << (event.done == event.total ? " specs\n"
                                                : " specs    ");
    };

    CampaignResult campaign = engine.runCampaign(specs, options);

    // One outcome per input spec, in input order, no matter which
    // worker executed it (duplicates share their first occurrence).
    for (std::size_t i = 0; i < campaign.outcomes.size(); ++i) {
        const RunOutcome &outcome = campaign.outcomes[i];
        std::cout << "spec " << i << ": ";
        if (outcome.ok()) {
            std::cout << *outcome.result().find("Core cycles")
                      << " cycles/iteration  ("
                      << outcome.result().specEcho << ")\n";
        } else {
            std::cout << "error ("
                      << runErrorCodeName(outcome.error().code)
                      << "): " << outcome.error().message << "\n";
        }
    }

    const CampaignReport &report = campaign.report;
    std::cout << "\n" << report.totalSpecs << " specs, "
              << report.uniqueSpecs << " unique, " << report.cacheHits
              << " served from the dedup cache, " << report.okCount
              << " ok, " << report.errorCount() << " failed, in "
              << report.wallSeconds << " s on " << report.jobs
              << " workers\n";
    for (unsigned w = 0; w < report.perWorkerSpecs.size(); ++w)
        std::cout << "  worker " << w << " ran "
                  << report.perWorkerSpecs[w] << " specs\n";

    // The report serializes like results do (also: toCsv()).
    std::cout << "\nAs JSON:\n" << report.toJson();
    return 0;
}
