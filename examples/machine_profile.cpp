/**
 * @file
 * Machine-profile walkthrough (paper §VI): build the full
 * memory-system profile of a CPU -- cache geometry, latencies,
 * replacement policies, TLB capacities/penalties, and set-dueling
 * leader ranges -- through ONE parallel campaign, then demonstrate
 * the persistence and diffing that make profiles usable as golden
 * regression references.
 *
 * Usage:  ./build/examples/machine_profile [uarch] [jobs]
 *         (default Skylake, 2 workers)
 */

#include <iostream>

#include "profile/build.hh"

int
main(int argc, char **argv)
{
    using namespace nb;

    profile::ProfileOptions options;
    options.session.uarch = argc > 1 ? argv[1] : "Skylake";
    options.jobs = argc > 2
                       ? static_cast<unsigned>(std::atoi(argv[2]))
                       : 2;
    // Trim the experiment sizing a little for a snappy demo; drop
    // these lines for full coverage.
    options.policySequences = 24;
    options.maxAssoc = 20;
    options.tlbMaxPages = 2048;

    // Every experiment -- hundreds of benchmark specs -- goes through
    // one Engine::runCampaign() call. freshMachinePerSpec (the
    // default here) runs each unique spec on a just-constructed
    // machine, so the profile is bit-identical for ANY -jobs value.
    Engine engine;
    auto build = profile::buildMachineProfile(engine, options);

    std::cout << build.profile.format() << "\n";
    std::cout << "campaign: " << build.report.totalSpecs << " specs, "
              << build.report.uniqueSpecs << " unique, "
              << build.report.errorCount() << " failed, "
              << build.report.jobs << " workers, "
              << build.report.wallSeconds << " s\n\n";

    // Profiles round-trip exactly through JSON and CSV...
    std::string json = build.profile.toJson();
    auto restored = profile::MachineProfile::fromJson(json);
    std::cout << "JSON round-trip exact: "
              << (restored.toJson() == json ? "yes" : "NO") << "\n";

    // ...and diff cleanly: against themselves (the golden-gate
    // workflow) and across microarchitectures.
    std::cout << "self-diff empty: "
              << (profile::diffProfiles(build.profile, restored).empty()
                      ? "yes"
                      : "NO")
              << "\n";
    if (build.profile.uarch != "Nehalem") {
        profile::ProfileOptions other = options;
        other.session.uarch = "Nehalem";
        auto nehalem = profile::buildMachineProfile(engine, other);
        auto diff =
            profile::diffProfiles(build.profile, nehalem.profile);
        std::cout << "\nvs Nehalem (" << diff.entries.size()
                  << " differences):\n"
                  << diff.format();
    }
    return build.profile.complete() ? 0 : 1;
}
