/**
 * @file
 * Cache-analysis walkthrough (paper §VI): for a chosen CPU, measure the
 * associativity of each cache level, then identify the replacement
 * policy with the two inference tools -- the permutation-policy tool of
 * [15] where it applies, and the random-sequence tool otherwise. For
 * non-deterministic policies, print a small age graph (§VI-C2).
 *
 * Usage:  ./build/examples/cache_analysis [uarch]   (default IvyBridge)
 */

#include <iostream>

#include "cachetools/cacheseq.hh"
#include "cachetools/infer.hh"
#include "core/engine.hh"

namespace
{

using namespace nb;
using namespace nb::cachetools;

void
analyzeLevel(Session &session, CacheLevel level, const char *name,
             unsigned set, unsigned cbox)
{
    CacheSeqOptions co;
    co.level = level;
    co.set = set;
    co.cbox = cbox;
    CacheSeq cs(session, co);

    // Step 1: measure the associativity (no prior knowledge needed).
    HardwareSetProbe scout(cs, 32);
    unsigned assoc = inferAssociativity(scout);
    std::cout << name << ": associativity " << assoc;

    HardwareSetProbe probe(cs, assoc);

    // Step 2: try the permutation-policy tool ([15], §VI-C1).
    if ((assoc & (assoc - 1)) == 0) {
        Rng rng(1);
        if (auto id = identifyPermutationPolicy(probe, &rng)) {
            std::cout << ", policy " << *id
                      << "  (permutation tool)\n";
            return;
        }
    }

    // Step 3: the random-sequence tool against all candidates.
    Rng rng(2);
    auto id = identifyPolicy(probe, rng, 80);
    if (id.deterministic && id.matches.size() >= 1) {
        std::cout << ", policy " << id.matches.front();
        if (id.matches.size() > 1) {
            std::cout << " (plus " << id.matches.size() - 1
                      << " observationally equivalent variants)";
        }
        std::cout << "  (random-sequence tool)\n";
        return;
    }

    // Step 4: non-deterministic -> age graph (§VI-C2).
    std::cout << ", policy is non-deterministic; age graph:\n";
    CacheSeqOptions rep_opt = co;
    rep_opt.repetitions = 12;
    CacheSeq rep_cs(session, rep_opt);
    HardwareSetProbe rep_probe(rep_cs, assoc);
    auto graph = computeAgeGraph(rep_probe, assoc, 4 * assoc, assoc);
    std::cout << graph.toCsv();
}

} // namespace

int
main(int argc, char **argv)
{
    nb::setQuiet(true);
    std::string uarch = argc > 1 ? argv[1] : "IvyBridge";

    Engine engine;
    SessionOptions opt;
    opt.uarch = uarch;
    opt.mode = core::Mode::Kernel; // WBINVD & friends need kernel space
    Session session = engine.session(opt);

    std::cout << "Analyzing the caches of " << uarch << " ("
              << session.machine().uarch().cpu << ")\n\n";
    analyzeLevel(session, CacheLevel::L1, "L1D", 5, 0);
    analyzeLevel(session, CacheLevel::L2, "L2 ", 37, 0);
    analyzeLevel(session, CacheLevel::L3, "L3 ", 520, 0);
    const auto &cfg = session.machine().uarch().cacheConfig;
    if (!cfg.l3Dueling.empty()) {
        std::cout << "\n(adaptive L3: probing the second leader group, "
                     "sets 768-831)\n";
        analyzeLevel(session, CacheLevel::L3, "L3*", 800, 0);
    }
    return 0;
}
