/**
 * @file
 * Driving nanoBench through the kernel module's virtual-file interface
 * (paper §IV-C), exactly like a shell user of the real module would:
 * write the benchmark parameters to files under /sys/nb/, then read
 * /proc/nanoBench to generate the code, run it, and collect results.
 *
 * Also demonstrates the machine-code path (§III-E): the benchmark body
 * is assembled to bytes first -- including the magic pause/resume
 * sequences (§III-I) -- and written to the code_bytes file.
 *
 * Usage: ./build/examples/kernel_module
 */

#include <iostream>

#include "core/module.hh"
#include "sim/machine.hh"
#include "uarch/uarch.hh"
#include "x86/assembler.hh"
#include "x86/encoding.hh"

int
main()
{
    using namespace nb;
    nb::setQuiet(true);

    // "insmod nb.ko": bind the module to a machine.
    sim::Machine machine(uarch::getMicroArch("Skylake"), 42);
    core::NanoBenchModule module(machine);

    std::cout << "Virtual files exposed by the module:\n";
    for (const auto &path : module.paths())
        std::cout << "  " << path << "\n";

    // echo "..." > /sys/nb/...
    module.writeFile("/sys/nb/unroll_count", "1");
    module.writeFile("/sys/nb/basic_mode", "1");
    module.writeFile("/sys/nb/no_mem", "1");
    module.writeFile("/sys/nb/fixed_counters", "0");
    module.writeFile("/sys/nb/n_measurements", "3");
    module.writeFile("/sys/nb/agg", "med");
    module.writeFile("/sys/nb/config",
                     "D1.01 MEM_LOAD_RETIRED.L1_HIT\n"
                     "D1.08 MEM_LOAD_RETIRED.L1_MISS\n");

    // The benchmark as raw machine code: warm two lines outside the
    // measurement (pfc_pause/pfc_resume markers become the magic byte
    // sequences of SIII-I in the encoded blob), then measure that
    // re-accessing them hits.
    auto code = x86::assemble(
        "pfc_pause; mov RBX, [R14]; mov RBX, [R14+64]; pfc_resume; "
        "mov RBX, [R14]; mov RBX, [R14+64]");
    auto bytes = x86::encode(code);
    module.writeFile("/sys/nb/code_bytes",
                     std::string(bytes.begin(), bytes.end()));

    // cat /proc/nanoBench
    std::cout << "\n$ cat /proc/nanoBench\n";
    std::cout << module.readFile("/proc/nanoBench");
    std::cout << "\n(2 warmed lines re-accessed: 2 hits, 0 misses; the "
                 "warming loads\nwere excluded by the magic markers)\n";
    return 0;
}
