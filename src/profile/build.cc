/**
 * @file
 * Profile planner, campaign driver, and decoder.
 */

#include "build.hh"

#include "common/bits.hh"
#include "common/logging.hh"
#include "sim/machine.hh"
#include "uarch/uarch.hh"

namespace nb::profile
{

using cachetools::CacheLevel;
using cachetools::CacheSeq;
using cachetools::CacheSeqOptions;
using x86::Instruction;
using x86::MemRef;
using x86::Opcode;
using x86::Operand;
using x86::Reg;

namespace
{

// ------------------------------------------------------ plan helpers --

Instruction
loadFrom(Addr vaddr)
{
    MemRef m;
    m.disp = static_cast<std::int64_t>(vaddr);
    Instruction insn;
    insn.opcode = Opcode::MOV;
    insn.operands = {Operand::makeReg(Reg::RBX),
                     Operand::makeMem(m, 64)};
    return insn;
}

Instruction
movImm(Reg r, std::int64_t value)
{
    Instruction insn;
    insn.opcode = Opcode::MOV;
    insn.operands = {Operand::makeReg(r), Operand::makeImm(value)};
    return insn;
}

Instruction
storeAbs(Addr addr, Reg r)
{
    MemRef m;
    m.disp = static_cast<std::int64_t>(addr);
    Instruction insn;
    insn.opcode = Opcode::MOV;
    insn.operands = {Operand::makeMem(m, 64), Operand::makeReg(r)};
    return insn;
}

Instruction
wbinvd()
{
    Instruction insn;
    insn.opcode = Opcode::WBINVD;
    return insn;
}

/** Configured geometry of a level (planning knowledge; the profile
 *  measures everything independently, the plan just needs address
 *  math and ladders in the right ballpark). */
struct LevelGeometry
{
    unsigned assoc = 0;
    unsigned sets = 0;
    unsigned slices = 1;
    Addr size = 0;
};

LevelGeometry
geometryOf(const uarch::MicroArch &ua, CacheLevel level)
{
    const auto &cfg = ua.cacheConfig;
    LevelGeometry g;
    switch (level) {
      case CacheLevel::L1:
        g.assoc = cfg.l1.assoc;
        g.size = cfg.l1.sizeBytes;
        break;
      case CacheLevel::L2:
        g.assoc = cfg.l2.assoc;
        g.size = cfg.l2.sizeBytes;
        break;
      case CacheLevel::L3:
        g.assoc = cfg.l3.assoc;
        g.size = cfg.l3.sizeBytes;
        g.slices = cfg.l3Slices;
        break;
    }
    g.sets = static_cast<unsigned>(
        g.size / (kCacheLineSize * g.assoc * g.slices));
    return g;
}

const char *
levelName(CacheLevel level)
{
    switch (level) {
      case CacheLevel::L1:
        return "L1";
      case CacheLevel::L2:
        return "L2";
      case CacheLevel::L3:
        return "L3";
    }
    return "?";
}

/** Set-count hypotheses probed per level (fixed, uarch-independent
 *  ladders bracketing every modelled geometry). */
std::vector<unsigned>
setsLadder(CacheLevel level)
{
    switch (level) {
      case CacheLevel::L1:
        return {16, 32, 64, 128, 256};
      case CacheLevel::L2:
        return {128, 256, 512, 1024, 2048, 4096};
      case CacheLevel::L3:
        return {512, 1024, 2048, 4096, 8192};
    }
    return {};
}

/** Ring length of the set-count hypothesis probes: 2A+1 lines thrash
 *  one A-way set completely, while the A-line half of a split ring
 *  still fits (so a half-stride hypothesis reads ~50% misses, not
 *  100%); the ring must also exceed the upstream associativities so
 *  it reaches the level under test at all. */
unsigned
hypothesisRingLines(const uarch::MicroArch &ua, CacheLevel level)
{
    LevelGeometry g = geometryOf(ua, level);
    unsigned upstream = 0;
    if (level != CacheLevel::L1)
        upstream = ua.cacheConfig.l1.assoc;
    if (level == CacheLevel::L3)
        upstream = std::max(upstream, ua.cacheConfig.l2.assoc);
    return std::max(2 * g.assoc + 1, upstream + 1);
}

/** The miss event of a level, as a one-event CounterConfig. */
core::CounterConfig
missEventConfig(CacheLevel level)
{
    auto info =
        sim::findEvent(std::string(CacheSeq::missEventName(level)));
    NB_ASSERT(info.has_value(), "miss event missing from catalog");
    core::CounterConfig config;
    config.add(core::ConfiguredEvent{info->code, info->id, info->name});
    return config;
}

/** Line-size strides probed (bytes). */
std::vector<unsigned>
lineStrides()
{
    return {16, 32, 64, 128, 256};
}

constexpr unsigned kLineFootprint = 16 * 1024;
constexpr unsigned kSetsRingPasses = 8;
constexpr unsigned kLatencyRingPasses = 4;

/** Bytes of the pointer-chase latency ring per level: past the
 *  previous level's capacity, comfortably inside this one. */
Addr
latencyRingBytes(const uarch::MicroArch &ua, CacheLevel level)
{
    const auto &cfg = ua.cacheConfig;
    switch (level) {
      case CacheLevel::L1:
        return cfg.l1.sizeBytes / 4;
      case CacheLevel::L2:
        return 2 * cfg.l1.sizeBytes;
      case CacheLevel::L3:
        return 2 * cfg.l2.sizeBytes;
    }
    return 0;
}

/** R14 bytes the whole profile needs (max over every planned tool;
 *  reserved once, up front, so all planned addresses stay stable). */
Addr
profileAreaSize(const uarch::MicroArch &ua, const ProfileOptions &opt)
{
    Addr need = 8 * 1024 * 1024;
    for (CacheLevel level :
         {CacheLevel::L1, CacheLevel::L2, CacheLevel::L3}) {
        LevelGeometry g = geometryOf(ua, level);
        // CacheSeq's own candidate area (cacheseq.cc).
        Addr seq_stride = static_cast<Addr>(g.sets) * kCacheLineSize;
        need = std::max(need,
                        seq_stride * 320 *
                            (level == CacheLevel::L3 ? g.slices + 1
                                                     : 1));
        // The largest set-count hypothesis ring.
        unsigned ring = hypothesisRingLines(ua, level);
        unsigned filter = level == CacheLevel::L3 ? g.slices : 1;
        Addr max_hyp = setsLadder(level).back();
        need = std::max(need, max_hyp * kCacheLineSize *
                                  (static_cast<Addr>(ring) * filter * 2 +
                                   2));
    }
    if (opt.tlbMaxPages > 0) {
        need = std::max(need,
                        static_cast<Addr>(opt.tlbMaxPages + 1) * 4096);
    }
    if (opt.duelingScan && !ua.cacheConfig.l3Dueling.empty()) {
        // Generous bound on DuelingScanner::planAreaSize() (the
        // training block count is only known after the offline
        // pattern search).
        LevelGeometry g = geometryOf(ua, CacheLevel::L3);
        Addr stride = static_cast<Addr>(g.sets) * kCacheLineSize;
        need = std::max(need,
                        stride * (static_cast<Addr>(g.assoc + 32) *
                                      g.slices * 2 +
                                  2));
    }
    return need;
}

/** Candidate lines with equal index under a set-count hypothesis
 *  (and, for the L3, in slice 0). */
std::vector<Addr>
hypothesisRing(core::Runner &runner, CacheLevel level, unsigned hyp,
               unsigned lines)
{
    auto &machine = runner.machine();
    Addr area_virt = runner.r14Area();
    Addr area_phys = machine.memory().translate(area_virt);
    Addr stride = static_cast<Addr>(hyp) * kCacheLineSize;
    Addr candidate = alignUp(area_phys, stride);
    std::vector<Addr> ring;
    while (ring.size() < lines) {
        if (candidate + kCacheLineSize > area_phys + runner.r14AreaSize())
            fatal("profile plan ran out of hypothesis-ring lines");
        if (level != CacheLevel::L3 ||
            machine.caches().sliceOf(candidate) == 0)
            ring.push_back(area_virt + (candidate - area_phys));
        candidate += stride;
    }
    return ring;
}

/** Steady-state ring spec: loop the ring, count this level's misses. */
core::BenchmarkSpec
ringSpec(const std::vector<Addr> &ring, CacheLevel level)
{
    core::BenchmarkSpec spec;
    spec.code.reserve(ring.size());
    for (Addr vaddr : ring)
        spec.code.push_back(loadFrom(vaddr));
    spec.unrollCount = 1;
    spec.loopCount = kSetsRingPasses;
    spec.warmUpCount = 2;
    spec.nMeasurements = 2;
    spec.agg = Aggregate::Mean;
    spec.basicMode = true;
    spec.noMem = true;
    spec.fixedCounters = false;
    spec.config = missEventConfig(level);
    return spec;
}

/** Cold-scan spec of the line-size sweep: flush, touch `footprint`
 *  bytes at `stride`, count this level's (compulsory) misses. */
core::BenchmarkSpec
lineSpec(Addr base, unsigned footprint, unsigned stride,
         CacheLevel level)
{
    core::BenchmarkSpec spec;
    spec.code.push_back(wbinvd());
    for (unsigned off = 0; off < footprint; off += stride)
        spec.code.push_back(loadFrom(base + off));
    spec.unrollCount = 1;
    spec.loopCount = 0;
    spec.warmUpCount = 0;
    spec.nMeasurements = 1;
    spec.agg = Aggregate::Mean;
    spec.basicMode = true;
    spec.noMem = true;
    spec.fixedCounters = false;
    spec.config = missEventConfig(level);
    return spec;
}

/** Dependent pointer-chase spec around a sequential ring of lines. */
core::BenchmarkSpec
chaseSpec(Addr base, unsigned lines)
{
    std::vector<Instruction> init;
    init.reserve(2 * lines);
    for (unsigned i = 0; i < lines; ++i) {
        Addr slot = base + static_cast<Addr>(i) * kCacheLineSize;
        Addr next =
            base + static_cast<Addr>((i + 1) % lines) * kCacheLineSize;
        init.push_back(movImm(Reg::RBX, static_cast<std::int64_t>(next)));
        init.push_back(storeAbs(slot, Reg::RBX));
    }
    core::BenchmarkSpec spec;
    spec.init = std::move(init);
    spec.asmCode = "mov R14, [R14]";
    spec.unrollCount = 1;
    spec.loopCount =
        static_cast<std::uint64_t>(kLatencyRingPasses) * lines;
    spec.warmUpCount = 2;
    spec.nMeasurements = 3;
    spec.agg = Aggregate::Median;
    return spec;
}

/** Policy-probe target sets, outside the §VI-D leader bands. */
unsigned
policyProbeSet(CacheLevel level)
{
    switch (level) {
      case CacheLevel::L1:
        return 5;
      case CacheLevel::L2:
        return 33;
      case CacheLevel::L3:
        return 101;
    }
    return 0;
}

/** Plan all experiments of one cache level. Throws FatalError when the
 *  machine cannot support them (caught into LevelPlan::error). */
ProfilePlan::LevelPlan
planLevel(core::Runner &runner, const uarch::MicroArch &ua,
          CacheLevel level, const ProfileOptions &opt, Rng &rng,
          std::vector<core::BenchmarkSpec> &specs)
{
    ProfilePlan::LevelPlan lp;
    lp.level = level;
    lp.name = levelName(level);
    LevelGeometry g = geometryOf(ua, level);
    lp.slices = g.slices;

    // The cacheSeq target for the associativity ladder and the policy
    // inference, against one arbitrary non-leader set. Constructed
    // FIRST: its constructor also validates that this machine supports
    // cache analysis at all (kernel mode, prefetchers off, §VI-D), and
    // a planning failure must not leave earlier specs behind.
    CacheSeqOptions seq_opt;
    seq_opt.level = level;
    seq_opt.set = policyProbeSet(level);
    seq_opt.cbox = 0;
    seq_opt.repetitions = 1;
    CacheSeq seq(runner, seq_opt);

    // Set-count hypotheses.
    lp.setsHypotheses = setsLadder(level);
    lp.setsRingLines = hypothesisRingLines(ua, level);
    lp.setsFirst = specs.size();
    for (unsigned hyp : lp.setsHypotheses) {
        specs.push_back(ringSpec(
            hypothesisRing(runner, level, hyp, lp.setsRingLines),
            level));
    }

    // Line-size sweep.
    lp.lineStrides = lineStrides();
    lp.lineFootprint = kLineFootprint;
    lp.lineFirst = specs.size();
    for (unsigned stride : lp.lineStrides) {
        specs.push_back(
            lineSpec(runner.r14Area(), kLineFootprint, stride, level));
    }

    lp.assoc = cachetools::planAssociativity(seq, opt.maxAssoc);
    lp.assocFirst = specs.size();
    for (auto &spec : lp.assoc.specs)
        specs.push_back(std::move(spec));
    lp.assoc.specs.clear();

    // Latency ring.
    lp.latencyRingLines = static_cast<unsigned>(
        latencyRingBytes(ua, level) / kCacheLineSize);
    lp.latencySpec = specs.size();
    specs.push_back(chaseSpec(runner.r14Area(), lp.latencyRingLines));

    // Replacement-policy inference (§VI-C1).
    lp.policy = cachetools::planPolicyId(seq, g.assoc, rng,
                                         opt.policySequences, 3);
    lp.policyFirst = specs.size();
    for (auto &spec : lp.policy.specs)
        specs.push_back(std::move(spec));
    lp.policy.specs.clear();

    return lp;
}

// ---------------------------------------------------- decode helpers --

/** A level plan that only records why planning failed. */
ProfilePlan::LevelPlan
erroredLevelPlan(CacheLevel level, const std::string &why)
{
    ProfilePlan::LevelPlan lp;
    lp.level = level;
    lp.name = levelName(level);
    lp.error = why;
    return lp;
}

/** Merge a sub-experiment failure into a level's error field. */
void
levelFail(CacheLevelProfile &level, const std::string &what,
          const std::string &message)
{
    if (!level.error.empty())
        level.error += "; ";
    level.error += what + ": " + message;
}

} // namespace

// ------------------------------------------------------------ planner --

ProfilePlan
planMachineProfile(const ProfileOptions &options)
{
    const uarch::MicroArch &ua =
        uarch::getMicroArch(options.session.uarch);

    ProfilePlan plan;
    plan.uarch = options.session.uarch;
    plan.mode = options.session.mode;
    plan.seed = options.session.seed;
    plan.duelAdvertised = !ua.cacheConfig.l3Dueling.empty();

    if (options.session.mode != core::Mode::Kernel) {
        // Every §VI experiment needs the kernel runner (WBINVD,
        // physically-contiguous memory, uncore access).
        const char *why = "requires the kernel-space runner (§VI)";
        for (CacheLevel level :
             {CacheLevel::L1, CacheLevel::L2, CacheLevel::L3})
            plan.levels.push_back(erroredLevelPlan(level, why));
        plan.tlbError = why;
        if (plan.duelAdvertised && options.duelingScan)
            plan.duelingError = why;
        return plan;
    }

    // A private, freshly constructed planning machine: never the
    // Engine pool, so the memory layout every planned address depends
    // on is a pure function of (uarch, mode, seed) -- exactly what
    // prepareProfileMachine() reproduces on the campaign workers.
    sim::Machine machine(ua, options.session.seed);
    core::Runner runner(machine, core::Mode::Kernel);

    plan.r14Size = profileAreaSize(ua, options);
    if (!runner.reserveR14Area(plan.r14Size))
        fatal("cannot reserve the profile's R14 area (", plan.r14Size,
              " bytes)");
    plan.disablePrefetchers =
        machine.caches().prefetcherDisableSupported();
    if (plan.disablePrefetchers) {
        machine.writeMsr(sim::msr::kPrefetchControl,
                         cache::pf::kDisableAll);
    }

    for (CacheLevel level :
         {CacheLevel::L1, CacheLevel::L2, CacheLevel::L3}) {
        // A per-level RNG stream keeps the planned policy sequences
        // independent of whether other levels planned successfully.
        Rng level_rng(options.session.seed +
                      1000003 *
                          (static_cast<std::uint64_t>(level) + 1));
        // Section failures become errored profile sections; keep
        // fatal()'s courtesy stderr print quiet for them.
        ScopedFatalMessageSuppression suppress_fatal_prints;
        try {
            plan.levels.push_back(planLevel(runner, ua, level, options,
                                            level_rng, plan.specs));
        } catch (const FatalError &e) {
            plan.levels.push_back(erroredLevelPlan(level, e.what()));
        }
    }

    if (options.tlbMaxPages > 0) {
        ScopedFatalMessageSuppression suppress_fatal_prints;
        try {
            plan.tlb = cachetools::planTlb(runner, options.tlbMaxPages);
            plan.tlbFirst = plan.specs.size();
            for (auto &spec : plan.tlb->specs)
                plan.specs.push_back(std::move(spec));
            plan.tlb->specs.clear();
        } catch (const FatalError &e) {
            plan.tlb.reset();
            plan.tlbError = e.what();
        }
    }

    if (plan.duelAdvertised && options.duelingScan) {
        ScopedFatalMessageSuppression suppress_fatal_prints;
        try {
            cachetools::DuelingScanner scanner(
                runner, ua.cacheConfig.l3Dueling.policyA,
                ua.cacheConfig.l3Dueling.policyB);
            plan.dueling = scanner.plan(options.dueling);
            plan.duelingFirst = plan.specs.size();
            for (auto &spec : plan.dueling->specs)
                plan.specs.push_back(std::move(spec));
            plan.dueling->specs.clear();
        } catch (const FatalError &e) {
            plan.dueling.reset();
            plan.duelingError = e.what();
        }
    }
    return plan;
}

void
prepareProfileMachine(core::Runner &runner, const ProfilePlan &plan)
{
    if (runner.mode() != core::Mode::Kernel)
        return;
    if (runner.r14AreaSize() < plan.r14Size &&
        !runner.reserveR14Area(plan.r14Size))
        fatal("profile worker: cannot reserve the R14 area");
    if (plan.disablePrefetchers) {
        runner.machine().writeMsr(sim::msr::kPrefetchControl,
                                  cache::pf::kDisableAll);
    }
}

// ------------------------------------------------------------ decoder --

MachineProfile
decodeMachineProfile(const ProfilePlan &plan,
                     const std::vector<RunOutcome> &outcomes)
{
    MachineProfile profile;
    profile.uarch = plan.uarch;
    profile.mode = core::modeName(plan.mode);

    for (const auto &lp : plan.levels) {
        CacheLevelProfile level;
        level.level = lp.name;
        level.slices = lp.slices;
        if (!lp.error.empty()) {
            level.error = lp.error;
            profile.levels.push_back(std::move(level));
            continue;
        }

        // Set count: the miss rate grows while the hypothesis is
        // below the true set count (the ring spreads over several
        // sets, most of it fits) and plateaus once the hypothesis
        // reaches it (the whole ring collides in one set). The
        // plateau level is policy-dependent -- ~100% for LRU-like
        // eviction, but barely above 50% for thrash-resistant
        // adaptive policies (§VI-B3) -- so the verdict is the
        // smallest hypothesis within 90% of the plateau.
        {
            std::vector<double> rates;
            for (std::size_t i = 0; i < lp.setsHypotheses.size(); ++i) {
                const RunOutcome &outcome = outcomes[lp.setsFirst + i];
                if (!outcome.ok()) {
                    levelFail(level, "sets", outcome.error().message);
                    break;
                }
                rates.push_back(
                    outcome.result()[CacheSeq::missEventName(
                        lp.level)] /
                    lp.setsRingLines);
            }
            double plateau = 0.0;
            for (double rate : rates)
                plateau = std::max(plateau, rate);
            if (level.error.empty()) {
                if (plateau < 0.25) {
                    levelFail(level, "sets",
                              "no hypothesis ring thrashed");
                } else {
                    for (std::size_t i = 0; i < rates.size(); ++i) {
                        if (rates[i] >= 0.9 * plateau) {
                            level.sets = lp.setsHypotheses[i];
                            break;
                        }
                    }
                }
            }
        }

        // Line size: the largest stride still producing (nearly) the
        // dense sweep's compulsory miss count.
        double base_misses = 0.0;
        for (std::size_t i = 0; i < lp.lineStrides.size(); ++i) {
            const RunOutcome &outcome = outcomes[lp.lineFirst + i];
            if (!outcome.ok()) {
                levelFail(level, "line", outcome.error().message);
                break;
            }
            double misses = outcome.result()[CacheSeq::missEventName(
                lp.level)];
            if (i == 0)
                base_misses = misses;
            if (base_misses > 0 && misses >= 0.75 * base_misses)
                level.lineSize = lp.lineStrides[i];
        }
        if (level.lineSize == 0 && level.error.empty())
            levelFail(level, "line", "no compulsory misses observed");

        // Associativity.
        auto assoc = cachetools::decodeAssociativity(
            lp.assoc,
            {outcomes.begin() +
                 static_cast<std::ptrdiff_t>(lp.assocFirst),
             outcomes.begin() +
                 static_cast<std::ptrdiff_t>(lp.assocFirst +
                                             lp.assoc.maxAssoc)});
        level.assoc = assoc.assoc;
        if (!assoc.error.empty())
            levelFail(level, "assoc", assoc.error);

        // Latency.
        const RunOutcome &latency = outcomes[lp.latencySpec];
        if (!latency.ok()) {
            levelFail(level, "latency", latency.error().message);
        } else if (auto cycles = latency.result().find("Core cycles")) {
            level.loadLatency = *cycles;
        } else {
            levelFail(level, "latency",
                      "no Core cycles line (fixed counters "
                      "unavailable on this machine)");
        }

        // Policy verdict.
        auto policy = cachetools::decodePolicyId(
            lp.policy,
            {outcomes.begin() +
                 static_cast<std::ptrdiff_t>(lp.policyFirst),
             outcomes.begin() +
                 static_cast<std::ptrdiff_t>(
                     lp.policyFirst + 2 * lp.policy.sequences.size())});
        level.policyMatches = std::move(policy.matches);
        level.policyDeterministic = policy.deterministic;
        if (policy.sequencesSkipped > 0) {
            levelFail(level, "policy",
                      std::to_string(policy.sequencesSkipped) +
                          " sequence benchmark(s) failed");
        }

        level.sizeKb = static_cast<double>(level.sets) * level.assoc *
                       level.lineSize * level.slices / 1024.0;
        profile.levels.push_back(std::move(level));
    }

    if (plan.tlb) {
        profile.tlb.measured = true;
        auto tlb = cachetools::decodeTlb(
            *plan.tlb,
            {outcomes.begin() +
                 static_cast<std::ptrdiff_t>(plan.tlbFirst),
             outcomes.begin() +
                 static_cast<std::ptrdiff_t>(
                     plan.tlbFirst + 3 * plan.tlb->ladder.size())});
        profile.tlb.dtlbEntries = tlb.dtlbEntries;
        profile.tlb.stlbEntries = tlb.stlbEntries;
        profile.tlb.stlbPenalty = tlb.stlbPenalty;
        profile.tlb.walkPenalty = tlb.walkPenalty;
        profile.tlb.error = std::move(tlb.error);
    } else if (!plan.tlbError.empty()) {
        profile.tlb.measured = true;
        profile.tlb.error = plan.tlbError;
    }

    profile.dueling.scanned = plan.dueling.has_value();
    if (plan.dueling) {
        profile.dueling.policyA = plan.dueling->policyA;
        profile.dueling.policyB = plan.dueling->policyB;
        auto result = cachetools::DuelingScanner::decode(
            *plan.dueling,
            {outcomes.begin() +
                 static_cast<std::ptrdiff_t>(plan.duelingFirst),
             outcomes.begin() +
                 static_cast<std::ptrdiff_t>(
                     plan.duelingFirst + plan.dueling->probes.size())});
        for (const auto &range : result.dedicatedRanges) {
            profile.dueling.ranges.push_back(
                {range.slice, range.setLo, range.setHi,
                 range.role == cachetools::SetRole::FixedA ? "A"
                                                           : "B"});
        }
    } else if (!plan.duelingError.empty()) {
        profile.dueling.scanned = true;
        profile.dueling.error = plan.duelingError;
    }
    return profile;
}

// ------------------------------------------------------------ builder --

ProfileBuild
buildMachineProfile(Engine &engine, const ProfileOptions &options)
{
    // Plan first: an unknown uarch throws here, before any work.
    ProfilePlan plan = planMachineProfile(options);

    ProfileBuild build;
    if (plan.specs.empty()) {
        // Nothing runnable (user mode / unsupported machine): the
        // decoded profile carries the per-section errors.
        build.profile = decodeMachineProfile(plan, {});
        return build;
    }

    CampaignOptions campaign_opt;
    campaign_opt.jobs = options.jobs;
    campaign_opt.dedup = options.dedup;
    campaign_opt.session = options.session;
    campaign_opt.freshMachinePerSpec = options.freshMachinePerSpec;
    if (options.progress) {
        // The builder's coarse (done, total) callback maps onto the
        // settle events of the richer campaign progress stream.
        campaign_opt.progress =
            [cb = options.progress](const CampaignProgress &event) {
                if (!event.starting)
                    cb(event.done, event.total);
            };
    }
    campaign_opt.trace = options.trace;
    campaign_opt.observe = options.observe;
    // A runaway planner spec settles as BudgetExceeded instead of
    // hanging profile generation (outcomes for sane specs, and thus
    // the golden profiles, are unaffected).
    campaign_opt.specBudget = kBuilderSpecBudget;
    // Workers reproduce the planning machine's reservation and
    // prefetcher state before running anything.
    Addr r14_size = plan.r14Size;
    bool disable_pf = plan.disablePrefetchers;
    campaign_opt.machineSetup = [r14_size,
                                 disable_pf](core::Runner &runner) {
        ProfilePlan shim;
        shim.r14Size = r14_size;
        shim.disablePrefetchers = disable_pf;
        prepareProfileMachine(runner, shim);
    };

    CampaignResult campaign =
        engine.runCampaign(plan.specs, campaign_opt);
    build.profile = decodeMachineProfile(plan, campaign.outcomes);
    build.report = std::move(campaign.report);
    return build;
}

} // namespace nb::profile
