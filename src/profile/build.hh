/**
 * @file
 * Campaign-backed MachineProfile builder.
 *
 * Mirrors the plan/decode pattern of the §V instruction tables
 * (uops/table.hh) for the §VI memory-system case studies:
 *
 *  1. planMachineProfile() lays out EVERY experiment as plain
 *     BenchmarkSpecs against a private planning machine: per cache
 *     level a set-count hypothesis sweep, a line-size stride sweep,
 *     the fill-and-probe associativity ladder, a pointer-chase
 *     latency ring, and the random-sequence policy-inference
 *     benchmarks; the TLB capacity sweep and penalty chases; and, on
 *     CPUs that advertise an adaptive L3, the self-contained
 *     set-dueling probes.
 *
 *  2. The specs run through ONE Engine::runCampaign() call. Because
 *     they address absolute (R14-area) memory and assume a
 *     just-booted machine, the campaign runs with machineSetup (which
 *     reproduces the planning machine's reservation and prefetcher
 *     state on every worker) and -- by default -- freshMachinePerSpec,
 *     which makes the outcome of every spec a pure function of the
 *     spec: -jobs N profiles are bit-identical to -jobs 1.
 *
 *  3. decodeMachineProfile() folds the outcomes back, in plan order.
 *     Per-spec failures degrade to errored sections instead of
 *     aborting the profile.
 */

#ifndef NB_PROFILE_BUILD_HH
#define NB_PROFILE_BUILD_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cachetools/cacheseq.hh"
#include "cachetools/dueling_scan.hh"
#include "cachetools/infer.hh"
#include "cachetools/tlbtool.hh"
#include "core/campaign.hh"
#include "profile/profile.hh"

namespace nb::profile
{

/** Options for planMachineProfile() / buildMachineProfile(). */
struct ProfileOptions
{
    /** Machine selection (uarch, mode, seed). Cache and TLB
     *  experiments need kernel mode; in user mode every section of
     *  the profile reports an error instead of measuring. */
    SessionOptions session;
    /** Campaign worker threads (0 = one per hardware thread). */
    unsigned jobs = 1;
    /** Share outcomes of identical specs. */
    bool dedup = true;
    /**
     * Run every spec on a freshly constructed machine (see
     * CampaignOptions::freshMachinePerSpec). Default ON: profile
     * experiments assume just-booted machine state (PSEL midpoint,
     * cold RNG), and this is what makes -jobs N output bit-identical.
     * Turning it off is only safe on a fresh Engine.
     */
    bool freshMachinePerSpec = true;
    /** Campaign progress callback (settled specs / total specs). */
    std::function<void(std::size_t done, std::size_t total)> progress;
    /** Span tracer forwarded to the campaign (not owned; may be
     *  null). See CampaignOptions::trace. */
    obs::Tracer *trace = nullptr;
    /** Attach per-worker execution observers (never perturbs
     *  outcomes). See CampaignOptions::observe. */
    bool observe = false;

    // ---- experiment sizing (defaults balance coverage vs runtime) --
    /** Probe associativities 1..maxAssoc per level. */
    unsigned maxAssoc = 24;
    /** Random sequences per level for policy inference (§VI-C1). */
    unsigned policySequences = 48;
    /** Upper bound of the TLB capacity search, in pages; 0 disables
     *  the TLB section. */
    unsigned tlbMaxPages = 4096;
    /** Scan for set-dueling leader ranges when the uarch advertises
     *  an L3 duel (§VI-C3). */
    bool duelingScan = true;
    /** Planned-scan parameters (band, stride, in-spec training). */
    cachetools::DuelingPlanOptions dueling;
};

/**
 * Everything the campaign needs to rebuild a planning-equivalent
 * machine and fold outcomes back into a profile. The planned specs
 * live once, in the flattened list; the sub-plans keep only their
 * decode metadata.
 */
struct ProfilePlan
{
    /** Experiments of one cache level, as ranges into specs. */
    struct LevelPlan
    {
        cachetools::CacheLevel level = cachetools::CacheLevel::L1;
        std::string name;
        /** Configured slices (1 unless the level is the sliced L3). */
        unsigned slices = 1;

        /** Set-count hypotheses (ring thrashes iff hypothesis >= the
         *  true set count); specs at [setsFirst, +hypotheses). */
        std::vector<unsigned> setsHypotheses;
        std::size_t setsFirst = 0;
        /** Ring length of the hypothesis specs. */
        unsigned setsRingLines = 0;

        /** Line-size strides probed; specs at [lineFirst, +strides). */
        std::vector<unsigned> lineStrides;
        std::size_t lineFirst = 0;
        /** Bytes scanned per line-size spec. */
        unsigned lineFootprint = 0;

        /** Associativity ladder (infer.hh plan). */
        cachetools::AssocPlan assoc;
        std::size_t assocFirst = 0;

        /** Pointer-chase latency ring; one spec. */
        std::size_t latencySpec = 0;
        unsigned latencyRingLines = 0;

        /** Random-sequence policy identification (infer.hh plan). */
        cachetools::PolicyIdPlan policy;
        std::size_t policyFirst = 0;

        /** Set if planning this level failed; no specs then. */
        std::string error;
    };

    std::string uarch;
    core::Mode mode = core::Mode::Kernel;
    std::uint64_t seed = 0;

    /** R14-area size every planned address assumes (machineSetup
     *  reserves exactly this on each worker machine). */
    Addr r14Size = 0;
    /** Whether the planning machine disabled the prefetchers (workers
     *  replay it). */
    bool disablePrefetchers = false;

    std::vector<LevelPlan> levels;

    std::optional<cachetools::TlbPlan> tlb;
    std::size_t tlbFirst = 0;
    std::string tlbError;

    std::optional<cachetools::DuelingPlan> dueling;
    std::size_t duelingFirst = 0;
    std::string duelingError;
    /** Whether the uarch advertises an L3 duel at all. */
    bool duelAdvertised = false;

    /** The flattened benchmark list, in plan order (campaign input). */
    std::vector<core::BenchmarkSpec> specs;
};

/**
 * Plan the full profile. Builds a private, freshly constructed
 * planning machine (never the Engine pool, so the layout is a pure
 * function of uarch/mode/seed), reserves one R14 area sized for all
 * tools, and emits every experiment. Section-level planning failures
 * (unknown events, AMD prefetchers, user mode) are recorded in the
 * plan and become errored profile sections; @throws nb::FatalError
 * only for an unknown uarch.
 */
ProfilePlan planMachineProfile(const ProfileOptions &options);

/**
 * Reproduce the machine state the planned specs assume on @p runner:
 * reserve the plan's R14 area (skipped if a sufficient area exists)
 * and disable the prefetchers if the plan did. This is what
 * buildMachineProfile() passes as CampaignOptions::machineSetup.
 */
void prepareProfileMachine(core::Runner &runner,
                           const ProfilePlan &plan);

/**
 * Fold campaign outcomes (one per plan spec, in plan order) back into
 * a MachineProfile. Failed specs degrade the affected section's
 * fields and set its error instead of throwing.
 */
MachineProfile decodeMachineProfile(const ProfilePlan &plan,
                                    const std::vector<RunOutcome> &outcomes);

/** Everything buildMachineProfile() produces. */
struct ProfileBuild
{
    MachineProfile profile;
    /** The underlying campaign's execution report. */
    CampaignReport report;
};

/**
 * Plan, run through one Engine::runCampaign() call, and decode.
 * @throws nb::FatalError for an unknown uarch (before any work
 * starts); per-spec failures are folded into the profile instead.
 */
ProfileBuild buildMachineProfile(Engine &engine,
                                 const ProfileOptions &options = {});

} // namespace nb::profile

#endif // NB_PROFILE_BUILD_HH
