/**
 * @file
 * MachineProfile: one persistable, diffable artifact per (uarch, mode)
 * unifying the paper's cache/TLB case studies (§VI).
 *
 * Where the §V instruction tables record what the *core* does per
 * instruction, a machine profile records what the *memory system*
 * does: per cache level the measured geometry (sets, associativity,
 * line size, the derived capacity), the dependent-load latency, and
 * the replacement-policy verdict of the random-sequence inference
 * tool; the TLB capacities and miss penalties; and, on CPUs with an
 * adaptive L3, the detected set-dueling leader ranges (§VI-C3).
 *
 * Profiles round-trip exactly through JSON and CSV (so they can be
 * archived as golden references and post-processed externally) and
 * diff against each other -- two microarchitectures, or a fresh run
 * against a committed golden profile. The campaign-backed builder
 * lives in profile/build.hh.
 */

#ifndef NB_PROFILE_PROFILE_HH
#define NB_PROFILE_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace nb::profile
{

/** Measured characteristics of one cache level. */
struct CacheLevelProfile
{
    /** Level name: "L1", "L2", "L3". */
    std::string level;
    /** Measured number of sets (per slice for a sliced L3). */
    unsigned sets = 0;
    /** Measured associativity. */
    unsigned assoc = 0;
    /** Measured line size in bytes. */
    unsigned lineSize = 0;
    /** Slices (C-Boxes); 1 for unsliced levels. */
    unsigned slices = 1;
    /** Capacity in KiB, derived from the measured geometry. */
    double sizeKb = 0.0;
    /** Dependent-load (pointer-chase) latency in cycles. */
    double loadLatency = 0.0;
    /** Replacement policies agreeing with every measurement (§VI-C1);
     *  empty if none matched or the measurements were not
     *  deterministic. */
    std::vector<std::string> policyMatches;
    /** Policy measurements were reproducible (§VI-D). */
    bool policyDeterministic = true;
    /** Non-empty if this level's experiments failed. */
    std::string error;

    bool ok() const { return error.empty(); }

    /** The unique policy verdict, or "" if ambiguous/none. */
    std::string policy() const
    {
        return policyMatches.size() == 1 ? policyMatches.front() : "";
    }
};

/** Measured TLB characteristics (§VIII future-work tool). */
struct TlbProfile
{
    /** False if the TLB experiments were not planned (user mode). */
    bool measured = false;
    unsigned dtlbEntries = 0;
    unsigned stlbEntries = 0;
    double stlbPenalty = 0.0;
    double walkPenalty = 0.0;
    std::string error;

    bool ok() const { return error.empty(); }
};

/** One detected range of dedicated (leader) sets. */
struct LeaderRangeProfile
{
    unsigned slice = 0;
    unsigned setLo = 0;
    unsigned setHi = 0;
    /** "A" or "B": which duel policy the range is dedicated to. */
    std::string role;

    bool operator==(const LeaderRangeProfile &) const = default;
};

/** Set-dueling detection result (§VI-C3). */
struct DuelingProfile
{
    /** False if the uarch advertises no L3 duel (nothing scanned). */
    bool scanned = false;
    std::string policyA;
    std::string policyB;
    std::vector<LeaderRangeProfile> ranges;
    std::string error;

    bool ok() const { return error.empty(); }
};

/** The full memory-system characterization of one (uarch, mode). */
struct MachineProfile
{
    std::string uarch;
    /** Runner mode: "kernel" or "user" (§III-D). */
    std::string mode;
    std::vector<CacheLevelProfile> levels;
    TlbProfile tlb;
    DuelingProfile dueling;

    /** Level by name ("L1"...); nullptr if absent. */
    const CacheLevelProfile *find(const std::string &level) const;

    /** Sections (levels, TLB, dueling) with a non-empty error. */
    std::size_t errorCount() const;

    /** True when every section measured cleanly. */
    bool complete() const { return errorCount() == 0; }

    /** Human-readable report. */
    std::string format() const;

    /** Serialize to a self-contained JSON object (exact round-trip). */
    std::string toJson() const;

    /** Serialize to CSV ("section,key,value" rows, metadata in '#'
     *  header comments; exact round-trip). */
    std::string toCsv() const;

    /** Parse a profile back from toJson() output.
     *  @throws nb::FatalError on malformed input. */
    static MachineProfile fromJson(const std::string &text);

    /** Parse a profile back from toCsv() output.
     *  @throws nb::FatalError on malformed input. */
    static MachineProfile fromCsv(const std::string &text);

    /** Load a profile from a file, auto-detecting JSON vs CSV.
     *  @throws nb::FatalError on unreadable or malformed input. */
    static MachineProfile load(const std::string &path);
};

/** One difference between two profiles. */
struct ProfileDiffEntry
{
    enum class Kind : std::uint8_t
    {
        /** Section only in the second profile. */
        Added,
        /** Section only in the first profile. */
        Removed,
        /** Sets/assoc/line/slices/size moved. */
        GeometryChanged,
        /** Load latency moved beyond tolerance. */
        LatencyChanged,
        /** Policy verdict (matches or determinism) flipped. */
        PolicyChanged,
        /** TLB capacity or penalty moved. */
        TlbChanged,
        /** Dueling policies or leader ranges changed. */
        DuelingChanged,
        /** An error appeared/disappeared in a section. */
        StatusChanged,
    };

    Kind kind = Kind::Added;
    /** Where: "L1", "L2", "L3", "tlb", "dueling". */
    std::string section;
    /** Human-readable "what changed", e.g. "assoc 8 -> 4". */
    std::string detail;
};

/** The differences between two profiles. */
struct ProfileDiff
{
    std::vector<ProfileDiffEntry> entries;

    bool empty() const { return entries.empty(); }

    /** One line per entry ("L2: assoc 8 -> 4"). */
    std::string format() const;
};

/**
 * Compare two profiles section by section (levels matched by name, so
 * profiles of different shapes diff cleanly). Cycle-valued fields
 * count as changed when they differ by more than @p tolerance cycles;
 * integer geometry always compares exactly.
 */
ProfileDiff diffProfiles(const MachineProfile &before,
                         const MachineProfile &after,
                         double tolerance = 0.5);

} // namespace nb::profile

#endif // NB_PROFILE_PROFILE_HH
