/**
 * @file
 * MachineProfile implementation: formatting, exact JSON/CSV
 * round-trip, and profile diffing.
 */

#include "profile.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <tuple>

#include "common/logging.hh"
#include "common/strings.hh"
#include "core/json.hh"
#include "core/result.hh"

namespace nb::profile
{

using core::csvEscape;
using core::csvUnescape;
using core::exactDouble;
using core::JsonCursor;
using core::jsonEscape;
using core::splitCsvRecord;

// ------------------------------------------------------------ profile --

const CacheLevelProfile *
MachineProfile::find(const std::string &level) const
{
    for (const auto &l : levels) {
        if (l.level == level)
            return &l;
    }
    return nullptr;
}

std::size_t
MachineProfile::errorCount() const
{
    std::size_t count = 0;
    for (const auto &l : levels)
        count += l.ok() ? 0 : 1;
    count += tlb.ok() ? 0 : 1;
    count += dueling.ok() ? 0 : 1;
    return count;
}

namespace
{

std::string
joinPolicies(const std::vector<std::string> &policies)
{
    std::string out;
    for (const auto &p : policies) {
        if (!out.empty())
            out += " ";
        out += p;
    }
    return out;
}

std::string
fixed2(double v)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << v;
    return os.str();
}

std::string
policyVerdict(const CacheLevelProfile &level)
{
    if (!level.policyDeterministic)
        return "non-deterministic (age graphs needed, §VI-D)";
    if (level.policyMatches.empty())
        return "no candidate matches";
    if (level.policyMatches.size() == 1)
        return level.policyMatches.front();
    return joinPolicies(level.policyMatches) + " (ambiguous)";
}

} // namespace

std::string
MachineProfile::format() const
{
    std::ostringstream os;
    os << "Machine profile: " << uarch << ", " << mode << " mode\n";
    for (const auto &l : levels) {
        os << "  " << l.level << ": ";
        if (!l.ok()) {
            os << "ERROR: " << l.error << "\n";
            continue;
        }
        os << l.sizeKb << " KiB (" << l.sets << " sets x " << l.assoc
           << " ways x " << l.lineSize << " B";
        if (l.slices > 1)
            os << " x " << l.slices << " slices";
        os << "), latency " << fixed2(l.loadLatency) << " cycles, policy "
           << policyVerdict(l) << "\n";
    }
    os << "  TLB: ";
    if (!tlb.measured) {
        os << "not measured\n";
    } else if (!tlb.ok()) {
        os << "ERROR: " << tlb.error << "\n";
    } else {
        os << tlb.dtlbEntries << " DTLB / " << tlb.stlbEntries
           << " STLB entries, penalties " << fixed2(tlb.stlbPenalty)
           << " / " << fixed2(tlb.walkPenalty) << " cycles\n";
    }
    os << "  Set dueling: ";
    if (!dueling.scanned) {
        os << "no duel advertised\n";
    } else if (!dueling.ok()) {
        os << "ERROR: " << dueling.error << "\n";
    } else {
        os << dueling.policyA << " vs " << dueling.policyB << "\n";
        for (const auto &r : dueling.ranges) {
            os << "    slice " << r.slice << ": sets " << r.setLo << "-"
               << r.setHi << " fixed-" << r.role << "\n";
        }
        if (dueling.ranges.empty())
            os << "    no dedicated sets found\n";
    }
    return os.str();
}

// --------------------------------------------------------------- JSON --

std::string
MachineProfile::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"uarch\": \"" << jsonEscape(uarch) << "\",\n";
    os << "  \"mode\": \"" << jsonEscape(mode) << "\",\n";
    os << "  \"levels\": [";
    for (std::size_t i = 0; i < levels.size(); ++i) {
        const CacheLevelProfile &l = levels[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"level\": \"" << jsonEscape(l.level) << "\""
           << ", \"sets\": " << l.sets << ", \"assoc\": " << l.assoc
           << ", \"line\": " << l.lineSize
           << ", \"slices\": " << l.slices
           << ", \"size_kb\": " << exactDouble(l.sizeKb)
           << ", \"latency\": " << exactDouble(l.loadLatency)
           << ", \"deterministic\": " << (l.policyDeterministic ? 1 : 0)
           << ", \"policies\": \""
           << jsonEscape(joinPolicies(l.policyMatches)) << "\"";
        if (!l.error.empty())
            os << ", \"error\": \"" << jsonEscape(l.error) << "\"";
        os << "}";
    }
    os << (levels.empty() ? "],\n" : "\n  ],\n");
    os << "  \"tlb\": {\"measured\": " << (tlb.measured ? 1 : 0)
       << ", \"dtlb_entries\": " << tlb.dtlbEntries
       << ", \"stlb_entries\": " << tlb.stlbEntries
       << ", \"stlb_penalty\": " << exactDouble(tlb.stlbPenalty)
       << ", \"walk_penalty\": " << exactDouble(tlb.walkPenalty);
    if (!tlb.error.empty())
        os << ", \"error\": \"" << jsonEscape(tlb.error) << "\"";
    os << "},\n";
    os << "  \"dueling\": {\"scanned\": " << (dueling.scanned ? 1 : 0)
       << ", \"policy_a\": \"" << jsonEscape(dueling.policyA) << "\""
       << ", \"policy_b\": \"" << jsonEscape(dueling.policyB) << "\""
       << ", \"ranges\": [";
    for (std::size_t i = 0; i < dueling.ranges.size(); ++i) {
        const LeaderRangeProfile &r = dueling.ranges[i];
        os << (i ? ", " : "") << "{\"slice\": " << r.slice
           << ", \"lo\": " << r.setLo << ", \"hi\": " << r.setHi
           << ", \"role\": \"" << jsonEscape(r.role) << "\"}";
    }
    os << "]";
    if (!dueling.error.empty())
        os << ", \"error\": \"" << jsonEscape(dueling.error) << "\"";
    os << "}\n";
    os << "}\n";
    return os.str();
}

namespace
{

std::vector<std::string>
splitPolicies(const std::string &text)
{
    return splitWhitespace(text);
}

CacheLevelProfile
parseJsonLevel(JsonCursor &cur)
{
    CacheLevelProfile level;
    cur.expect('{');
    do {
        std::string key = cur.parseString();
        cur.expect(':');
        if (key == "level")
            level.level = cur.parseString();
        else if (key == "sets")
            level.sets = static_cast<unsigned>(cur.parseNumber());
        else if (key == "assoc")
            level.assoc = static_cast<unsigned>(cur.parseNumber());
        else if (key == "line")
            level.lineSize = static_cast<unsigned>(cur.parseNumber());
        else if (key == "slices")
            level.slices = static_cast<unsigned>(cur.parseNumber());
        else if (key == "size_kb")
            level.sizeKb = cur.parseNumber();
        else if (key == "latency")
            level.loadLatency = cur.parseNumber();
        else if (key == "deterministic")
            level.policyDeterministic = cur.parseNumber() != 0.0;
        else if (key == "policies")
            level.policyMatches = splitPolicies(cur.parseString());
        else if (key == "error")
            level.error = cur.parseString();
        else
            cur.skipValue();
    } while (cur.tryConsume(','));
    cur.expect('}');
    return level;
}

TlbProfile
parseJsonTlb(JsonCursor &cur)
{
    TlbProfile tlb;
    cur.expect('{');
    do {
        std::string key = cur.parseString();
        cur.expect(':');
        if (key == "measured")
            tlb.measured = cur.parseNumber() != 0.0;
        else if (key == "dtlb_entries")
            tlb.dtlbEntries = static_cast<unsigned>(cur.parseNumber());
        else if (key == "stlb_entries")
            tlb.stlbEntries = static_cast<unsigned>(cur.parseNumber());
        else if (key == "stlb_penalty")
            tlb.stlbPenalty = cur.parseNumber();
        else if (key == "walk_penalty")
            tlb.walkPenalty = cur.parseNumber();
        else if (key == "error")
            tlb.error = cur.parseString();
        else
            cur.skipValue();
    } while (cur.tryConsume(','));
    cur.expect('}');
    return tlb;
}

DuelingProfile
parseJsonDueling(JsonCursor &cur)
{
    DuelingProfile duel;
    cur.expect('{');
    do {
        std::string key = cur.parseString();
        cur.expect(':');
        if (key == "scanned") {
            duel.scanned = cur.parseNumber() != 0.0;
        } else if (key == "policy_a") {
            duel.policyA = cur.parseString();
        } else if (key == "policy_b") {
            duel.policyB = cur.parseString();
        } else if (key == "error") {
            duel.error = cur.parseString();
        } else if (key == "ranges") {
            cur.expect('[');
            if (!cur.tryConsume(']')) {
                do {
                    LeaderRangeProfile range;
                    cur.expect('{');
                    do {
                        std::string rkey = cur.parseString();
                        cur.expect(':');
                        if (rkey == "slice")
                            range.slice = static_cast<unsigned>(
                                cur.parseNumber());
                        else if (rkey == "lo")
                            range.setLo = static_cast<unsigned>(
                                cur.parseNumber());
                        else if (rkey == "hi")
                            range.setHi = static_cast<unsigned>(
                                cur.parseNumber());
                        else if (rkey == "role")
                            range.role = cur.parseString();
                        else
                            cur.skipValue();
                    } while (cur.tryConsume(','));
                    cur.expect('}');
                    duel.ranges.push_back(std::move(range));
                } while (cur.tryConsume(','));
                cur.expect(']');
            }
        } else {
            cur.skipValue();
        }
    } while (cur.tryConsume(','));
    cur.expect('}');
    return duel;
}

} // namespace

MachineProfile
MachineProfile::fromJson(const std::string &text)
{
    MachineProfile profile;
    JsonCursor cur(text);
    cur.expect('{');
    if (!cur.tryConsume('}')) {
        do {
            std::string key = cur.parseString();
            cur.expect(':');
            if (key == "uarch") {
                profile.uarch = cur.parseString();
            } else if (key == "mode") {
                profile.mode = cur.parseString();
            } else if (key == "levels") {
                cur.expect('[');
                if (!cur.tryConsume(']')) {
                    do {
                        profile.levels.push_back(parseJsonLevel(cur));
                    } while (cur.tryConsume(','));
                    cur.expect(']');
                }
            } else if (key == "tlb") {
                profile.tlb = parseJsonTlb(cur);
            } else if (key == "dueling") {
                profile.dueling = parseJsonDueling(cur);
            } else {
                cur.skipValue();
            }
        } while (cur.tryConsume(','));
        cur.expect('}');
    }
    cur.expectEnd();
    return profile;
}

// ---------------------------------------------------------------- CSV --

std::string
MachineProfile::toCsv() const
{
    std::ostringstream os;
    os << "# machine profile\n";
    os << "# uarch: " << uarch << "\n";
    os << "# mode: " << mode << "\n";
    os << "section,key,value\n";
    auto row = [&](const std::string &section, const char *key,
                   const std::string &value) {
        os << csvEscape(section) << "," << key << "," << csvEscape(value)
           << "\n";
    };
    for (const auto &l : levels) {
        row(l.level, "sets", std::to_string(l.sets));
        row(l.level, "assoc", std::to_string(l.assoc));
        row(l.level, "line", std::to_string(l.lineSize));
        row(l.level, "slices", std::to_string(l.slices));
        row(l.level, "size_kb", exactDouble(l.sizeKb));
        row(l.level, "latency", exactDouble(l.loadLatency));
        row(l.level, "deterministic",
            l.policyDeterministic ? "1" : "0");
        row(l.level, "policies", joinPolicies(l.policyMatches));
        if (!l.error.empty())
            row(l.level, "error", l.error);
    }
    row("tlb", "measured", tlb.measured ? "1" : "0");
    row("tlb", "dtlb_entries", std::to_string(tlb.dtlbEntries));
    row("tlb", "stlb_entries", std::to_string(tlb.stlbEntries));
    row("tlb", "stlb_penalty", exactDouble(tlb.stlbPenalty));
    row("tlb", "walk_penalty", exactDouble(tlb.walkPenalty));
    if (!tlb.error.empty())
        row("tlb", "error", tlb.error);
    row("dueling", "scanned", dueling.scanned ? "1" : "0");
    row("dueling", "policy_a", dueling.policyA);
    row("dueling", "policy_b", dueling.policyB);
    for (const auto &r : dueling.ranges) {
        row("dueling", "range",
            std::to_string(r.slice) + " " + std::to_string(r.setLo) +
                " " + std::to_string(r.setHi) + " " + r.role);
    }
    if (!dueling.error.empty())
        row("dueling", "error", dueling.error);
    return os.str();
}

MachineProfile
MachineProfile::fromCsv(const std::string &text)
{
    MachineProfile profile;
    bool seen_header = false;
    std::size_t line_no = 0;
    auto parse_count = [&](const std::string &v) {
        auto parsed = parseInt(v);
        if (!parsed || *parsed < 0)
            fatal("CSV profile line ", line_no, ": bad count '", v, "'");
        return static_cast<unsigned>(*parsed);
    };
    auto parse_double = [&](const std::string &v) {
        try {
            return std::stod(v);
        } catch (const std::exception &) {
            fatal("CSV profile line ", line_no, ": bad number '", v,
                  "'");
        }
    };
    for (const auto &raw_line : split(text, '\n')) {
        ++line_no;
        std::string line = trim(raw_line);
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::string meta = trim(line.substr(1));
            auto colon = meta.find(':');
            if (colon == std::string::npos)
                continue;
            std::string key = trim(meta.substr(0, colon));
            std::string value = trim(meta.substr(colon + 1));
            if (key == "uarch")
                profile.uarch = value;
            else if (key == "mode")
                profile.mode = value;
            continue;
        }
        if (!seen_header) {
            seen_header = true;
            continue;
        }
        auto fields = splitCsvRecord(raw_line);
        if (fields.size() != 3) {
            fatal("CSV profile line ", line_no,
                  ": expected 3 fields, got ", fields.size());
        }
        std::string section = csvUnescape(fields[0]);
        std::string key = csvUnescape(fields[1]);
        std::string value = csvUnescape(fields[2]);
        if (section == "tlb") {
            if (key == "measured")
                profile.tlb.measured = value == "1";
            else if (key == "dtlb_entries")
                profile.tlb.dtlbEntries = parse_count(value);
            else if (key == "stlb_entries")
                profile.tlb.stlbEntries = parse_count(value);
            else if (key == "stlb_penalty")
                profile.tlb.stlbPenalty = parse_double(value);
            else if (key == "walk_penalty")
                profile.tlb.walkPenalty = parse_double(value);
            else if (key == "error")
                profile.tlb.error = value;
            continue;
        }
        if (section == "dueling") {
            if (key == "scanned") {
                profile.dueling.scanned = value == "1";
            } else if (key == "policy_a") {
                profile.dueling.policyA = value;
            } else if (key == "policy_b") {
                profile.dueling.policyB = value;
            } else if (key == "error") {
                profile.dueling.error = value;
            } else if (key == "range") {
                auto parts = splitWhitespace(value);
                if (parts.size() != 4)
                    fatal("CSV profile line ", line_no,
                          ": malformed range '", value, "'");
                LeaderRangeProfile range;
                range.slice = parse_count(parts[0]);
                range.setLo = parse_count(parts[1]);
                range.setHi = parse_count(parts[2]);
                range.role = parts[3];
                profile.dueling.ranges.push_back(std::move(range));
            }
            continue;
        }
        // Anything else is a cache level, created on first mention.
        CacheLevelProfile *level = nullptr;
        for (auto &l : profile.levels) {
            if (l.level == section)
                level = &l;
        }
        if (!level) {
            CacheLevelProfile fresh;
            fresh.level = section;
            profile.levels.push_back(std::move(fresh));
            level = &profile.levels.back();
        }
        if (key == "sets")
            level->sets = parse_count(value);
        else if (key == "assoc")
            level->assoc = parse_count(value);
        else if (key == "line")
            level->lineSize = parse_count(value);
        else if (key == "slices")
            level->slices = parse_count(value);
        else if (key == "size_kb")
            level->sizeKb = parse_double(value);
        else if (key == "latency")
            level->loadLatency = parse_double(value);
        else if (key == "deterministic")
            level->policyDeterministic = value == "1";
        else if (key == "policies")
            level->policyMatches = splitPolicies(value);
        else if (key == "error")
            level->error = value;
    }
    return profile;
}

MachineProfile
MachineProfile::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open profile file '", path, "'");
    std::string text{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
    // JSON profiles start with '{'; everything else parses as CSV.
    auto start = text.find_first_not_of(" \t\r\n");
    if (start != std::string::npos && text[start] == '{')
        return fromJson(text);
    return fromCsv(text);
}

// --------------------------------------------------------------- diff --

std::string
ProfileDiff::format() const
{
    std::ostringstream os;
    for (const auto &entry : entries)
        os << entry.section << ": " << entry.detail << "\n";
    return os.str();
}

namespace
{

void
diffLevel(ProfileDiff &diff, const CacheLevelProfile &a,
          const CacheLevelProfile &b, double tolerance)
{
    using Kind = ProfileDiffEntry::Kind;
    auto add = [&](Kind kind, const std::string &detail) {
        diff.entries.push_back({kind, a.level, detail});
    };
    // Status first: a level that did not measure on one side would
    // otherwise report meaningless numeric changes.
    if (a.ok() != b.ok()) {
        add(Kind::StatusChanged, std::string(a.ok() ? "measured"
                                                    : "error") +
                                     " -> " +
                                     (b.ok() ? "measured" : "error"));
        return;
    }
    if (!a.ok())
        return;
    auto geometry = [&](const char *what, unsigned va, unsigned vb) {
        if (va != vb) {
            add(Kind::GeometryChanged,
                std::string(what) + " " + std::to_string(va) + " -> " +
                    std::to_string(vb));
        }
    };
    geometry("sets", a.sets, b.sets);
    geometry("assoc", a.assoc, b.assoc);
    geometry("line", a.lineSize, b.lineSize);
    geometry("slices", a.slices, b.slices);
    if (a.sizeKb != b.sizeKb) {
        add(Kind::GeometryChanged, "size " + exactDouble(a.sizeKb) +
                                       " KiB -> " +
                                       exactDouble(b.sizeKb) + " KiB");
    }
    if (std::abs(a.loadLatency - b.loadLatency) > tolerance) {
        add(Kind::LatencyChanged, "latency " + fixed2(a.loadLatency) +
                                      " -> " + fixed2(b.loadLatency));
    }
    if (a.policyDeterministic != b.policyDeterministic ||
        a.policyMatches != b.policyMatches) {
        add(Kind::PolicyChanged,
            "policy " + policyVerdict(a) + " -> " + policyVerdict(b));
    }
}

} // namespace

ProfileDiff
diffProfiles(const MachineProfile &before, const MachineProfile &after,
             double tolerance)
{
    using Kind = ProfileDiffEntry::Kind;
    ProfileDiff diff;

    for (const auto &a : before.levels) {
        const CacheLevelProfile *b = after.find(a.level);
        if (!b) {
            diff.entries.push_back(
                {Kind::Removed, a.level,
                 "only in " + before.uarch + "/" + before.mode +
                     " profile"});
            continue;
        }
        diffLevel(diff, a, *b, tolerance);
    }
    for (const auto &b : after.levels) {
        if (!before.find(b.level)) {
            diff.entries.push_back({Kind::Added, b.level,
                                    "only in " + after.uarch + "/" +
                                        after.mode + " profile"});
        }
    }

    // TLB.
    const TlbProfile &ta = before.tlb;
    const TlbProfile &tb = after.tlb;
    if (ta.measured != tb.measured || ta.ok() != tb.ok()) {
        auto state = [](const TlbProfile &t) {
            return !t.measured ? std::string("unmeasured")
                               : (t.ok() ? "measured" : "error");
        };
        diff.entries.push_back(
            {Kind::StatusChanged, "tlb", state(ta) + " -> " + state(tb)});
    } else if (ta.measured && ta.ok()) {
        auto tlb_field = [&](const char *what, double va, double vb,
                             bool exact) {
            bool moved = exact ? va != vb
                               : std::abs(va - vb) > tolerance;
            if (moved) {
                diff.entries.push_back(
                    {Kind::TlbChanged, "tlb",
                     std::string(what) + " " + exactDouble(va) + " -> " +
                         exactDouble(vb)});
            }
        };
        tlb_field("dtlb_entries", ta.dtlbEntries, tb.dtlbEntries, true);
        tlb_field("stlb_entries", ta.stlbEntries, tb.stlbEntries, true);
        tlb_field("stlb_penalty", ta.stlbPenalty, tb.stlbPenalty,
                  false);
        tlb_field("walk_penalty", ta.walkPenalty, tb.walkPenalty,
                  false);
    }

    // Dueling.
    const DuelingProfile &da = before.dueling;
    const DuelingProfile &db = after.dueling;
    if (da.scanned != db.scanned || da.ok() != db.ok()) {
        auto state = [](const DuelingProfile &d) {
            return !d.scanned ? std::string("unscanned")
                              : (d.ok() ? "scanned" : "error");
        };
        diff.entries.push_back(
            {Kind::StatusChanged, "dueling",
             state(da) + " -> " + state(db)});
    } else if (da.scanned && da.ok()) {
        if (da.policyA != db.policyA || da.policyB != db.policyB) {
            diff.entries.push_back(
                {Kind::DuelingChanged, "dueling",
                 "duel " + da.policyA + "/" + da.policyB + " -> " +
                     db.policyA + "/" + db.policyB});
        }
        auto sorted = [](std::vector<LeaderRangeProfile> ranges) {
            std::sort(ranges.begin(), ranges.end(),
                      [](const LeaderRangeProfile &x,
                         const LeaderRangeProfile &y) {
                          return std::tie(x.slice, x.setLo, x.setHi,
                                          x.role) <
                                 std::tie(y.slice, y.setLo, y.setHi,
                                          y.role);
                      });
            return ranges;
        };
        auto ra = sorted(da.ranges);
        auto rb = sorted(db.ranges);
        if (ra != rb) {
            auto render = [](const std::vector<LeaderRangeProfile> &rs) {
                std::string out;
                for (const auto &r : rs) {
                    if (!out.empty())
                        out += " ";
                    out += std::to_string(r.slice) + ":" +
                           std::to_string(r.setLo) + "-" +
                           std::to_string(r.setHi) + ":" + r.role;
                }
                return out.empty() ? std::string("none") : out;
            };
            diff.entries.push_back({Kind::DuelingChanged, "dueling",
                                    "ranges " + render(ra) + " -> " +
                                        render(rb)});
        }
    }
    return diff;
}

} // namespace nb::profile
