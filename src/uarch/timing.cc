/**
 * @file
 * Timing tables. Values are modelled on published measurements
 * (uops.info, Agner Fog's tables) but simplified; the reproduction
 * criterion is that the *measurement tool* recovers exactly these values.
 */

#include "timing.hh"

#include "common/logging.hh"

namespace nb::uarch
{

using x86::Instruction;
using x86::Opcode;
using x86::OperandKind;

namespace
{

constexpr PortMask
mask(std::initializer_list<unsigned> ports)
{
    PortMask m = 0;
    for (unsigned p : ports)
        m |= static_cast<PortMask>(1u << p);
    return m;
}

/** Family-specific port groups. */
struct PortGroups
{
    PortMask alu;       ///< simple integer ALU
    PortMask shift;     ///< shifts/rotates/flag-heavy ops
    PortMask mul;       ///< integer multiply
    PortMask div;       ///< divider
    PortMask lea;       ///< fast LEA
    PortMask slowLea;   ///< 3-component LEA
    PortMask vecAlu;    ///< vector integer/FP add
    PortMask vecMul;    ///< vector multiply / FMA
    PortMask vecDiv;    ///< vector divide
    PortMask branch;    ///< branch unit(s)
    PortMask bitScan;   ///< POPCNT/LZCNT/BSF...
};

PortGroups
portGroups(PortFamily family)
{
    switch (family) {
      case PortFamily::Nehalem:
      case PortFamily::SandyBridge:
        return {
            .alu = mask({0, 1, 5}),
            .shift = mask({0, 5}),
            .mul = mask({1}),
            .div = mask({0}),
            .lea = mask({1, 5}),
            .slowLea = mask({1}),
            .vecAlu = mask({1, 5}),
            .vecMul = mask({0}),
            .vecDiv = mask({0}),
            .branch = mask({5}),
            .bitScan = mask({1}),
        };
      case PortFamily::Haswell:
        return {
            .alu = mask({0, 1, 5, 6}),
            .shift = mask({0, 6}),
            .mul = mask({1}),
            .div = mask({0}),
            .lea = mask({1, 5}),
            .slowLea = mask({1}),
            .vecAlu = mask({1, 5}),
            .vecMul = mask({0, 1}),
            .vecDiv = mask({0}),
            .branch = mask({0, 6}),
            .bitScan = mask({1}),
        };
      case PortFamily::Skylake:
        return {
            .alu = mask({0, 1, 5, 6}),
            .shift = mask({0, 6}),
            .mul = mask({1}),
            .div = mask({0}),
            .lea = mask({1, 5}),
            .slowLea = mask({1}),
            .vecAlu = mask({0, 1}),
            .vecMul = mask({0, 1}),
            .vecDiv = mask({0}),
            .branch = mask({0, 6}),
            .bitScan = mask({1}),
        };
      case PortFamily::Zen:
        return {
            .alu = mask({0, 1, 2, 3}),
            .shift = mask({1, 2}),
            .mul = mask({1}),
            .div = mask({2}),
            .lea = mask({0, 1, 2, 3}),
            .slowLea = mask({0, 1}),
            .vecAlu = mask({6, 7, 8}),
            .vecMul = mask({6, 7}),
            .vecDiv = mask({9}),
            .branch = mask({0, 3}),
            .bitScan = mask({0, 1, 2, 3}),
        };
    }
    panic("unreachable port family");
}

bool
isSkylakePlus(PortFamily family)
{
    return family == PortFamily::Skylake;
}

bool
hasAvx(PortFamily family)
{
    return family != PortFamily::Nehalem;
}

bool
hasFma(PortFamily family)
{
    return family == PortFamily::Haswell ||
           family == PortFamily::Skylake || family == PortFamily::Zen;
}

} // namespace

PortLayout
portLayout(PortFamily family)
{
    switch (family) {
      case PortFamily::Nehalem:
        // One load port (2), store address on 3, store data on 4.
        return {6, mask({2}), mask({3}), mask({4}), mask({5})};
      case PortFamily::SandyBridge:
        // Two combined load/store-address ports.
        return {6, mask({2, 3}), mask({2, 3}), mask({4}), mask({5})};
      case PortFamily::Haswell:
        return {8, mask({2, 3}), mask({2, 3, 7}), mask({4}),
                mask({0, 6})};
      case PortFamily::Skylake:
        return {8, mask({2, 3}), mask({2, 3, 7}), mask({4}),
                mask({0, 6})};
      case PortFamily::Zen:
        return {10, mask({4, 5}), mask({4, 5}), mask({4, 5}),
                mask({0, 3})};
    }
    panic("unreachable port family");
}

bool
supportsOpcode(PortFamily family, Opcode op)
{
    switch (op) {
      case Opcode::VADDPS:
      case Opcode::VMULPS:
        return hasAvx(family);
      case Opcode::VFMADD231PS:
        return hasFma(family);
      default:
        return true;
    }
}

CoreTiming
coreTiming(PortFamily family, const Instruction &insn)
{
    const PortGroups g = portGroups(family);
    const bool skl = isSkylakePlus(family);

    auto single = [](unsigned lat, PortMask ports, unsigned block = 0) {
        return CoreTiming{lat, {ports}, block};
    };

    switch (insn.opcode) {
      case Opcode::MOV:
      case Opcode::MOVZX:
      case Opcode::MOVSX:
        // Pure loads/stores get their µops from the memory decomposition;
        // the core part is only needed for reg/imm forms.
        if (insn.memOperand())
            return CoreTiming{0, {}, 0};
        return single(1, g.alu);
      case Opcode::MOVNTI:
        return CoreTiming{0, {}, 0};
      case Opcode::LEA: {
        const auto *m = insn.memOperand();
        bool slow = m && m->mem.base != x86::Reg::Invalid &&
                    m->mem.index != x86::Reg::Invalid && m->mem.disp != 0;
        if (slow)
            return single(3, g.slowLea);
        return single(1, g.lea);
      }
      case Opcode::XCHG:
        return CoreTiming{2, {g.alu, g.alu, g.alu}, 0};
      case Opcode::PUSH:
      case Opcode::POP:
        // RSP update; memory µops are appended by the decoder.
        return single(1, g.alu);
      case Opcode::BSWAP:
        return CoreTiming{2, {g.shift, g.shift}, 0};
      case Opcode::CMOVZ:
      case Opcode::CMOVNZ:
      case Opcode::CMOVC:
      case Opcode::CMOVNC:
        if (skl)
            return single(1, g.shift);
        return CoreTiming{2, {g.alu, g.alu}, 0};
      case Opcode::ADD:
      case Opcode::SUB:
      case Opcode::AND:
      case Opcode::OR:
      case Opcode::XOR:
      case Opcode::CMP:
      case Opcode::TEST:
      case Opcode::INC:
      case Opcode::DEC:
      case Opcode::NEG:
      case Opcode::NOT:
        return single(1, g.alu);
      case Opcode::ADC:
      case Opcode::SBB:
        if (family == PortFamily::Nehalem)
            return CoreTiming{2, {g.alu, g.alu}, 0};
        return single(skl ? 1 : 2, g.shift);
      case Opcode::IMUL:
        return single(3, g.mul);
      case Opcode::MUL:
        // Widening multiply: extra µop merges the high half.
        return CoreTiming{3, {g.mul, g.alu}, 0};
      case Opcode::DIV:
      case Opcode::IDIV: {
        bool w64 = insn.operands.empty() ||
                   insn.operands[0].widthBits == 64;
        unsigned lat = w64 ? 36 : 26;
        unsigned block = w64 ? 24 : 10;
        if (family == PortFamily::Zen) {
            lat = w64 ? 41 : 25;
            block = w64 ? 14 : 6;
        }
        return single(lat, g.div, block);
      }
      case Opcode::SHL:
      case Opcode::SHR:
      case Opcode::SAR:
        return single(1, g.shift);
      case Opcode::ROL:
      case Opcode::ROR:
        return single(1, g.shift);
      case Opcode::POPCNT:
      case Opcode::LZCNT:
      case Opcode::TZCNT:
        return single(family == PortFamily::Zen ? 1 : 3, g.bitScan);
      case Opcode::BSF:
      case Opcode::BSR:
        return single(3, g.bitScan);
      case Opcode::BT:
      case Opcode::BTS:
      case Opcode::BTR:
        return single(1, g.shift);
      case Opcode::SETZ:
      case Opcode::SETNZ:
        return single(1, g.shift);
      case Opcode::JMP:
      case Opcode::JZ:
      case Opcode::JNZ:
      case Opcode::JC:
      case Opcode::JNC:
      case Opcode::JL:
      case Opcode::JGE:
      case Opcode::JLE:
      case Opcode::JG:
        return single(1, g.branch);
      case Opcode::CALL:
      case Opcode::RET:
        return single(1, g.branch);
      case Opcode::MOVAPS:
      case Opcode::MOVUPS:
        if (insn.memOperand())
            return CoreTiming{0, {}, 0};
        return single(1, g.vecAlu);
      case Opcode::PXOR:
      case Opcode::PADDD:
        return single(1, g.vecAlu);
      case Opcode::ADDPS:
      case Opcode::ADDPD:
      case Opcode::VADDPS:
        return single(skl ? 4 : 3, skl ? g.vecMul : g.vecAlu);
      case Opcode::MULPS:
      case Opcode::MULPD:
      case Opcode::VMULPS:
        return single(skl || family == PortFamily::Haswell ? 4 : 5,
                      g.vecMul);
      case Opcode::DIVPS:
        return single(11, g.vecDiv, 3);
      case Opcode::DIVPD:
        return single(14, g.vecDiv, 4);
      case Opcode::VFMADD231PS:
        return single(skl ? 4 : 5, g.vecMul);
      case Opcode::LFENCE:
      case Opcode::MFENCE:
      case Opcode::SFENCE:
        return CoreTiming{0, {}, 0};
      case Opcode::CPUID:
        // Variable portion is added by the machine (§IV-A1); this is the
        // fixed backbone.
        return CoreTiming{100, {g.alu, g.alu, g.alu, g.alu}, 0};
      case Opcode::PAUSE:
        return single(skl ? 4 : 1, g.alu);
      case Opcode::RDTSC:
        return CoreTiming{20, {g.alu, g.alu}, 0};
      case Opcode::RDPMC:
        return CoreTiming{25, {g.alu, g.alu}, 0};
      case Opcode::RDMSR:
        return CoreTiming{100, {g.alu, g.alu, g.alu}, 0};
      case Opcode::WRMSR:
        return CoreTiming{150, {g.alu, g.alu, g.alu}, 0};
      case Opcode::WBINVD:
        return CoreTiming{2000, {g.alu}, 0};
      case Opcode::CLFLUSH:
        return CoreTiming{2, {g.alu}, 0};
      case Opcode::PREFETCHT0:
      case Opcode::PREFETCHNTA:
        return CoreTiming{0, {}, 0};
      case Opcode::CLI:
      case Opcode::STI:
        return single(2, g.alu);
      case Opcode::NOP:
        // Issues but does not execute on any port.
        return CoreTiming{0, {}, 0};
      case Opcode::PFC_PAUSE:
      case Opcode::PFC_RESUME:
        return CoreTiming{0, {}, 0};
      default:
        break;
    }
    panic("no timing for opcode ",
          static_cast<unsigned>(insn.opcode));
}

} // namespace nb::uarch
