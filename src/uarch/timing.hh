/**
 * @file
 * Per-microarchitecture instruction timing: latency, µop decomposition,
 * and port assignment. This is the "ground truth" that case study I
 * (§V, uops.info-style characterization) recovers through measurements.
 */

#ifndef NB_UARCH_TIMING_HH
#define NB_UARCH_TIMING_HH

#include <cstdint>
#include <vector>

#include "x86/instruction.hh"

namespace nb::uarch
{

/** A mask of execution ports a µop may dispatch to (bit i = port i). */
using PortMask = std::uint16_t;

/** Core (non-memory) timing of one instruction form. */
struct CoreTiming
{
    /** Register-to-register latency in cycles (0 for pure stores). */
    unsigned latency = 1;
    /** Port masks, one per executed µop (may be empty, e.g. NOP). */
    std::vector<PortMask> uopPorts;
    /**
     * Extra cycles the chosen execution unit stays blocked after
     * dispatch (non-pipelined units such as dividers).
     */
    unsigned blockCycles = 0;
};

/** Execution-port family; determines the port layout and base timings. */
enum class PortFamily : std::uint8_t
{
    Nehalem,     ///< Nehalem/Westmere: 6 ports, one load port
    SandyBridge, ///< Sandy Bridge/Ivy Bridge: 6 ports, two load ports
    Haswell,     ///< Haswell/Broadwell: 8 ports
    Skylake,     ///< Skylake through Cannon Lake: 8 ports
    Zen,         ///< AMD Zen: modelled with 10 issue ports
};

/** Port-layout constants of a family. */
struct PortLayout
{
    unsigned numPorts = 8;
    PortMask loadPorts = 0;
    PortMask storeAddrPorts = 0;
    PortMask storeDataPorts = 0;
    PortMask branchPorts = 0;
};

/** The port layout of a family. */
PortLayout portLayout(PortFamily family);

/**
 * Core timing for an instruction form on a family. Handles
 * form-dependent cases (3-component LEA, width-dependent division,
 * immediate vs CL shifts, ...). Memory µops are NOT included here; the
 * machine's decoder appends load/store µops based on the operands.
 */
CoreTiming coreTiming(PortFamily family, const x86::Instruction &insn);

/** Whether the family supports an opcode (e.g. no AVX before SNB). */
bool supportsOpcode(PortFamily family, x86::Opcode op);

} // namespace nb::uarch

#endif // NB_UARCH_TIMING_HH
