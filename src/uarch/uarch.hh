/**
 * @file
 * Microarchitecture descriptors for the CPUs the paper studies
 * (Table I: ten Intel Core generations) plus AMD Zen.
 *
 * A MicroArch combines the execution-port family, the PMU shape (number
 * of programmable counters, availability of fixed counters and uncore
 * counters), the cache hierarchy (geometry + replacement policies as
 * reported in Table I), and a few modelling parameters (reference-clock
 * ratio, interrupt period for user-mode noise).
 */

#ifndef NB_UARCH_UARCH_HH
#define NB_UARCH_UARCH_HH

#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "uarch/timing.hh"

namespace nb::uarch
{

/** CPU vendor; determines PMU details (§II). */
enum class Vendor : std::uint8_t
{
    Intel,
    Amd,
};

/** Descriptor of one modelled CPU. */
struct MicroArch
{
    std::string name;    ///< e.g. "Skylake"
    std::string cpu;     ///< e.g. "Core i7-6500U"
    Vendor vendor = Vendor::Intel;
    PortFamily family = PortFamily::Skylake;

    /** Number of programmable performance counters (§II-A2). */
    unsigned numProgCounters = 4;
    /** Intel fixed-function counters readable with RDPMC (§II-A1). */
    bool hasFixedCounters = true;
    /** APERF/MPERF available (Intel + AMD 17h; RDMSR only). */
    bool hasAperfMperf = true;
    /** Uncore/C-Box counters (Intel L3; kernel-space only, §II-B). */
    bool hasUncoreCounters = true;

    /** Issue (rename) width in µops per cycle. */
    unsigned issueWidth = 4;
    /** Retire width in µops per cycle. */
    unsigned retireWidth = 4;
    /** Scheduler window size (µops in flight). */
    unsigned windowSize = 96;

    /** Ratio of reference-clock to core-clock frequency. */
    double refClockRatio = 0.88;

    /** Mean period of timer interrupts in cycles (user mode only). */
    std::uint64_t interruptPeriodCycles = 2'000'000;

    cache::HierarchyConfig cacheConfig;

    PortLayout ports() const { return portLayout(family); }
};

/** Look up a microarchitecture by name ("Skylake", "IvyBridge", ...).
 *  @throws nb::FatalError for unknown names. */
const MicroArch &getMicroArch(const std::string &name);

/** All modelled microarchitecture names, in Table I order (+ Zen). */
std::vector<std::string> allMicroArchNames();

/** The ten Intel CPUs of Table I, in table order. */
std::vector<std::string> tableOneMicroArchNames();

} // namespace nb::uarch

#endif // NB_UARCH_UARCH_HH
