/**
 * @file
 * The microarchitecture registry. Cache policies follow Table I of the
 * paper; adaptive (set-dueling) L3 configurations follow §VI-D.
 */

#include "uarch.hh"

#include <map>

#include "common/logging.hh"

namespace nb::uarch
{

namespace
{

using cache::DuelingConfig;
using cache::DuelRole;
using cache::LeaderRange;

constexpr Addr kKB = 1024;
constexpr Addr kMB = 1024 * 1024;

/** Standard L1: 32 kB, 8-way, PLRU on every CPU in Table I. */
cache::LevelConfig
l1Plru()
{
    return {32 * kKB, 8, "PLRU"};
}

/** The IvB/HSW/BDW leader-set layout (§VI-D): sets 512-575 use policy A,
 *  sets 768-831 use policy B. */
std::vector<LeaderRange>
leaderSets(int slice_a, int slice_b)
{
    return {
        {slice_a, 512, 575, DuelRole::LeaderA},
        {slice_b, 768, 831, DuelRole::LeaderB},
    };
}

MicroArch
makeIntelBase()
{
    MicroArch m;
    m.vendor = Vendor::Intel;
    m.numProgCounters = 4;
    m.hasFixedCounters = true;
    m.hasAperfMperf = true;
    m.hasUncoreCounters = true;
    m.cacheConfig.l1 = l1Plru();
    m.cacheConfig.l1Latency = 4;
    m.cacheConfig.l2Latency = 12;
    m.cacheConfig.memLatency = 200;
    return m;
}

std::map<std::string, MicroArch>
buildRegistry()
{
    std::map<std::string, MicroArch> reg;

    // ---- Nehalem: Core i5-750 -------------------------------------
    {
        MicroArch m = makeIntelBase();
        m.name = "Nehalem";
        m.cpu = "Core i5-750";
        m.family = PortFamily::Nehalem;
        m.cacheConfig.l2 = {256 * kKB, 8, "PLRU"};
        m.cacheConfig.l3 = {8 * kMB, 16, "MRU"};
        m.cacheConfig.l3Slices = 1;
        m.cacheConfig.l3Latency = 40;
        reg[m.name] = m;
    }
    // ---- Westmere: Core i5-650 ------------------------------------
    {
        MicroArch m = makeIntelBase();
        m.name = "Westmere";
        m.cpu = "Core i5-650";
        m.family = PortFamily::Nehalem;
        m.cacheConfig.l2 = {256 * kKB, 8, "PLRU"};
        m.cacheConfig.l3 = {4 * kMB, 16, "MRU"};
        m.cacheConfig.l3Slices = 1;
        m.cacheConfig.l3Latency = 40;
        reg[m.name] = m;
    }
    // ---- Sandy Bridge: Core i7-2600 -------------------------------
    {
        MicroArch m = makeIntelBase();
        m.name = "SandyBridge";
        m.cpu = "Core i7-2600";
        m.family = PortFamily::SandyBridge;
        m.cacheConfig.l2 = {256 * kKB, 8, "PLRU"};
        m.cacheConfig.l3 = {8 * kMB, 16, "MRU_SBV"};
        m.cacheConfig.l3Slices = 4;
        m.cacheConfig.l3Latency = 28;
        reg[m.name] = m;
    }
    // ---- Ivy Bridge: Core i5-3470 (adaptive L3, §VI-D) ------------
    {
        MicroArch m = makeIntelBase();
        m.name = "IvyBridge";
        m.cpu = "Core i5-3470";
        m.family = PortFamily::SandyBridge;
        m.cacheConfig.l2 = {256 * kKB, 8, "PLRU"};
        m.cacheConfig.l3 = {6 * kMB, 12, ""};
        m.cacheConfig.l3Slices = 4;
        m.cacheConfig.l3Latency = 30;
        m.cacheConfig.l3Dueling.policyA = "QLRU_H11_M1_R1_U2";
        m.cacheConfig.l3Dueling.policyB = "QLRU_H11_MR161_R1_U2";
        m.cacheConfig.l3Dueling.leaders = leaderSets(-1, -1);
        reg[m.name] = m;
    }
    // ---- Haswell: Xeon E3-1225 v3 (leaders in slice 0 only) -------
    {
        MicroArch m = makeIntelBase();
        m.name = "Haswell";
        m.cpu = "Xeon E3-1225 v3";
        m.family = PortFamily::Haswell;
        m.cacheConfig.l2 = {256 * kKB, 8, "PLRU"};
        m.cacheConfig.l3 = {8 * kMB, 16, ""};
        m.cacheConfig.l3Slices = 4;
        m.cacheConfig.l3Latency = 34;
        m.cacheConfig.l3Dueling.policyA = "QLRU_H11_M1_R0_U0";
        m.cacheConfig.l3Dueling.policyB = "QLRU_H11_MR161_R0_U0";
        m.cacheConfig.l3Dueling.leaders = leaderSets(0, 0);
        reg[m.name] = m;
    }
    // ---- Broadwell: Core i5-5200U (leader groups cross slices) ----
    {
        MicroArch m = makeIntelBase();
        m.name = "Broadwell";
        m.cpu = "Core i5-5200U";
        m.family = PortFamily::Haswell;
        m.cacheConfig.l2 = {256 * kKB, 8, "PLRU"};
        m.cacheConfig.l3 = {3 * kMB, 12, ""};
        m.cacheConfig.l3Slices = 2;
        m.cacheConfig.l3Latency = 34;
        m.cacheConfig.l3Dueling.policyA = "QLRU_H11_M1_R0_U0";
        m.cacheConfig.l3Dueling.policyB = "QLRU_H11_MR161_R0_U0";
        // Policy A: sets 512-575 in slice 0 and 768-831 in slice 1;
        // policy B: the opposite pairing (§VI-D).
        m.cacheConfig.l3Dueling.leaders = {
            {0, 512, 575, DuelRole::LeaderA},
            {1, 768, 831, DuelRole::LeaderA},
            {1, 512, 575, DuelRole::LeaderB},
            {0, 768, 831, DuelRole::LeaderB},
        };
        reg[m.name] = m;
    }
    // ---- Skylake: Core i7-6500U -----------------------------------
    {
        MicroArch m = makeIntelBase();
        m.name = "Skylake";
        m.cpu = "Core i7-6500U";
        m.family = PortFamily::Skylake;
        m.cacheConfig.l2 = {256 * kKB, 4, "QLRU_H00_M1_R2_U1"};
        m.cacheConfig.l3 = {4 * kMB, 16, "QLRU_H11_M1_R0_U0"};
        m.cacheConfig.l3Slices = 2;
        m.cacheConfig.l3Latency = 42;
        reg[m.name] = m;
    }
    // ---- Kaby Lake: Core i7-7700 ----------------------------------
    {
        MicroArch m = makeIntelBase();
        m.name = "KabyLake";
        m.cpu = "Core i7-7700";
        m.family = PortFamily::Skylake;
        m.cacheConfig.l2 = {256 * kKB, 4, "QLRU_H00_M1_R2_U1"};
        m.cacheConfig.l3 = {8 * kMB, 16, "QLRU_H11_M1_R0_U0"};
        m.cacheConfig.l3Slices = 4;
        m.cacheConfig.l3Latency = 42;
        reg[m.name] = m;
    }
    // ---- Coffee Lake: Core i7-8700K -------------------------------
    {
        MicroArch m = makeIntelBase();
        m.name = "CoffeeLake";
        m.cpu = "Core i7-8700K";
        m.family = PortFamily::Skylake;
        m.cacheConfig.l2 = {256 * kKB, 4, "QLRU_H00_M1_R2_U1"};
        m.cacheConfig.l3 = {8 * kMB, 16, "QLRU_H11_M1_R0_U0"};
        m.cacheConfig.l3Slices = 4;
        m.cacheConfig.l3Latency = 42;
        reg[m.name] = m;
    }
    // ---- Cannon Lake: Core i3-8121U -------------------------------
    {
        MicroArch m = makeIntelBase();
        m.name = "CannonLake";
        m.cpu = "Core i3-8121U";
        m.family = PortFamily::Skylake;
        m.cacheConfig.l2 = {256 * kKB, 4, "QLRU_H00_M1_R0_U1"};
        m.cacheConfig.l3 = {4 * kMB, 16, "QLRU_H11_M1_R0_U0"};
        m.cacheConfig.l3Slices = 2;
        m.cacheConfig.l3Latency = 42;
        reg[m.name] = m;
    }
    // ---- AMD Zen: Ryzen 7 1700 ------------------------------------
    {
        MicroArch m;
        m.name = "Zen";
        m.cpu = "Ryzen 7 1700";
        m.vendor = Vendor::Amd;
        m.family = PortFamily::Zen;
        m.numProgCounters = 6;
        m.hasFixedCounters = false; // no Intel-style fixed RDPMC counters
        m.hasAperfMperf = true;     // family 17h (§II-A1)
        m.hasUncoreCounters = false;
        m.issueWidth = 5;
        m.retireWidth = 5;
        m.cacheConfig.l1 = {32 * kKB, 8, "LRU"};
        m.cacheConfig.l2 = {512 * kKB, 8, "LRU"};
        m.cacheConfig.l3 = {8 * kMB, 16, "LRU"};
        m.cacheConfig.l3Slices = 1;
        m.cacheConfig.l1Latency = 4;
        m.cacheConfig.l2Latency = 17;
        m.cacheConfig.l3Latency = 40;
        m.cacheConfig.memLatency = 220;
        // The paper could not disable prefetching on AMD (§VI-D).
        m.cacheConfig.prefetcherDisableSupported = false;
        reg[m.name] = m;
    }

    return reg;
}

const std::map<std::string, MicroArch> &
registry()
{
    static const std::map<std::string, MicroArch> reg = buildRegistry();
    return reg;
}

} // namespace

const MicroArch &
getMicroArch(const std::string &name)
{
    auto it = registry().find(name);
    if (it == registry().end())
        fatal("unknown microarchitecture '", name, "'");
    return it->second;
}

std::vector<std::string>
tableOneMicroArchNames()
{
    return {
        "Nehalem", "Westmere", "SandyBridge", "IvyBridge", "Haswell",
        "Broadwell", "Skylake", "KabyLake", "CoffeeLake", "CannonLake",
    };
}

std::vector<std::string>
allMicroArchNames()
{
    auto names = tableOneMicroArchNames();
    names.push_back("Zen");
    return names;
}

} // namespace nb::uarch
