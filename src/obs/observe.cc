/**
 * @file
 * Differential simulator observation (see observe.hh).
 */

#include "obs/observe.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"
#include "core/engine.hh"
#include "core/json.hh"
#include "core/result.hh"
#include "sim/machine.hh"

namespace nb::obs
{

namespace
{

/**
 * How many counter rounds Runner::run() will actually execute for
 * @p spec (mirrors the round loop in runner.cc: a round runs when it
 * programs counters, or when it is the first executed round and the
 * spec reads fixed counters / APERF+MPERF).
 */
std::uint64_t
executedRounds(const core::BenchmarkSpec &spec, sim::Pmu &pmu)
{
    bool fixed = (spec.fixedCounters && pmu.hasFixed()) ||
                 spec.aperfMperf;
    auto rounds = spec.config.rounds(pmu.numProg());
    if (rounds.empty())
        rounds.push_back({});
    std::uint64_t executed = 0;
    bool first = true;
    for (const auto &round : rounds) {
        if (round.empty() && !(first && fixed))
            continue;
        ++executed;
        first = false;
    }
    return executed;
}

/** Run @p spec on a fresh machine with @p sink attached; fatal() on
 *  any RunError (same taxonomy as Session::run). */
void
observedRun(const uarch::MicroArch &ua, core::BenchmarkSpec spec,
            core::Mode mode, std::uint64_t seed, sim::ExecObserver &sink)
{
    sim::Machine machine(ua, seed);
    core::Runner runner(machine, mode);
    machine.setExecObserver(&sink);
    RunOutcome outcome = runSpecOnRunner(runner, std::move(spec));
    machine.setExecObserver(nullptr);
    if (!outcome.ok()) {
        fatal("observe: ", runErrorCodeName(outcome.error().code), ": ",
              outcome.error().message);
    }
}

double
delta(std::uint64_t doubled, std::uint64_t base)
{
    return static_cast<double>(doubled) - static_cast<double>(base);
}

} // namespace

ObservedProfile
observeSpec(const uarch::MicroArch &ua, const core::BenchmarkSpec &spec,
            core::Mode mode, std::uint64_t seed)
{
    // The two runs: the spec as given, and the same spec with the
    // unroll count doubled. Everything but the extra body copies is
    // structurally identical, so harness work cancels in the delta
    // (§III-C applied to introspection).
    sim::ExecObserver base;
    observedRun(ua, spec, mode, seed, base);

    core::BenchmarkSpec doubled_spec = spec;
    doubled_spec.unrollCount = 2 * spec.unrollCount;
    sim::ExecObserver doubled;
    observedRun(ua, doubled_spec, mode, seed, doubled);

    // The runs differ by a known number of body copies. Per executed
    // round, each unroll version runs (warmUp + nMeasurements) times
    // with max(1, loop) * localUnroll copies per execution; the local
    // unrolls are {N, 2N} normally and {0, N} in basic mode, so
    // doubling N adds 3N (resp. N) copies per round execution pair.
    std::uint64_t rounds;
    {
        sim::Machine probe(ua, seed);
        rounds = executedRounds(spec, probe.pmu());
    }
    std::uint64_t per_version =
        static_cast<std::uint64_t>(spec.warmUpCount) + spec.nMeasurements;
    std::uint64_t loops = std::max<std::uint64_t>(1, spec.loopCount);
    std::uint64_t delta_unroll =
        spec.basicMode ? spec.unrollCount : 3 * spec.unrollCount;
    std::uint64_t copies = rounds * per_version * loops * delta_unroll;
    if (copies == 0)
        fatal("observe: spec executes no benchmark body copies");
    double denom = static_cast<double>(copies);

    ObservedProfile prof;
    prof.uarch = ua.name;
    prof.copies = copies;
    prof.issueWidth = ua.issueWidth;
    prof.portUops.resize(ua.ports().numPorts);
    for (std::size_t p = 0; p < prof.portUops.size(); ++p)
        prof.portUops[p] = delta(doubled.portUops[p], base.portUops[p]) /
                           denom;
    prof.uopsIssued = delta(doubled.uopsIssued, base.uopsIssued) / denom;
    prof.uopsDispatched =
        delta(doubled.uopsDispatched, base.uopsDispatched) / denom;
    double cycle_delta = delta(doubled.cycles, base.cycles);
    prof.cycles = cycle_delta / denom;
    prof.retireStallCycles =
        delta(doubled.retireStallCycles, base.retireStallCycles) / denom;
    if (cycle_delta > 0) {
        prof.issueUtilization =
            delta(doubled.uopsIssued, base.uopsIssued) /
            (static_cast<double>(ua.issueWidth) * cycle_delta);
    }
    return prof;
}

double
ObservedProfile::totalPortUops() const
{
    double total = 0;
    for (double u : portUops)
        total += u;
    return total;
}

double
ObservedProfile::portShare(std::size_t p) const
{
    if (cycles <= 0 || p >= portUops.size())
        return 0;
    return portUops[p] / cycles;
}

namespace
{

std::string
percent(double fraction)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << fraction * 100 << "%";
    return os.str();
}

std::string
fixed2(double v)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << v;
    return os.str();
}

} // namespace

std::string
ObservedProfile::format() const
{
    std::ostringstream os;
    os << "observed profile (" << uarch << ", " << copies
       << " differential body copies):\n";
    os << "  cycles / copy:          " << fixed2(cycles) << "\n";
    os << "  uops issued / copy:     " << fixed2(uopsIssued) << "\n";
    os << "  uops dispatched / copy: " << fixed2(uopsDispatched) << "\n";
    os << "  issue utilization:      " << percent(issueUtilization)
       << " of width " << issueWidth << "\n";
    os << "  retire stalls / copy:   " << fixed2(retireStallCycles)
       << "\n";
    os << "  port pressure (uops/copy, busy share):\n";
    for (std::size_t p = 0; p < portUops.size(); ++p) {
        os << "    p" << p << ": " << fixed2(portUops[p]) << "  "
           << percent(portShare(p)) << "\n";
    }
    return os.str();
}

std::string
ObservedProfile::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"uarch\": \"" << core::jsonEscape(uarch) << "\",\n";
    os << "  \"copies\": " << copies << ",\n";
    os << "  \"issue_width\": " << issueWidth << ",\n";
    os << "  \"cycles\": " << core::exactDouble(cycles) << ",\n";
    os << "  \"uops_issued\": " << core::exactDouble(uopsIssued)
       << ",\n";
    os << "  \"uops_dispatched\": " << core::exactDouble(uopsDispatched)
       << ",\n";
    os << "  \"issue_utilization\": "
       << core::exactDouble(issueUtilization) << ",\n";
    os << "  \"retire_stall_cycles\": "
       << core::exactDouble(retireStallCycles) << ",\n";
    os << "  \"port_uops\": [";
    for (std::size_t p = 0; p < portUops.size(); ++p)
        os << (p ? ", " : "") << core::exactDouble(portUops[p]);
    os << "]\n";
    os << "}\n";
    return os.str();
}

ObservedProfile
ObservedProfile::fromJson(const std::string &text)
{
    ObservedProfile prof;
    core::JsonCursor cur(text);
    cur.expect('{');
    if (!cur.tryConsume('}')) {
        do {
            std::string key = cur.parseString();
            cur.expect(':');
            if (key == "uarch") {
                prof.uarch = cur.parseString();
            } else if (key == "copies") {
                prof.copies =
                    static_cast<std::uint64_t>(cur.parseNumber());
            } else if (key == "issue_width") {
                prof.issueWidth =
                    static_cast<unsigned>(cur.parseNumber());
            } else if (key == "cycles") {
                prof.cycles = cur.parseNumber();
            } else if (key == "uops_issued") {
                prof.uopsIssued = cur.parseNumber();
            } else if (key == "uops_dispatched") {
                prof.uopsDispatched = cur.parseNumber();
            } else if (key == "issue_utilization") {
                prof.issueUtilization = cur.parseNumber();
            } else if (key == "retire_stall_cycles") {
                prof.retireStallCycles = cur.parseNumber();
            } else if (key == "port_uops") {
                cur.expect('[');
                if (!cur.tryConsume(']')) {
                    do {
                        prof.portUops.push_back(cur.parseNumber());
                    } while (cur.tryConsume(','));
                    cur.expect(']');
                }
            } else {
                cur.skipValue();
            }
        } while (cur.tryConsume(','));
        cur.expect('}');
    }
    cur.expectEnd();
    return prof;
}

std::string
ObservedProfile::toCsv() const
{
    std::ostringstream os;
    os << "# observed profile\n";
    os << "key,value\n";
    os << "uarch," << core::csvEscape(uarch) << "\n";
    os << "copies," << copies << "\n";
    os << "issue_width," << issueWidth << "\n";
    os << "cycles," << core::exactDouble(cycles) << "\n";
    os << "uops_issued," << core::exactDouble(uopsIssued) << "\n";
    os << "uops_dispatched," << core::exactDouble(uopsDispatched)
       << "\n";
    os << "issue_utilization," << core::exactDouble(issueUtilization)
       << "\n";
    os << "retire_stall_cycles,"
       << core::exactDouble(retireStallCycles) << "\n";
    for (std::size_t p = 0; p < portUops.size(); ++p) {
        os << "port_" << p << "_uops,"
           << core::exactDouble(portUops[p]) << "\n";
    }
    return os.str();
}

ObservedProfile
ObservedProfile::fromCsv(const std::string &text)
{
    ObservedProfile prof;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#' || line == "key,value")
            continue;
        auto fields = core::splitCsvRecord(line);
        if (fields.size() != 2)
            fatal("observed profile CSV: expected key,value row, got '",
                  line, "'");
        const std::string key = core::csvUnescape(fields[0]);
        const std::string &value = fields[1];
        if (key == "uarch") {
            prof.uarch = core::csvUnescape(value);
        } else if (key == "copies") {
            prof.copies = std::stoull(value);
        } else if (key == "issue_width") {
            prof.issueWidth =
                static_cast<unsigned>(std::stoul(value));
        } else if (key == "cycles") {
            prof.cycles = std::stod(value);
        } else if (key == "uops_issued") {
            prof.uopsIssued = std::stod(value);
        } else if (key == "uops_dispatched") {
            prof.uopsDispatched = std::stod(value);
        } else if (key == "issue_utilization") {
            prof.issueUtilization = std::stod(value);
        } else if (key == "retire_stall_cycles") {
            prof.retireStallCycles = std::stod(value);
        } else if (key.starts_with("port_") &&
                   key.ends_with("_uops")) {
            std::size_t idx = std::stoull(key.substr(5));
            if (prof.portUops.size() <= idx)
                prof.portUops.resize(idx + 1);
            prof.portUops[idx] = std::stod(value);
        } else {
            fatal("observed profile CSV: unknown key '", key, "'");
        }
    }
    return prof;
}

std::string
formatPredictedVsObserved(const analysis::BoundReport &predicted,
                          const ObservedProfile &observed)
{
    std::ostringstream os;
    os << "predicted vs observed -- " << observed.uarch << "\n";
    os << "  predicted bottleneck: "
       << analysis::bottleneckName(predicted.bottleneck) << "\n";
    os << "  cycles / body copy:   predicted bound "
       << fixed2(predicted.bound()) << ", observed "
       << fixed2(observed.cycles) << "\n";
    os << "  uops / body copy:     predicted "
       << fixed2(predicted.uopsPerCopy) << " issued, observed "
       << fixed2(observed.uopsIssued) << " issued / "
       << fixed2(observed.uopsDispatched) << " dispatched\n";
    os << "  issue utilization:    observed "
       << percent(observed.issueUtilization) << " of width "
       << observed.issueWidth << "\n";
    os << "  port  predicted-uops  predicted-util  observed-uops  "
          "observed-share\n";
    // The bound model lists PortUse entries keyed by port number (not
    // necessarily one entry per port); spread them positionally first.
    std::size_t n_ports = observed.portUops.size();
    for (const auto &use : predicted.ports)
        n_ports = std::max<std::size_t>(n_ports, use.port + 1);
    std::vector<double> pred_by_port(n_ports, 0.0);
    std::vector<double> util_by_port(n_ports, 0.0);
    for (const auto &use : predicted.ports) {
        pred_by_port[use.port] = use.uops;
        util_by_port[use.port] = use.util;
    }
    for (std::size_t p = 0; p < n_ports; ++p) {
        double pred_uops = pred_by_port[p];
        double pred_util = util_by_port[p];
        double obs_uops =
            p < observed.portUops.size() ? observed.portUops[p] : 0;
        os << "  p" << p << "    " << std::setw(14) << std::left
           << fixed2(pred_uops) << "  " << std::setw(14)
           << percent(pred_util) << "  " << std::setw(13)
           << fixed2(obs_uops) << "  " << percent(observed.portShare(p))
           << "\n";
    }
    return os.str();
}

} // namespace nb::obs
