/**
 * @file
 * Tracer implementation (see trace.hh).
 */

#include "obs/trace.hh"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"
#include "core/result.hh"

namespace nb::obs
{

void
Tracer::record(char ph, std::uint32_t lane, std::string name,
               std::string argKey, std::string argValue)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // The timestamp is taken under the lock: the event vector is
    // globally ts-monotonic, so every lane is too.
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - origin_)
                  .count();
    events_.push_back({ph, lane, static_cast<std::uint64_t>(ns),
                       std::move(name), std::move(argKey),
                       std::move(argValue)});
}

void
Tracer::begin(std::uint32_t lane, std::string name, std::string argKey,
              std::string argValue)
{
    if (!enabled_)
        return;
    record('B', lane, std::move(name), std::move(argKey),
           std::move(argValue));
}

void
Tracer::end(std::uint32_t lane, std::string name)
{
    if (!enabled_)
        return;
    record('E', lane, std::move(name), {}, {});
}

void
Tracer::instant(std::uint32_t lane, std::string name)
{
    if (!enabled_)
        return;
    record('i', lane, std::move(name), {}, {});
}

void
Tracer::nameLane(std::uint32_t lane, const std::string &label)
{
    if (!enabled_)
        return;
    record('M', lane, "thread_name", "name", label);
}

std::size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
}

std::string
Tracer::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const TraceEvent &e = events_[i];
        os << (i ? ",\n " : "\n ");
        os << "{\"name\": \"" << core::jsonEscape(e.name)
           << "\", \"ph\": \"" << e.ph << "\", \"pid\": 1, \"tid\": "
           << e.tid;
        if (e.ph != 'M') {
            // Chrome trace ts is in microseconds; keep nanosecond
            // precision as a fractional part.
            os << ", \"ts\": " << e.tsNs / 1000 << "." << std::setw(3)
               << std::setfill('0') << e.tsNs % 1000;
        }
        if (e.ph == 'i')
            os << ", \"s\": \"t\"";
        if (!e.argKey.empty()) {
            os << ", \"args\": {\"" << core::jsonEscape(e.argKey)
               << "\": \"" << core::jsonEscape(e.argValue) << "\"}";
        }
        os << "}";
    }
    os << (events_.empty() ? "]\n" : "\n]\n");
    return os.str();
}

void
Tracer::writeFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open trace file '", path, "' for writing");
    out << toJson();
    if (!out)
        fatal("error writing trace file '", path, "'");
}

} // namespace nb::obs
