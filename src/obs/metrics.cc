/**
 * @file
 * Metrics registry implementation (see metrics.hh).
 */

#include "obs/metrics.hh"

#include <algorithm>
#include <optional>
#include <sstream>

#include "common/logging.hh"
#include "core/json.hh"
#include "core/result.hh"
#include "core/telemetry.hh"

namespace nb::obs
{

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Codegen: return "codegen";
      case Phase::Assemble: return "assemble";
      case Phase::Decode: return "decode";
      case Phase::Execute: return "execute";
      case Phase::Aggregate: return "aggregate";
    }
    return "?";
}

unsigned
phaseIndexFromName(const std::string &name)
{
    for (unsigned i = 0; i < kNumPhases; ++i) {
        if (name == phaseName(static_cast<Phase>(i)))
            return i;
    }
    return kNumPhases;
}

// --------------------------------------------------------- histogram --

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1)
{
    NB_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()),
              "histogram boundaries must be sorted");
}

void
Histogram::observe(double v)
{
    // Linear scan: boundary lists are short (the phase histograms use
    // seven decades) and the branch pattern is predictable.
    std::size_t bucket = 0;
    while (bucket < bounds_.size() && v > bounds_[bucket])
        ++bucket;
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
}

std::vector<std::uint64_t>
Histogram::counts() const
{
    std::vector<std::uint64_t> out(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i)
        out[i] = counts_[i].load(std::memory_order_relaxed);
    return out;
}

std::uint64_t
Histogram::totalCount() const
{
    std::uint64_t total = 0;
    for (const auto &c : counts_)
        total += c.load(std::memory_order_relaxed);
    return total;
}

double
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

std::uint64_t
HistogramSnapshot::totalCount() const
{
    std::uint64_t total = 0;
    for (std::uint64_t c : counts)
        total += c;
    return total;
}

// ---------------------------------------------------------- registry --

namespace
{

/** Find-or-insert into a name->instrument vector (small, registered
 *  once; linear scan keeps iteration deterministic for snapshots). */
template <typename T, typename Make>
T &
findOrInsert(std::vector<std::pair<std::string, std::unique_ptr<T>>> &v,
             const std::string &name, Make make)
{
    for (auto &[n, inst] : v) {
        if (n == name)
            return *inst;
    }
    v.emplace_back(name, make());
    return *v.back().second;
}

} // namespace

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return findOrInsert(counters_, name,
                        [] { return std::make_unique<Counter>(); });
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return findOrInsert(gauges_, name,
                        [] { return std::make_unique<Gauge>(); });
}

Histogram &
Registry::histogram(const std::string &name, std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return findOrInsert(histograms_, name, [&] {
        return std::unique_ptr<Histogram>(
            new Histogram(std::move(bounds)));
    });
}

RegistrySnapshot
Registry::snapshot() const
{
    RegistrySnapshot snap;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, c] : counters_)
        snap.counters.emplace_back(name, c->value());
    for (const auto &[name, g] : gauges_)
        snap.gauges.emplace_back(name, g->value());
    for (const auto &[name, h] : histograms_) {
        HistogramSnapshot hs;
        hs.name = name;
        hs.bounds = h->bounds();
        hs.counts = h->counts();
        hs.sum = h->sum();
        snap.histograms.push_back(std::move(hs));
    }
    auto byName = [](const auto &a, const auto &b) {
        return a.first < b.first;
    };
    std::sort(snap.counters.begin(), snap.counters.end(), byName);
    std::sort(snap.gauges.begin(), snap.gauges.end(), byName);
    std::sort(snap.histograms.begin(), snap.histograms.end(),
              [](const auto &a, const auto &b) { return a.name < b.name; });
    return snap;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, c] : counters_)
        c->value_.store(0, std::memory_order_relaxed);
    for (auto &[name, g] : gauges_)
        g->value_.store(0.0, std::memory_order_relaxed);
    for (auto &[name, h] : histograms_) {
        for (auto &bucket : h->counts_)
            bucket.store(0, std::memory_order_relaxed);
        h->sum_.store(0.0, std::memory_order_relaxed);
    }
}

Registry &
Registry::process()
{
    static Registry registry;
    return registry;
}

// ------------------------------------------------------ serialization --

std::string
RegistrySnapshot::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"counters\": {";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        os << (i ? ", " : "") << "\""
           << core::jsonEscape(counters[i].first)
           << "\": " << counters[i].second;
    }
    os << "},\n";
    os << "  \"gauges\": {";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
        os << (i ? ", " : "") << "\"" << core::jsonEscape(gauges[i].first)
           << "\": " << core::exactDouble(gauges[i].second);
    }
    os << "},\n";
    os << "  \"histograms\": [";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        const HistogramSnapshot &h = histograms[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"name\": \"" << core::jsonEscape(h.name)
           << "\", \"bounds\": [";
        for (std::size_t b = 0; b < h.bounds.size(); ++b)
            os << (b ? ", " : "") << core::exactDouble(h.bounds[b]);
        os << "], \"counts\": [";
        for (std::size_t b = 0; b < h.counts.size(); ++b)
            os << (b ? ", " : "") << h.counts[b];
        os << "], \"sum\": " << core::exactDouble(h.sum) << "}";
    }
    os << (histograms.empty() ? "]\n" : "\n  ]\n");
    os << "}\n";
    return os.str();
}

RegistrySnapshot
RegistrySnapshot::fromJson(const std::string &text)
{
    RegistrySnapshot snap;
    core::JsonCursor cur(text);
    cur.expect('{');
    if (!cur.tryConsume('}')) {
        do {
            std::string key = cur.parseString();
            cur.expect(':');
            if (key == "counters") {
                cur.expect('{');
                if (!cur.tryConsume('}')) {
                    do {
                        std::string name = cur.parseString();
                        cur.expect(':');
                        snap.counters.emplace_back(
                            name, static_cast<std::uint64_t>(
                                      cur.parseNumber()));
                    } while (cur.tryConsume(','));
                    cur.expect('}');
                }
            } else if (key == "gauges") {
                cur.expect('{');
                if (!cur.tryConsume('}')) {
                    do {
                        std::string name = cur.parseString();
                        cur.expect(':');
                        snap.gauges.emplace_back(name,
                                                 cur.parseNumber());
                    } while (cur.tryConsume(','));
                    cur.expect('}');
                }
            } else if (key == "histograms") {
                cur.expect('[');
                if (!cur.tryConsume(']')) {
                    do {
                        HistogramSnapshot h;
                        cur.expect('{');
                        do {
                            std::string field = cur.parseString();
                            cur.expect(':');
                            if (field == "name") {
                                h.name = cur.parseString();
                            } else if (field == "bounds") {
                                cur.expect('[');
                                if (!cur.tryConsume(']')) {
                                    do {
                                        h.bounds.push_back(
                                            cur.parseNumber());
                                    } while (cur.tryConsume(','));
                                    cur.expect(']');
                                }
                            } else if (field == "counts") {
                                cur.expect('[');
                                if (!cur.tryConsume(']')) {
                                    do {
                                        h.counts.push_back(
                                            static_cast<std::uint64_t>(
                                                cur.parseNumber()));
                                    } while (cur.tryConsume(','));
                                    cur.expect(']');
                                }
                            } else if (field == "sum") {
                                h.sum = cur.parseNumber();
                            } else {
                                cur.skipValue();
                            }
                        } while (cur.tryConsume(','));
                        cur.expect('}');
                        snap.histograms.push_back(std::move(h));
                    } while (cur.tryConsume(','));
                    cur.expect(']');
                }
            } else {
                cur.skipValue();
            }
        } while (cur.tryConsume(','));
        cur.expect('}');
    }
    cur.expectEnd();
    return snap;
}

std::string
RegistrySnapshot::toCsv() const
{
    std::ostringstream os;
    os << "# metrics registry\n";
    os << "key,value\n";
    for (const auto &[name, value] : counters)
        os << core::csvEscape("counter." + name) << "," << value << "\n";
    for (const auto &[name, value] : gauges)
        os << core::csvEscape("gauge." + name) << ","
           << core::exactDouble(value) << "\n";
    for (const HistogramSnapshot &h : histograms) {
        for (std::size_t b = 0; b < h.bounds.size(); ++b) {
            os << core::csvEscape("hist." + h.name + ".bound_" +
                                  std::to_string(b))
               << "," << core::exactDouble(h.bounds[b]) << "\n";
        }
        for (std::size_t b = 0; b < h.counts.size(); ++b) {
            os << core::csvEscape("hist." + h.name + ".count_" +
                                  std::to_string(b))
               << "," << h.counts[b] << "\n";
        }
        os << core::csvEscape("hist." + h.name + ".sum") << ","
           << core::exactDouble(h.sum) << "\n";
    }
    return os.str();
}

RegistrySnapshot
RegistrySnapshot::fromCsv(const std::string &text)
{
    RegistrySnapshot snap;
    // name -> index into snap.histograms (rows of one histogram are
    // contiguous in our own output, but don't rely on it).
    auto histogramFor = [&](const std::string &name) -> HistogramSnapshot & {
        for (auto &h : snap.histograms) {
            if (h.name == name)
                return h;
        }
        snap.histograms.emplace_back();
        snap.histograms.back().name = name;
        return snap.histograms.back();
    };
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#' || line == "key,value")
            continue;
        auto fields = core::splitCsvRecord(line);
        if (fields.size() != 2)
            fatal("registry CSV: expected key,value row, got '", line,
                  "'");
        const std::string key = core::csvUnescape(fields[0]);
        const std::string &value = fields[1];
        if (key.starts_with("counter.")) {
            snap.counters.emplace_back(key.substr(8),
                                       std::stoull(value));
        } else if (key.starts_with("gauge.")) {
            snap.gauges.emplace_back(key.substr(6), std::stod(value));
        } else if (key.starts_with("hist.")) {
            std::size_t dot = key.rfind('.');
            if (dot == std::string::npos || dot <= 5)
                fatal("registry CSV: bad histogram key '", key, "'");
            std::string name = key.substr(5, dot - 5);
            std::string field = key.substr(dot + 1);
            HistogramSnapshot &h = histogramFor(name);
            auto indexed = [&](const char *prefix)
                -> std::optional<std::size_t> {
                std::string p(prefix);
                if (!field.starts_with(p))
                    return std::nullopt;
                return static_cast<std::size_t>(
                    std::stoull(field.substr(p.size())));
            };
            if (field == "sum") {
                h.sum = std::stod(value);
            } else if (auto b = indexed("bound_")) {
                if (h.bounds.size() <= *b)
                    h.bounds.resize(*b + 1);
                h.bounds[*b] = std::stod(value);
            } else if (auto c = indexed("count_")) {
                if (h.counts.size() <= *c)
                    h.counts.resize(*c + 1);
                h.counts[*c] = std::stoull(value);
            } else {
                fatal("registry CSV: bad histogram field '", key, "'");
            }
        } else {
            fatal("registry CSV: unknown key '", key, "'");
        }
    }
    return snap;
}

std::string
RegistrySnapshot::format() const
{
    std::ostringstream os;
    os << "metrics registry:\n";
    for (const auto &[name, value] : counters)
        os << "  " << name << ": " << value << "\n";
    for (const auto &[name, value] : gauges)
        os << "  " << name << ": " << core::exactDouble(value) << "\n";
    for (const HistogramSnapshot &h : histograms) {
        std::uint64_t n = h.totalCount();
        os << "  " << h.name << ": " << n << " samples";
        if (n != 0) {
            os << ", mean " << core::exactDouble(h.sum /
                                                 static_cast<double>(n));
        }
        os << "\n";
    }
    return os.str();
}

// ------------------------------------------------------------- views --

void
publishEngineTelemetry(const EngineTelemetry &telemetry,
                       Registry &registry)
{
    auto set = [&](const char *name, std::uint64_t value) {
        registry.gauge(name).set(static_cast<double>(value));
    };
    set("engine.pool_size", telemetry.poolSize);
    set("engine.machines_constructed", telemetry.machinesConstructed);
    set("engine.pool_hits", telemetry.poolHits);
    set("engine.program_cache.size", telemetry.programCacheSize);
    set("engine.program_cache.hits", telemetry.program.hits);
    set("engine.program_cache.misses", telemetry.program.misses);
    set("engine.program_cache.evictions", telemetry.program.evictions);
    set("engine.assemble_cache.hits", telemetry.assemble.hits);
    set("engine.assemble_cache.misses", telemetry.assemble.misses);
    set("engine.assemble_cache.evictions",
        telemetry.assemble.evictions);
    set("engine.lint_cache.hits", telemetry.lint.hits);
    set("engine.lint_cache.misses", telemetry.lint.misses);
    set("engine.lint_cache.evictions", telemetry.lint.evictions);
}

const std::vector<double> &
phaseHistogramBounds()
{
    // Decade-spaced 1µs .. 1s, in nanoseconds: phase durations span
    // microseconds (aggregate) to near-seconds (big executes).
    static const std::vector<double> bounds = {1e3, 1e4, 1e5, 1e6,
                                               1e7, 1e8, 1e9};
    return bounds;
}

} // namespace nb::obs
