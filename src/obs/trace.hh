/**
 * @file
 * Span tracing in the Chrome trace-event format.
 *
 * A Tracer collects duration-begin/-end ("B"/"E") events on numbered
 * lanes (the trace-event tid; the campaign executor uses the worker
 * index) plus "thread_name" metadata events that label the lanes, and
 * serializes everything as a Chrome trace-event JSON array --
 * loadable directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
 *
 * Cost model: a disabled tracer (the default) rejects every record
 * call on one predicted branch before reading the clock or touching
 * the mutex, so instrumented paths stay effectively free unless the
 * user asked for a trace (-trace FILE); the trace_overhead bench
 * ratio gates the enabled path too. Record calls are thread-safe; the
 * timestamp is taken under the lock, so the event list -- and hence
 * every lane -- is monotonic in ts by construction.
 */

#ifndef NB_OBS_TRACE_HH
#define NB_OBS_TRACE_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace nb::obs
{

/** One recorded trace event (exposed for tests; users serialize). */
struct TraceEvent
{
    char ph = 'B';         ///< 'B', 'E', 'i', or 'M'
    std::uint32_t tid = 0; ///< lane (worker index)
    std::uint64_t tsNs = 0;
    std::string name;
    /** Optional single argument rendered as {"key": "value"}. */
    std::string argKey;
    std::string argValue;
};

class Tracer
{
  public:
    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Arm the tracer; record calls are no-ops until this. */
    void enable() { enabled_ = true; }
    bool enabled() const { return enabled_; }

    /** Open a span on @p lane. Close it with a matching end(). The
     *  optional argument pair becomes the event's args object. */
    void begin(std::uint32_t lane, std::string name,
               std::string argKey = {}, std::string argValue = {});

    /** Close the innermost open span named @p name on @p lane. */
    void end(std::uint32_t lane, std::string name);

    /** A zero-duration instant event. */
    void instant(std::uint32_t lane, std::string name);

    /** Label @p lane (a "thread_name" metadata event; Perfetto shows
     *  it as the track title). */
    void nameLane(std::uint32_t lane, const std::string &label);

    std::size_t eventCount() const;

    /** Drop all recorded events (the enabled flag is kept). */
    void clear();

    /** Serialize as a Chrome trace-event JSON array (ts in
     *  microseconds, pid fixed at 1). */
    std::string toJson() const;

    /** toJson() to a file. @throws nb::FatalError on I/O failure. */
    void writeFile(const std::string &path) const;

  private:
    void record(char ph, std::uint32_t lane, std::string name,
                std::string argKey, std::string argValue);

    bool enabled_ = false;
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    std::chrono::steady_clock::time_point origin_ =
        std::chrono::steady_clock::now();
};

} // namespace nb::obs

#endif // NB_OBS_TRACE_HH
