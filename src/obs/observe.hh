/**
 * @file
 * Simulator observation: what the core *actually did* for one spec.
 *
 * observeSpec() runs a benchmark spec twice through the full runner
 * stack -- once as given and once with the unroll count doubled -- on
 * fresh same-seed machines with a sim::ExecObserver attached, and
 * reports the *difference* normalized per body copy. This is the
 * paper's differential-measurement discipline (§III-C) applied to the
 * reproduction's own introspection: everything the harness executes
 * identically in both runs (readout code, init parts, loop tails,
 * warm-up structure, user-mode programming overhead) cancels in the
 * delta, leaving the marginal cost of the benchmark body itself.
 *
 * The resulting ObservedProfile is the empirical counterpart of the
 * static analysis::BoundReport (-explain): per-port dispatched-µop
 * pressure, issue-bandwidth utilization, and retire stalls, observed
 * from the dispatch loop instead of predicted from the timing tables.
 * formatPredictedVsObserved() renders both side-by-side (the -observe
 * CLI verb), turning the bound model and the simulator into mutual
 * validators; the test sweep asserts their consistency on every
 * modelled microarchitecture.
 */

#ifndef NB_OBS_OBSERVE_HH
#define NB_OBS_OBSERVE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/bound.hh"
#include "core/runner.hh"
#include "uarch/uarch.hh"

namespace nb::obs
{

/** Differentially-observed per-body-copy execution profile (all
 *  doubles are per body copy unless noted). */
struct ObservedProfile
{
    std::string uarch;
    /** Differential body copies the deltas are normalized by. */
    std::uint64_t copies = 0;
    /** Issue (rename) width of the microarchitecture. */
    unsigned issueWidth = 0;

    /** Dispatched µops per body copy, one entry per execution port. */
    std::vector<double> portUops;
    double uopsIssued = 0;
    double uopsDispatched = 0;
    double cycles = 0;
    /** Fraction of issue bandwidth used: Δissued µops /
     *  (issueWidth * Δcycles). */
    double issueUtilization = 0;
    double retireStallCycles = 0;

    /** Σ portUops (dispatched µops per copy that took a port). */
    double totalPortUops() const;

    /** Busy fraction of port @p p: portUops[p] / cycles (a µop
     *  occupies its port for >= 1 cycle). 0 when cycles == 0. */
    double portShare(std::size_t p) const;

    /** Human-readable multi-line summary. */
    std::string format() const;

    /** JSON document; fromJson() inverse (exact double round-trip). */
    std::string toJson() const;
    static ObservedProfile fromJson(const std::string &text);

    /** CSV ("key,value" rows); fromCsv() inverse (exact). */
    std::string toCsv() const;
    static ObservedProfile fromCsv(const std::string &text);

    bool operator==(const ObservedProfile &) const = default;
};

/**
 * Observe @p spec on @p ua: run it and a doubled-unroll copy on two
 * fresh machines seeded @p seed and return the normalized delta.
 * Observation never perturbs measurement -- the runs themselves are
 * bit-identical to unobserved ones (the parity tests pin this).
 *
 * @throws nb::FatalError when either run fails (same taxonomy as
 *         Session::run: assembly errors, invalid specs, execution
 *         faults).
 */
ObservedProfile observeSpec(const uarch::MicroArch &ua,
                            const core::BenchmarkSpec &spec,
                            core::Mode mode = core::Mode::Kernel,
                            std::uint64_t seed = 42);

/**
 * Render @p predicted (the static bound model) and @p observed (the
 * dispatch-loop deltas) side-by-side: per-port µops and utilization,
 * cycles per copy, issue pressure. The -observe CLI verb's text
 * output.
 */
std::string formatPredictedVsObserved(
    const analysis::BoundReport &predicted,
    const ObservedProfile &observed);

} // namespace nb::obs

#endif // NB_OBS_OBSERVE_HH
