/**
 * @file
 * Process-wide metrics registry for the engine layer.
 *
 * The library's runtime visibility used to end at EngineTelemetry's
 * six cache counters. This registry generalizes that: named counters
 * (monotonic), gauges (last-seen values), and fixed-boundary
 * histograms, registered once and updated lock-free afterwards --
 * instrument handles are plain atomics, so the hot paths (the Runner's
 * per-phase timing, the campaign workers) pay one relaxed atomic op
 * per update and never touch the registry mutex after registration.
 *
 * A snapshot() freezes everything into a RegistrySnapshot that
 * serializes to JSON (round-trippable via fromJson) and CSV in the
 * BenchmarkResult "key,value" dialect (round-trippable via fromCsv);
 * both round-trips are exact (integers verbatim, doubles via
 * core::exactDouble). EngineTelemetry is absorbed as a view:
 * publishEngineTelemetry() mirrors a telemetry snapshot into gauges,
 * so one registry dump covers the caches, the pool, and the per-phase
 * runner timing the Runner records (see Phase below).
 */

#ifndef NB_OBS_METRICS_HH
#define NB_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nb
{
struct EngineTelemetry;
} // namespace nb

namespace nb::obs
{

/**
 * The phases of one Runner::run() / runSpecOnRunner() call, in
 * pipeline order. Assemble happens in the session layer
 * (runSpecOnRunner memoizes the parse and credits the runner); the
 * other four are timed inside Runner::run itself. Codegen and Decode
 * only run on measurement-program cache misses, so their share
 * shrinking across a campaign is the program cache working.
 */
enum class Phase : std::uint8_t
{
    Codegen,   ///< building the measurement-code segments
    Assemble,  ///< parsing asm text (session layer, memoized)
    Decode,    ///< sim::Program::decode of the generated segments
    Execute,   ///< warm-up + measurement executions on the machine
    Aggregate, ///< applyAggregate over the raw measurement vectors
};

/** Number of Phase enumerators (array sizing). */
inline constexpr unsigned kNumPhases = 5;

/** Human-readable phase name ("codegen", "assemble", ...). */
const char *phaseName(Phase phase);

/** Inverse of phaseName(); nullopt-free: returns kNumPhases for
 *  unknown names (callers range-check). */
unsigned phaseIndexFromName(const std::string &name);

/** Wall-clock nanoseconds per phase; a value type that campaign
 *  reports aggregate and serialize (integral, so round-trips are
 *  exact). */
struct PhaseTimes
{
    std::array<std::uint64_t, kNumPhases> ns{};

    std::uint64_t &operator[](Phase p)
    {
        return ns[static_cast<unsigned>(p)];
    }
    std::uint64_t operator[](Phase p) const
    {
        return ns[static_cast<unsigned>(p)];
    }

    PhaseTimes &operator+=(const PhaseTimes &other)
    {
        for (unsigned i = 0; i < kNumPhases; ++i)
            ns[i] += other.ns[i];
        return *this;
    }

    /** Phase-wise difference (callers window a monotonic
     *  accumulator). */
    PhaseTimes operator-(const PhaseTimes &other) const
    {
        PhaseTimes out;
        for (unsigned i = 0; i < kNumPhases; ++i)
            out.ns[i] = ns[i] - other.ns[i];
        return out;
    }

    std::uint64_t totalNs() const
    {
        std::uint64_t total = 0;
        for (std::uint64_t v : ns)
            total += v;
        return total;
    }

    bool operator==(const PhaseTimes &) const = default;
};

/** A monotonic counter. Handles stay valid for the registry's
 *  lifetime; add() is one relaxed atomic. */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    std::atomic<std::uint64_t> value_{0};
};

/** A last-seen value. set()/value() are single relaxed atomics. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    std::atomic<double> value_{0.0};
};

/**
 * A histogram with fixed bucket boundaries (set at registration,
 * immutable after). observe(v) lands in the first bucket whose upper
 * bound is >= v; values above the last boundary land in the implicit
 * overflow bucket, so counts() has bounds().size() + 1 entries. The
 * running sum makes averages recoverable from a snapshot.
 */
class Histogram
{
  public:
    void observe(double v);

    const std::vector<double> &bounds() const { return bounds_; }
    /** Per-bucket counts (bounds().size() + 1 entries). */
    std::vector<std::uint64_t> counts() const;
    std::uint64_t totalCount() const;
    double sum() const;

  private:
    friend class Registry;
    explicit Histogram(std::vector<double> bounds);

    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> counts_;
    std::atomic<double> sum_{0.0};
};

/** One frozen histogram (RegistrySnapshot). */
struct HistogramSnapshot
{
    std::string name;
    std::vector<double> bounds;
    /** bounds.size() + 1 entries; the last is the overflow bucket. */
    std::vector<std::uint64_t> counts;
    double sum = 0.0;

    std::uint64_t totalCount() const;

    bool operator==(const HistogramSnapshot &) const = default;
};

/**
 * Everything a Registry held at one instant, sorted by instrument
 * name (snapshots of the same state compare equal regardless of
 * registration order).
 */
struct RegistrySnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSnapshot> histograms;

    bool operator==(const RegistrySnapshot &) const = default;

    /** Serialize to a self-contained JSON object; fromJson inverse
     *  (exact: integers verbatim, doubles via core::exactDouble). */
    std::string toJson() const;
    static RegistrySnapshot fromJson(const std::string &text);

    /** Serialize to CSV ("key,value" rows, the BenchmarkResult
     *  dialect); fromCsv inverse (exact). */
    std::string toCsv() const;
    static RegistrySnapshot fromCsv(const std::string &text);

    /** Human-readable multi-line summary (the CLI -stats dump). */
    std::string format() const;
};

/**
 * A named-instrument registry. counter()/gauge()/histogram() register
 * on first use and return a stable reference; subsequent calls with
 * the same name return the same instrument (a histogram's boundaries
 * come from the first registration). Registration takes the registry
 * mutex; updates through the returned handles never do.
 *
 * Most code uses the process-wide instance (process()); tests build
 * private registries.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds);

    /** Freeze every instrument into a serializable snapshot. */
    RegistrySnapshot snapshot() const;

    /** Zero every instrument (handles stay valid; histograms keep
     *  their boundaries). Benches use this to open a clean window. */
    void reset();

    /** The process-wide registry. */
    static Registry &process();

  private:
    template <typename T>
    using Instruments =
        std::vector<std::pair<std::string, std::unique_ptr<T>>>;

    mutable std::mutex mutex_;
    Instruments<Counter> counters_;
    Instruments<Gauge> gauges_;
    Instruments<Histogram> histograms_;
};

/**
 * Mirror an EngineTelemetry snapshot into @p registry as gauges named
 * "engine.pool_size", "engine.program_cache.hits", ... -- the
 * telemetry struct stays the typed API; the registry absorbs it as a
 * view so one dump covers everything.
 */
void publishEngineTelemetry(const EngineTelemetry &telemetry,
                            Registry &registry);

/** The bucket boundaries (nanoseconds, decade-spaced 1µs..1s) of the
 *  per-phase runner-timing histograms "runner.phase.<name>". */
const std::vector<double> &phaseHistogramBounds();

} // namespace nb::obs

#endif // NB_OBS_METRICS_HH
