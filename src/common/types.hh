/**
 * @file
 * Fundamental typedefs shared across the library.
 */

#ifndef NB_COMMON_TYPES_HH
#define NB_COMMON_TYPES_HH

#include <cstdint>

namespace nb
{

/** A (virtual or physical) byte address in the simulated machine. */
using Addr = std::uint64_t;

/** A duration or timestamp in simulated core clock cycles. */
using Cycles = std::uint64_t;

/** Size of a cache line in bytes on every modelled microarchitecture. */
inline constexpr Addr kCacheLineSize = 64;

/** Size of a virtual/physical memory page. */
inline constexpr Addr kPageSize = 4096;

} // namespace nb

#endif // NB_COMMON_TYPES_HH
