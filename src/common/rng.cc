/**
 * @file
 * xoshiro256** implementation.
 */

#include "rng.hh"

#include "logging.hh"

namespace nb
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
    // xoshiro must not be seeded with an all-zero state.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0)
        state_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    NB_ASSERT(bound > 0, "nextBelow requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    NB_ASSERT(lo <= hi, "nextRange requires lo <= hi");
    return lo + nextBelow(hi - lo + 1);
}

bool
Rng::oneIn(std::uint64_t denominator)
{
    return nextBelow(denominator) == 0;
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

} // namespace nb
