/**
 * @file
 * Implementation of the logging helpers.
 */

#include "logging.hh"

#include <atomic>
#include <iostream>

namespace nb
{

namespace
{

std::atomic<bool> quietFlag{false};
thread_local unsigned fatalSuppressionDepth = 0;

} // namespace

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

ScopedFatalMessageSuppression::ScopedFatalMessageSuppression()
{
    ++fatalSuppressionDepth;
}

ScopedFatalMessageSuppression::~ScopedFatalMessageSuppression()
{
    --fatalSuppressionDepth;
}

bool
fatalMessagesSuppressed()
{
    return fatalSuppressionDepth > 0;
}

namespace detail
{

void
emitMessage(const char *prefix, const std::string &msg)
{
    // panic() is always shown. fatal() is shown unless a handler that
    // converts FatalErrors to data has suppressed it; warn/inform
    // respect the quiet flag.
    bool is_error = prefix[0] == 'p' || prefix[0] == 'f';
    if (prefix[0] == 'f' && fatalMessagesSuppressed())
        return;
    if (!is_error && isQuiet())
        return;
    std::cerr << prefix << msg << "\n";
}

} // namespace detail

} // namespace nb
