/**
 * @file
 * Implementation of the logging helpers.
 */

#include "logging.hh"

#include <atomic>
#include <iostream>

namespace nb
{

namespace
{

std::atomic<bool> quietFlag{false};

} // namespace

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

namespace detail
{

void
emitMessage(const char *prefix, const std::string &msg)
{
    // Errors are always shown; warn/inform respect the quiet flag.
    bool is_error = prefix[0] == 'p' || prefix[0] == 'f';
    if (!is_error && isQuiet())
        return;
    std::cerr << prefix << msg << "\n";
}

} // namespace detail

} // namespace nb
