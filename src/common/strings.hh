/**
 * @file
 * Small string utilities used by the assembler, the counter-config parser,
 * and the access-sequence language.
 */

#ifndef NB_COMMON_STRINGS_HH
#define NB_COMMON_STRINGS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nb
{

/** Strip leading and trailing whitespace. */
std::string trim(std::string_view s);

/** Split on a delimiter character; empty fields are preserved. */
std::vector<std::string> split(std::string_view s, char delim);

/** Split on runs of whitespace; no empty fields are produced. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** ASCII lower-case copy. */
std::string toLower(std::string_view s);

/** ASCII upper-case copy. */
std::string toUpper(std::string_view s);

/** Case-insensitive ASCII comparison. */
bool iequals(std::string_view a, std::string_view b);

bool startsWith(std::string_view s, std::string_view prefix);
bool endsWith(std::string_view s, std::string_view suffix);

/**
 * Parse an integer with optional 0x prefix; returns std::nullopt on any
 * syntax error or overflow.
 */
std::optional<std::int64_t> parseInt(std::string_view s);

/** Parse a hexadecimal string (no prefix required). */
std::optional<std::uint64_t> parseHex(std::string_view s);

/** Join the elements with a separator. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

} // namespace nb

#endif // NB_COMMON_STRINGS_HH
