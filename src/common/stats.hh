/**
 * @file
 * Aggregate functions applied to repeated benchmark measurements
 * (paper §III-C): minimum, median, and arithmetic mean excluding the top
 * and bottom 20% of values, plus general summary statistics used by the
 * analysis tools.
 */

#ifndef NB_COMMON_STATS_HH
#define NB_COMMON_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace nb
{

/** Aggregate applied over the per-run measurements (paper §III-C). */
enum class Aggregate
{
    Minimum,
    /** Maximum: the worst run. Not in the paper's default set; the
     *  plan/decode policy-inference split pairs it with Minimum to
     *  detect non-deterministic measurements. */
    Maximum,
    Median,
    /** Arithmetic mean excluding the top and bottom 20% of the values. */
    TrimmedMean,
    /** Plain arithmetic mean (not in the paper's default set; useful for
     *  tests and for averaging non-deterministic cache experiments). */
    Mean,
};

/** Parse an aggregate name ("min", "med", "avg", "mean"). */
Aggregate parseAggregate(const std::string &name);

/** Human-readable name of an aggregate. */
std::string aggregateName(Aggregate agg);

/** Apply @p agg to @p values; values may arrive in any order. */
double applyAggregate(Aggregate agg, std::vector<double> values);

/** Maximum of a non-empty vector. */
double maximum(const std::vector<double> &values);

/** Minimum of a non-empty vector. */
double minimum(const std::vector<double> &values);

/** Median of a non-empty vector (mean of middle two for even sizes). */
double median(std::vector<double> values);

/** Mean excluding the top and bottom @p trim_fraction of values. */
double trimmedMean(std::vector<double> values, double trim_fraction = 0.20);

/** Plain arithmetic mean of a non-empty vector. */
double mean(const std::vector<double> &values);

/** Population standard deviation; 0 for vectors of size < 2. */
double stddev(const std::vector<double> &values);

/** Online min/max/mean/variance accumulator (Welford). */
class RunningStats
{
  public:
    void add(double value);

    std::size_t count() const { return count_; }
    double min() const;
    double max() const;
    double mean() const;
    double variance() const;
    double stddev() const;

  private:
    std::size_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

} // namespace nb

#endif // NB_COMMON_STATS_HH
