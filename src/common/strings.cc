/**
 * @file
 * Implementation of the string utilities.
 */

#include "strings.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace nb
{

namespace
{

bool
isSpace(unsigned char c)
{
    return std::isspace(c) != 0;
}

} // namespace

std::string
trim(std::string_view s)
{
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end && isSpace(s[begin]))
        ++begin;
    while (end > begin && isSpace(s[end - 1]))
        --end;
    return std::string(s.substr(begin, end - begin));
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && isSpace(s[i]))
            ++i;
        std::size_t start = i;
        while (i < s.size() && !isSpace(s[i]))
            ++i;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

std::string
toUpper(std::string_view s)
{
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    return out;
}

bool
iequals(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<std::int64_t>
parseInt(std::string_view s)
{
    std::string buf = trim(s);
    if (buf.empty())
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(buf.c_str(), &end, 0);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return std::nullopt;
    return static_cast<std::int64_t>(v);
}

std::optional<std::uint64_t>
parseHex(std::string_view s)
{
    std::string buf = trim(s);
    if (startsWith(buf, "0x") || startsWith(buf, "0X"))
        buf = buf.substr(2);
    if (buf.empty())
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(buf.c_str(), &end, 16);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return std::nullopt;
    return static_cast<std::uint64_t>(v);
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

} // namespace nb
