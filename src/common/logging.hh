/**
 * @file
 * Status-message and error helpers in the spirit of gem5's logging.hh.
 *
 * Two error levels are distinguished:
 *   - panic(): an internal invariant was violated (a bug in this library);
 *     aborts so that a debugger or core dump can capture the state.
 *   - fatal(): the *user* asked for something impossible (bad configuration,
 *     malformed assembly, invalid parameters); exits with an error code.
 *
 * warn()/inform() print to stderr and never stop execution.
 */

#ifndef NB_COMMON_LOGGING_HH
#define NB_COMMON_LOGGING_HH

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace nb
{

/** Exception thrown by fatal() so that library users and tests can catch
 *  user-level errors instead of terminating the process. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown by panic(); indicates a library bug. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/**
 * Thrown when a simulated execution exceeds its cycle budget
 * (sim::Machine::setCycleBudget). Derives from FatalError so existing
 * catch sites degrade to a generic execution error; budget-aware
 * callers (Engine::runSpecOnRunner) catch it first and surface a typed
 * RunError::Code::BudgetExceeded carrying the partial progress below.
 */
class BudgetExceededError : public FatalError
{
  public:
    BudgetExceededError(const std::string &msg,
                        std::uint64_t instructions,
                        std::uint64_t cycles, std::uint64_t budget)
        : FatalError(msg), instructions_(instructions),
          cycles_(cycles), budget_(budget)
    {
    }

    /** Instructions retired before the budget tripped. */
    std::uint64_t instructions() const { return instructions_; }
    /** Cycles consumed when the budget tripped. */
    std::uint64_t cycles() const { return cycles_; }
    /** The budget that was exceeded. */
    std::uint64_t budget() const { return budget_; }

  private:
    std::uint64_t instructions_;
    std::uint64_t cycles_;
    std::uint64_t budget_;
};

namespace detail
{

void emitMessage(const char *prefix, const std::string &msg);

template <typename... Args>
std::string
formatParts(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report an unrecoverable internal error (library bug) and throw. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::formatParts(std::forward<Args>(args)...);
    detail::emitMessage("panic: ", msg);
    throw PanicError(msg);
}

/** Report an unrecoverable user error (bad input/configuration) and throw. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::formatParts(std::forward<Args>(args)...);
    detail::emitMessage("fatal: ", msg);
    throw FatalError(msg);
}

/** Warn about a condition that might lead to surprising results. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitMessage(
        "warn: ", detail::formatParts(std::forward<Args>(args)...));
}

/** Print a purely informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitMessage(
        "info: ", detail::formatParts(std::forward<Args>(args)...));
}

/** Globally silence warn()/inform() (used by benches for clean output). */
void setQuiet(bool quiet);
bool isQuiet();

/**
 * RAII guard: while an instance is alive on this thread, fatal()
 * still throws FatalError but does not print to stderr first. Used by
 * code that catches FatalErrors and reports them as data (e.g.
 * Session::run), so expected failures do not spam stderr. panic() is
 * never suppressed.
 */
class ScopedFatalMessageSuppression
{
  public:
    ScopedFatalMessageSuppression();
    ~ScopedFatalMessageSuppression();
    ScopedFatalMessageSuppression(
        const ScopedFatalMessageSuppression &) = delete;
    ScopedFatalMessageSuppression &operator=(
        const ScopedFatalMessageSuppression &) = delete;
};

bool fatalMessagesSuppressed();

/** panic() unless the given condition holds. */
#define NB_ASSERT(cond, ...)                                                  \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::nb::panic("assertion '", #cond, "' failed: ", __VA_ARGS__);     \
        }                                                                     \
    } while (0)

} // namespace nb

#endif // NB_COMMON_LOGGING_HH
