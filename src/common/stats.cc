/**
 * @file
 * Implementation of the measurement aggregates.
 */

#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "logging.hh"

namespace nb
{

Aggregate
parseAggregate(const std::string &name)
{
    if (name == "min")
        return Aggregate::Minimum;
    if (name == "max")
        return Aggregate::Maximum;
    if (name == "med" || name == "median")
        return Aggregate::Median;
    if (name == "avg" || name == "trimmed")
        return Aggregate::TrimmedMean;
    if (name == "mean")
        return Aggregate::Mean;
    fatal("unknown aggregate function '", name,
          "' (expected min, max, med, avg, or mean)");
}

std::string
aggregateName(Aggregate agg)
{
    switch (agg) {
      case Aggregate::Minimum:
        return "min";
      case Aggregate::Maximum:
        return "max";
      case Aggregate::Median:
        return "med";
      case Aggregate::TrimmedMean:
        return "avg";
      case Aggregate::Mean:
        return "mean";
    }
    panic("unreachable aggregate value");
}

double
applyAggregate(Aggregate agg, std::vector<double> values)
{
    switch (agg) {
      case Aggregate::Minimum:
        return minimum(values);
      case Aggregate::Maximum:
        return maximum(values);
      case Aggregate::Median:
        return median(std::move(values));
      case Aggregate::TrimmedMean:
        return trimmedMean(std::move(values));
      case Aggregate::Mean:
        return mean(values);
    }
    panic("unreachable aggregate value");
}

double
maximum(const std::vector<double> &values)
{
    NB_ASSERT(!values.empty(), "maximum of empty vector");
    return *std::max_element(values.begin(), values.end());
}

double
minimum(const std::vector<double> &values)
{
    NB_ASSERT(!values.empty(), "minimum of empty vector");
    return *std::min_element(values.begin(), values.end());
}

double
median(std::vector<double> values)
{
    NB_ASSERT(!values.empty(), "median of empty vector");
    std::sort(values.begin(), values.end());
    std::size_t n = values.size();
    if (n % 2 == 1)
        return values[n / 2];
    return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double
trimmedMean(std::vector<double> values, double trim_fraction)
{
    NB_ASSERT(!values.empty(), "trimmedMean of empty vector");
    NB_ASSERT(trim_fraction >= 0.0 && trim_fraction < 0.5,
              "trim fraction must be in [0, 0.5)");
    std::sort(values.begin(), values.end());
    auto cut = static_cast<std::size_t>(
        std::floor(values.size() * trim_fraction));
    // Always keep at least one value.
    while (cut > 0 && values.size() - 2 * cut < 1)
        --cut;
    double sum = std::accumulate(
        values.begin() + cut, values.end() - cut, 0.0);
    return sum / static_cast<double>(values.size() - 2 * cut);
}

double
mean(const std::vector<double> &values)
{
    NB_ASSERT(!values.empty(), "mean of empty vector");
    return std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size()));
}

void
RunningStats::add(double value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

double
RunningStats::min() const
{
    NB_ASSERT(count_ > 0, "min of empty RunningStats");
    return min_;
}

double
RunningStats::max() const
{
    NB_ASSERT(count_ > 0, "max of empty RunningStats");
    return max_;
}

double
RunningStats::mean() const
{
    NB_ASSERT(count_ > 0, "mean of empty RunningStats");
    return mean_;
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace nb
