/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * All stochastic behaviour in the simulator (interrupt arrival, CPUID
 * latency jitter, probabilistic QLRU insertion, ...) draws from instances
 * of this generator, so experiments are reproducible bit-for-bit given a
 * seed. The generator is deliberately not std::mt19937 so that results do
 * not depend on standard-library implementation details.
 */

#ifndef NB_COMMON_RNG_HH
#define NB_COMMON_RNG_HH

#include <cstdint>

namespace nb
{

/**
 * xoshiro256** 1.0 by Blackman and Vigna (public domain reference
 * implementation, reformulated), seeded via splitmix64.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound); bound must be > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Bernoulli draw: true with probability 1/denominator. */
    bool oneIn(std::uint64_t denominator);

    /** Uniform double in [0, 1). */
    double nextDouble();

  private:
    std::uint64_t state_[4];
};

} // namespace nb

#endif // NB_COMMON_RNG_HH
