/**
 * @file
 * Bit-manipulation helpers used by the cache indexing and slice-hash code.
 */

#ifndef NB_COMMON_BITS_HH
#define NB_COMMON_BITS_HH

#include <bit>
#include <cstdint>

namespace nb
{

/** True iff @p v is a (non-zero) power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** Ceil of log2(v); v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOfTwo(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Extract bits [lo, hi] (inclusive) of @p v, right-aligned. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned hi, unsigned lo)
{
    std::uint64_t width = hi - lo + 1;
    std::uint64_t mask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    return (v >> lo) & mask;
}

/** Extract a single bit of @p v. */
constexpr std::uint64_t
bit(std::uint64_t v, unsigned pos)
{
    return (v >> pos) & 1ULL;
}

/** XOR-reduction (parity) of all bits of @p v. */
constexpr unsigned
parity(std::uint64_t v)
{
    return static_cast<unsigned>(std::popcount(v) & 1);
}

/** Align @p v down to a multiple of @p alignment (a power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t alignment)
{
    return v & ~(alignment - 1);
}

/** Align @p v up to a multiple of @p alignment (a power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t alignment)
{
    return (v + alignment - 1) & ~(alignment - 1);
}

} // namespace nb

#endif // NB_COMMON_BITS_HH
