/**
 * @file
 * Set-associative cache implementation.
 */

#include "cache.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace nb::cache
{

Cache::Cache(const CacheConfig &config)
    : config_(config), numSets_(config.numSets()),
      offsetBits_(floorLog2(config.lineSize)),
      indexBits_(floorLog2(config.numSets()))
{
    NB_ASSERT(isPowerOfTwo(config.lineSize), "line size must be 2^k");
    NB_ASSERT(numSets_ > 0 && isPowerOfTwo(numSets_),
              "set count must be a positive power of two, got ", numSets_,
              " for ", config.name);
    NB_ASSERT(config.policyFactory != nullptr,
              "cache ", config.name, " needs a policy factory");

    lines_.resize(static_cast<std::size_t>(numSets_) * config.assoc);
    validBits_.assign(numSets_, std::vector<bool>(config.assoc, false));
    policies_.reserve(numSets_);
    for (unsigned s = 0; s < numSets_; ++s) {
        auto policy = config.policyFactory(s);
        NB_ASSERT(policy != nullptr, "null policy for set ", s);
        NB_ASSERT(policy->assoc() == config.assoc,
                  "policy assoc mismatch in ", config.name);
        policies_.push_back(std::move(policy));
    }
}

unsigned
Cache::setIndex(Addr addr) const
{
    return static_cast<unsigned>(bits(addr, offsetBits_ + indexBits_ - 1,
                                      offsetBits_));
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> (offsetBits_ + indexBits_);
}

Addr
Cache::addrOf(unsigned set, Addr tag) const
{
    return (tag << (offsetBits_ + indexBits_)) |
           (static_cast<Addr>(set) << offsetBits_);
}

int
Cache::findWay(unsigned set, Addr tag) const
{
    const Line *base = &lines_[static_cast<std::size_t>(set) *
                               config_.assoc];
    for (unsigned w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

bool
Cache::probe(Addr addr) const
{
    return findWay(setIndex(addr), tagOf(addr)) >= 0;
}

LineAccessResult
Cache::access(Addr addr, bool write)
{
    unsigned set = setIndex(addr);
    Addr tag = tagOf(addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * config_.assoc];
    LineAccessResult result;
    result.set = set;

    int way = findWay(set, tag);
    if (way >= 0) {
        ++stats_.hits;
        result.hit = true;
        result.way = static_cast<unsigned>(way);
        if (write)
            base[way].dirty = true;
        policies_[set]->onHit(static_cast<unsigned>(way), validBits_[set]);
        return result;
    }

    ++stats_.misses;
    unsigned victim = policies_[set]->insertWay(validBits_[set]);
    NB_ASSERT(victim < config_.assoc, "policy returned bad way ", victim);
    Line &line = base[victim];
    if (line.valid) {
        ++stats_.evictions;
        result.evicted = addrOf(set, line.tag);
        result.evictedDirty = line.dirty;
        if (line.dirty)
            ++stats_.writebacks;
        policies_[set]->onInvalidate(victim);
    }
    line.tag = tag;
    line.valid = true;
    line.dirty = write;
    validBits_[set][victim] = true;
    result.way = victim;
    // Contract: validBits reflect the state *after* the insertion.
    policies_[set]->onInsert(victim, validBits_[set]);
    return result;
}

LineAccessResult
Cache::accessNoAlloc(Addr addr, bool write)
{
    unsigned set = setIndex(addr);
    Addr tag = tagOf(addr);
    LineAccessResult result;
    result.set = set;
    int way = findWay(set, tag);
    if (way >= 0) {
        ++stats_.hits;
        result.hit = true;
        result.way = static_cast<unsigned>(way);
        if (write) {
            lines_[static_cast<std::size_t>(set) * config_.assoc + way]
                .dirty = true;
        }
        policies_[set]->onHit(static_cast<unsigned>(way), validBits_[set]);
    } else {
        ++stats_.misses;
    }
    return result;
}

bool
Cache::invalidate(Addr addr)
{
    unsigned set = setIndex(addr);
    int way = findWay(set, tagOf(addr));
    if (way < 0)
        return false;
    Line &line =
        lines_[static_cast<std::size_t>(set) * config_.assoc + way];
    line.valid = false;
    line.dirty = false;
    validBits_[set][way] = false;
    ++stats_.invalidations;
    policies_[set]->onInvalidate(static_cast<unsigned>(way));
    return true;
}

void
Cache::flushAll()
{
    for (auto &line : lines_) {
        line.valid = false;
        line.dirty = false;
    }
    for (auto &set_bits : validBits_)
        set_bits.assign(config_.assoc, false);
    for (auto &policy : policies_)
        policy->reset();
}

bool
Cache::setFull(unsigned set) const
{
    return setOccupancy(set) == config_.assoc;
}

unsigned
Cache::setOccupancy(unsigned set) const
{
    unsigned n = 0;
    for (bool v : validBits_[set])
        n += v ? 1 : 0;
    return n;
}

} // namespace nb::cache
