/**
 * @file
 * Replacement-policy implementations.
 */

#include "policy.hh"

#include <algorithm>
#include <sstream>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/strings.hh"

namespace nb::cache
{

namespace
{

/** Leftmost invalid way, or nullopt if the set is full. */
std::optional<unsigned>
leftmostEmpty(const std::vector<bool> &valid)
{
    for (unsigned w = 0; w < valid.size(); ++w) {
        if (!valid[w])
            return w;
    }
    return std::nullopt;
}

/** Rightmost invalid way, or nullopt if the set is full. */
std::optional<unsigned>
rightmostEmpty(const std::vector<bool> &valid)
{
    for (unsigned w = static_cast<unsigned>(valid.size()); w-- > 0;) {
        if (!valid[w])
            return w;
    }
    return std::nullopt;
}

} // namespace

// ---------------------------------------------------------------- LRU --

LruPolicy::LruPolicy(unsigned assoc)
    : SetPolicy(assoc), stamps_(assoc, 0)
{
}

void
LruPolicy::reset()
{
    std::fill(stamps_.begin(), stamps_.end(), 0);
    clock_ = 0;
}

void
LruPolicy::touch(unsigned way)
{
    stamps_[way] = ++clock_;
}

unsigned
LruPolicy::insertWay(const std::vector<bool> &valid)
{
    if (auto w = leftmostEmpty(valid))
        return *w;
    return static_cast<unsigned>(std::distance(
        stamps_.begin(), std::min_element(stamps_.begin(), stamps_.end())));
}

void
LruPolicy::onInsert(unsigned way, const std::vector<bool> &)
{
    touch(way);
}

void
LruPolicy::onHit(unsigned way, const std::vector<bool> &)
{
    touch(way);
}

std::unique_ptr<SetPolicy>
LruPolicy::clone() const
{
    return std::make_unique<LruPolicy>(*this);
}

std::string
LruPolicy::debugState() const
{
    std::ostringstream os;
    for (unsigned w = 0; w < assoc_; ++w)
        os << (w ? " " : "") << stamps_[w];
    return os.str();
}

// --------------------------------------------------------------- FIFO --

FifoPolicy::FifoPolicy(unsigned assoc)
    : SetPolicy(assoc), stamps_(assoc, 0)
{
}

void
FifoPolicy::reset()
{
    std::fill(stamps_.begin(), stamps_.end(), 0);
    clock_ = 0;
}

unsigned
FifoPolicy::insertWay(const std::vector<bool> &valid)
{
    if (auto w = leftmostEmpty(valid))
        return *w;
    return static_cast<unsigned>(std::distance(
        stamps_.begin(), std::min_element(stamps_.begin(), stamps_.end())));
}

void
FifoPolicy::onInsert(unsigned way, const std::vector<bool> &)
{
    stamps_[way] = ++clock_;
}

void
FifoPolicy::onHit(unsigned, const std::vector<bool> &)
{
    // FIFO ignores hits.
}

std::unique_ptr<SetPolicy>
FifoPolicy::clone() const
{
    return std::make_unique<FifoPolicy>(*this);
}

std::string
FifoPolicy::debugState() const
{
    std::ostringstream os;
    for (unsigned w = 0; w < assoc_; ++w)
        os << (w ? " " : "") << stamps_[w];
    return os.str();
}

// --------------------------------------------------------------- PLRU --

PlruPolicy::PlruPolicy(unsigned assoc)
    : SetPolicy(assoc), bits_(assoc > 1 ? assoc - 1 : 0, 0),
      levels_(assoc > 1 ? floorLog2(assoc) : 0)
{
    NB_ASSERT(isPowerOfTwo(assoc), "PLRU requires power-of-two assoc, got ",
              assoc);
}

void
PlruPolicy::reset()
{
    std::fill(bits_.begin(), bits_.end(), 0);
}

unsigned
PlruPolicy::victim() const
{
    // Follow the tree bits from the root: bit 0 -> left, 1 -> right.
    unsigned node = 0;
    for (unsigned l = 0; l < levels_; ++l)
        node = 2 * node + 1 + bits_[node];
    return node - (assoc_ - 1);
}

void
PlruPolicy::touch(unsigned way)
{
    // Walk from the leaf to the root, pointing every node away from the
    // path that was taken.
    unsigned node = way + (assoc_ - 1);
    while (node != 0) {
        unsigned parent = (node - 1) / 2;
        bool came_from_left = node == 2 * parent + 1;
        bits_[parent] = came_from_left ? 1 : 0;
        node = parent;
    }
}

unsigned
PlruPolicy::insertWay(const std::vector<bool> &valid)
{
    if (auto w = leftmostEmpty(valid))
        return *w;
    return victim();
}

void
PlruPolicy::onInsert(unsigned way, const std::vector<bool> &)
{
    touch(way);
}

void
PlruPolicy::onHit(unsigned way, const std::vector<bool> &)
{
    touch(way);
}

std::unique_ptr<SetPolicy>
PlruPolicy::clone() const
{
    return std::make_unique<PlruPolicy>(*this);
}

std::string
PlruPolicy::debugState() const
{
    std::string s;
    for (auto b : bits_)
        s += b ? '1' : '0';
    return s;
}

// ------------------------------------------------------------- Random --

RandomPolicy::RandomPolicy(unsigned assoc, Rng *rng)
    : SetPolicy(assoc), rng_(rng)
{
    NB_ASSERT(rng != nullptr, "RandomPolicy requires an RNG");
}

unsigned
RandomPolicy::insertWay(const std::vector<bool> &valid)
{
    if (auto w = leftmostEmpty(valid))
        return *w;
    return static_cast<unsigned>(rng_->nextBelow(assoc_));
}

std::unique_ptr<SetPolicy>
RandomPolicy::clone() const
{
    return std::make_unique<RandomPolicy>(*this);
}

// ---------------------------------------------------------------- MRU --

MruPolicy::MruPolicy(unsigned assoc, bool sandy_bridge_variant)
    : SetPolicy(assoc), bits_(assoc, 1), sbVariant_(sandy_bridge_variant)
{
}

void
MruPolicy::reset()
{
    std::fill(bits_.begin(), bits_.end(), 1);
}

void
MruPolicy::access(unsigned way)
{
    bits_[way] = 0;
    if (std::find(bits_.begin(), bits_.end(), 1) == bits_.end()) {
        // The accessed line held the last set bit: set all other bits.
        std::fill(bits_.begin(), bits_.end(), 1);
        bits_[way] = 0;
    }
}

unsigned
MruPolicy::insertWay(const std::vector<bool> &valid)
{
    if (auto w = leftmostEmpty(valid))
        return *w;
    // Replace the leftmost element whose bit is set.
    for (unsigned w = 0; w < assoc_; ++w) {
        if (bits_[w])
            return w;
    }
    // Unreachable in a well-formed state (access() keeps >= 1 bit set),
    // but be defensive.
    return 0;
}

void
MruPolicy::onInsert(unsigned way, const std::vector<bool> &valid)
{
    if (sbVariant_ &&
        std::find(valid.begin(), valid.end(), false) != valid.end()) {
        // Sandy Bridge variant: while the cache is not yet full, fills
        // leave all status bits set (newly inserted blocks are eviction
        // candidates immediately).
        std::fill(bits_.begin(), bits_.end(), 1);
        return;
    }
    access(way);
}

void
MruPolicy::onHit(unsigned way, const std::vector<bool> &)
{
    access(way);
}

std::string
MruPolicy::name() const
{
    return sbVariant_ ? "MRU_SBV" : "MRU";
}

std::unique_ptr<SetPolicy>
MruPolicy::clone() const
{
    return std::make_unique<MruPolicy>(*this);
}

std::string
MruPolicy::debugState() const
{
    std::string s;
    for (auto b : bits_)
        s += b ? '1' : '0';
    return s;
}

// --------------------------------------------------------------- QLRU --

std::string
QlruSpec::name() const
{
    std::ostringstream os;
    os << "QLRU_H" << hitX << hitY << "_M";
    if (probDenom > 1)
        os << "R" << probDenom;
    os << insertAge << "_R" << rVariant << "_U" << uVariant;
    if (umo)
        os << "_UMO";
    return os.str();
}

std::optional<QlruSpec>
QlruSpec::parse(const std::string &name)
{
    auto parts = split(name, '_');
    if (parts.size() < 5 || parts[0] != "QLRU")
        return std::nullopt;
    QlruSpec spec;
    // H part: "Hxy"
    const std::string &h = parts[1];
    if (h.size() != 3 || h[0] != 'H' || h[1] < '0' || h[1] > '2' ||
        h[2] < '0' || h[2] > '1')
        return std::nullopt;
    spec.hitX = static_cast<unsigned>(h[1] - '0');
    spec.hitY = static_cast<unsigned>(h[2] - '0');
    // M part: "Mx" or "MRpx" (p may be multi-digit; x is one digit).
    const std::string &m = parts[2];
    if (m.size() < 2 || m[0] != 'M')
        return std::nullopt;
    if (m[1] == 'R') {
        if (m.size() < 4)
            return std::nullopt;
        auto p = parseInt(m.substr(2, m.size() - 3));
        char x = m.back();
        if (!p || *p < 2 || x < '0' || x > '3')
            return std::nullopt;
        spec.probDenom = static_cast<unsigned>(*p);
        spec.insertAge = static_cast<unsigned>(x - '0');
    } else {
        auto x = parseInt(m.substr(1));
        if (!x || *x < 0 || *x > 3)
            return std::nullopt;
        spec.probDenom = 1;
        spec.insertAge = static_cast<unsigned>(*x);
    }
    // R part: "Rx"
    const std::string &r = parts[3];
    if (r.size() != 2 || r[0] != 'R' || r[1] < '0' || r[1] > '2')
        return std::nullopt;
    spec.rVariant = static_cast<unsigned>(r[1] - '0');
    // U part: "Ux"
    const std::string &u = parts[4];
    if (u.size() != 2 || u[0] != 'U' || u[1] < '0' || u[1] > '3')
        return std::nullopt;
    spec.uVariant = static_cast<unsigned>(u[1] - '0');
    // Optional UMO suffix.
    if (parts.size() == 6) {
        if (parts[5] != "UMO")
            return std::nullopt;
        spec.umo = true;
    } else if (parts.size() > 6) {
        return std::nullopt;
    }
    return spec;
}

bool
QlruSpec::isValid() const
{
    if (hitX > 2 || hitY > 1 || insertAge > 3 || rVariant > 2 ||
        uVariant > 3)
        return false;
    // §VI-B2: R0 always requires at least one block with age 3, so it
    // cannot be combined with U2/U3 (which only increment by one).
    if (rVariant == 0 && (uVariant == 2 || uVariant == 3))
        return false;
    return true;
}

QlruPolicy::QlruPolicy(unsigned assoc, const QlruSpec &spec, Rng *rng)
    : SetPolicy(assoc), spec_(spec), rng_(rng), ages_(assoc, 3)
{
    NB_ASSERT(spec.isValid(), "invalid QLRU spec ", spec.name());
    NB_ASSERT(spec.probDenom == 1 || rng != nullptr,
              "probabilistic QLRU requires an RNG");
}

void
QlruPolicy::reset()
{
    std::fill(ages_.begin(), ages_.end(), 3);
}

void
QlruPolicy::setSpec(const QlruSpec &spec)
{
    NB_ASSERT(spec.isValid(), "invalid QLRU spec ", spec.name());
    spec_ = spec;
}

unsigned
QlruPolicy::promote(unsigned age) const
{
    if (age == 3)
        return spec_.hitX;
    if (age == 2)
        return spec_.hitY;
    return 0;
}

unsigned
QlruPolicy::chooseInsertAge()
{
    if (spec_.probDenom <= 1)
        return spec_.insertAge;
    return rng_->oneIn(spec_.probDenom) ? spec_.insertAge : 3;
}

void
QlruPolicy::normalize(std::optional<unsigned> accessed,
                      const std::vector<bool> &valid)
{
    // Find the maximum age among valid blocks.
    unsigned max_age = 0;
    bool any_valid = false;
    for (unsigned w = 0; w < assoc_; ++w) {
        if (valid[w]) {
            any_valid = true;
            max_age = std::max(max_age, unsigned{ages_[w]});
        }
    }
    if (!any_valid || max_age == 3)
        return;

    unsigned delta = (spec_.uVariant == 0 || spec_.uVariant == 1)
                         ? 3 - max_age
                         : 1;
    bool exclude_accessed = spec_.uVariant == 1 || spec_.uVariant == 3;
    for (unsigned w = 0; w < assoc_; ++w) {
        if (!valid[w])
            continue;
        if (exclude_accessed && accessed && *accessed == w)
            continue;
        ages_[w] = static_cast<std::uint8_t>(
            std::min(3u, unsigned{ages_[w]} + delta));
    }
}

unsigned
QlruPolicy::insertWay(const std::vector<bool> &valid)
{
    // Not yet full: R0/R1 fill the leftmost empty location, R2 the
    // rightmost.
    if (spec_.rVariant == 2) {
        if (auto w = rightmostEmpty(valid))
            return *w;
    } else {
        if (auto w = leftmostEmpty(valid))
            return *w;
    }

    // Full: UMO variants run the age update now, before victim selection.
    if (spec_.umo)
        normalize(std::nullopt, valid);

    // Replace the leftmost block whose age is 3.
    for (unsigned w = 0; w < assoc_; ++w) {
        if (ages_[w] == 3)
            return w;
    }
    // No age-3 block: R1 replaces the leftmost block regardless; for R0
    // the behaviour is undefined in the paper -- fall back to way 0.
    return 0;
}

void
QlruPolicy::onInsert(unsigned way, const std::vector<bool> &valid)
{
    ages_[way] = static_cast<std::uint8_t>(chooseInsertAge());
    if (!spec_.umo)
        normalize(way, valid);
}

void
QlruPolicy::onHit(unsigned way, const std::vector<bool> &valid)
{
    ages_[way] = static_cast<std::uint8_t>(promote(ages_[way]));
    if (!spec_.umo)
        normalize(way, valid);
}

std::unique_ptr<SetPolicy>
QlruPolicy::clone() const
{
    return std::make_unique<QlruPolicy>(*this);
}

std::string
QlruPolicy::debugState() const
{
    std::string s;
    for (auto a : ages_)
        s += static_cast<char>('0' + a);
    return s;
}

// -------------------------------------------------------------- factory --

std::unique_ptr<SetPolicy>
makePolicy(const std::string &name, unsigned assoc, Rng *rng)
{
    if (name == "LRU")
        return std::make_unique<LruPolicy>(assoc);
    if (name == "FIFO")
        return std::make_unique<FifoPolicy>(assoc);
    if (name == "PLRU")
        return std::make_unique<PlruPolicy>(assoc);
    if (name == "RANDOM")
        return std::make_unique<RandomPolicy>(assoc, rng);
    if (name == "MRU")
        return std::make_unique<MruPolicy>(assoc, false);
    if (name == "MRU_SBV" || name == "MRU*")
        return std::make_unique<MruPolicy>(assoc, true);
    if (auto spec = QlruSpec::parse(name))
        return std::make_unique<QlruPolicy>(assoc, *spec, rng);
    fatal("unknown replacement policy '", name, "'");
}

std::vector<QlruSpec>
allQlruSpecs()
{
    std::vector<QlruSpec> specs;
    for (unsigned hx : {0u, 1u, 2u}) {
        for (unsigned hy : {0u, 1u}) {
            for (unsigned m : {0u, 1u, 2u, 3u}) {
                for (unsigned r : {0u, 1u, 2u}) {
                    for (unsigned u : {0u, 1u, 2u, 3u}) {
                        for (bool umo : {false, true}) {
                            QlruSpec s;
                            s.hitX = hx;
                            s.hitY = hy;
                            s.insertAge = m;
                            s.probDenom = 1;
                            s.rVariant = r;
                            s.uVariant = u;
                            s.umo = umo;
                            if (s.isValid())
                                specs.push_back(s);
                        }
                    }
                }
            }
        }
    }
    return specs;
}

} // namespace nb::cache
