/**
 * @file
 * Permutation policies (paper §VI-B1).
 *
 * A permutation policy maintains a total order of the elements in a cache
 * set; a hit updates the order based only on the accessed element's
 * position; a miss replaces the smallest element. Such a policy is fully
 * specified by A+1 permutations: one per hit position plus one for
 * misses. LRU, FIFO, and tree-based PLRU are permutation policies.
 *
 * Conventions used here:
 *  - position 0 is the smallest element (the victim on a miss);
 *  - a permutation pi maps old positions to new positions:
 *    new_order[pi[q]] = old_order[q];
 *  - on a miss, the new block first takes position 0 (replacing the
 *    victim), then the miss permutation is applied.
 */

#ifndef NB_CACHE_PERMUTATION_HH
#define NB_CACHE_PERMUTATION_HH

#include <string>
#include <vector>

#include "cache/policy.hh"

namespace nb::cache
{

/** The A+1 permutations that define a permutation policy. */
struct PermutationSpec
{
    /** hitPerms[p] is applied after a hit at position p. */
    std::vector<std::vector<unsigned>> hitPerms;
    /** Applied after a miss (with the new block at position 0). */
    std::vector<unsigned> missPerm;

    bool operator==(const PermutationSpec &) const = default;

    unsigned assoc() const
    {
        return static_cast<unsigned>(hitPerms.size());
    }

    /** Sanity-check that every entry is a permutation of 0..A-1. */
    bool isValid() const;

    /** Multi-line human-readable rendering. */
    std::string toString() const;

    /** The LRU policy as a permutation spec. */
    static PermutationSpec lru(unsigned assoc);

    /** The FIFO policy as a permutation spec. */
    static PermutationSpec fifo(unsigned assoc);
};

/**
 * A cache-set policy driven by an explicit PermutationSpec. Fills (into
 * empty ways) are treated like misses: the filled way takes position 0
 * and the miss permutation is applied.
 */
class PermutationPolicy : public SetPolicy
{
  public:
    PermutationPolicy(unsigned assoc, PermutationSpec spec);

    void reset() override;
    unsigned insertWay(const std::vector<bool> &valid) override;
    void onInsert(unsigned way, const std::vector<bool> &valid) override;
    void onHit(unsigned way, const std::vector<bool> &valid) override;
    std::string name() const override { return "PERMUTATION"; }
    std::unique_ptr<SetPolicy> clone() const override;
    std::string debugState() const override;

    const PermutationSpec &spec() const { return spec_; }

    /** Current position of @p way in the order (for tests). */
    unsigned positionOf(unsigned way) const;

  private:
    void applyPermutation(const std::vector<unsigned> &perm);
    void moveToPositionZero(unsigned way);

    PermutationSpec spec_;
    /** order_[pos] = way currently at position pos; pos 0 is smallest. */
    std::vector<unsigned> order_;
};

} // namespace nb::cache

#endif // NB_CACHE_PERMUTATION_HH
