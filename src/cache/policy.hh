/**
 * @file
 * Cache replacement policies (paper §VI-B).
 *
 * One policy instance manages the state of a single cache set. The cache
 * owns the valid bits; policies are consulted for insertion positions and
 * notified of hits and insertions. The modelled policies are exactly
 * those the paper discusses:
 *
 *  - LRU, FIFO, tree-based PLRU, Random (§VI-B1)
 *  - MRU (a.k.a. bit-PLRU / PLRUm / NRU), including the Sandy Bridge
 *    variant that sets all status bits when the cache is not yet full
 *    (§VI-B2, §VI-D)
 *  - the full QLRU family parameterized by hit-promotion function Hxy,
 *    insertion age Mx / MRpx, insertion/replacement location R0-R2, age
 *    update U0-U3, and the UMO ("update on miss only") flag (§VI-B2)
 */

#ifndef NB_CACHE_POLICY_HH
#define NB_CACHE_POLICY_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace nb::cache
{

/** Replacement state for one cache set. */
class SetPolicy
{
  public:
    explicit SetPolicy(unsigned assoc) : assoc_(assoc) {}
    virtual ~SetPolicy() = default;

    unsigned assoc() const { return assoc_; }

    /** Clear all state (e.g. after WBINVD). */
    virtual void reset() = 0;

    /**
     * Choose the way a new block is inserted into on a miss. @p valid
     * gives current occupancy; the returned way may be empty (a fill)
     * or occupied (a replacement).
     */
    virtual unsigned insertWay(const std::vector<bool> &valid) = 0;

    /** Notify that a new block was inserted into @p way. */
    virtual void onInsert(unsigned way, const std::vector<bool> &valid) = 0;

    /** Notify that the block in @p way was accessed and hit. */
    virtual void onHit(unsigned way, const std::vector<bool> &valid) = 0;

    /** Notify that the block in @p way was invalidated (e.g. CLFLUSH). */
    virtual void onInvalidate(unsigned way) {(void)way;}

    /** Policy name using the paper's naming scheme. */
    virtual std::string name() const = 0;

    /** Deep copy (used by the policy-simulation tools). */
    virtual std::unique_ptr<SetPolicy> clone() const = 0;

    /** Internal state rendered for tests/debugging. */
    virtual std::string debugState() const { return ""; }

  protected:
    unsigned assoc_;
};

/** Least-recently-used. */
class LruPolicy : public SetPolicy
{
  public:
    explicit LruPolicy(unsigned assoc);

    void reset() override;
    unsigned insertWay(const std::vector<bool> &valid) override;
    void onInsert(unsigned way, const std::vector<bool> &valid) override;
    void onHit(unsigned way, const std::vector<bool> &valid) override;
    std::string name() const override { return "LRU"; }
    std::unique_ptr<SetPolicy> clone() const override;
    std::string debugState() const override;

  private:
    void touch(unsigned way);

    /** stamps_[w]: higher = more recently used. */
    std::vector<std::uint64_t> stamps_;
    std::uint64_t clock_ = 0;
};

/** First-in first-out: hits do not update the state. */
class FifoPolicy : public SetPolicy
{
  public:
    explicit FifoPolicy(unsigned assoc);

    void reset() override;
    unsigned insertWay(const std::vector<bool> &valid) override;
    void onInsert(unsigned way, const std::vector<bool> &valid) override;
    void onHit(unsigned way, const std::vector<bool> &valid) override;
    std::string name() const override { return "FIFO"; }
    std::unique_ptr<SetPolicy> clone() const override;
    std::string debugState() const override;

  private:
    std::vector<std::uint64_t> stamps_;
    std::uint64_t clock_ = 0;
};

/**
 * Tree-based pseudo-LRU (§VI-B1): a binary tree per set; the tree bits
 * point to the victim; accesses flip the bits on the root-to-leaf path
 * away from the accessed element. Associativity must be a power of two.
 */
class PlruPolicy : public SetPolicy
{
  public:
    explicit PlruPolicy(unsigned assoc);

    void reset() override;
    unsigned insertWay(const std::vector<bool> &valid) override;
    void onInsert(unsigned way, const std::vector<bool> &valid) override;
    void onHit(unsigned way, const std::vector<bool> &valid) override;
    std::string name() const override { return "PLRU"; }
    std::unique_ptr<SetPolicy> clone() const override;
    std::string debugState() const override;

  private:
    void touch(unsigned way);
    unsigned victim() const;

    /** Heap-layout tree bits; bits_[0] is the root. bit=0 points left. */
    std::vector<std::uint8_t> bits_;
    unsigned levels_;
};

/** Uniform-random replacement (needs the machine RNG for determinism). */
class RandomPolicy : public SetPolicy
{
  public:
    RandomPolicy(unsigned assoc, Rng *rng);

    void reset() override {}
    unsigned insertWay(const std::vector<bool> &valid) override;
    void onInsert(unsigned, const std::vector<bool> &) override {}
    void onHit(unsigned, const std::vector<bool> &) override {}
    std::string name() const override { return "RANDOM"; }
    std::unique_ptr<SetPolicy> clone() const override;

  private:
    Rng *rng_;
};

/**
 * MRU / bit-PLRU / PLRUm / NRU (§VI-B2): one status bit per line. An
 * access clears the line's bit; if it was the last set bit, all other
 * bits are set. A miss replaces the leftmost line whose bit is set.
 *
 * The Sandy Bridge variant (Table I footnote, §VI-D) additionally sets
 * all bits to one while the cache is not yet full after WBINVD.
 */
class MruPolicy : public SetPolicy
{
  public:
    /** @param sandy_bridge_variant enable the set-all-on-fill behaviour */
    MruPolicy(unsigned assoc, bool sandy_bridge_variant);

    void reset() override;
    unsigned insertWay(const std::vector<bool> &valid) override;
    void onInsert(unsigned way, const std::vector<bool> &valid) override;
    void onHit(unsigned way, const std::vector<bool> &valid) override;
    std::string name() const override;
    std::unique_ptr<SetPolicy> clone() const override;
    std::string debugState() const override;

  private:
    void access(unsigned way);

    std::vector<std::uint8_t> bits_;
    bool sbVariant_;
};

/** Parameters of a QLRU variant (§VI-B2). */
struct QlruSpec
{
    /** Hit promotion Hxy: age 3 -> hitX, age 2 -> hitY, else -> 0. */
    unsigned hitX = 1;      ///< x in {0, 1, 2}
    unsigned hitY = 1;      ///< y in {0, 1}
    /** Insertion age (Mx); with probDenom > 1, used with probability
     *  1/probDenom and age 3 otherwise (MRpx). */
    unsigned insertAge = 1; ///< x in {0, 1, 2, 3}
    unsigned probDenom = 1; ///< p; 1 means deterministic Mx
    /** Replacement/insertion location variant: 0, 1, or 2. */
    unsigned rVariant = 0;
    /** Age-update function: 0..3. */
    unsigned uVariant = 0;
    /** Update on miss only. */
    bool umo = false;

    bool operator==(const QlruSpec &) const = default;

    /** Paper-style name, e.g. "QLRU_H11_M1_R0_U0" or
     *  "QLRU_H11_MR161_R1_U2_UMO". */
    std::string name() const;

    /** Parse a paper-style name; nullopt if not a QLRU name. */
    static std::optional<QlruSpec> parse(const std::string &name);

    /** True if the parameter combination is meaningful (§VI-B2: e.g. R0
     *  cannot be combined with U2/U3). */
    bool isValid() const;
};

/** Quad-age LRU (QLRU / 2-bit RRIP) with the paper's parameter space. */
class QlruPolicy : public SetPolicy
{
  public:
    QlruPolicy(unsigned assoc, const QlruSpec &spec, Rng *rng);

    void reset() override;
    unsigned insertWay(const std::vector<bool> &valid) override;
    void onInsert(unsigned way, const std::vector<bool> &valid) override;
    void onHit(unsigned way, const std::vector<bool> &valid) override;
    std::string name() const override { return spec_.name(); }
    std::unique_ptr<SetPolicy> clone() const override;
    std::string debugState() const override;

    const QlruSpec &spec() const { return spec_; }

    /** Swap the spec while keeping the ages (used by set dueling). */
    void setSpec(const QlruSpec &spec);

    /** Ages vector (for tests). */
    const std::vector<std::uint8_t> &ages() const { return ages_; }

  private:
    /**
     * Apply the age update (§VI-B2): if no valid block has age 3, update
     * ages per the U variant. @p accessed is the way excluded by U1/U3,
     * or nullopt (miss-time update of UMO variants).
     */
    void normalize(std::optional<unsigned> accessed,
                   const std::vector<bool> &valid);

    unsigned promote(unsigned age) const;
    unsigned chooseInsertAge();

    QlruSpec spec_;
    Rng *rng_;
    std::vector<std::uint8_t> ages_;
};

/**
 * Parse any policy name ("LRU", "FIFO", "PLRU", "MRU", "MRU_SBV",
 * "RANDOM", or a QLRU name) and build an instance.
 *
 * @throws nb::FatalError for unknown names.
 */
std::unique_ptr<SetPolicy> makePolicy(const std::string &name,
                                      unsigned assoc, Rng *rng);

/**
 * All "meaningful" QLRU variants (§VI-C1 compares measurements against
 * them). Deterministic insertion only; @p max_total truncates the list
 * for tests.
 */
std::vector<QlruSpec> allQlruSpecs();

} // namespace nb::cache

#endif // NB_CACHE_POLICY_HH
