/**
 * @file
 * A single set-associative cache (one level, or one L3 slice).
 *
 * The cache owns the tag array and valid bits; replacement decisions are
 * delegated to a per-set SetPolicy instance produced by a factory, which
 * lets the L3 mix leader and follower sets for set dueling (§VI-B3).
 */

#ifndef NB_CACHE_CACHE_HH
#define NB_CACHE_CACHE_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/policy.hh"
#include "common/types.hh"

namespace nb::cache
{

/** Constructs the replacement policy for a given set index. */
using PolicyFactory =
    std::function<std::unique_ptr<SetPolicy>(unsigned set)>;

/** Geometry and policy of one cache. */
struct CacheConfig
{
    std::string name = "cache";
    Addr sizeBytes = 32 * 1024;
    unsigned assoc = 8;
    Addr lineSize = kCacheLineSize;
    PolicyFactory policyFactory;

    unsigned numSets() const
    {
        return static_cast<unsigned>(sizeBytes / (lineSize * assoc));
    }
};

/** Hit/miss statistics. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t invalidations = 0;

    std::uint64_t accesses() const { return hits + misses; }
};

/** Result of an access to one cache. */
struct LineAccessResult
{
    bool hit = false;
    unsigned set = 0;
    unsigned way = 0;
    /** Address of a line evicted to make room (fills only). */
    std::optional<Addr> evicted;
    /** The evicted line was dirty (needs writeback). */
    bool evictedDirty = false;
};

/** One set-associative cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    const std::string &name() const { return config_.name; }
    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return config_.assoc; }
    Addr lineSize() const { return config_.lineSize; }

    /** Set index for an address. */
    unsigned setIndex(Addr addr) const;
    /** Tag for an address. */
    Addr tagOf(Addr addr) const;
    /** Reconstruct a line-aligned address from set and tag. */
    Addr addrOf(unsigned set, Addr tag) const;

    /** Hit check without touching any state. */
    bool probe(Addr addr) const;

    /**
     * Access a line: on a hit, updates the replacement state; on a miss,
     * fills the line (replacing a victim if the set is full).
     *
     * @param addr Byte address (any offset within the line).
     * @param write Marks the line dirty.
     */
    LineAccessResult access(Addr addr, bool write);

    /**
     * Access that does NOT allocate on a miss (used for probes that model
     * uncached traffic).
     */
    LineAccessResult accessNoAlloc(Addr addr, bool write);

    /** Invalidate one line if present; returns true if it was present. */
    bool invalidate(Addr addr);

    /** Invalidate everything (WBINVD). */
    void flushAll();

    /** True if the given set is completely valid. */
    bool setFull(unsigned set) const;

    /** Number of valid lines in a set. */
    unsigned setOccupancy(unsigned set) const;

    const CacheStats &stats() const { return stats_; }
    void clearStats() { stats_ = CacheStats{}; }

    /** Replacement-policy instance of a set (for tests/tools). */
    const SetPolicy &policy(unsigned set) const { return *policies_[set]; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
    };

    int findWay(unsigned set, Addr tag) const;

    CacheConfig config_;
    unsigned numSets_;
    unsigned offsetBits_;
    unsigned indexBits_;
    /** lines_[set * assoc + way] */
    std::vector<Line> lines_;
    /** validBits_[set][way]; the view handed to policies. */
    std::vector<std::vector<bool>> validBits_;
    std::vector<std::unique_ptr<SetPolicy>> policies_;
    CacheStats stats_;
};

} // namespace nb::cache

#endif // NB_CACHE_CACHE_HH
