/**
 * @file
 * Set-dueling implementation.
 */

#include "dueling.hh"

#include "common/logging.hh"

namespace nb::cache
{

DuelRole
DuelingConfig::role(unsigned slice, unsigned set) const
{
    for (const auto &range : leaders) {
        if (range.slice >= 0 && static_cast<unsigned>(range.slice) != slice)
            continue;
        if (set >= range.setLo && set <= range.setHi)
            return range.role;
    }
    return DuelRole::Follower;
}

void
DuelState::recordMiss(DuelRole role)
{
    if (role == DuelRole::LeaderA) {
        if (psel_ < max_)
            ++psel_;
    } else if (role == DuelRole::LeaderB) {
        if (psel_ > 0)
            --psel_;
    }
}

AdaptiveQlruPolicy::AdaptiveQlruPolicy(unsigned assoc,
                                       const QlruSpec &spec_a,
                                       const QlruSpec &spec_b,
                                       DuelRole role, DuelState *duel,
                                       Rng *rng)
    : SetPolicy(assoc), specA_(spec_a), specB_(spec_b), role_(role),
      duel_(duel), engine_(assoc, spec_a, rng)
{
    NB_ASSERT(duel != nullptr, "AdaptiveQlruPolicy requires a DuelState");
}

const QlruSpec &
AdaptiveQlruPolicy::activeSpec() const
{
    switch (role_) {
      case DuelRole::LeaderA:
        return specA_;
      case DuelRole::LeaderB:
        return specB_;
      case DuelRole::Follower:
        return duel_->winner() == DuelRole::LeaderA ? specA_ : specB_;
    }
    panic("unreachable duel role");
}

void
AdaptiveQlruPolicy::syncEngine()
{
    engine_.setSpec(activeSpec());
}

void
AdaptiveQlruPolicy::reset()
{
    engine_.reset();
}

unsigned
AdaptiveQlruPolicy::insertWay(const std::vector<bool> &valid)
{
    syncEngine();
    return engine_.insertWay(valid);
}

void
AdaptiveQlruPolicy::onInsert(unsigned way, const std::vector<bool> &valid)
{
    // An insertion is the result of a miss: leaders vote.
    duel_->recordMiss(role_);
    syncEngine();
    engine_.onInsert(way, valid);
}

void
AdaptiveQlruPolicy::onHit(unsigned way, const std::vector<bool> &valid)
{
    syncEngine();
    engine_.onHit(way, valid);
}

std::string
AdaptiveQlruPolicy::name() const
{
    switch (role_) {
      case DuelRole::LeaderA:
        return specA_.name();
      case DuelRole::LeaderB:
        return specB_.name();
      case DuelRole::Follower:
        return "ADAPTIVE(" + specA_.name() + "," + specB_.name() + ")";
    }
    panic("unreachable duel role");
}

std::unique_ptr<SetPolicy>
AdaptiveQlruPolicy::clone() const
{
    return std::make_unique<AdaptiveQlruPolicy>(*this);
}

std::string
AdaptiveQlruPolicy::debugState() const
{
    return engine_.debugState();
}

} // namespace nb::cache
