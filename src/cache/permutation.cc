/**
 * @file
 * Permutation-policy implementation.
 */

#include "permutation.hh"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/logging.hh"

namespace nb::cache
{

namespace
{

bool
isPermutationVector(const std::vector<unsigned> &perm)
{
    std::vector<bool> seen(perm.size(), false);
    for (unsigned v : perm) {
        if (v >= perm.size() || seen[v])
            return false;
        seen[v] = true;
    }
    return true;
}

} // namespace

bool
PermutationSpec::isValid() const
{
    unsigned a = assoc();
    if (a == 0 || missPerm.size() != a)
        return false;
    if (!isPermutationVector(missPerm))
        return false;
    for (const auto &p : hitPerms) {
        if (p.size() != a || !isPermutationVector(p))
            return false;
    }
    return true;
}

std::string
PermutationSpec::toString() const
{
    std::ostringstream os;
    for (unsigned p = 0; p < hitPerms.size(); ++p) {
        os << "hit@" << p << ": [";
        for (unsigned q = 0; q < hitPerms[p].size(); ++q)
            os << (q ? " " : "") << hitPerms[p][q];
        os << "]\n";
    }
    os << "miss:  [";
    for (unsigned q = 0; q < missPerm.size(); ++q)
        os << (q ? " " : "") << missPerm[q];
    os << "]";
    return os.str();
}

PermutationSpec
PermutationSpec::lru(unsigned assoc)
{
    PermutationSpec spec;
    spec.hitPerms.resize(assoc);
    for (unsigned p = 0; p < assoc; ++p) {
        spec.hitPerms[p].resize(assoc);
        for (unsigned q = 0; q < assoc; ++q) {
            if (q == p)
                spec.hitPerms[p][q] = assoc - 1;
            else if (q > p)
                spec.hitPerms[p][q] = q - 1;
            else
                spec.hitPerms[p][q] = q;
        }
    }
    // A miss inserts at position 0 and then promotes it to the MRU end,
    // i.e. the same reordering as a hit at position 0.
    spec.missPerm = spec.hitPerms[0];
    return spec;
}

PermutationSpec
PermutationSpec::fifo(unsigned assoc)
{
    PermutationSpec spec;
    spec.hitPerms.resize(assoc);
    for (unsigned p = 0; p < assoc; ++p) {
        spec.hitPerms[p].resize(assoc);
        std::iota(spec.hitPerms[p].begin(), spec.hitPerms[p].end(), 0u);
    }
    // New blocks age out strictly by insertion order.
    spec.missPerm.resize(assoc);
    spec.missPerm[0] = assoc - 1;
    for (unsigned q = 1; q < assoc; ++q)
        spec.missPerm[q] = q - 1;
    return spec;
}

PermutationPolicy::PermutationPolicy(unsigned assoc, PermutationSpec spec)
    : SetPolicy(assoc), spec_(std::move(spec)), order_(assoc)
{
    NB_ASSERT(spec_.assoc() == assoc,
              "permutation spec assoc mismatch: ", spec_.assoc(), " vs ",
              assoc);
    NB_ASSERT(spec_.isValid(), "invalid permutation spec");
    reset();
}

void
PermutationPolicy::reset()
{
    std::iota(order_.begin(), order_.end(), 0u);
}

unsigned
PermutationPolicy::positionOf(unsigned way) const
{
    for (unsigned pos = 0; pos < order_.size(); ++pos) {
        if (order_[pos] == way)
            return pos;
    }
    panic("way ", way, " not in permutation order");
}

void
PermutationPolicy::applyPermutation(const std::vector<unsigned> &perm)
{
    std::vector<unsigned> next(order_.size());
    for (unsigned q = 0; q < order_.size(); ++q)
        next[perm[q]] = order_[q];
    order_ = std::move(next);
}

void
PermutationPolicy::moveToPositionZero(unsigned way)
{
    unsigned pos = positionOf(way);
    // Rotate the prefix so that `way` lands on position 0 while keeping
    // the relative order of the other elements.
    for (unsigned p = pos; p > 0; --p)
        order_[p] = order_[p - 1];
    order_[0] = way;
}

unsigned
PermutationPolicy::insertWay(const std::vector<bool> &valid)
{
    // Prefer the lowest-position invalid way so that fills consume the
    // victim order deterministically.
    for (unsigned pos = 0; pos < order_.size(); ++pos) {
        if (!valid[order_[pos]])
            return order_[pos];
    }
    return order_[0];
}

void
PermutationPolicy::onInsert(unsigned way, const std::vector<bool> &)
{
    moveToPositionZero(way);
    applyPermutation(spec_.missPerm);
}

void
PermutationPolicy::onHit(unsigned way, const std::vector<bool> &)
{
    applyPermutation(spec_.hitPerms[positionOf(way)]);
}

std::unique_ptr<SetPolicy>
PermutationPolicy::clone() const
{
    return std::make_unique<PermutationPolicy>(*this);
}

std::string
PermutationPolicy::debugState() const
{
    std::ostringstream os;
    for (unsigned pos = 0; pos < order_.size(); ++pos)
        os << (pos ? " " : "") << order_[pos];
    return os.str();
}

} // namespace nb::cache
