/**
 * @file
 * Three-level cache hierarchy with a sliced last-level cache.
 *
 * Models the structure the paper's cache case study targets (§VI-A):
 * per-core L1D and L2, and an inclusive L3 divided into slices managed by
 * C-Boxes, with an XOR-parity hash of the physical address selecting the
 * slice. Each C-Box exposes uncore performance counters (lookups/hits/
 * misses). Hardware prefetchers (L2 streamer, L2 adjacent-line, DCU
 * next-line) can be disabled through a model-specific register, mirroring
 * MSR 0x1A4 on Intel CPUs (§IV-A2).
 */

#ifndef NB_CACHE_HIERARCHY_HH
#define NB_CACHE_HIERARCHY_HH

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "cache/dueling.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace nb::cache
{

/** Geometry and policy of one cache level. */
struct LevelConfig
{
    Addr sizeBytes = 0;
    unsigned assoc = 0;
    /** Policy name (see makePolicy); ignored if dueling is configured. */
    std::string policy = "LRU";
};

/** Configuration of the whole hierarchy. */
struct HierarchyConfig
{
    LevelConfig l1;
    LevelConfig l2;
    LevelConfig l3;
    /** Number of L3 slices; l3.sizeBytes is the total across slices. */
    unsigned l3Slices = 1;
    /**
     * XOR-parity masks for the undocumented slice hash (§VI-A): slice-
     * select bit i = parity(paddr & sliceHashMasks[i]). Must provide
     * log2(l3Slices) masks; empty selects a default.
     */
    std::vector<Addr> sliceHashMasks;
    /** Adaptive L3 replacement (empty = fixed l3.policy). */
    DuelingConfig l3Dueling;

    Cycles l1Latency = 4;
    Cycles l2Latency = 12;
    Cycles l3Latency = 42;
    Cycles memLatency = 200;

    /**
     * Whether the prefetcher-control MSR is implemented. The paper could
     * not disable prefetchers on AMD CPUs (§VI-D), which excluded them
     * from the cache case study; modelled by this flag.
     */
    bool prefetcherDisableSupported = true;
    /** Initial prefetcher-control value (0 = all enabled). */
    std::uint64_t prefetcherControlInit = 0;
};

/** Where an access was satisfied. */
enum class HitLevel : std::uint8_t
{
    L1,
    L2,
    L3,
    Memory,
};

/** Kind of memory access. */
enum class AccessType : std::uint8_t
{
    Load,
    Store,
    PrefetchT0,  ///< software prefetch into L1
    PrefetchNTA, ///< software prefetch, non-temporal
};

/** Outcome of a demand access. */
struct AccessResult
{
    HitLevel level = HitLevel::Memory;
    Cycles latency = 0;
    /** L3 slice consulted; only meaningful if the request reached L3. */
    unsigned slice = 0;
    bool reachedL3 = false;
};

/** Per-C-Box (per-slice) uncore counters (§II-B). */
struct CboxStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

/** Prefetcher-control MSR bits (mirrors Intel MSR 0x1A4). */
namespace pf
{
inline constexpr std::uint64_t kDisableL2Streamer = 1ULL << 0;
inline constexpr std::uint64_t kDisableL2Adjacent = 1ULL << 1;
inline constexpr std::uint64_t kDisableDcu = 1ULL << 2;
inline constexpr std::uint64_t kDisableDcuIp = 1ULL << 3;
inline constexpr std::uint64_t kDisableAll = 0xF;
} // namespace pf

/** The modelled memory hierarchy of one core + shared L3. */
class Hierarchy
{
  public:
    Hierarchy(const HierarchyConfig &config, Rng *rng);

    /** Perform a demand access (or software prefetch). */
    AccessResult access(Addr paddr, AccessType type);

    /** Flush and invalidate all caches (WBINVD, §VI-C). */
    void wbinvd();

    /** Invalidate one line everywhere (CLFLUSH). */
    void clflush(Addr paddr);

    /** Slice selected by the (undocumented) hash for an address. */
    unsigned sliceOf(Addr paddr) const;

    /** Prefetcher-control MSR access. */
    std::uint64_t prefetcherControl() const { return pfControl_; }
    void setPrefetcherControl(std::uint64_t value);
    bool prefetcherDisableSupported() const
    {
        return config_.prefetcherDisableSupported;
    }

    Cache &l1() { return *l1_; }
    Cache &l2() { return *l2_; }
    Cache &l3Slice(unsigned i) { return *l3_[i]; }
    const Cache &l1() const { return *l1_; }
    const Cache &l2() const { return *l2_; }
    const Cache &l3Slice(unsigned i) const { return *l3_[i]; }
    unsigned numSlices() const { return static_cast<unsigned>(l3_.size()); }

    const CboxStats &cboxStats(unsigned slice) const
    {
        return cboxStats_[slice];
    }
    void clearStats();

    DuelState &duelState() { return duel_; }
    const HierarchyConfig &config() const { return config_; }

  private:
    /** Fill path on an L3 miss; returns the slice used. */
    void fillL3(Addr paddr, bool write, unsigned slice);
    void fillL2(Addr paddr, bool write);
    void fillL1(Addr paddr, bool write);

    /** Prefetch a line into L2 (+L3 for inclusion); no demand counters. */
    void prefetchIntoL2(Addr paddr);
    /** Prefetch a line into L1/L2/L3. */
    void prefetchIntoL1(Addr paddr);

    /** Hardware-prefetcher hooks, called on demand accesses. */
    void runL1Prefetchers(Addr paddr, bool l1_miss);
    void runL2Prefetchers(Addr paddr);

    /** Handle the back-invalidation required by L3 inclusivity. */
    void backInvalidate(Addr evicted_line);

    PolicyFactory makeFactory(const LevelConfig &level, bool is_l3,
                              unsigned slice);

    HierarchyConfig config_;
    Rng *rng_;
    std::unique_ptr<Cache> l1_;
    std::unique_ptr<Cache> l2_;
    std::vector<std::unique_ptr<Cache>> l3_;
    std::vector<CboxStats> cboxStats_;
    DuelState duel_;
    std::uint64_t pfControl_ = 0;

    /** L2 streamer state: page frame -> last line index within page. */
    struct StreamEntry
    {
        int lastLine = -1;
        int direction = 0;
        unsigned confidence = 0;
    };
    std::unordered_map<Addr, StreamEntry> streamTable_;
    /** Guards against recursive prefetching. */
    bool inPrefetch_ = false;
};

/** Default slice-hash masks (XOR of physical address bits; modelled on
 *  the reverse-engineered Sandy Bridge/Ivy Bridge/Haswell functions). */
std::vector<Addr> defaultSliceHashMasks(unsigned n_slices);

} // namespace nb::cache

#endif // NB_CACHE_HIERARCHY_HH
