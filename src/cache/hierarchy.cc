/**
 * @file
 * Cache-hierarchy implementation.
 */

#include "hierarchy.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace nb::cache
{

std::vector<Addr>
defaultSliceHashMasks(unsigned n_slices)
{
    NB_ASSERT(isPowerOfTwo(n_slices), "slice count must be a power of two");
    // XOR-parity masks modelled on the functions reverse-engineered by
    // Maurice et al. (RAID 2015) for 2-, 4-, and 8-slice parts.
    static const std::vector<Addr> masks = {
        0x1B5F575440ULL, // o0
        0x2EB5FAA880ULL, // o1
        0x3CCCC93100ULL, // o2
    };
    unsigned n_bits = floorLog2(n_slices);
    NB_ASSERT(n_bits <= masks.size(), "too many slices for default hash");
    return {masks.begin(), masks.begin() + n_bits};
}

Hierarchy::Hierarchy(const HierarchyConfig &config, Rng *rng)
    : config_(config), rng_(rng), cboxStats_(config.l3Slices),
      pfControl_(config.prefetcherControlInit)
{
    NB_ASSERT(rng != nullptr, "Hierarchy requires an RNG");
    NB_ASSERT(config.l3Slices > 0 && isPowerOfTwo(config.l3Slices),
              "slice count must be a positive power of two");

    if (config_.sliceHashMasks.empty() && config_.l3Slices > 1)
        config_.sliceHashMasks = defaultSliceHashMasks(config_.l3Slices);

    CacheConfig l1c;
    l1c.name = "L1D";
    l1c.sizeBytes = config.l1.sizeBytes;
    l1c.assoc = config.l1.assoc;
    l1c.policyFactory = makeFactory(config.l1, false, 0);
    l1_ = std::make_unique<Cache>(l1c);

    CacheConfig l2c;
    l2c.name = "L2";
    l2c.sizeBytes = config.l2.sizeBytes;
    l2c.assoc = config.l2.assoc;
    l2c.policyFactory = makeFactory(config.l2, false, 0);
    l2_ = std::make_unique<Cache>(l2c);

    NB_ASSERT(config.l3.sizeBytes % config.l3Slices == 0,
              "L3 size must divide evenly across slices");
    for (unsigned s = 0; s < config.l3Slices; ++s) {
        CacheConfig l3c;
        l3c.name = "L3#" + std::to_string(s);
        l3c.sizeBytes = config.l3.sizeBytes / config.l3Slices;
        l3c.assoc = config.l3.assoc;
        l3c.policyFactory = makeFactory(config.l3, true, s);
        l3_.push_back(std::make_unique<Cache>(l3c));
    }
}

PolicyFactory
Hierarchy::makeFactory(const LevelConfig &level, bool is_l3, unsigned slice)
{
    if (is_l3 && !config_.l3Dueling.empty()) {
        DuelingConfig dueling = config_.l3Dueling;
        auto spec_a = QlruSpec::parse(dueling.policyA);
        auto spec_b = QlruSpec::parse(dueling.policyB);
        NB_ASSERT(spec_a && spec_b,
                  "adaptive L3 requires QLRU policy names, got ",
                  dueling.policyA, " / ", dueling.policyB);
        unsigned assoc = level.assoc;
        Rng *rng = rng_;
        DuelState *duel = &duel_;
        return [dueling, spec_a, spec_b, assoc, rng, duel,
                slice](unsigned set) -> std::unique_ptr<SetPolicy> {
            DuelRole role = dueling.role(slice, set);
            return std::make_unique<AdaptiveQlruPolicy>(
                assoc, *spec_a, *spec_b, role, duel, rng);
        };
    }
    std::string policy = level.policy;
    unsigned assoc = level.assoc;
    Rng *rng = rng_;
    return [policy, assoc, rng](unsigned) {
        return makePolicy(policy, assoc, rng);
    };
}

unsigned
Hierarchy::sliceOf(Addr paddr) const
{
    unsigned slice = 0;
    for (unsigned i = 0; i < config_.sliceHashMasks.size(); ++i)
        slice |= parity(paddr & config_.sliceHashMasks[i]) << i;
    return slice;
}

void
Hierarchy::setPrefetcherControl(std::uint64_t value)
{
    if (!config_.prefetcherDisableSupported) {
        // Writes are accepted but ignored, like on the AMD parts the
        // paper could not control (§VI-D).
        return;
    }
    pfControl_ = value & pf::kDisableAll;
}

void
Hierarchy::fillL1(Addr paddr, bool write)
{
    // L1 evictions: dirty lines are written back into L2 (no replacement
    // update -- writebacks do not re-reference the line).
    auto result = l1_->access(paddr, write);
    (void)result;
}

void
Hierarchy::fillL2(Addr paddr, bool write)
{
    auto result = l2_->access(paddr, write);
    (void)result;
}

void
Hierarchy::fillL3(Addr paddr, bool write, unsigned slice)
{
    auto result = l3_[slice]->access(paddr, write);
    if (result.evicted) {
        // Inclusive L3: evicting a line invalidates it in the core
        // caches as well.
        backInvalidate(*result.evicted);
    }
}

void
Hierarchy::backInvalidate(Addr evicted_line)
{
    l1_->invalidate(evicted_line);
    l2_->invalidate(evicted_line);
}

AccessResult
Hierarchy::access(Addr paddr, AccessType type)
{
    AccessResult res;
    bool write = type == AccessType::Store;
    bool is_sw_prefetch = type == AccessType::PrefetchT0 ||
                          type == AccessType::PrefetchNTA;

    // L1 lookup.
    if (l1_->probe(paddr)) {
        l1_->access(paddr, write);
        res.level = HitLevel::L1;
        res.latency = config_.l1Latency;
        if (!inPrefetch_)
            runL1Prefetchers(paddr, false);
        return res;
    }

    // L2 lookup.
    if (l2_->probe(paddr)) {
        l2_->access(paddr, false);
        fillL1(paddr, write);
        res.level = HitLevel::L2;
        res.latency = config_.l2Latency;
        if (!inPrefetch_) {
            runL1Prefetchers(paddr, true);
            runL2Prefetchers(paddr);
        }
        return res;
    }

    // L3 lookup (one slice, selected by the hash).
    unsigned slice = sliceOf(paddr);
    res.slice = slice;
    res.reachedL3 = true;
    ++cboxStats_[slice].lookups;
    if (l3_[slice]->probe(paddr)) {
        ++cboxStats_[slice].hits;
        l3_[slice]->access(paddr, false);
        fillL2(paddr, false);
        fillL1(paddr, write);
        res.level = HitLevel::L3;
        res.latency = config_.l3Latency;
        if (!inPrefetch_) {
            runL1Prefetchers(paddr, true);
            runL2Prefetchers(paddr);
        }
        return res;
    }

    // Memory access; NTA prefetches bypass the L3 fill.
    ++cboxStats_[slice].misses;
    res.level = HitLevel::Memory;
    res.latency = config_.memLatency;
    if (type != AccessType::PrefetchNTA)
        fillL3(paddr, false, slice);
    fillL2(paddr, false);
    fillL1(paddr, write || is_sw_prefetch ? write : false);
    if (!inPrefetch_) {
        runL1Prefetchers(paddr, true);
        runL2Prefetchers(paddr);
    }
    return res;
}

void
Hierarchy::prefetchIntoL2(Addr paddr)
{
    inPrefetch_ = true;
    if (!l2_->probe(paddr)) {
        unsigned slice = sliceOf(paddr);
        ++cboxStats_[slice].lookups;
        if (!l3_[slice]->probe(paddr)) {
            ++cboxStats_[slice].misses;
            fillL3(paddr, false, slice);
        } else {
            ++cboxStats_[slice].hits;
            l3_[slice]->access(paddr, false);
        }
        fillL2(paddr, false);
    }
    inPrefetch_ = false;
}

void
Hierarchy::prefetchIntoL1(Addr paddr)
{
    inPrefetch_ = true;
    if (!l1_->probe(paddr)) {
        if (!l2_->probe(paddr)) {
            unsigned slice = sliceOf(paddr);
            ++cboxStats_[slice].lookups;
            if (!l3_[slice]->probe(paddr)) {
                ++cboxStats_[slice].misses;
                fillL3(paddr, false, slice);
            } else {
                ++cboxStats_[slice].hits;
                l3_[slice]->access(paddr, false);
            }
            fillL2(paddr, false);
        } else {
            l2_->access(paddr, false);
        }
        fillL1(paddr, false);
    }
    inPrefetch_ = false;
}

void
Hierarchy::runL1Prefetchers(Addr paddr, bool l1_miss)
{
    // DCU next-line prefetcher: on an L1 miss, fetch the next sequential
    // line (if it stays within the page).
    if ((pfControl_ & pf::kDisableDcu) == 0 && l1_miss) {
        Addr line = alignDown(paddr, kCacheLineSize);
        Addr next = line + kCacheLineSize;
        if (next / kPageSize == line / kPageSize)
            prefetchIntoL1(next);
    }
}

void
Hierarchy::runL2Prefetchers(Addr paddr)
{
    Addr line = alignDown(paddr, kCacheLineSize);

    // Adjacent-line prefetcher: fetch the other line of the 128-byte
    // aligned pair.
    if ((pfControl_ & pf::kDisableL2Adjacent) == 0)
        prefetchIntoL2(line ^ kCacheLineSize);

    // Streamer: detect ascending/descending line streams within a page
    // and run ahead by one line.
    if ((pfControl_ & pf::kDisableL2Streamer) == 0) {
        Addr page = line / kPageSize;
        int line_in_page = static_cast<int>((line % kPageSize) /
                                            kCacheLineSize);
        auto &entry = streamTable_[page];
        if (entry.lastLine >= 0) {
            int delta = line_in_page - entry.lastLine;
            if (delta == entry.direction && delta != 0) {
                ++entry.confidence;
            } else {
                entry.direction = delta;
                entry.confidence = delta == 1 || delta == -1 ? 1 : 0;
            }
            if (entry.confidence >= 1 &&
                (entry.direction == 1 || entry.direction == -1)) {
                int next = line_in_page + entry.direction;
                if (next >= 0 &&
                    next < static_cast<int>(kPageSize / kCacheLineSize)) {
                    prefetchIntoL2(page * kPageSize +
                                   static_cast<Addr>(next) *
                                       kCacheLineSize);
                }
            }
        }
        entry.lastLine = line_in_page;
        // Bound the table size (simple generational clear).
        if (streamTable_.size() > 64)
            streamTable_.clear();
    }
}

void
Hierarchy::wbinvd()
{
    l1_->flushAll();
    l2_->flushAll();
    for (auto &slice : l3_)
        slice->flushAll();
    streamTable_.clear();
}

void
Hierarchy::clflush(Addr paddr)
{
    l1_->invalidate(paddr);
    l2_->invalidate(paddr);
    l3_[sliceOf(paddr)]->invalidate(paddr);
}

void
Hierarchy::clearStats()
{
    l1_->clearStats();
    l2_->clearStats();
    for (auto &slice : l3_)
        slice->clearStats();
    for (auto &cb : cboxStats_)
        cb = CboxStats{};
}

} // namespace nb::cache
