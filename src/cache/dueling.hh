/**
 * @file
 * Adaptive replacement via set dueling (paper §VI-B3).
 *
 * A number of leader sets are dedicated to each of two candidate
 * policies; the remaining (follower) sets use whichever policy is
 * currently performing better, tracked by a saturating PSEL counter that
 * counts misses in the leader sets. On Ivy Bridge the leaders are sets
 * 512-575 / 768-831 in all slices; on Haswell the same sets but only in
 * slice 0; on Broadwell the two leader groups are swapped between slices
 * 0 and 1 (§VI-D).
 */

#ifndef NB_CACHE_DUELING_HH
#define NB_CACHE_DUELING_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/policy.hh"

namespace nb::cache
{

/** Role of a cache set in a set-dueling scheme. */
enum class DuelRole : std::uint8_t
{
    Follower,
    LeaderA,
    LeaderB,
};

/** A range of leader sets in one slice (or all slices). */
struct LeaderRange
{
    /** Slice the range applies to; -1 = all slices. */
    int slice = -1;
    unsigned setLo = 0;
    unsigned setHi = 0; ///< inclusive
    DuelRole role = DuelRole::LeaderA;
};

/** Set-dueling configuration for one cache. */
struct DuelingConfig
{
    std::vector<LeaderRange> leaders;
    std::string policyA; ///< policy name used by LeaderA sets
    std::string policyB; ///< policy name used by LeaderB sets

    /** Role of a given (slice, set). */
    DuelRole role(unsigned slice, unsigned set) const;

    bool empty() const { return leaders.empty(); }
};

/** Shared PSEL state; one instance per dueling cache. */
class DuelState
{
  public:
    explicit DuelState(unsigned bits = 10)
        : max_((1u << bits) - 1), psel_(1u << (bits - 1))
    {
    }

    /** Record a miss in a leader set. */
    void recordMiss(DuelRole role);

    /** Policy the follower sets should currently use. */
    DuelRole winner() const
    {
        return psel_ < (max_ + 1) / 2 ? DuelRole::LeaderA
                                      : DuelRole::LeaderB;
    }

    unsigned psel() const { return psel_; }

  private:
    unsigned max_;
    unsigned psel_;
};

/**
 * QLRU policy whose insertion behaviour adapts via set dueling. Leader
 * sets always use their own spec (and report misses to the DuelState);
 * follower sets use the spec of the currently winning leader group.
 *
 * The two specs must agree in everything except the insertion age
 * parameters (as on Ivy Bridge/Haswell/Broadwell, where the duel is
 * between M1 and MR161 insertion); the ages array is shared.
 */
class AdaptiveQlruPolicy : public SetPolicy
{
  public:
    AdaptiveQlruPolicy(unsigned assoc, const QlruSpec &spec_a,
                       const QlruSpec &spec_b, DuelRole role,
                       DuelState *duel, Rng *rng);

    void reset() override;
    unsigned insertWay(const std::vector<bool> &valid) override;
    void onInsert(unsigned way, const std::vector<bool> &valid) override;
    void onHit(unsigned way, const std::vector<bool> &valid) override;
    std::string name() const override;
    std::unique_ptr<SetPolicy> clone() const override;
    std::string debugState() const override;

    DuelRole role() const { return role_; }

  private:
    /** Spec that is active for this set right now. */
    const QlruSpec &activeSpec() const;
    /** Point the engine at the active spec before an operation. */
    void syncEngine();

    QlruSpec specA_;
    QlruSpec specB_;
    DuelRole role_;
    DuelState *duel_;
    /** Single QLRU engine; its spec is switched, its ages persist. */
    QlruPolicy engine_;
};

} // namespace nb::cache

#endif // NB_CACHE_DUELING_HH
