/**
 * @file
 * Instruction IR for the simulated x86-64 subset.
 *
 * The subset covers everything the paper's microbenchmarks need: integer
 * ALU, multiply/divide, loads/stores with full addressing modes, flags and
 * conditional branches (for the generated measurement loop), SSE/AVX
 * arithmetic, fences and serializing instructions, and the privileged
 * instructions that motivate nanoBench's kernel-space version (RDMSR,
 * WRMSR, WBINVD, CLI/STI, ...).
 */

#ifndef NB_X86_INSTRUCTION_HH
#define NB_X86_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "x86/operand.hh"

namespace nb::x86
{

/** Opcodes of the modelled subset. */
enum class Opcode : std::uint16_t
{
    // Data movement
    MOV, MOVZX, MOVSX, LEA, XCHG, PUSH, POP, BSWAP, MOVNTI,
    CMOVZ, CMOVNZ, CMOVC, CMOVNC,
    // Integer ALU
    ADD, ADC, SUB, SBB, AND, OR, XOR, CMP, TEST,
    INC, DEC, NEG, NOT,
    IMUL, MUL, DIV, IDIV,
    SHL, SHR, SAR, ROL, ROR,
    POPCNT, LZCNT, TZCNT, BSF, BSR,
    BT, BTS, BTR,
    SETZ, SETNZ,
    // Control flow
    JMP, JZ, JNZ, JC, JNC, JL, JGE, JLE, JG, CALL, RET,
    // SSE / AVX
    MOVAPS, MOVUPS, PXOR, PADDD,
    ADDPS, ADDPD, MULPS, MULPD, DIVPS, DIVPD,
    VADDPS, VMULPS, VFMADD231PS,
    // Fences and serialization
    LFENCE, MFENCE, SFENCE, CPUID, PAUSE,
    // Counters and system (privilege-sensitive)
    RDTSC, RDPMC, RDMSR, WRMSR, WBINVD, CLFLUSH,
    PREFETCHT0, PREFETCHNTA, CLI, STI,
    NOP,
    // nanoBench magic markers (paper §III-I): pause/resume counting.
    PFC_PAUSE, PFC_RESUME,
    NumOpcodes,
};

/** Coarse instruction class used for default timing assignment. */
enum class InstrClass : std::uint8_t
{
    Move, Alu, Lea, Mul, Div, Shift, BitScan, SetCC, CMov,
    Branch, CallRet, PushPop,
    VecMove, VecAlu, VecMul, VecDiv, Fma,
    Fence, Serialize, CounterRead, System, Nop, Magic,
};

/** Static properties of an opcode. */
struct OpcodeInfo
{
    const char *mnemonic;
    InstrClass cls;
    bool readsFlags;
    bool writesFlags;
    bool privileged;
    /** Fully serializing (CPUID-style). */
    bool serializing;
    /** Dispatch-serializing like LFENCE (waits for older, blocks newer). */
    bool dispatchFence;
    std::vector<Reg> implicitReads;
    std::vector<Reg> implicitWrites;
};

/** Look up the static properties of an opcode. */
const OpcodeInfo &opcodeInfo(Opcode op);

/** Parse a mnemonic (case-insensitive); Invalid count if unknown. */
Opcode parseMnemonic(std::string_view mnemonic, bool *ok);

/** A decoded/assembled instruction. */
struct Instruction
{
    Opcode opcode = Opcode::NOP;
    std::vector<Operand> operands;

    /** Branch target: index into the instruction sequence; -1 if none or
     *  unresolved. The assembler resolves labels to indices. */
    std::int32_t targetIdx = -1;
    /** Unresolved label name (assembler-internal). */
    std::string label;

    bool operator==(const Instruction &other) const
    {
        return opcode == other.opcode && operands == other.operands &&
               targetIdx == other.targetIdx;
    }

    const OpcodeInfo &info() const { return opcodeInfo(opcode); }

    bool isBranch() const;
    bool isCondBranch() const;
    /** True if any operand (or implicit behaviour) loads from memory. */
    bool isLoad() const;
    /** True if any operand (or implicit behaviour) stores to memory. */
    bool isStore() const;

    /** Does this instruction read its destination operand (operand 0)?
     *  False for pure writers (MOV, LEA, SETcc, POPCNT, ...). */
    bool destIsRead() const;
    /** Zero idiom: XOR/SUB/PXOR of a register with itself breaks the
     *  dependency on the old value (as on real Intel/AMD cores). */
    bool isZeroIdiom() const;

    /** Memory operand, if any (at most one in this subset). */
    const Operand *memOperand() const;

    /**
     * Instruction-form signature, e.g. "ADD_R64_R64" or "MOV_R64_M64";
     * used to key per-microarchitecture timing tables.
     */
    std::string formSignature() const;

    /** Intel-syntax rendering. */
    std::string toString() const;
};

/** Render a whole instruction sequence, "; "-separated. */
std::string toString(const std::vector<Instruction> &code);

} // namespace nb::x86

#endif // NB_X86_INSTRUCTION_HH
