/**
 * @file
 * Binary encoding of instruction sequences.
 *
 * nanoBench accepts microbenchmarks either as assembly text or as "a
 * binary file containing x86 machine code" (paper §III-E), and the kernel
 * module receives the code as a byte blob written to a virtual file
 * (§IV-C). This module provides the byte-level representation for those
 * paths. The encoding is a compact custom format (documented in DESIGN.md
 * as a substitution for real x86 machine code); encode/decode round-trip
 * exactly.
 *
 * The magic byte sequences for pausing/resuming performance counters
 * (paper §III-I) are fixed 8-byte patterns embedded literally in the
 * stream; the code generator later replaces them with counter-access code
 * (§IV-B).
 */

#ifndef NB_X86_ENCODING_HH
#define NB_X86_ENCODING_HH

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "x86/instruction.hh"

namespace nb::x86
{

/** Magic byte sequence that pauses performance counting (§III-I). */
inline constexpr std::array<std::uint8_t, 8> kMagicPause = {
    0x8F, 0x70, 0xC1, 0x1E, 0x83, 0x55, 0x9A, 0x2B};

/** Magic byte sequence that resumes performance counting (§III-I). */
inline constexpr std::array<std::uint8_t, 8> kMagicResume = {
    0x8F, 0x70, 0xC1, 0x1E, 0x83, 0x55, 0x9A, 0x2C};

/** Encode a sequence of instructions into a byte blob. */
std::vector<std::uint8_t> encode(const std::vector<Instruction> &code);

/**
 * Decode a byte blob produced by encode(). Magic pause/resume sequences
 * decode to PFC_PAUSE/PFC_RESUME pseudo-instructions.
 *
 * @throws nb::FatalError on malformed input.
 */
std::vector<Instruction> decode(std::span<const std::uint8_t> bytes);

} // namespace nb::x86

#endif // NB_X86_ENCODING_HH
