/**
 * @file
 * Architectural register identifiers for the simulated x86-64 machine.
 *
 * The model exposes the 16 general-purpose registers, 16 vector registers,
 * the flags register, and the instruction pointer. Sub-registers (EAX, AX,
 * AL, ...) parse to the same architectural identifier with an operand
 * width attached; dependence tracking is done at the architectural
 * register granularity, which matches how the paper's microbenchmarks use
 * registers.
 */

#ifndef NB_X86_REG_HH
#define NB_X86_REG_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace nb::x86
{

/** Architectural registers. GPRs first, then vector registers. */
enum class Reg : std::uint8_t
{
    RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI,
    R8, R9, R10, R11, R12, R13, R14, R15,
    XMM0, XMM1, XMM2, XMM3, XMM4, XMM5, XMM6, XMM7,
    XMM8, XMM9, XMM10, XMM11, XMM12, XMM13, XMM14, XMM15,
    RFLAGS,
    RIP,
    NumRegs,
    Invalid,
};

/** Number of general-purpose registers. */
inline constexpr unsigned kNumGprs = 16;

/** Number of vector registers. */
inline constexpr unsigned kNumVecRegs = 16;

/** True for RAX..R15. */
constexpr bool
isGpr(Reg r)
{
    return static_cast<unsigned>(r) < kNumGprs;
}

/** True for XMM0..XMM15 (also used for YMM forms). */
constexpr bool
isVec(Reg r)
{
    unsigned v = static_cast<unsigned>(r);
    return v >= kNumGprs && v < kNumGprs + kNumVecRegs;
}

/** Canonical (64-bit / XMM) name of a register. */
std::string regName(Reg r);

/** Name at a particular operand width (8/16/32/64 for GPRs; 128/256). */
std::string regName(Reg r, unsigned width_bits);

/**
 * Parse a register name in any width form ("RAX", "eax", "ax", "al",
 * "r14b", "xmm3", "ymm3"). Returns the architectural register and the
 * operand width in bits.
 */
struct ParsedReg
{
    Reg reg;
    unsigned widthBits;
};

std::optional<ParsedReg> parseReg(std::string_view name);

} // namespace nb::x86

#endif // NB_X86_REG_HH
