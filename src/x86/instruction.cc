/**
 * @file
 * Opcode metadata table and instruction helpers.
 */

#include "instruction.hh"

#include <map>
#include <sstream>

#include "common/logging.hh"
#include "common/strings.hh"

namespace nb::x86
{

namespace
{

using IC = InstrClass;
using R = Reg;

struct InfoInit
{
    Opcode op;
    OpcodeInfo info;
};

// Field order: mnemonic, class, readsFlags, writesFlags, privileged,
// serializing, dispatchFence, implicitReads, implicitWrites.
const std::vector<InfoInit> &
infoInits()
{
    static const std::vector<InfoInit> inits = {
        {Opcode::MOV, {"MOV", IC::Move, false, false, false, false, false,
                       {}, {}}},
        {Opcode::MOVZX, {"MOVZX", IC::Move, false, false, false, false,
                         false, {}, {}}},
        {Opcode::MOVSX, {"MOVSX", IC::Move, false, false, false, false,
                         false, {}, {}}},
        {Opcode::LEA, {"LEA", IC::Lea, false, false, false, false, false,
                       {}, {}}},
        {Opcode::XCHG, {"XCHG", IC::Move, false, false, false, false, false,
                        {}, {}}},
        {Opcode::PUSH, {"PUSH", IC::PushPop, false, false, false, false,
                        false, {R::RSP}, {R::RSP}}},
        {Opcode::POP, {"POP", IC::PushPop, false, false, false, false,
                       false, {R::RSP}, {R::RSP}}},
        {Opcode::BSWAP, {"BSWAP", IC::Alu, false, false, false, false,
                         false, {}, {}}},
        {Opcode::MOVNTI, {"MOVNTI", IC::Move, false, false, false, false,
                          false, {}, {}}},
        {Opcode::CMOVZ, {"CMOVZ", IC::CMov, true, false, false, false,
                         false, {}, {}}},
        {Opcode::CMOVNZ, {"CMOVNZ", IC::CMov, true, false, false, false,
                          false, {}, {}}},
        {Opcode::CMOVC, {"CMOVC", IC::CMov, true, false, false, false,
                         false, {}, {}}},
        {Opcode::CMOVNC, {"CMOVNC", IC::CMov, true, false, false, false,
                          false, {}, {}}},
        {Opcode::ADD, {"ADD", IC::Alu, false, true, false, false, false,
                       {}, {}}},
        {Opcode::ADC, {"ADC", IC::Alu, true, true, false, false, false,
                       {}, {}}},
        {Opcode::SUB, {"SUB", IC::Alu, false, true, false, false, false,
                       {}, {}}},
        {Opcode::SBB, {"SBB", IC::Alu, true, true, false, false, false,
                       {}, {}}},
        {Opcode::AND, {"AND", IC::Alu, false, true, false, false, false,
                       {}, {}}},
        {Opcode::OR, {"OR", IC::Alu, false, true, false, false, false,
                      {}, {}}},
        {Opcode::XOR, {"XOR", IC::Alu, false, true, false, false, false,
                       {}, {}}},
        {Opcode::CMP, {"CMP", IC::Alu, false, true, false, false, false,
                       {}, {}}},
        {Opcode::TEST, {"TEST", IC::Alu, false, true, false, false, false,
                        {}, {}}},
        {Opcode::INC, {"INC", IC::Alu, false, true, false, false, false,
                       {}, {}}},
        {Opcode::DEC, {"DEC", IC::Alu, false, true, false, false, false,
                       {}, {}}},
        {Opcode::NEG, {"NEG", IC::Alu, false, true, false, false, false,
                       {}, {}}},
        {Opcode::NOT, {"NOT", IC::Alu, false, false, false, false, false,
                       {}, {}}},
        {Opcode::IMUL, {"IMUL", IC::Mul, false, true, false, false, false,
                        {}, {}}},
        {Opcode::MUL, {"MUL", IC::Mul, false, true, false, false, false,
                       {R::RAX}, {R::RAX, R::RDX}}},
        {Opcode::DIV, {"DIV", IC::Div, false, true, false, false, false,
                       {R::RAX, R::RDX}, {R::RAX, R::RDX}}},
        {Opcode::IDIV, {"IDIV", IC::Div, false, true, false, false, false,
                        {R::RAX, R::RDX}, {R::RAX, R::RDX}}},
        {Opcode::SHL, {"SHL", IC::Shift, false, true, false, false, false,
                       {}, {}}},
        {Opcode::SHR, {"SHR", IC::Shift, false, true, false, false, false,
                       {}, {}}},
        {Opcode::SAR, {"SAR", IC::Shift, false, true, false, false, false,
                       {}, {}}},
        {Opcode::ROL, {"ROL", IC::Shift, false, true, false, false, false,
                       {}, {}}},
        {Opcode::ROR, {"ROR", IC::Shift, false, true, false, false, false,
                       {}, {}}},
        {Opcode::POPCNT, {"POPCNT", IC::BitScan, false, true, false, false,
                          false, {}, {}}},
        {Opcode::LZCNT, {"LZCNT", IC::BitScan, false, true, false, false,
                         false, {}, {}}},
        {Opcode::TZCNT, {"TZCNT", IC::BitScan, false, true, false, false,
                         false, {}, {}}},
        {Opcode::BSF, {"BSF", IC::BitScan, false, true, false, false,
                       false, {}, {}}},
        {Opcode::BSR, {"BSR", IC::BitScan, false, true, false, false,
                       false, {}, {}}},
        {Opcode::BT, {"BT", IC::Alu, false, true, false, false, false,
                      {}, {}}},
        {Opcode::BTS, {"BTS", IC::Alu, false, true, false, false, false,
                       {}, {}}},
        {Opcode::BTR, {"BTR", IC::Alu, false, true, false, false, false,
                       {}, {}}},
        {Opcode::SETZ, {"SETZ", IC::SetCC, true, false, false, false,
                        false, {}, {}}},
        {Opcode::SETNZ, {"SETNZ", IC::SetCC, true, false, false, false,
                         false, {}, {}}},
        {Opcode::JMP, {"JMP", IC::Branch, false, false, false, false,
                       false, {}, {}}},
        {Opcode::JZ, {"JZ", IC::Branch, true, false, false, false, false,
                      {}, {}}},
        {Opcode::JNZ, {"JNZ", IC::Branch, true, false, false, false, false,
                       {}, {}}},
        {Opcode::JC, {"JC", IC::Branch, true, false, false, false, false,
                      {}, {}}},
        {Opcode::JNC, {"JNC", IC::Branch, true, false, false, false, false,
                       {}, {}}},
        {Opcode::JL, {"JL", IC::Branch, true, false, false, false, false,
                      {}, {}}},
        {Opcode::JGE, {"JGE", IC::Branch, true, false, false, false, false,
                       {}, {}}},
        {Opcode::JLE, {"JLE", IC::Branch, true, false, false, false, false,
                       {}, {}}},
        {Opcode::JG, {"JG", IC::Branch, true, false, false, false, false,
                      {}, {}}},
        {Opcode::CALL, {"CALL", IC::CallRet, false, false, false, false,
                        false, {R::RSP}, {R::RSP}}},
        {Opcode::RET, {"RET", IC::CallRet, false, false, false, false,
                       false, {R::RSP}, {R::RSP}}},
        {Opcode::MOVAPS, {"MOVAPS", IC::VecMove, false, false, false,
                          false, false, {}, {}}},
        {Opcode::MOVUPS, {"MOVUPS", IC::VecMove, false, false, false,
                          false, false, {}, {}}},
        {Opcode::PXOR, {"PXOR", IC::VecAlu, false, false, false, false,
                        false, {}, {}}},
        {Opcode::PADDD, {"PADDD", IC::VecAlu, false, false, false, false,
                         false, {}, {}}},
        {Opcode::ADDPS, {"ADDPS", IC::VecAlu, false, false, false, false,
                         false, {}, {}}},
        {Opcode::ADDPD, {"ADDPD", IC::VecAlu, false, false, false, false,
                         false, {}, {}}},
        {Opcode::MULPS, {"MULPS", IC::VecMul, false, false, false, false,
                         false, {}, {}}},
        {Opcode::MULPD, {"MULPD", IC::VecMul, false, false, false, false,
                         false, {}, {}}},
        {Opcode::DIVPS, {"DIVPS", IC::VecDiv, false, false, false, false,
                         false, {}, {}}},
        {Opcode::DIVPD, {"DIVPD", IC::VecDiv, false, false, false, false,
                         false, {}, {}}},
        {Opcode::VADDPS, {"VADDPS", IC::VecAlu, false, false, false, false,
                          false, {}, {}}},
        {Opcode::VMULPS, {"VMULPS", IC::VecMul, false, false, false, false,
                          false, {}, {}}},
        {Opcode::VFMADD231PS, {"VFMADD231PS", IC::Fma, false, false, false,
                               false, false, {}, {}}},
        {Opcode::LFENCE, {"LFENCE", IC::Fence, false, false, false, false,
                          true, {}, {}}},
        {Opcode::MFENCE, {"MFENCE", IC::Fence, false, false, false, false,
                          true, {}, {}}},
        {Opcode::SFENCE, {"SFENCE", IC::Fence, false, false, false, false,
                          false, {}, {}}},
        {Opcode::CPUID, {"CPUID", IC::Serialize, false, false, false, true,
                         true, {R::RAX, R::RCX},
                         {R::RAX, R::RBX, R::RCX, R::RDX}}},
        {Opcode::PAUSE, {"PAUSE", IC::Nop, false, false, false, false,
                         false, {}, {}}},
        {Opcode::RDTSC, {"RDTSC", IC::CounterRead, false, false, false,
                         false, false, {}, {R::RAX, R::RDX}}},
        {Opcode::RDPMC, {"RDPMC", IC::CounterRead, false, false, false,
                         false, false, {R::RCX}, {R::RAX, R::RDX}}},
        {Opcode::RDMSR, {"RDMSR", IC::CounterRead, false, false, true,
                         false, false, {R::RCX}, {R::RAX, R::RDX}}},
        {Opcode::WRMSR, {"WRMSR", IC::System, false, false, true, true,
                         true, {R::RCX, R::RAX, R::RDX}, {}}},
        {Opcode::WBINVD, {"WBINVD", IC::System, false, false, true, true,
                          true, {}, {}}},
        {Opcode::CLFLUSH, {"CLFLUSH", IC::System, false, false, false,
                           false, false, {}, {}}},
        {Opcode::PREFETCHT0, {"PREFETCHT0", IC::System, false, false,
                              false, false, false, {}, {}}},
        {Opcode::PREFETCHNTA, {"PREFETCHNTA", IC::System, false, false,
                               false, false, false, {}, {}}},
        {Opcode::CLI, {"CLI", IC::System, false, false, true, false, false,
                       {}, {}}},
        {Opcode::STI, {"STI", IC::System, false, false, true, false, false,
                       {}, {}}},
        {Opcode::NOP, {"NOP", IC::Nop, false, false, false, false, false,
                       {}, {}}},
        {Opcode::PFC_PAUSE, {"PFC_PAUSE", IC::Magic, false, false, false,
                             false, true, {}, {}}},
        {Opcode::PFC_RESUME, {"PFC_RESUME", IC::Magic, false, false, false,
                              false, true, {}, {}}},
    };
    return inits;
}

const std::vector<OpcodeInfo> &
infoTable()
{
    static const std::vector<OpcodeInfo> table = [] {
        std::vector<OpcodeInfo> t(
            static_cast<std::size_t>(Opcode::NumOpcodes));
        std::vector<bool> seen(t.size(), false);
        for (const auto &init : infoInits()) {
            auto idx = static_cast<std::size_t>(init.op);
            t[idx] = init.info;
            seen[idx] = true;
        }
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (!seen[i])
                panic("opcode ", i, " missing from the metadata table");
        }
        return t;
    }();
    return table;
}

const std::map<std::string, Opcode> &
mnemonicMap()
{
    static const std::map<std::string, Opcode> m = [] {
        std::map<std::string, Opcode> map;
        for (const auto &init : infoInits())
            map[init.info.mnemonic] = init.op;
        return map;
    }();
    return m;
}

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    auto idx = static_cast<std::size_t>(op);
    NB_ASSERT(idx < infoTable().size(), "opcode out of range");
    return infoTable()[idx];
}

Opcode
parseMnemonic(std::string_view mnemonic, bool *ok)
{
    auto it = mnemonicMap().find(toUpper(mnemonic));
    if (it == mnemonicMap().end()) {
        if (ok)
            *ok = false;
        return Opcode::NOP;
    }
    if (ok)
        *ok = true;
    return it->second;
}

bool
Instruction::isBranch() const
{
    InstrClass c = info().cls;
    return c == InstrClass::Branch || c == InstrClass::CallRet;
}

bool
Instruction::isCondBranch() const
{
    return info().cls == InstrClass::Branch && opcode != Opcode::JMP;
}

bool
Instruction::isLoad() const
{
    switch (opcode) {
      case Opcode::POP:
      case Opcode::RET:
        return true;
      case Opcode::PREFETCHT0:
      case Opcode::PREFETCHNTA:
        return true;
      case Opcode::CLFLUSH:
      case Opcode::NOP:
      case Opcode::LEA:
        return false;
      default:
        break;
    }
    // A memory operand that is not the destination of a pure store is a
    // load; read-modify-write forms (e.g. ADD [mem], reg) both load and
    // store.
    const Operand *m = memOperand();
    if (!m)
        return false;
    bool mem_is_dest = !operands.empty() &&
                       &operands.front() == m;
    if (!mem_is_dest)
        return true;
    // Destination memory operand: MOV/MOVNTI/MOVAPS stores only; ALU
    // read-modify-write also loads.
    switch (opcode) {
      case Opcode::MOV:
      case Opcode::MOVNTI:
      case Opcode::MOVAPS:
      case Opcode::MOVUPS:
      case Opcode::SETZ:
      case Opcode::SETNZ:
        return false;
      default:
        return true;
    }
}

bool
Instruction::isStore() const
{
    switch (opcode) {
      case Opcode::PUSH:
      case Opcode::CALL:
        return true;
      case Opcode::NOP:
      case Opcode::LEA:
      case Opcode::CLFLUSH:
      case Opcode::PREFETCHT0:
      case Opcode::PREFETCHNTA:
        return false;
      case Opcode::CMP:
      case Opcode::TEST:
      case Opcode::BT:
        return false; // read-only even with a memory destination operand
      default:
        break;
    }
    const Operand *m = memOperand();
    if (!m)
        return false;
    // Stores happen when the memory operand is the destination.
    return !operands.empty() && &operands.front() == m;
}

bool
Instruction::destIsRead() const
{
    switch (opcode) {
      case Opcode::MOV:
      case Opcode::MOVZX:
      case Opcode::MOVSX:
      case Opcode::MOVNTI:
      case Opcode::LEA:
      case Opcode::SETZ:
      case Opcode::SETNZ:
      case Opcode::POPCNT:
      case Opcode::LZCNT:
      case Opcode::TZCNT:
      case Opcode::BSF:
      case Opcode::BSR:
      case Opcode::MOVAPS:
      case Opcode::MOVUPS:
      case Opcode::VADDPS:
      case Opcode::VMULPS:
      case Opcode::POP:
        return false;
      default:
        return true;
    }
}

bool
Instruction::isZeroIdiom() const
{
    if (opcode != Opcode::XOR && opcode != Opcode::SUB &&
        opcode != Opcode::PXOR)
        return false;
    return operands.size() == 2 &&
           operands[0].kind == OperandKind::Register &&
           operands[1].kind == OperandKind::Register &&
           operands[0].reg == operands[1].reg;
}

const Operand *
Instruction::memOperand() const
{
    for (const auto &op : operands) {
        if (op.kind == OperandKind::Memory)
            return &op;
    }
    return nullptr;
}

namespace
{

std::string
operandTag(const Operand &op)
{
    switch (op.kind) {
      case OperandKind::Register: {
        if (isVec(op.reg))
            return op.widthBits == 256 ? "Y" : "X";
        // Two appends, not operator+: GCC 12's -Wrestrict sees a
        // false-positive overlap in the temporary at -O3.
        std::string tag = "R";
        tag += std::to_string(op.widthBits);
        return tag;
      }
      case OperandKind::Immediate:
        return "I";
      case OperandKind::Memory: {
        std::string tag = "M";
        tag += std::to_string(op.widthBits);
        return tag;
      }
      case OperandKind::None:
        return "N";
    }
    panic("unreachable operand kind");
}

} // namespace

std::string
Instruction::formSignature() const
{
    std::string sig = info().mnemonic;
    for (const auto &op : operands) {
        sig += "_";
        sig += operandTag(op);
    }
    return sig;
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << toLower(info().mnemonic);
    for (std::size_t i = 0; i < operands.size(); ++i)
        os << (i == 0 ? " " : ", ") << operands[i].toString();
    if (isBranch() && operands.empty()) {
        if (!label.empty())
            os << " " << label;
        else if (targetIdx >= 0)
            os << " @" << targetIdx;
    }
    return os.str();
}

std::string
toString(const std::vector<Instruction> &code)
{
    std::string out;
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (i > 0)
            out += "; ";
        out += code[i].toString();
    }
    return out;
}

} // namespace nb::x86
