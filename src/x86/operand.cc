/**
 * @file
 * Operand construction and rendering.
 */

#include "operand.hh"

#include <sstream>

#include "common/logging.hh"

namespace nb::x86
{

Operand
Operand::makeReg(Reg r, unsigned width_bits)
{
    Operand op;
    op.kind = OperandKind::Register;
    op.reg = r;
    op.widthBits = width_bits;
    return op;
}

Operand
Operand::makeImm(std::int64_t value, unsigned width_bits)
{
    Operand op;
    op.kind = OperandKind::Immediate;
    op.imm = value;
    op.widthBits = width_bits;
    return op;
}

Operand
Operand::makeMem(const MemRef &m, unsigned width_bits)
{
    Operand op;
    op.kind = OperandKind::Memory;
    op.mem = m;
    op.widthBits = width_bits;
    return op;
}

namespace
{

const char *
widthPtrName(unsigned width_bits)
{
    switch (width_bits) {
      case 8:
        return "byte ptr ";
      case 16:
        return "word ptr ";
      case 32:
        return "dword ptr ";
      case 64:
        return "qword ptr ";
      case 128:
        return "xmmword ptr ";
      case 256:
        return "ymmword ptr ";
      default:
        return "";
    }
}

} // namespace

std::string
Operand::toString() const
{
    switch (kind) {
      case OperandKind::None:
        return "<none>";
      case OperandKind::Register:
        return regName(reg, widthBits);
      case OperandKind::Immediate:
        return std::to_string(imm);
      case OperandKind::Memory: {
        std::ostringstream os;
        os << widthPtrName(widthBits) << "[";
        bool need_plus = false;
        if (mem.base != Reg::Invalid) {
            os << regName(mem.base);
            need_plus = true;
        }
        if (mem.index != Reg::Invalid) {
            if (need_plus)
                os << "+";
            os << regName(mem.index);
            if (mem.scale != 1)
                os << "*" << static_cast<int>(mem.scale);
            need_plus = true;
        }
        if (mem.disp != 0 || !need_plus) {
            if (need_plus && mem.disp >= 0)
                os << "+";
            os << mem.disp;
        }
        os << "]";
        return os.str();
      }
    }
    panic("unreachable operand kind");
}

} // namespace nb::x86
