/**
 * @file
 * Intel-syntax assembler for the modelled subset.
 *
 * nanoBench accepts microbenchmark code "as an assembler code sequence in
 * Intel syntax" (paper §III-E), e.g. "mov R14, [R14]". This assembler
 * parses such sequences into the instruction IR. Instructions are
 * separated by ';' or newlines; labels ("name:") and label-target branches
 * ("jnz name") are supported for hand-written loops; '#' starts a comment.
 */

#ifndef NB_X86_ASSEMBLER_HH
#define NB_X86_ASSEMBLER_HH

#include <string_view>
#include <vector>

#include "x86/instruction.hh"

namespace nb::x86
{

/**
 * Assemble an Intel-syntax code sequence.
 *
 * @param source Assembly text; ';' or newline separated.
 * @return The assembled instructions with branch labels resolved.
 * @throws nb::FatalError on any syntax error (user error).
 */
std::vector<Instruction> assemble(std::string_view source);

} // namespace nb::x86

#endif // NB_X86_ASSEMBLER_HH
