/**
 * @file
 * Implementation of the Intel-syntax assembler.
 */

#include "assembler.hh"

#include <cctype>
#include <map>

#include "common/logging.hh"
#include "common/strings.hh"

namespace nb::x86
{

namespace
{

/** Split source into statements at ';' and newlines. */
std::vector<std::string>
splitStatements(std::string_view source)
{
    std::vector<std::string> stmts;
    std::string current;
    for (char c : source) {
        if (c == ';' || c == '\n') {
            stmts.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    stmts.push_back(current);
    return stmts;
}

/** Strip a '#' comment. */
std::string
stripComment(const std::string &line)
{
    auto pos = line.find('#');
    if (pos == std::string::npos)
        return line;
    return line.substr(0, pos);
}

struct SizeKeyword
{
    const char *name;
    unsigned bits;
};

constexpr SizeKeyword kSizeKeywords[] = {
    {"byte", 8}, {"word", 16}, {"dword", 32}, {"qword", 64},
    {"xmmword", 128}, {"ymmword", 256},
};

/**
 * Parse a memory operand body (text between '[' and ']') into a MemRef.
 * Accepted grammar: term (('+'|'-') term)* where each term is a register,
 * reg*scale, or an integer displacement.
 */
MemRef
parseMemBody(std::string_view body, const std::string &context)
{
    MemRef m;
    std::string text(body);
    std::size_t i = 0;
    bool negative = false;
    bool first = true;
    while (i <= text.size()) {
        // Collect the next term up to +/-.
        std::size_t start = i;
        while (i < text.size() && text[i] != '+' && text[i] != '-')
            ++i;
        std::string term = trim(text.substr(start, i - start));
        if (term.empty() && !first)
            fatal("empty term in memory operand '", context, "'");
        if (!term.empty()) {
            // reg*scale?
            auto star = term.find('*');
            if (star != std::string::npos) {
                auto reg_txt = trim(term.substr(0, star));
                auto scale_txt = trim(term.substr(star + 1));
                auto pr = parseReg(reg_txt);
                auto sc = parseInt(scale_txt);
                // Also allow "4*RSI".
                if (!pr) {
                    pr = parseReg(scale_txt);
                    sc = parseInt(reg_txt);
                }
                if (!pr || !sc)
                    fatal("bad scaled-index term '", term, "' in '",
                          context, "'");
                if (negative)
                    fatal("negative index register in '", context, "'");
                if (*sc != 1 && *sc != 2 && *sc != 4 && *sc != 8)
                    fatal("scale must be 1, 2, 4, or 8 in '", context, "'");
                if (m.index != Reg::Invalid)
                    fatal("multiple index registers in '", context, "'");
                m.index = pr->reg;
                m.scale = static_cast<std::uint8_t>(*sc);
            } else if (auto pr = parseReg(term)) {
                if (negative)
                    fatal("cannot subtract a register in '", context, "'");
                if (m.base == Reg::Invalid) {
                    m.base = pr->reg;
                } else if (m.index == Reg::Invalid) {
                    m.index = pr->reg;
                    m.scale = 1;
                } else {
                    fatal("too many registers in '", context, "'");
                }
            } else if (auto v = parseInt(term)) {
                m.disp += negative ? -*v : *v;
            } else {
                fatal("cannot parse term '", term, "' in memory operand '",
                      context, "'");
            }
        }
        if (i >= text.size())
            break;
        negative = text[i] == '-';
        ++i;
        first = false;
    }
    if (m.base == Reg::Invalid && m.index == Reg::Invalid && m.disp == 0)
        fatal("empty memory operand in '", context, "'");
    return m;
}

/** Parse one operand (register, immediate, or memory reference). */
Operand
parseOperand(std::string_view text, const std::string &context)
{
    std::string t = trim(text);
    if (t.empty())
        fatal("empty operand in '", context, "'");

    // Optional size keyword: "qword ptr [..]" or "qword [..]".
    unsigned mem_width = 0;
    std::string lower = toLower(t);
    for (const auto &kw : kSizeKeywords) {
        std::string with_ptr = std::string(kw.name) + " ptr ";
        std::string without_ptr = std::string(kw.name) + " ";
        if (startsWith(lower, with_ptr)) {
            mem_width = kw.bits;
            t = trim(t.substr(with_ptr.size()));
            break;
        }
        if (startsWith(lower, without_ptr) &&
            lower.find('[') != std::string::npos) {
            mem_width = kw.bits;
            t = trim(t.substr(without_ptr.size()));
            break;
        }
    }

    if (!t.empty() && t.front() == '[') {
        if (t.back() != ']')
            fatal("unterminated memory operand in '", context, "'");
        MemRef m = parseMemBody(
            std::string_view(t).substr(1, t.size() - 2), context);
        // Width 0 = unspecified; fixed up from the register operand.
        return Operand::makeMem(m, mem_width);
    }
    if (mem_width != 0)
        fatal("size keyword without memory operand in '", context, "'");

    if (auto pr = parseReg(t))
        return Operand::makeReg(pr->reg, pr->widthBits);

    if (auto v = parseInt(t))
        return Operand::makeImm(*v);

    fatal("cannot parse operand '", std::string(t), "' in '", context, "'");
}

/** Split the operand list on top-level commas (none occur inside []). */
std::vector<std::string>
splitOperands(std::string_view text)
{
    std::vector<std::string> out;
    int depth = 0;
    std::string current;
    for (char c : text) {
        if (c == '[')
            ++depth;
        else if (c == ']')
            --depth;
        if (c == ',' && depth == 0) {
            out.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    if (!trim(current).empty() || !out.empty())
        out.push_back(current);
    return out;
}

bool
isIdentifier(std::string_view s)
{
    if (s.empty())
        return false;
    if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_' &&
        s[0] != '.')
        return false;
    for (char c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != '.')
            return false;
    }
    return true;
}

} // namespace

std::vector<Instruction>
assemble(std::string_view source)
{
    std::vector<Instruction> code;
    std::map<std::string, std::int32_t> labels;

    for (const auto &raw : splitStatements(source)) {
        std::string stmt = trim(stripComment(raw));
        if (stmt.empty())
            continue;

        // Leading labels ("name: insn" or a bare "name:").
        for (;;) {
            auto colon = stmt.find(':');
            if (colon == std::string::npos)
                break;
            std::string head = trim(stmt.substr(0, colon));
            if (!isIdentifier(head))
                break;
            if (labels.count(head))
                fatal("duplicate label '", head, "'");
            labels[head] = static_cast<std::int32_t>(code.size());
            stmt = trim(stmt.substr(colon + 1));
        }
        if (stmt.empty())
            continue;

        // Mnemonic is the first whitespace-delimited token.
        std::size_t sp = 0;
        while (sp < stmt.size() &&
               !std::isspace(static_cast<unsigned char>(stmt[sp])))
            ++sp;
        std::string mnemonic = stmt.substr(0, sp);
        std::string rest = trim(stmt.substr(sp));

        bool ok = false;
        Instruction insn;
        insn.opcode = parseMnemonic(mnemonic, &ok);
        if (!ok)
            fatal("unknown mnemonic '", mnemonic, "' in '", stmt, "'");

        if (insn.isBranch() && !rest.empty() && isIdentifier(rest) &&
            !parseReg(rest)) {
            // Branch to a label.
            insn.label = rest;
        } else if (!rest.empty()) {
            for (const auto &op_text : splitOperands(rest))
                insn.operands.push_back(parseOperand(op_text, stmt));
        }
        if (insn.operands.size() > 3)
            fatal("too many operands in '", stmt, "'");
        // Unspecified memory widths default to the width of the first
        // register operand (e.g. "movaps [R14], XMM1" moves 128 bits).
        unsigned reg_width = 0;
        for (const auto &op : insn.operands) {
            if (op.kind == OperandKind::Register) {
                reg_width = op.widthBits;
                break;
            }
        }
        for (auto &op : insn.operands) {
            if (op.kind == OperandKind::Memory && op.widthBits == 0)
                op.widthBits = reg_width ? reg_width : 64;
        }
        code.push_back(std::move(insn));
    }

    // Resolve label targets.
    for (auto &insn : code) {
        if (insn.label.empty())
            continue;
        auto it = labels.find(insn.label);
        if (it == labels.end())
            fatal("undefined label '", insn.label, "'");
        insn.targetIdx = it->second;
    }
    return code;
}

} // namespace nb::x86
