/**
 * @file
 * Instruction operands: registers, immediates, and memory references with
 * the full Intel base+index*scale+displacement addressing form.
 */

#ifndef NB_X86_OPERAND_HH
#define NB_X86_OPERAND_HH

#include <cstdint>
#include <string>

#include "x86/reg.hh"

namespace nb::x86
{

/** Operand kinds; also used to build instruction-form signatures. */
enum class OperandKind : std::uint8_t
{
    None,
    Register,
    Immediate,
    Memory,
};

/** Memory reference: [base + index*scale + disp]. */
struct MemRef
{
    Reg base = Reg::Invalid;   ///< Reg::Invalid if absent.
    Reg index = Reg::Invalid;  ///< Reg::Invalid if absent.
    std::uint8_t scale = 1;    ///< 1, 2, 4, or 8.
    std::int64_t disp = 0;

    bool operator==(const MemRef &) const = default;
};

/** A single instruction operand. */
struct Operand
{
    OperandKind kind = OperandKind::None;
    /** Operand width in bits (8/16/32/64 for GPR forms, 128/256 vector). */
    unsigned widthBits = 64;
    Reg reg = Reg::Invalid;    ///< Valid iff kind == Register.
    std::int64_t imm = 0;      ///< Valid iff kind == Immediate.
    MemRef mem;                ///< Valid iff kind == Memory.

    bool operator==(const Operand &) const = default;

    static Operand makeReg(Reg r, unsigned width_bits = 64);
    static Operand makeImm(std::int64_t value, unsigned width_bits = 64);
    static Operand makeMem(const MemRef &m, unsigned width_bits = 64);

    /** Intel-syntax rendering ("RAX", "42", "qword ptr [R14+RSI*4+8]"). */
    std::string toString() const;
};

} // namespace nb::x86

#endif // NB_X86_OPERAND_HH
