/**
 * @file
 * Register-name tables and parsing.
 */

#include "reg.hh"

#include <array>

#include "common/logging.hh"
#include "common/strings.hh"

namespace nb::x86
{

namespace
{

constexpr std::array<const char *, 16> kGpr64Names = {
    "RAX", "RCX", "RDX", "RBX", "RSP", "RBP", "RSI", "RDI",
    "R8", "R9", "R10", "R11", "R12", "R13", "R14", "R15",
};

constexpr std::array<const char *, 16> kGpr32Names = {
    "EAX", "ECX", "EDX", "EBX", "ESP", "EBP", "ESI", "EDI",
    "R8D", "R9D", "R10D", "R11D", "R12D", "R13D", "R14D", "R15D",
};

constexpr std::array<const char *, 16> kGpr16Names = {
    "AX", "CX", "DX", "BX", "SP", "BP", "SI", "DI",
    "R8W", "R9W", "R10W", "R11W", "R12W", "R13W", "R14W", "R15W",
};

constexpr std::array<const char *, 16> kGpr8Names = {
    "AL", "CL", "DL", "BL", "SPL", "BPL", "SIL", "DIL",
    "R8B", "R9B", "R10B", "R11B", "R12B", "R13B", "R14B", "R15B",
};

} // namespace

std::string
regName(Reg r)
{
    if (isGpr(r))
        return kGpr64Names[static_cast<unsigned>(r)];
    if (isVec(r))
        return "XMM" + std::to_string(static_cast<unsigned>(r) - kNumGprs);
    if (r == Reg::RFLAGS)
        return "RFLAGS";
    if (r == Reg::RIP)
        return "RIP";
    return "<invalid>";
}

std::string
regName(Reg r, unsigned width_bits)
{
    if (isGpr(r)) {
        unsigned idx = static_cast<unsigned>(r);
        switch (width_bits) {
          case 64:
            return kGpr64Names[idx];
          case 32:
            return kGpr32Names[idx];
          case 16:
            return kGpr16Names[idx];
          case 8:
            return kGpr8Names[idx];
          default:
            panic("bad GPR width ", width_bits);
        }
    }
    if (isVec(r)) {
        unsigned idx = static_cast<unsigned>(r) - kNumGprs;
        if (width_bits == 256)
            return "YMM" + std::to_string(idx);
        return "XMM" + std::to_string(idx);
    }
    return regName(r);
}

std::optional<ParsedReg>
parseReg(std::string_view name)
{
    std::string up = toUpper(trim(name));
    for (unsigned i = 0; i < 16; ++i) {
        if (up == kGpr64Names[i])
            return ParsedReg{static_cast<Reg>(i), 64};
        if (up == kGpr32Names[i])
            return ParsedReg{static_cast<Reg>(i), 32};
        if (up == kGpr16Names[i])
            return ParsedReg{static_cast<Reg>(i), 16};
        if (up == kGpr8Names[i])
            return ParsedReg{static_cast<Reg>(i), 8};
    }
    auto parse_vec = [&](std::string_view prefix,
                         unsigned width) -> std::optional<ParsedReg> {
        if (!startsWith(up, prefix))
            return std::nullopt;
        auto idx = parseInt(up.substr(prefix.size()));
        if (!idx || *idx < 0 || *idx >= 16)
            return std::nullopt;
        return ParsedReg{
            static_cast<Reg>(kNumGprs + static_cast<unsigned>(*idx)), width};
    };
    if (auto r = parse_vec("XMM", 128))
        return r;
    if (auto r = parse_vec("YMM", 256))
        return r;
    if (up == "RFLAGS")
        return ParsedReg{Reg::RFLAGS, 64};
    if (up == "RIP")
        return ParsedReg{Reg::RIP, 64};
    return std::nullopt;
}

} // namespace nb::x86
