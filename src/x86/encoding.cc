/**
 * @file
 * Implementation of the byte encoding.
 */

#include "encoding.hh"

#include <algorithm>

#include "common/logging.hh"

namespace nb::x86
{

namespace
{

// Stream layout: "NBC1" header, then one record per instruction.
// Instruction record: u16 opcode, u8 operand count, i32 branch target,
// operand records. Operand record: u8 kind, u16 width, payload.
// PFC_PAUSE/PFC_RESUME are emitted as their literal 8-byte magic patterns
// instead of a record, exactly like the real tool embeds magic bytes.

constexpr std::array<std::uint8_t, 4> kHeader = {'N', 'B', 'C', '1'};

void
putU8(std::vector<std::uint8_t> &out, std::uint8_t v)
{
    out.push_back(v);
}

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v & 0xFF));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putI32(std::vector<std::uint8_t> &out, std::int32_t v)
{
    auto u = static_cast<std::uint32_t>(v);
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>((u >> (8 * i)) & 0xFF));
}

void
putI64(std::vector<std::uint8_t> &out, std::int64_t v)
{
    auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>((u >> (8 * i)) & 0xFF));
}

class Reader
{
  public:
    explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

    bool atEnd() const { return pos_ >= bytes_.size(); }
    std::size_t remaining() const { return bytes_.size() - pos_; }

    std::uint8_t
    u8()
    {
        need(1);
        return bytes_[pos_++];
    }

    std::uint16_t
    u16()
    {
        need(2);
        std::uint16_t v = static_cast<std::uint16_t>(
            bytes_[pos_] | (bytes_[pos_ + 1] << 8));
        pos_ += 2;
        return v;
    }

    std::int32_t
    i32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return static_cast<std::int32_t>(v);
    }

    std::int64_t
    i64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return static_cast<std::int64_t>(v);
    }

    /** Check whether the next bytes equal @p pattern, consuming on match. */
    bool
    tryMatch(std::span<const std::uint8_t> pattern)
    {
        if (remaining() < pattern.size())
            return false;
        if (!std::equal(pattern.begin(), pattern.end(),
                        bytes_.begin() + static_cast<std::ptrdiff_t>(pos_)))
            return false;
        pos_ += pattern.size();
        return true;
    }

  private:
    void
    need(std::size_t n)
    {
        if (remaining() < n)
            fatal("truncated instruction encoding");
    }

    std::span<const std::uint8_t> bytes_;
    std::size_t pos_ = 0;
};

void
encodeOperand(std::vector<std::uint8_t> &out, const Operand &op)
{
    putU8(out, static_cast<std::uint8_t>(op.kind));
    putU16(out, static_cast<std::uint16_t>(op.widthBits));
    switch (op.kind) {
      case OperandKind::Register:
        putU8(out, static_cast<std::uint8_t>(op.reg));
        break;
      case OperandKind::Immediate:
        putI64(out, op.imm);
        break;
      case OperandKind::Memory:
        putU8(out, static_cast<std::uint8_t>(op.mem.base));
        putU8(out, static_cast<std::uint8_t>(op.mem.index));
        putU8(out, op.mem.scale);
        putI64(out, op.mem.disp);
        break;
      case OperandKind::None:
        break;
    }
}

Operand
decodeOperand(Reader &r)
{
    Operand op;
    auto kind = r.u8();
    if (kind > static_cast<std::uint8_t>(OperandKind::Memory))
        fatal("bad operand kind ", static_cast<int>(kind),
              " in instruction encoding");
    op.kind = static_cast<OperandKind>(kind);
    op.widthBits = r.u16();
    switch (op.kind) {
      case OperandKind::Register:
        op.reg = static_cast<Reg>(r.u8());
        if (static_cast<unsigned>(op.reg) >=
            static_cast<unsigned>(Reg::NumRegs))
            fatal("bad register id in instruction encoding");
        break;
      case OperandKind::Immediate:
        op.imm = r.i64();
        break;
      case OperandKind::Memory:
        op.mem.base = static_cast<Reg>(r.u8());
        op.mem.index = static_cast<Reg>(r.u8());
        op.mem.scale = r.u8();
        op.mem.disp = r.i64();
        break;
      case OperandKind::None:
        break;
    }
    return op;
}

} // namespace

std::vector<std::uint8_t>
encode(const std::vector<Instruction> &code)
{
    std::vector<std::uint8_t> out(kHeader.begin(), kHeader.end());
    for (const auto &insn : code) {
        if (insn.opcode == Opcode::PFC_PAUSE) {
            out.insert(out.end(), kMagicPause.begin(), kMagicPause.end());
            continue;
        }
        if (insn.opcode == Opcode::PFC_RESUME) {
            out.insert(out.end(), kMagicResume.begin(), kMagicResume.end());
            continue;
        }
        putU16(out, static_cast<std::uint16_t>(insn.opcode));
        NB_ASSERT(insn.operands.size() <= 4, "too many operands");
        putU8(out, static_cast<std::uint8_t>(insn.operands.size()));
        putI32(out, insn.targetIdx);
        for (const auto &op : insn.operands)
            encodeOperand(out, op);
    }
    return out;
}

std::vector<Instruction>
decode(std::span<const std::uint8_t> bytes)
{
    Reader r(bytes);
    if (!r.tryMatch(kHeader))
        fatal("missing NBC1 header in encoded code");
    std::vector<Instruction> code;
    while (!r.atEnd()) {
        if (r.tryMatch(kMagicPause)) {
            Instruction insn;
            insn.opcode = Opcode::PFC_PAUSE;
            code.push_back(std::move(insn));
            continue;
        }
        if (r.tryMatch(kMagicResume)) {
            Instruction insn;
            insn.opcode = Opcode::PFC_RESUME;
            code.push_back(std::move(insn));
            continue;
        }
        Instruction insn;
        auto opcode = r.u16();
        if (opcode >= static_cast<std::uint16_t>(Opcode::NumOpcodes))
            fatal("bad opcode ", opcode, " in instruction encoding");
        insn.opcode = static_cast<Opcode>(opcode);
        auto n_ops = r.u8();
        if (n_ops > 4)
            fatal("bad operand count in instruction encoding");
        insn.targetIdx = r.i32();
        for (unsigned i = 0; i < n_ops; ++i)
            insn.operands.push_back(decodeOperand(r));
        code.push_back(std::move(insn));
    }
    return code;
}

} // namespace nb::x86
