/**
 * @file
 * Static performance-bound analyzer over the predecoded program IR.
 *
 * Abstractly interprets a decoded sim::Program body -- the repeat
 * pattern analyzed once, never materialized -- and derives three
 * per-copy lower bounds on simulated core cycles, each grounded in a
 * guarantee the executor (sim/dispatch.cc) provides:
 *
 *  latency    The maximum cycle mean of the loop-carried dependency
 *             graph. Registers are nodes; one pass over the body
 *             pattern computes, per (written register, entry register)
 *             pair, the largest guaranteed timing distance using the
 *             cached DecodedInsn latencies -- source/flags edges cost
 *             the core-µop latency, load address edges additionally
 *             cost the L1 hit latency (the cheapest any load can be),
 *             zero idioms break chains exactly as the scheduler does.
 *             Karp's algorithm over the resulting register graph
 *             yields the per-iteration latency floor, and the critical
 *             cycle is recovered as positioned instruction echoes.
 *
 *  ports      The uops.info Π-calculation: every µop the executor
 *             dispatches (core µops with their port-pool masks, the
 *             load µop, the store-address/data pair) must land on an
 *             allowed port, and a µop occupies its port for
 *             1 + blockCycles. For every subset S of ports, the µops
 *             confined to S force at least Σweights / |S| cycles;
 *             the maximum over the <= 2^10 subsets is the bound, and
 *             a nested-bottleneck peel assigns per-port utilization.
 *
 *  front-end  Issue slots: Σ nIssueUops / issueWidth cycles per copy.
 *
 * Every bound is sound by construction: the consistency sweep
 * (tests/test_bound.cc + CI) asserts simulated cycles >= the bound for
 * every planner-emitted spec on all modelled microarchitectures, so a
 * dispatch-handler or timing-table regression that makes the simulator
 * impossibly fast fails statically-grounded CI.
 *
 * Exposed as the -explain CLI verb (text/JSON/CSV round-trips), and as
 * lint rule R7 (analysis.hh Context::Intent) flagging specs whose
 * declared measurement intent disagrees with the predicted bottleneck.
 */

#ifndef NB_ANALYSIS_BOUND_HH
#define NB_ANALYSIS_BOUND_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/runner.hh"
#include "uarch/uarch.hh"

namespace nb::sim
{
class Program;
} // namespace nb::sim

namespace nb::analysis
{

/** Which bound dominates (predicted bottleneck class). Ties resolve
 *  toward Latency, then Ports: a saturated divider chain is reported
 *  as latency-bound even when the blocked unit matches it. */
enum class Bottleneck : std::uint8_t
{
    Latency,
    Ports,
    FrontEnd,
};

/** Human-readable name ("latency" / "ports" / "frontend"). */
const char *bottleneckName(Bottleneck b);

/** Inverse of bottleneckName(); std::nullopt for unknown names. */
std::optional<Bottleneck> bottleneckFromName(std::string_view name);

/** One step of the critical latency cycle: a positioned instruction
 *  echo plus the timing-edge weight it contributes. */
struct PathStep
{
    /** Instruction index within the body pattern. */
    std::int32_t index = -1;
    /** Intel-syntax rendering of the instruction. */
    std::string insn;
    /** Guaranteed cycles this dependency edge contributes. */
    std::int64_t latency = 0;

    bool operator==(const PathStep &) const = default;
};

/** Optimal fractional load of one execution port (µops per copy under
 *  the Π assignment, and the busy fraction at the bound). */
struct PortUse
{
    std::uint8_t port = 0;
    /** Weighted µops per body copy assigned to this port. */
    double uops = 0;
    /** uops / bound(): fraction of cycles the port is busy when the
     *  body runs exactly at the predicted bound. */
    double util = 0;

    bool operator==(const PortUse &) const = default;
};

/** The bound analyzer's output for one spec on one microarchitecture.
 *  All *Bound fields are cycles per body-pattern copy. */
struct BoundReport
{
    std::string uarch;

    double latencyBound = 0;
    double portBound = 0;
    double frontEndBound = 0;

    /** The critical dependency cycle spans this many body copies...  */
    std::uint32_t latencyCycleLen = 0;
    /** ...and accumulates this many guaranteed cycles across them
     *  (latencyBound = weight / len). 0/0 when no chain exists. */
    std::int64_t latencyCycleWeight = 0;

    /** Σ issue µops per body copy. */
    double uopsPerCopy = 0;
    /** Issue (rename) width of the microarchitecture. */
    unsigned issueWidth = 0;

    Bottleneck bottleneck = Bottleneck::FrontEnd;

    /** One entry per execution port, in port order. */
    std::vector<PortUse> ports;
    /** The critical latency cycle (empty when latencyBound == 0). */
    std::vector<PathStep> criticalPath;
    /** Canonical names of the registers that carry the critical cycle
     *  across body-copy boundaries (one per spanned copy, in traversal
     *  order). measurementCycleBound() uses them to decide whether the
     *  chain survives the measurement loop's own R15/RFLAGS updates. */
    std::vector<std::string> latencyCycleRegs;

    /** The binding bound: max of the three, cycles per copy. */
    double bound() const;

    /** Human-readable multi-line summary (the -explain text output). */
    std::string format() const;

    /** JSON document; fromJson() inverse (exact double round-trip). */
    std::string toJson() const;
    static BoundReport fromJson(const std::string &text);

    /** CSV document with a header row; fromCsv() inverse. */
    std::string toCsv() const;
    static BoundReport fromCsv(const std::string &text);

    bool operator==(const BoundReport &) const = default;
};

/**
 * Analyze the body of @p spec against a microarchitecture. Uses the
 * spec's pre-assembled code if present, otherwise assembles the asm
 * text (@throws nb::FatalError on a syntax error or an opcode the
 * family does not support, like decode would).
 */
BoundReport analyzeBounds(const uarch::MicroArch &ua,
                          const core::BenchmarkSpec &spec);

/**
 * Analyze an already-decoded body program (one copy = one iteration of
 * the concatenated block patterns). The repeat counts of the blocks
 * are irrelevant to the per-copy bounds: the pattern is interpreted
 * once and the loop-carried closure scales to any trip count.
 */
BoundReport analyzeBounds(const uarch::MicroArch &ua,
                          const sim::Program &body);

/**
 * analyzeBounds() memoized on (uarch, canonical spec key), mirroring
 * analyzeSpecCached(): campaign-scale sweeps analyze each unique spec
 * once per process. Thread-safe.
 */
BoundReport analyzeBoundsCached(const uarch::MicroArch &ua,
                                const core::BenchmarkSpec &spec);

/** Memo counters of analyzeBoundsCached() (process-wide, thread-safe;
 *  misses are specs analyzed). */
CacheStats boundCacheCounters();

/**
 * Lower bound on total simulated core cycles for @p copies executions
 * of the body pattern (e.g. unrollCount * max(1, loopCount) for one
 * measurement run). The latency term anchors conservatively to the
 * first traversal of the critical cycle, so the bound holds even when
 * the machine carries scheduler state from a previous execution.
 */
double totalCycleBound(const BoundReport &rep, std::uint64_t copies);

/**
 * Lower bound on total simulated core cycles for one execution of the
 * generated measurement code: @p unroll body copies back to back, run
 * @p loops times (max(1, BenchmarkSpec::loopCount)). The port and
 * front-end terms scale with all unroll * loops copies; the latency
 * term spans loop iterations only when the critical cycle avoids R15
 * and RFLAGS -- the loop's own decrement-and-branch rewrites both
 * between iterations, so a flags-carried chain (ADC, SBB) restarts at
 * every loop boundary and only one contiguous unroll group is
 * guaranteed serial.
 */
double measurementCycleBound(const BoundReport &rep,
                             std::uint64_t unroll, std::uint64_t loops);

} // namespace nb::analysis

#endif // NB_ANALYSIS_BOUND_HH
