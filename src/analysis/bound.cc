/**
 * @file
 * Static performance bounds: abstract interpretation of the decoded
 * body pattern against the executor's timing guarantees.
 *
 * The latency pass mirrors sim/dispatch.cc's prologue exactly -- and
 * only claims delays the scheduler is guaranteed to impose:
 *
 *  - A core µop dispatches no earlier than every srcRegs register's
 *    readiness (plus RFLAGS when the instruction reads flags), and
 *    completes max(1, latency) cycles after dispatch (plain `latency`
 *    for the rare port-less µop, whose done time is ready + latency).
 *  - A load µop dispatches no earlier than every addrRegs register's
 *    readiness and takes at least the L1 hit latency; the core µop
 *    (when present) waits for the loaded value. Address registers of
 *    non-load instructions (LEA, pure stores) contribute NO edge: the
 *    executor reads their values without stalling on them.
 *  - Zero idioms skip the source/flags wait entirely.
 *  - Every write replaces the destination's readiness timestamp, so a
 *    write kills the previous derivation outright (partial-width
 *    merges included -- the scheduler does the same).
 *
 * Instructions with no core µops and no load µop (some NOP forms)
 * complete at issue: result, but no data edge. The per-register
 * transfer matrix from one pass over the pattern feeds Karp's
 * maximum-cycle-mean algorithm; the critical cycle is recovered from
 * the tight-edge subgraph after reweighting by the exact rational
 * mean, and each cycle edge is expanded back into positioned
 * instruction echoes by a provenance-tracking re-pass.
 */

#include "analysis/bound.hh"

#include <algorithm>
#include <array>
#include <cstdio>
#include <iterator>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/logging.hh"
#include "core/json.hh"
#include "core/result.hh"
#include "sim/program.hh"
#include "uarch/timing.hh"
#include "x86/assembler.hh"
#include "x86/reg.hh"

namespace nb::analysis
{

using x86::Reg;

namespace
{

constexpr std::size_t kNumRegs =
    static_cast<std::size_t>(Reg::NumRegs);
constexpr std::int64_t kNegInf =
    std::numeric_limits<std::int64_t>::min() / 4;

constexpr std::size_t
regIdx(Reg r)
{
    return static_cast<std::size_t>(r);
}

/** The timing edges one decoded entry is guaranteed to impose: input
 *  registers with per-edge weights, and the registers whose readiness
 *  timestamps the result replaces. */
struct TimingEdges
{
    /** (register, guaranteed delay) pairs. */
    std::array<std::pair<std::size_t, std::int64_t>, 16> in;
    std::size_t inCount = 0;
    std::array<std::size_t, 8> out;
    std::size_t outCount = 0;
};

void
collectEdges(const uarch::MicroArch &ua, const sim::Program &body,
             const sim::DecodedInsn &d, TimingEdges &e)
{
    e.inCount = 0;
    e.outCount = 0;
    auto push_in = [&](std::size_t r, std::int64_t w) {
        if (e.inCount < e.in.size())
            e.in[e.inCount++] = {r, w};
    };
    std::int64_t w_core = 0;
    if (d.uopCount > 0) {
        w_core = body.uopPorts(d)[0] != 0
                     ? std::max<std::int64_t>(1, d.latency)
                     : d.latency;
    }
    if (d.uopCount > 0 && !d.zeroIdiom) {
        const Reg *srcs = body.srcRegs(d);
        for (std::uint16_t i = 0; i < d.srcCount; ++i)
            push_in(regIdx(srcs[i]), w_core);
        if (d.readsFlags)
            push_in(regIdx(Reg::RFLAGS), w_core);
    }
    if (d.doLoadUop) {
        std::int64_t w_load =
            static_cast<std::int64_t>(ua.cacheConfig.l1Latency) +
            w_core;
        const Reg *addrs = body.addrRegs(d);
        for (std::uint16_t i = 0; i < d.addrCount; ++i)
            push_in(regIdx(addrs[i]), w_load);
    }
    const Reg *dsts = body.dstRegs(d);
    for (std::uint16_t i = 0; i < d.dstCount; ++i) {
        if (e.outCount < e.out.size())
            e.out[e.outCount++] = regIdx(dsts[i]);
    }
    if (d.writesFlags && e.outCount < e.out.size())
        e.out[e.outCount++] = regIdx(Reg::RFLAGS);
}

using DistRow = std::array<std::int64_t, kNumRegs>;
using DistMatrix = std::array<DistRow, kNumRegs>;

/** One pass over the body pattern: dist[r][e] = largest guaranteed
 *  timing distance from the pattern-entry value of register e to the
 *  pattern-exit value of register r (kNegInf: no dependence). */
DistMatrix
transferPass(const uarch::MicroArch &ua, const sim::Program &body)
{
    DistMatrix dist;
    for (std::size_t r = 0; r < kNumRegs; ++r) {
        dist[r].fill(kNegInf);
        dist[r][r] = 0;
    }
    TimingEdges edges;
    DistRow row;
    for (std::size_t i = 0; i < body.entryCount(); ++i) {
        collectEdges(ua, body, body.entry(i), edges);
        if (edges.outCount == 0)
            continue;
        row.fill(kNegInf);
        for (std::size_t k = 0; k < edges.inCount; ++k) {
            const auto &[src, w] = edges.in[k];
            const DistRow &srow = dist[src];
            for (std::size_t e = 0; e < kNumRegs; ++e) {
                if (srow[e] > kNegInf)
                    row[e] = std::max(row[e], srow[e] + w);
            }
        }
        for (std::size_t k = 0; k < edges.outCount; ++k)
            dist[edges.out[k]] = row;
    }
    return dist;
}

/** Provenance-tracking single-source re-pass: the longest guaranteed
 *  path from the entry value of @p source, with the instruction chain
 *  recoverable per register. */
struct Trace
{
    struct Step
    {
        std::int32_t entry; ///< index within the body pattern
        std::int64_t weight;
        std::int32_t prev;  ///< index into steps; -1 terminates
    };
    std::vector<Step> steps;
    std::array<std::int64_t, kNumRegs> value;
    std::array<std::int32_t, kNumRegs> prov;
};

Trace
tracePass(const uarch::MicroArch &ua, const sim::Program &body,
          std::size_t source)
{
    Trace t;
    t.value.fill(kNegInf);
    t.prov.fill(-1);
    t.value[source] = 0;
    TimingEdges edges;
    for (std::size_t i = 0; i < body.entryCount(); ++i) {
        collectEdges(ua, body, body.entry(i), edges);
        if (edges.outCount == 0)
            continue;
        std::int64_t best = kNegInf;
        std::int64_t best_w = 0;
        std::int32_t best_prev = -1;
        for (std::size_t k = 0; k < edges.inCount; ++k) {
            const auto &[src, w] = edges.in[k];
            if (t.value[src] > kNegInf && t.value[src] + w > best) {
                best = t.value[src] + w;
                best_w = w;
                best_prev = t.prov[src];
            }
        }
        std::int32_t step = -1;
        if (best > kNegInf) {
            step = static_cast<std::int32_t>(t.steps.size());
            t.steps.push_back({static_cast<std::int32_t>(i), best_w,
                               best_prev});
        }
        for (std::size_t k = 0; k < edges.outCount; ++k) {
            t.value[edges.out[k]] = best;
            t.prov[edges.out[k]] = step;
        }
    }
    return t;
}

/** The critical latency cycle of the loop-carried register graph. */
struct LatencyCycle
{
    /** Register sequence c[0] -> c[1] -> ... -> c[len-1] -> c[0]. */
    std::vector<std::size_t> regs;
    std::int64_t weight = 0; ///< Σ edge weights around the cycle
};

/**
 * Maximum cycle mean of the loop-carried graph W[e][r] (one edge per
 * body copy) via Karp's theorem, plus an exact critical cycle from the
 * tight-edge subgraph after reweighting by the rational mean. Returns
 * an empty cycle when no positive-mean cycle exists.
 */
LatencyCycle
maxCycleMean(const DistMatrix &dist)
{
    const std::size_t n = kNumRegs;
    // W[e][r]: entry value of e reaches the exit value of r.
    auto W = [&](std::size_t e, std::size_t r) { return dist[r][e]; };

    std::vector<DistRow> D(n + 1);
    D[0].fill(0);
    for (std::size_t k = 1; k <= n; ++k) {
        D[k].fill(kNegInf);
        for (std::size_t r = 0; r < n; ++r) {
            std::int64_t best = kNegInf;
            for (std::size_t e = 0; e < n; ++e) {
                if (D[k - 1][e] > kNegInf && W(e, r) > kNegInf)
                    best = std::max(best, D[k - 1][e] + W(e, r));
            }
            D[k][r] = best;
        }
    }

    // mean = max_v min_k (D[n][v] - D[k][v]) / (n - k), as a fraction.
    std::int64_t p = 0; // numerator; <= 0 means no positive cycle
    std::int64_t q = 1;
    for (std::size_t v = 0; v < n; ++v) {
        if (D[n][v] <= kNegInf)
            continue;
        std::int64_t vp = 0;
        std::int64_t vq = 0; // unset
        for (std::size_t k = 0; k < n; ++k) {
            if (D[k][v] <= kNegInf)
                continue;
            std::int64_t cp = D[n][v] - D[k][v];
            auto cq = static_cast<std::int64_t>(n - k);
            if (vq == 0 || cp * vq < vp * cq) {
                vp = cp;
                vq = cq;
            }
        }
        if (vq != 0 && vp * q > p * vq) {
            p = vp;
            q = vq;
        }
    }
    LatencyCycle cycle;
    if (p <= 0)
        return cycle;

    // Reweight w' = q*W - p: the maximum cycle mean becomes exactly 0,
    // longest paths converge, and every max-mean cycle is tight
    // (d[r] == d[e] + w') under the converged potentials.
    DistRow d;
    d.fill(0);
    for (std::size_t round = 0; round <= n; ++round) {
        bool changed = false;
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t e = 0; e < n; ++e) {
                if (W(e, r) <= kNegInf)
                    continue;
                std::int64_t cand = d[e] + q * W(e, r) - p;
                if (cand > d[r]) {
                    d[r] = cand;
                    changed = true;
                }
            }
        }
        if (!changed)
            break;
    }

    // Any cycle of tight edges sums to 0 reweighted, i.e. has mean
    // exactly p/q. Find one with an iterative DFS.
    std::array<std::int8_t, kNumRegs> color{}; // 0 new 1 open 2 done
    std::array<std::int32_t, kNumRegs> parent;
    parent.fill(-1);
    auto tight = [&](std::size_t e, std::size_t r) {
        return W(e, r) > kNegInf && d[r] == d[e] + q * W(e, r) - p;
    };
    for (std::size_t start = 0; start < n && cycle.regs.empty();
         ++start) {
        if (color[start] != 0)
            continue;
        std::vector<std::size_t> stack = {start};
        while (!stack.empty() && cycle.regs.empty()) {
            std::size_t e = stack.back();
            if (color[e] == 0)
                color[e] = 1;
            bool descended = false;
            for (std::size_t r = 0; r < n; ++r) {
                if (!tight(e, r))
                    continue;
                if (color[r] == 1) { // back edge: cycle r ->...-> e -> r
                    for (std::size_t c = e;; ) {
                        cycle.regs.push_back(c);
                        if (c == r)
                            break;
                        c = static_cast<std::size_t>(parent[c]);
                    }
                    std::reverse(cycle.regs.begin(),
                                 cycle.regs.end());
                    break;
                }
                if (color[r] == 0) {
                    parent[r] = static_cast<std::int32_t>(e);
                    stack.push_back(r);
                    descended = true;
                    break;
                }
            }
            if (!descended && cycle.regs.empty()) {
                color[e] = 2;
                stack.pop_back();
            }
        }
    }
    if (cycle.regs.empty())
        return cycle; // unreachable in theory; degrade to "no cycle"
    for (std::size_t i = 0; i < cycle.regs.size(); ++i) {
        cycle.weight += W(cycle.regs[i],
                          cycle.regs[(i + 1) % cycle.regs.size()]);
    }
    return cycle;
}

/** Compact display rendering of a double (trailing zeros trimmed). */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
}

} // namespace

const char *
bottleneckName(Bottleneck b)
{
    switch (b) {
      case Bottleneck::Latency: return "latency";
      case Bottleneck::Ports: return "ports";
      case Bottleneck::FrontEnd: return "frontend";
    }
    return "?";
}

std::optional<Bottleneck>
bottleneckFromName(std::string_view name)
{
    for (Bottleneck b : {Bottleneck::Latency, Bottleneck::Ports,
                         Bottleneck::FrontEnd}) {
        if (name == bottleneckName(b))
            return b;
    }
    return std::nullopt;
}

double
BoundReport::bound() const
{
    return std::max({latencyBound, portBound, frontEndBound});
}

BoundReport
analyzeBounds(const uarch::MicroArch &ua, const sim::Program &body)
{
    BoundReport rep;
    rep.uarch = ua.name;
    rep.issueWidth = ua.issueWidth;

    // ---- latency: max cycle mean of the loop-carried closure.
    DistMatrix dist = transferPass(ua, body);
    LatencyCycle cycle = maxCycleMean(dist);
    if (!cycle.regs.empty()) {
        rep.latencyCycleLen =
            static_cast<std::uint32_t>(cycle.regs.size());
        rep.latencyCycleWeight = cycle.weight;
        rep.latencyBound = static_cast<double>(cycle.weight) /
                           static_cast<double>(cycle.regs.size());
        for (std::size_t r : cycle.regs)
            rep.latencyCycleRegs.push_back(
                x86::regName(static_cast<Reg>(r)));
        for (std::size_t i = 0; i < cycle.regs.size(); ++i) {
            std::size_t from = cycle.regs[i];
            std::size_t to =
                cycle.regs[(i + 1) % cycle.regs.size()];
            Trace t = tracePass(ua, body, from);
            std::vector<PathStep> seg;
            for (std::int32_t s = t.prov[to]; s >= 0;
                 s = t.steps[static_cast<std::size_t>(s)].prev) {
                const Trace::Step &st =
                    t.steps[static_cast<std::size_t>(s)];
                PathStep step;
                step.index = st.entry;
                step.insn =
                    body.insn(body.entry(static_cast<std::size_t>(
                                  st.entry)))
                        .toString();
                step.latency = st.weight;
                seg.push_back(std::move(step));
            }
            rep.criticalPath.insert(rep.criticalPath.end(),
                                    seg.rbegin(), seg.rend());
        }
    }

    // ---- ports: the Π-calculation over µop binding sets.
    uarch::PortLayout layout = ua.ports();
    unsigned num_ports = std::min(layout.numPorts, 16u);
    auto full =
        static_cast<std::uint32_t>((1u << num_ports) - 1);
    // Aggregate dispatched µops by port mask.
    std::unordered_map<std::uint32_t, std::int64_t> by_mask;
    double uops = 0;
    for (std::size_t i = 0; i < body.entryCount(); ++i) {
        const sim::DecodedInsn &d = body.entry(i);
        for (std::uint16_t j = 0; j < d.uopCount; ++j) {
            std::uint32_t mask = body.uopPorts(d)[j] & full;
            if (mask)
                by_mask[mask] += j == 0 ? 1 + d.blockCycles : 1;
        }
        if (d.doLoadUop && (layout.loadPorts & full))
            by_mask[layout.loadPorts & full] += 1;
        if (d.hasStore) {
            if (layout.storeAddrPorts & full)
                by_mask[layout.storeAddrPorts & full] += 1;
            if (layout.storeDataPorts & full)
                by_mask[layout.storeDataPorts & full] += 1;
        }
        uops += d.nIssueUops;
    }
    for (std::uint32_t set = full; set; set = (set - 1) & full) {
        std::int64_t confined = 0;
        for (const auto &[mask, weight] : by_mask) {
            if ((mask & ~set) == 0)
                confined += weight;
        }
        double pressure = static_cast<double>(confined) /
                          __builtin_popcount(set);
        rep.portBound = std::max(rep.portBound, pressure);
    }

    // Per-port loads: peel nested bottleneck sets.
    std::vector<double> load(num_ports, 0);
    std::uint32_t active = full;
    auto remaining = by_mask;
    while (active && !remaining.empty()) {
        double best_pressure = -1;
        std::uint32_t best_set = 0;
        for (std::uint32_t set = active; set;
             set = (set - 1) & active) {
            std::int64_t confined = 0;
            for (const auto &[mask, weight] : remaining) {
                std::uint32_t m = mask & active;
                if (m && (m & ~set) == 0)
                    confined += weight;
            }
            double pressure = static_cast<double>(confined) /
                              __builtin_popcount(set);
            if (pressure > best_pressure) {
                best_pressure = pressure;
                best_set = set;
            }
        }
        if (best_pressure <= 0)
            break;
        for (unsigned port = 0; port < num_ports; ++port) {
            if (best_set >> port & 1)
                load[port] = best_pressure;
        }
        for (auto it = remaining.begin(); it != remaining.end();) {
            std::uint32_t m = it->first & active;
            it = m && (m & ~best_set) == 0 ? remaining.erase(it)
                                           : std::next(it);
        }
        active &= ~best_set;
    }

    // ---- front-end: issue slots per copy over the rename width.
    rep.uopsPerCopy = uops;
    rep.frontEndBound =
        ua.issueWidth > 0 ? uops / ua.issueWidth : 0;

    for (unsigned port = 0; port < num_ports; ++port) {
        PortUse use;
        use.port = static_cast<std::uint8_t>(port);
        use.uops = load[port];
        rep.ports.push_back(use);
    }

    if (rep.latencyBound >= rep.portBound &&
        rep.latencyBound >= rep.frontEndBound &&
        rep.latencyBound > 0) {
        rep.bottleneck = Bottleneck::Latency;
    } else if (rep.portBound >= rep.frontEndBound &&
               rep.portBound > 0) {
        rep.bottleneck = Bottleneck::Ports;
    } else {
        rep.bottleneck = Bottleneck::FrontEnd;
    }

    double binding = rep.bound();
    for (PortUse &use : rep.ports)
        use.util = binding > 0 ? use.uops / binding : 0;
    return rep;
}

BoundReport
analyzeBounds(const uarch::MicroArch &ua,
              const core::BenchmarkSpec &spec)
{
    std::vector<x86::Instruction> body_code = spec.code;
    if (body_code.empty() && !spec.asmCode.empty())
        body_code = x86::assemble(spec.asmCode);
    std::vector<sim::Program::Segment> segs(1);
    segs[0].code = std::move(body_code);
    segs[0].repeat = std::max<std::uint64_t>(1, spec.unrollCount);
    sim::Program body = sim::Program::decode(ua, std::move(segs));
    return analyzeBounds(ua, body);
}

double
totalCycleBound(const BoundReport &rep, std::uint64_t copies)
{
    auto n = static_cast<double>(copies);
    double best = std::max(n * rep.portBound, n * rep.frontEndBound);
    if (rep.latencyCycleLen > 0) {
        std::uint64_t traversals = copies / rep.latencyCycleLen;
        if (traversals > 1) {
            best = std::max(
                best, static_cast<double>(traversals - 1) *
                          static_cast<double>(rep.latencyCycleWeight));
        }
    }
    return best;
}

double
measurementCycleBound(const BoundReport &rep, std::uint64_t unroll,
                      std::uint64_t loops)
{
    loops = std::max<std::uint64_t>(1, loops);
    std::uint64_t copies = unroll * loops;
    auto n = static_cast<double>(copies);
    double best = std::max(n * rep.portBound, n * rep.frontEndBound);
    if (rep.latencyCycleLen > 0) {
        // The loop's decrement-and-branch rewrites R15 and RFLAGS
        // between unroll groups; a chain carried through either is
        // only guaranteed serial within one group.
        bool loop_safe = true;
        for (const std::string &reg : rep.latencyCycleRegs) {
            if (reg == "R15" || reg == "RFLAGS")
                loop_safe = false;
        }
        std::uint64_t span = loop_safe ? copies : unroll;
        std::uint64_t traversals = span / rep.latencyCycleLen;
        if (traversals > 1) {
            best = std::max(
                best, static_cast<double>(traversals - 1) *
                          static_cast<double>(rep.latencyCycleWeight));
        }
    }
    return best;
}

std::string
BoundReport::format() const
{
    std::string out = "uarch: " + uarch + '\n';
    out += "bottleneck: ";
    out += bottleneckName(bottleneck);
    out += '\n';
    out += "latency bound:   " + fmtDouble(latencyBound) +
           " cycles/copy";
    if (latencyCycleLen > 0) {
        out += " (cycle: " + std::to_string(latencyCycleWeight) +
               " cycles across " + std::to_string(latencyCycleLen) +
               (latencyCycleLen == 1 ? " copy)" : " copies)");
    }
    out += '\n';
    out += "port bound:      " + fmtDouble(portBound) +
           " cycles/copy\n";
    out += "front-end bound: " + fmtDouble(frontEndBound) +
           " cycles/copy (" + fmtDouble(uopsPerCopy) +
           " uops / issue width " + std::to_string(issueWidth) +
           ")\n";
    if (!ports.empty()) {
        out += "port utilization:\n";
        for (const PortUse &use : ports) {
            out += "  p" + std::to_string(use.port) + ": " +
                   fmtDouble(use.uops) + " uops/copy (" +
                   fmtDouble(use.util * 100) + "% @ bound)\n";
        }
    }
    if (!criticalPath.empty()) {
        out += "critical path (per traversal):\n";
        for (const PathStep &step : criticalPath) {
            out += "  body[" + std::to_string(step.index) + "] \"" +
                   step.insn + "\" +" +
                   std::to_string(step.latency) + '\n';
        }
    }
    if (!latencyCycleRegs.empty()) {
        out += "carried through: ";
        for (std::size_t i = 0; i < latencyCycleRegs.size(); ++i) {
            if (i)
                out += " -> ";
            out += latencyCycleRegs[i];
        }
        out += " -> (next copy)\n";
    }
    return out;
}

std::string
BoundReport::toJson() const
{
    std::string out = "{\"uarch\": \"";
    out += core::jsonEscape(uarch);
    out += "\", \"bottleneck\": \"";
    out += bottleneckName(bottleneck);
    out += "\",\n \"latency_bound\": ";
    out += core::exactDouble(latencyBound);
    out += ", \"port_bound\": ";
    out += core::exactDouble(portBound);
    out += ", \"frontend_bound\": ";
    out += core::exactDouble(frontEndBound);
    out += ",\n \"latency_cycle_len\": ";
    out += std::to_string(latencyCycleLen);
    out += ", \"latency_cycle_weight\": ";
    out += std::to_string(latencyCycleWeight);
    out += ", \"uops_per_copy\": ";
    out += core::exactDouble(uopsPerCopy);
    out += ", \"issue_width\": ";
    out += std::to_string(issueWidth);
    out += ",\n \"ports\": [";
    bool first = true;
    for (const PortUse &use : ports) {
        if (!first)
            out += ", ";
        first = false;
        out += "\n  {\"port\": ";
        out += std::to_string(use.port);
        out += ", \"uops\": ";
        out += core::exactDouble(use.uops);
        out += ", \"util\": ";
        out += core::exactDouble(use.util);
        out += "}";
    }
    out += ports.empty() ? "]" : "\n ]";
    out += ",\n \"critical_path\": [";
    first = true;
    for (const PathStep &step : criticalPath) {
        if (!first)
            out += ", ";
        first = false;
        out += "\n  {\"index\": ";
        out += std::to_string(step.index);
        out += ", \"latency\": ";
        out += std::to_string(step.latency);
        out += ", \"insn\": \"";
        out += core::jsonEscape(step.insn);
        out += "\"}";
    }
    out += criticalPath.empty() ? "]" : "\n ]";
    out += ",\n \"latency_cycle_regs\": [";
    first = true;
    for (const std::string &reg : latencyCycleRegs) {
        if (!first)
            out += ", ";
        first = false;
        out += '"';
        out += core::jsonEscape(reg);
        out += '"';
    }
    out += "]}\n";
    return out;
}

BoundReport
BoundReport::fromJson(const std::string &text)
{
    BoundReport rep;
    core::JsonCursor cur(text);
    cur.expect('{');
    if (!cur.tryConsume('}')) {
        do {
            std::string key = cur.parseString();
            cur.expect(':');
            if (key == "uarch") {
                rep.uarch = cur.parseString();
            } else if (key == "bottleneck") {
                std::string name = cur.parseString();
                auto b = bottleneckFromName(name);
                if (!b)
                    fatal("bound report: unknown bottleneck '", name,
                          "'");
                rep.bottleneck = *b;
            } else if (key == "latency_bound") {
                rep.latencyBound = cur.parseNumber();
            } else if (key == "port_bound") {
                rep.portBound = cur.parseNumber();
            } else if (key == "frontend_bound") {
                rep.frontEndBound = cur.parseNumber();
            } else if (key == "latency_cycle_len") {
                rep.latencyCycleLen =
                    static_cast<std::uint32_t>(cur.parseNumber());
            } else if (key == "latency_cycle_weight") {
                rep.latencyCycleWeight =
                    static_cast<std::int64_t>(cur.parseNumber());
            } else if (key == "uops_per_copy") {
                rep.uopsPerCopy = cur.parseNumber();
            } else if (key == "issue_width") {
                rep.issueWidth =
                    static_cast<unsigned>(cur.parseNumber());
            } else if (key == "ports") {
                cur.expect('[');
                if (cur.tryConsume(']'))
                    continue;
                do {
                    PortUse use;
                    cur.expect('{');
                    do {
                        std::string field = cur.parseString();
                        cur.expect(':');
                        if (field == "port") {
                            use.port = static_cast<std::uint8_t>(
                                cur.parseNumber());
                        } else if (field == "uops") {
                            use.uops = cur.parseNumber();
                        } else if (field == "util") {
                            use.util = cur.parseNumber();
                        } else {
                            cur.skipValue();
                        }
                    } while (cur.tryConsume(','));
                    cur.expect('}');
                    rep.ports.push_back(use);
                } while (cur.tryConsume(','));
                cur.expect(']');
            } else if (key == "critical_path") {
                cur.expect('[');
                if (cur.tryConsume(']'))
                    continue;
                do {
                    PathStep step;
                    cur.expect('{');
                    do {
                        std::string field = cur.parseString();
                        cur.expect(':');
                        if (field == "index") {
                            step.index = static_cast<std::int32_t>(
                                cur.parseNumber());
                        } else if (field == "latency") {
                            step.latency =
                                static_cast<std::int64_t>(
                                    cur.parseNumber());
                        } else if (field == "insn") {
                            step.insn = cur.parseString();
                        } else {
                            cur.skipValue();
                        }
                    } while (cur.tryConsume(','));
                    cur.expect('}');
                    rep.criticalPath.push_back(std::move(step));
                } while (cur.tryConsume(','));
                cur.expect(']');
            } else if (key == "latency_cycle_regs") {
                cur.expect('[');
                if (cur.tryConsume(']'))
                    continue;
                do {
                    rep.latencyCycleRegs.push_back(cur.parseString());
                } while (cur.tryConsume(','));
                cur.expect(']');
            } else {
                cur.skipValue();
            }
        } while (cur.tryConsume(','));
        cur.expect('}');
    }
    cur.expectEnd();
    return rep;
}

namespace
{
const char *const kBoundCsvHeader = "kind,key,value,detail";
} // namespace

std::string
BoundReport::toCsv() const
{
    std::string out = kBoundCsvHeader;
    out += '\n';
    auto summary = [&](const char *key, const std::string &value) {
        out += "summary,";
        out += key;
        out += ',';
        out += value;
        out += ",\n";
    };
    summary("uarch", core::csvEscape(uarch));
    summary("bottleneck", bottleneckName(bottleneck));
    summary("latency_bound", core::exactDouble(latencyBound));
    summary("port_bound", core::exactDouble(portBound));
    summary("frontend_bound", core::exactDouble(frontEndBound));
    summary("latency_cycle_len", std::to_string(latencyCycleLen));
    summary("latency_cycle_weight",
            std::to_string(latencyCycleWeight));
    summary("uops_per_copy", core::exactDouble(uopsPerCopy));
    summary("issue_width", std::to_string(issueWidth));
    for (const PortUse &use : ports) {
        out += "port," + std::to_string(use.port) + ',' +
               core::exactDouble(use.uops) + ',' +
               core::exactDouble(use.util) + '\n';
    }
    for (const PathStep &step : criticalPath) {
        out += "path," + std::to_string(step.index) + ',' +
               std::to_string(step.latency) + ',' +
               core::csvEscape(step.insn) + '\n';
    }
    for (std::size_t i = 0; i < latencyCycleRegs.size(); ++i) {
        out += "cyclereg," + std::to_string(i) + ',' +
               core::csvEscape(latencyCycleRegs[i]) + ",\n";
    }
    return out;
}

BoundReport
BoundReport::fromCsv(const std::string &text)
{
    BoundReport rep;
    std::size_t pos = 0;
    bool saw_header = false;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        if (!saw_header) {
            if (line != kBoundCsvHeader)
                fatal("bound report CSV: bad header '", line, "'");
            saw_header = true;
            continue;
        }
        std::vector<std::string> fields = core::splitCsvRecord(line);
        if (fields.size() != 4)
            fatal("bound report CSV: expected 4 fields, got ",
                  fields.size());
        auto num = [&](const std::string &f) {
            try {
                return std::stod(f);
            } catch (const std::exception &) {
                fatal("bound report CSV: bad number '", f, "'");
            }
        };
        if (fields[0] == "summary") {
            const std::string &key = fields[1];
            const std::string &value = fields[2];
            if (key == "uarch") {
                rep.uarch = core::csvUnescape(value);
            } else if (key == "bottleneck") {
                auto b = bottleneckFromName(value);
                if (!b)
                    fatal("bound report CSV: unknown bottleneck '",
                          value, "'");
                rep.bottleneck = *b;
            } else if (key == "latency_bound") {
                rep.latencyBound = num(value);
            } else if (key == "port_bound") {
                rep.portBound = num(value);
            } else if (key == "frontend_bound") {
                rep.frontEndBound = num(value);
            } else if (key == "latency_cycle_len") {
                rep.latencyCycleLen =
                    static_cast<std::uint32_t>(num(value));
            } else if (key == "latency_cycle_weight") {
                rep.latencyCycleWeight =
                    static_cast<std::int64_t>(num(value));
            } else if (key == "uops_per_copy") {
                rep.uopsPerCopy = num(value);
            } else if (key == "issue_width") {
                rep.issueWidth = static_cast<unsigned>(num(value));
            } else {
                fatal("bound report CSV: unknown summary key '", key,
                      "'");
            }
        } else if (fields[0] == "port") {
            PortUse use;
            use.port = static_cast<std::uint8_t>(num(fields[1]));
            use.uops = num(fields[2]);
            use.util = num(fields[3]);
            rep.ports.push_back(use);
        } else if (fields[0] == "path") {
            PathStep step;
            step.index = static_cast<std::int32_t>(num(fields[1]));
            step.latency = static_cast<std::int64_t>(num(fields[2]));
            step.insn = core::csvUnescape(fields[3]);
            rep.criticalPath.push_back(std::move(step));
        } else if (fields[0] == "cyclereg") {
            rep.latencyCycleRegs.push_back(
                core::csvUnescape(fields[2]));
        } else {
            fatal("bound report CSV: unknown kind '", fields[0], "'");
        }
    }
    if (!saw_header)
        fatal("bound report CSV: missing header");
    return rep;
}

namespace
{

/** Whole-report memo keyed on (uarch, canonical spec key), the
 *  analyzeSpecCached() pattern: bounded by clearing when full. */
struct BoundCache
{
    std::mutex mutex;
    std::unordered_map<std::string,
                       std::shared_ptr<const BoundReport>>
        reports;
    CacheStats stats;

    static constexpr std::size_t kMaxEntries = 4096;
};

BoundCache &
boundCache()
{
    static BoundCache cache;
    return cache;
}

} // namespace

BoundReport
analyzeBoundsCached(const uarch::MicroArch &ua,
                    const core::BenchmarkSpec &spec)
{
    BoundCache &cache = boundCache();
    std::string key = ua.name;
    key += '\0';
    key += core::specCanonicalKey(spec);
    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        auto it = cache.reports.find(key);
        if (it != cache.reports.end()) {
            ++cache.stats.hits;
            return *it->second;
        }
    }

    BoundReport rep = analyzeBounds(ua, spec);

    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        ++cache.stats.misses;
        if (cache.reports.size() >= BoundCache::kMaxEntries)
            cache.reports.clear();
        cache.reports.emplace(
            std::move(key),
            std::make_shared<const BoundReport>(rep));
    }
    return rep;
}

CacheStats
boundCacheCounters()
{
    BoundCache &cache = boundCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    return cache.stats;
}

} // namespace nb::analysis
