/**
 * @file
 * Static analysis of benchmark specs over the predecoded program IR.
 *
 * A benchmark body that breaks one of nanoBench's measurement-validity
 * invariants -- clobbering the R15 loop counter, losing the R14
 * memory-area base, touching the noMem accumulator registers, or
 * leaving a "latency" dependency chain severed by a zero idiom --
 * still runs and still produces numbers; they just measure nothing
 * (paper §III-B, §III-G, §III-I; the uops.info methodology depends on
 * exactly these invariants holding). The analyzer decodes a spec's
 * init and body into a sim::Program (so it sees the same resolved
 * def/use sets, load/store decomposition, and repeat-block structure
 * the executor sees) and runs a register-level dataflow pass that
 * turns violations into structured Diagnostics.
 *
 * Rules:
 *  R0  unsupported opcode on the target microarchitecture (the
 *      decode-time fault, promoted to a positioned diagnostic)
 *  R1  body clobbers a measurement-reserved register: any write to
 *      R15 while loopCount > 0 (error), or a write to R14 whose new
 *      value no longer derives from the memory-area base (warning;
 *      pointer chases like `mov R14, [R14]` stay clean)
 *  R2  noMem accumulator interference: the body writes one of the
 *      R8..R13 accumulators (error) or reads one before defining it
 *      (warning) in a noMem spec
 *  R3  broken dependency chain: no def-use path threads the body back
 *      to itself across iterations. Reported when the caller declares
 *      latency intent (Context::Chain::Expect), or -- in Auto mode --
 *      when the only would-be chain is severed by a single zero idiom
 *  R4  dead measured code: a pure register result overwritten later
 *      in the body without any intervening read
 *  R5  memory footprint: an R14-relative access outside the reserved
 *      R14 area, or an absolute access overlapping the measurement
 *      results/scratch area
 *  R6  flags liveness: init sets flags the body consumes, but the
 *      counter readout between init and body rewrites RFLAGS, so the
 *      body observes readout flags instead. Exception: CF = 0 from a
 *      trailing logic instruction feeding carry-only readers does
 *      survive (the readout's OR accumulation also clears CF)
 *  R7  model consistency: the spec's declared measurement intent
 *      (Context::Intent, the Characterizer role tags) disagrees with
 *      the bottleneck the static performance model (analysis/bound.hh)
 *      predicts. A "latency" spec whose predicted bottleneck is ports
 *      or the front end is an error when no loop-carried chain
 *      threads the body at all; when an architectural chain exists
 *      but carries no timing edge (LEA address operands: the
 *      scheduler reads address registers of non-load uops without
 *      stalling) it is informational, a property of the instruction
 *      rather than the plan. A "throughput" spec predicted
 *      latency-bound is informational only: some instructions (ADC,
 *      SBB) genuinely serialize on flags no matter how the planner
 *      arranges the copies
 *
 * Diagnostics round-trip through JSON and CSV (core/json.hh /
 * core/result.hh helpers), and analyzeSpecCached() memoizes whole
 * reports on the canonical spec key so campaign-path linting is one
 * analysis per unique spec.
 */

#ifndef NB_ANALYSIS_ANALYSIS_HH
#define NB_ANALYSIS_ANALYSIS_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/codegen.hh"
#include "core/runner.hh"
#include "uarch/uarch.hh"

namespace nb::analysis
{

/** Diagnostic severity, ordered: Info < Warning < Error. */
enum class Severity : std::uint8_t
{
    Info,
    Warning,
    Error,
};

/** Human-readable name ("info" / "warning" / "error"). */
const char *severityName(Severity severity);

/** Inverse of severityName(); std::nullopt for unknown names. */
std::optional<Severity> severityFromName(std::string_view name);

/** Which part of the spec a diagnostic points into. */
enum class Segment : std::uint8_t
{
    Init,
    Body,
};

/** Human-readable name ("init" / "body"). */
const char *segmentName(Segment segment);

/** One finding: rule id, severity, and a position in the spec. */
struct Diagnostic
{
    /** Rule id ("R0".."R6"). */
    std::string rule;
    Severity severity = Severity::Warning;
    Segment segment = Segment::Body;
    /** Instruction index within the segment; -1 if not tied to one. */
    std::int32_t index = -1;
    /** Intel-syntax rendering of the offending instruction (empty if
     *  index < 0). */
    std::string insn;
    std::string message;

    bool operator==(const Diagnostic &) const = default;

    /** One-line rendering, e.g.
     *  `error R1 body[2] "mov R15, 5": ...`. */
    std::string format() const;
};

/** The analyzer's output: diagnostics in rule order. */
struct Report
{
    std::vector<Diagnostic> diagnostics;

    bool empty() const { return diagnostics.empty(); }
    /** Diagnostics at exactly this severity. */
    std::size_t count(Severity severity) const;
    /** Diagnostics at this severity or worse. */
    std::size_t countAtLeast(Severity severity) const;
    /** No warnings or errors (informational findings allowed). */
    bool clean() const { return countAtLeast(Severity::Warning) == 0; }
    /** Any diagnostic with this rule id? */
    bool hasRule(std::string_view rule) const;

    /** One formatted line per diagnostic (empty string if none). */
    std::string format() const;

    /** JSON document: {"diagnostics": [...]}; fromJson() inverse. */
    std::string toJson() const;
    static Report fromJson(const std::string &text);

    /** CSV document with a header row; fromCsv() inverse. */
    std::string toCsv() const;
    static Report fromCsv(const std::string &text);

    bool operator==(const Report &) const = default;
};

/**
 * Measurement-environment facts the rules check against. The defaults
 * match a fresh Runner (1 MB R14 area); forRunner() fills the actual
 * geometry of a live runner.
 */
struct Context
{
    core::Mode mode = core::Mode::Kernel;
    /** Reserved R14 memory area (§III-G). */
    Addr r14Base = 0;
    Addr r14Size = 1u << 20;
    /** Results/scratch area of the memory-mode readout. */
    Addr resultBase = 0;
    Addr resultSize = core::layout::kAreaSize;

    /** R3 chain expectation. */
    enum class Chain : std::uint8_t
    {
        /** Flag only clear zero-idiom chain breaks (see R3 above). */
        Auto,
        /** Latency-style spec: error when no chain threads the body
         *  back to itself. */
        Expect,
        /** Skip R3 entirely. */
        Ignore,
    };
    Chain chain = Chain::Auto;

    /** R7 declared measurement intent. */
    enum class Intent : std::uint8_t
    {
        /** No declared intent; R7 is skipped. */
        None,
        /** The spec claims a loop-carried latency chain binds. */
        Latency,
        /** The spec claims throughput / port pressure binds. */
        Throughput,
    };
    Intent intent = Intent::None;

    /** Context with the live memory geometry of @p runner. */
    static Context forRunner(const core::Runner &runner);

    /**
     * Context with the memory geometry @p runner will have *after* a
     * campaign's per-spec machineSetup hook runs (the hook is applied
     * to the runner first, then forRunner() reads the result). Lets
     * profile-style campaign specs -- planned against an enlarged R14
     * area that only exists once the hook reserves it -- lint with
     * exact R5 bounds instead of the conservative fresh-runner
     * default. The hook is required to be idempotent
     * (CampaignOptions::machineSetup's contract), so applying it at
     * plan-lint time and again at run time is safe.
     */
    static Context
    forCampaign(core::Runner &runner,
                const std::function<void(core::Runner &)> &machineSetup);
};

/**
 * Analyze one spec against a microarchitecture. Uses the spec's
 * pre-assembled code/init if present, otherwise assembles the asm
 * text (@throws nb::FatalError on a syntax error, like the runner
 * would).
 */
Report analyzeSpec(const uarch::MicroArch &ua,
                   const core::BenchmarkSpec &spec,
                   const Context &ctx = {});

/**
 * analyzeSpec() memoized on (uarch, context, canonical spec key):
 * each unique spec is analyzed once per process, so lint-enabled
 * campaigns re-lint duplicates and re-runs for free. Thread-safe.
 */
Report analyzeSpecCached(const uarch::MicroArch &ua,
                         const core::BenchmarkSpec &spec,
                         const Context &ctx = {});

/** Counters of the analyzeSpecCached() memo (process-wide).
 *  Pre-telemetry shape, kept for the deprecated accessor; new code
 *  reads lintCacheCounters() (or Engine::telemetry()). */
struct LintCacheStats
{
    std::uint64_t hits = 0;   ///< reports served from the memo
    std::uint64_t misses = 0; ///< specs analyzed
    std::uint64_t evictions = 0; ///< entries dropped by clear-when-full
};

/** Current memo counters in the unified telemetry shape (misses are
 *  specs analyzed). Thread-safe. */
CacheStats lintCacheCounters();

/** @deprecated Pre-telemetry shape of lintCacheCounters(). */
[[deprecated("use lintCacheCounters()")]] LintCacheStats
lintCacheStats();

} // namespace nb::analysis

#endif // NB_ANALYSIS_ANALYSIS_HH
