/**
 * @file
 * Spec static analyzer: dataflow over the predecoded program IR.
 *
 * The dataflow core tracks, per architectural register, the set of
 * *segment-entry* registers the current value derives from (a bitmask
 * over the 34-register file, RFLAGS included). One linear pass over
 * init then body evaluates every rule except the chain rule; R3 runs
 * two extra body-only passes (zero idioms honored / treated as plain
 * reads) and looks for a cycle in the written-register dependency
 * relation -- a cycle is exactly a loop-carried chain across unroll
 * copies. Control flow inside the body is ignored (straight-line
 * over-approximation): branches contribute their register and flags
 * reads but do not fork the state, which keeps the pass linear and is
 * precise for every spec the planners emit.
 */

#include "analysis/analysis.hh"

#include <algorithm>
#include <array>
#include <cstdio>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "analysis/bound.hh"

#include "common/logging.hh"
#include "core/json.hh"
#include "core/result.hh"
#include "sim/program.hh"
#include "uarch/timing.hh"
#include "x86/assembler.hh"

namespace nb::analysis
{

using x86::Instruction;
using x86::Opcode;
using x86::Reg;

namespace
{

constexpr std::size_t kNumRegs =
    static_cast<std::size_t>(Reg::NumRegs);
static_assert(kNumRegs <= 64, "register deps are a uint64_t bitmask");

using Mask = std::uint64_t;

constexpr std::size_t
regIdx(Reg r)
{
    return static_cast<std::size_t>(r);
}

constexpr Mask
regBit(Reg r)
{
    return Mask{1} << regIdx(r);
}

/** One-operand IMUL reads RAX implicitly (RDX:RAX = RAX * src). The
 *  opcode table leaves that implicit so the executor's readiness
 *  timing stays as measured; the analyzer adds it back here. */
bool
isOneOpImul(const Instruction &insn)
{
    return insn.opcode == Opcode::IMUL && insn.operands.size() == 1;
}

/** Register-derivation state: deps[r] = segment-entry registers the
 *  current value of r derives from; written = registers defined so
 *  far (RFLAGS included). */
struct Flow
{
    std::array<Mask, kNumRegs> deps{};
    Mask written = 0;

    void
    reset()
    {
        for (std::size_t r = 0; r < kNumRegs; ++r)
            deps[r] = Mask{1} << r;
        written = 0;
    }
};

/** The registers an entry reads (dataflow inputs): explicit sources,
 *  flags, the IMUL implicit, and -- for loads and LEA -- the address
 *  registers (a chase's loaded value is data-dependent on the
 *  address). */
Mask
inputDeps(const Flow &f, const sim::Program &prog,
          const sim::DecodedInsn &d, bool idiom_reads)
{
    const Instruction &insn = prog.insn(d);
    Mask in = 0;
    const Reg *srcs = prog.srcRegs(d);
    for (std::uint16_t i = 0; i < d.srcCount; ++i)
        in |= f.deps[regIdx(srcs[i])];
    if (d.zeroIdiom && idiom_reads) {
        for (const auto &op : insn.operands) {
            if (op.kind == x86::OperandKind::Register)
                in |= f.deps[regIdx(op.reg)];
        }
    }
    if (d.readsFlags)
        in |= f.deps[regIdx(Reg::RFLAGS)];
    if (isOneOpImul(insn))
        in |= f.deps[regIdx(Reg::RAX)];
    if (d.hasLoad || insn.opcode == Opcode::LEA) {
        const Reg *addrs = prog.addrRegs(d);
        for (std::uint16_t i = 0; i < d.addrCount; ++i)
            in |= f.deps[regIdx(addrs[i])];
    }
    return in;
}

/** Advance the dataflow state across one entry. */
void
step(Flow &f, const sim::Program &prog, const sim::DecodedInsn &d,
     bool idiom_reads)
{
    Mask in = inputDeps(f, prog, d, idiom_reads);
    const Reg *dsts = prog.dstRegs(d);
    for (std::uint16_t i = 0; i < d.dstCount; ++i) {
        f.deps[regIdx(dsts[i])] = in;
        f.written |= regBit(dsts[i]);
    }
    if (d.writesFlags) {
        f.deps[regIdx(Reg::RFLAGS)] = in;
        f.written |= regBit(Reg::RFLAGS);
    }
}

/** Registers an entry uses, as a mask (for the dead-code scan; flags
 *  are tracked separately via readsFlags). */
Mask
useMask(const sim::Program &prog, const sim::DecodedInsn &d)
{
    const Instruction &insn = prog.insn(d);
    Mask m = 0;
    const Reg *srcs = prog.srcRegs(d);
    for (std::uint16_t i = 0; i < d.srcCount; ++i)
        m |= regBit(srcs[i]);
    if (d.zeroIdiom) {
        // A zero idiom's operand value is irrelevant -- but the
        // register itself is *consumed* in the sense that a prior
        // write to it is intentional dependency-breaking fodder, not
        // dead code. It is deliberately NOT added here: `mov RAX, 5;
        // xor RAX, RAX` does leave the 5 unread.
    }
    const Reg *addrs = prog.addrRegs(d);
    for (std::uint16_t i = 0; i < d.addrCount; ++i)
        m |= regBit(addrs[i]);
    if (isOneOpImul(insn))
        m |= regBit(Reg::RAX);
    return m;
}

Mask
defMask(const sim::Program &prog, const sim::DecodedInsn &d)
{
    Mask m = 0;
    const Reg *dsts = prog.dstRegs(d);
    for (std::uint16_t i = 0; i < d.dstCount; ++i)
        m |= regBit(dsts[i]);
    return m;
}

/** Width in bits with which @p d writes register @p r (64 for
 *  implicit destinations). A write of < 32 bits merges with the old
 *  value instead of replacing it, so it does not kill a pending def. */
unsigned
defWidth(const sim::Program &prog, const sim::DecodedInsn &d, Reg r)
{
    const Instruction &insn = prog.insn(d);
    if (!insn.operands.empty() &&
        insn.operands[0].kind == x86::OperandKind::Register &&
        insn.operands[0].reg == r)
        return insn.operands[0].widthBits;
    return 64;
}

/**
 * Is there a loop-carried dependency chain across body iterations?
 * After one straight-line pass, register s written by the body holds a
 * value derived from the *entry* values after[s]; an entry value of a
 * written register r is r's previous-iteration result. A cycle in
 * that relation (transitive closure over the written registers,
 * RFLAGS included -- the SETcc/TEST chain is a flags cycle) is a
 * chain that threads the body back to itself.
 */
bool
chainExists(const sim::Program &body, bool idiom_reads)
{
    if (body.entryCount() == 0)
        return false;
    Flow f;
    f.reset();
    for (std::size_t i = 0; i < body.entryCount(); ++i)
        step(f, body, body.entry(i), idiom_reads);

    std::array<Mask, kNumRegs> reach{};
    for (std::size_t r = 0; r < kNumRegs; ++r)
        reach[r] = f.deps[r] & f.written;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t s = 0; s < kNumRegs; ++s) {
            if (!(f.written >> s & 1))
                continue;
            Mask add = 0;
            for (std::size_t r = 0; r < kNumRegs; ++r) {
                if (reach[s] >> r & 1)
                    add |= reach[r];
            }
            if ((reach[s] | add) != reach[s]) {
                reach[s] |= add;
                changed = true;
            }
        }
    }
    for (std::size_t s = 0; s < kNumRegs; ++s) {
        if ((f.written >> s & 1) && (reach[s] >> s & 1))
            return true;
    }
    return false;
}

/** Does this opcode read only CF of the flags (ADC/SBB and the
 *  carry-conditional operations)? Every other flags reader in the
 *  subset consumes ZF/SF/OF. */
bool
readsOnlyCarry(Opcode op)
{
    return op == Opcode::ADC || op == Opcode::SBB ||
           op == Opcode::CMOVC || op == Opcode::CMOVNC ||
           op == Opcode::JC || op == Opcode::JNC;
}

/** Does this opcode leave CF = 0 unconditionally (the logic group,
 *  which clears CF and OF)? The counter readout's OR accumulation has
 *  the same guarantee, so CF = 0 established in init *does* survive
 *  the readout. */
bool
clearsCarry(Opcode op)
{
    return op == Opcode::TEST || op == Opcode::AND ||
           op == Opcode::OR || op == Opcode::XOR;
}

/** InstrClasses whose register results are side effects of the
 *  measured behaviour, not candidates for the dead-code rule. */
bool
deadRuleExemptClass(x86::InstrClass cls)
{
    using IC = x86::InstrClass;
    return cls == IC::Fence || cls == IC::Serialize ||
           cls == IC::CounterRead || cls == IC::System ||
           cls == IC::Nop || cls == IC::Magic;
}

/** Compact display rendering of a double for diagnostics. */
std::string
shortDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
}

void
addDiag(Report &rep, const char *rule, Severity sev, Segment seg,
        std::int32_t index, std::string insn, std::string message)
{
    Diagnostic d;
    d.rule = rule;
    d.severity = sev;
    d.segment = seg;
    d.index = index;
    d.insn = std::move(insn);
    d.message = std::move(message);
    rep.diagnostics.push_back(std::move(d));
}

} // namespace

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

std::optional<Severity>
severityFromName(std::string_view name)
{
    for (Severity s :
         {Severity::Info, Severity::Warning, Severity::Error}) {
        if (name == severityName(s))
            return s;
    }
    return std::nullopt;
}

const char *
segmentName(Segment segment)
{
    return segment == Segment::Init ? "init" : "body";
}

std::string
Diagnostic::format() const
{
    std::string out = severityName(severity);
    out += ' ';
    out += rule;
    out += ' ';
    out += segmentName(segment);
    if (index >= 0) {
        out += '[';
        out += std::to_string(index);
        out += ']';
    }
    if (!insn.empty()) {
        out += " \"";
        out += insn;
        out += '"';
    }
    out += ": ";
    out += message;
    return out;
}

std::size_t
Report::count(Severity severity) const
{
    std::size_t n = 0;
    for (const Diagnostic &d : diagnostics)
        n += d.severity == severity ? 1 : 0;
    return n;
}

std::size_t
Report::countAtLeast(Severity severity) const
{
    std::size_t n = 0;
    for (const Diagnostic &d : diagnostics) {
        n += static_cast<int>(d.severity) >=
                     static_cast<int>(severity)
                 ? 1
                 : 0;
    }
    return n;
}

bool
Report::hasRule(std::string_view rule) const
{
    for (const Diagnostic &d : diagnostics) {
        if (d.rule == rule)
            return true;
    }
    return false;
}

std::string
Report::format() const
{
    std::string out;
    for (const Diagnostic &d : diagnostics) {
        out += d.format();
        out += '\n';
    }
    return out;
}

std::string
Report::toJson() const
{
    std::string out = "{\"diagnostics\": [";
    bool first = true;
    for (const Diagnostic &d : diagnostics) {
        if (!first)
            out += ", ";
        first = false;
        out += "\n  {\"rule\": \"";
        out += core::jsonEscape(d.rule);
        out += "\", \"severity\": \"";
        out += severityName(d.severity);
        out += "\", \"segment\": \"";
        out += segmentName(d.segment);
        out += "\", \"index\": ";
        out += std::to_string(d.index);
        out += ", \"insn\": \"";
        out += core::jsonEscape(d.insn);
        out += "\", \"message\": \"";
        out += core::jsonEscape(d.message);
        out += "\"}";
    }
    out += diagnostics.empty() ? "]}" : "\n]}";
    out += '\n';
    return out;
}

Report
Report::fromJson(const std::string &text)
{
    Report rep;
    core::JsonCursor cur(text);
    cur.expect('{');
    if (!cur.tryConsume('}')) {
        do {
            std::string key = cur.parseString();
            cur.expect(':');
            if (key != "diagnostics") {
                cur.skipValue();
                continue;
            }
            cur.expect('[');
            if (cur.tryConsume(']'))
                continue;
            do {
                Diagnostic d;
                cur.expect('{');
                do {
                    std::string field = cur.parseString();
                    cur.expect(':');
                    if (field == "rule") {
                        d.rule = cur.parseString();
                    } else if (field == "severity") {
                        std::string name = cur.parseString();
                        auto sev = severityFromName(name);
                        if (!sev)
                            fatal("lint report: unknown severity '",
                                  name, "'");
                        d.severity = *sev;
                    } else if (field == "segment") {
                        std::string name = cur.parseString();
                        if (name == "init") {
                            d.segment = Segment::Init;
                        } else if (name == "body") {
                            d.segment = Segment::Body;
                        } else {
                            fatal("lint report: unknown segment '",
                                  name, "'");
                        }
                    } else if (field == "index") {
                        d.index = static_cast<std::int32_t>(
                            cur.parseNumber());
                    } else if (field == "insn") {
                        d.insn = cur.parseString();
                    } else if (field == "message") {
                        d.message = cur.parseString();
                    } else {
                        cur.skipValue();
                    }
                } while (cur.tryConsume(','));
                cur.expect('}');
                rep.diagnostics.push_back(std::move(d));
            } while (cur.tryConsume(','));
            cur.expect(']');
        } while (cur.tryConsume(','));
        cur.expect('}');
    }
    cur.expectEnd();
    return rep;
}

namespace
{
const char *const kCsvHeader = "rule,severity,segment,index,insn,message";
} // namespace

std::string
Report::toCsv() const
{
    std::string out = kCsvHeader;
    out += '\n';
    for (const Diagnostic &d : diagnostics) {
        out += core::csvEscape(d.rule);
        out += ',';
        out += severityName(d.severity);
        out += ',';
        out += segmentName(d.segment);
        out += ',';
        out += std::to_string(d.index);
        out += ',';
        out += core::csvEscape(d.insn);
        out += ',';
        out += core::csvEscape(d.message);
        out += '\n';
    }
    return out;
}

Report
Report::fromCsv(const std::string &text)
{
    Report rep;
    std::size_t pos = 0;
    bool saw_header = false;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        if (!saw_header) {
            if (line != kCsvHeader)
                fatal("lint report CSV: bad header '", line, "'");
            saw_header = true;
            continue;
        }
        std::vector<std::string> fields = core::splitCsvRecord(line);
        if (fields.size() != 6)
            fatal("lint report CSV: expected 6 fields, got ",
                  fields.size());
        Diagnostic d;
        d.rule = core::csvUnescape(fields[0]);
        auto sev = severityFromName(fields[1]);
        if (!sev)
            fatal("lint report CSV: unknown severity '", fields[1],
                  "'");
        d.severity = *sev;
        if (fields[2] == "init") {
            d.segment = Segment::Init;
        } else if (fields[2] == "body") {
            d.segment = Segment::Body;
        } else {
            fatal("lint report CSV: unknown segment '", fields[2],
                  "'");
        }
        try {
            d.index = std::stoi(fields[3]);
        } catch (const std::exception &) {
            fatal("lint report CSV: bad index '", fields[3], "'");
        }
        d.insn = core::csvUnescape(fields[4]);
        d.message = core::csvUnescape(fields[5]);
        rep.diagnostics.push_back(std::move(d));
    }
    if (!saw_header)
        fatal("lint report CSV: missing header");
    return rep;
}

Context
Context::forRunner(const core::Runner &runner)
{
    Context ctx;
    ctx.mode = runner.mode();
    ctx.r14Base = runner.r14Area();
    ctx.r14Size = runner.r14AreaSize();
    ctx.resultBase = runner.resultArea();
    ctx.resultSize = core::layout::kAreaSize;
    return ctx;
}

Context
Context::forCampaign(
    core::Runner &runner,
    const std::function<void(core::Runner &)> &machineSetup)
{
    if (machineSetup)
        machineSetup(runner);
    return forRunner(runner);
}

Report
analyzeSpec(const uarch::MicroArch &ua,
            const core::BenchmarkSpec &spec, const Context &ctx)
{
    Report rep;

    std::vector<Instruction> init_code = spec.init;
    if (init_code.empty() && !spec.asmInit.empty())
        init_code = x86::assemble(spec.asmInit);
    std::vector<Instruction> body_code = spec.code;
    if (body_code.empty() && !spec.asmCode.empty())
        body_code = x86::assemble(spec.asmCode);

    // R0: unsupported opcodes, with position (the decode-time fault,
    // as a diagnostic instead of a FatalError).
    bool unsupported = false;
    auto scan_r0 = [&](const std::vector<Instruction> &code,
                       Segment seg) {
        for (std::size_t i = 0; i < code.size(); ++i) {
            if (uarch::supportsOpcode(ua.family, code[i].opcode))
                continue;
            unsupported = true;
            addDiag(rep, "R0", Severity::Error, seg,
                    static_cast<std::int32_t>(i), code[i].toString(),
                    std::string(code[i].info().mnemonic) +
                        " is not supported on " + ua.name);
        }
    };
    scan_r0(init_code, Segment::Init);
    scan_r0(body_code, Segment::Body);
    if (unsupported)
        return rep; // decode would fault; nothing else to analyze

    std::uint64_t unroll = std::max<std::uint64_t>(
        1, spec.unrollCount);

    sim::Program init_prog = [&] {
        std::vector<sim::Program::Segment> segs(1);
        segs[0].code = init_code;
        return sim::Program::decode(ua, std::move(segs));
    }();
    sim::Program body_prog = [&] {
        std::vector<sim::Program::Segment> segs(1);
        segs[0].code = body_code;
        segs[0].repeat = unroll;
        return sim::Program::decode(ua, std::move(segs));
    }();

    const Mask r14_bit = regBit(Reg::R14);
    const Mask r15_bit = regBit(Reg::R15);

    Flow flow;
    flow.reset();
    bool r14_exact = true;       // R14 still holds the segment-entry
                                 // value (R5 bounds are meaningful)
    bool init_writes_flags = false;
    Opcode last_init_flags_writer = Opcode::NOP;

    // R5a/R5b, shared by both segments.
    auto check_memory = [&](const sim::Program &prog,
                            const sim::DecodedInsn &d, Segment seg,
                            std::int32_t idx) {
        const Instruction &insn = prog.insn(d);
        const x86::Operand *mem = insn.memOperand();
        if (!mem)
            return;
        unsigned bytes = std::max(1u, mem->widthBits / 8);
        if (mem->mem.base == Reg::R14 &&
            mem->mem.index == Reg::Invalid && r14_exact) {
            if (mem->mem.disp < 0 ||
                static_cast<Addr>(mem->mem.disp) + bytes >
                    ctx.r14Size) {
                addDiag(rep, "R5", Severity::Error, seg, idx,
                        insn.toString(),
                        "R14-relative access at offset " +
                            std::to_string(mem->mem.disp) + " (" +
                            std::to_string(bytes) +
                            " bytes) leaves the reserved " +
                            std::to_string(ctx.r14Size) +
                            "-byte memory area");
            }
        }
        if (mem->mem.base == Reg::Invalid &&
            mem->mem.index == Reg::Invalid && ctx.resultBase != 0 &&
            !spec.noMem && mem->mem.disp >= 0) {
            Addr addr = static_cast<Addr>(mem->mem.disp);
            if (addr < ctx.resultBase + ctx.resultSize &&
                addr + bytes > ctx.resultBase) {
                addDiag(rep, "R5",
                        d.hasStore ? Severity::Error
                                   : Severity::Warning,
                        seg, idx, insn.toString(),
                        std::string(d.hasStore ? "store to"
                                               : "load from") +
                            " the measurement results area (counter "
                            "readouts live at this address)");
            }
        }
    };

    // Init pass: carries register derivation into the body; its own
    // rules are R5 (above) and the R6 precondition.
    for (std::size_t i = 0; i < init_prog.entryCount(); ++i) {
        const sim::DecodedInsn &d = init_prog.entry(i);
        check_memory(init_prog, d, Segment::Init,
                     static_cast<std::int32_t>(i));
        if (d.writesFlags) {
            init_writes_flags = true;
            last_init_flags_writer = init_prog.insn(d).opcode;
        }
        step(flow, init_prog, d, false);
        if (defMask(init_prog, d) & r14_bit)
            r14_exact = (flow.deps[regIdx(Reg::R14)] & r14_bit) != 0;
    }

    // Body pass.
    const auto &accs = core::noMemAccumulators();
    Mask acc_reported = 0;
    bool body_wrote_flags = false;
    std::int32_t first_flags_reader = -1;
    bool pre_write_reads_only_cf = true;
    std::uint64_t body_repeat =
        body_prog.blocks().empty() ? unroll
                                   : body_prog.blocks()[0].repeat;

    for (std::size_t i = 0; i < body_prog.entryCount(); ++i) {
        const sim::DecodedInsn &d = body_prog.entry(i);
        const Instruction &insn = body_prog.insn(d);
        auto idx = static_cast<std::int32_t>(i);
        Mask defs = defMask(body_prog, d);
        Mask uses = useMask(body_prog, d);

        check_memory(body_prog, d, Segment::Body, idx);

        // R2: noMem accumulator interference (§III-I).
        if (spec.noMem) {
            for (Reg acc : accs) {
                Mask ab = regBit(acc);
                if (acc_reported & ab)
                    continue;
                if (defs & ab) {
                    acc_reported |= ab;
                    addDiag(rep, "R2", Severity::Error, Segment::Body,
                            idx, insn.toString(),
                            "the body writes " + x86::regName(acc) +
                                ", a noMem readout accumulator; the "
                                "measured counter values are "
                                "corrupted");
                } else if (uses & ab) {
                    acc_reported |= ab;
                    addDiag(rep, "R2", Severity::Warning,
                            Segment::Body, idx, insn.toString(),
                            "the body reads " + x86::regName(acc) +
                                ", a noMem readout accumulator "
                                "holding measurement state");
                }
            }
        }

        // R6: flags set in init do not survive the counter readout
        // (the per-item SHL/OR accumulation rewrites RFLAGS between
        // init and the first body instruction).
        if (d.readsFlags && !body_wrote_flags) {
            if (first_flags_reader < 0)
                first_flags_reader = idx;
            pre_write_reads_only_cf =
                pre_write_reads_only_cf && readsOnlyCarry(insn.opcode);
        }
        if (d.writesFlags)
            body_wrote_flags = true;

        // R1: measurement-reserved registers (R15 loop counter,
        // §III-B; R14 memory-area base, §III-G).
        if ((defs & r15_bit) && spec.loopCount > 0) {
            std::string msg =
                "the body writes R15, the measurement loop counter "
                "(loopCount = " +
                std::to_string(spec.loopCount) + ")";
            if (body_repeat > 1) {
                msg += "; one static write is " +
                       std::to_string(body_repeat) +
                       " dynamic clobbers across the unrolled copies";
            }
            addDiag(rep, "R1", Severity::Error, Segment::Body, idx,
                    insn.toString(), std::move(msg));
        }

        step(flow, body_prog, d, false);

        if (defs & r14_bit) {
            bool derived =
                (flow.deps[regIdx(Reg::R14)] & r14_bit) != 0;
            if (!derived) {
                std::string msg =
                    "the body overwrites R14 with a value not "
                    "derived from the memory-area base; later "
                    "R14-relative accesses leave the reserved area";
                if (body_repeat > 1) {
                    msg += " (" + std::to_string(body_repeat) +
                           " dynamic clobbers across the unrolled "
                           "copies)";
                }
                addDiag(rep, "R1", Severity::Warning, Segment::Body,
                        idx, insn.toString(), std::move(msg));
            }
            r14_exact = false;
        }
    }

    // The one flag state that *does* survive the readout is CF = 0:
    // the readout's OR accumulation clears CF, so an init that ends
    // on a CF-clearing logic instruction feeding only carry readers
    // (the planners' "TEST RBX, RBX before an ADC chain" pattern) is
    // sound and stays silent.
    bool init_flags_survive =
        pre_write_reads_only_cf && clearsCarry(last_init_flags_writer);
    if (init_writes_flags && first_flags_reader >= 0 &&
        !init_flags_survive) {
        const sim::DecodedInsn &d =
            body_prog.entry(static_cast<std::size_t>(
                first_flags_reader));
        addDiag(rep, "R6", Severity::Warning, Segment::Body,
                first_flags_reader, body_prog.insn(d).toString(),
                "reads flags before the body writes them, but the "
                "flags set in init do not survive the counter "
                "readout between init and body (the readout's "
                "SHL/OR accumulation rewrites RFLAGS; only CF = 0 "
                "from a trailing logic instruction survives)");
    }

    // R3: loop-carried dependency chain (latency methodology,
    // §III-A; uops.info dependency-chaining).
    if (ctx.chain != Context::Chain::Ignore &&
        body_prog.entryCount() > 0) {
        bool chain_real = chainExists(body_prog, false);
        bool chain_if_idioms_read = chainExists(body_prog, true);
        std::int32_t first_idiom = -1;
        std::size_t idiom_count = 0;
        for (std::size_t i = 0; i < body_prog.entryCount(); ++i) {
            if (!body_prog.entry(i).zeroIdiom)
                continue;
            ++idiom_count;
            if (first_idiom < 0)
                first_idiom = static_cast<std::int32_t>(i);
        }
        if (ctx.chain == Context::Chain::Expect && !chain_real) {
            if (chain_if_idioms_read && first_idiom >= 0) {
                const sim::DecodedInsn &d = body_prog.entry(
                    static_cast<std::size_t>(first_idiom));
                addDiag(rep, "R3", Severity::Error, Segment::Body,
                        first_idiom, body_prog.insn(d).toString(),
                        "this zero idiom breaks the loop-carried "
                        "dependency chain; the spec measures "
                        "throughput, not latency");
            } else {
                addDiag(rep, "R3", Severity::Error, Segment::Body,
                        -1, "",
                        "no loop-carried dependency chain threads "
                        "the body back to itself; latency-style "
                        "measurement needs one");
            }
        } else if (ctx.chain == Context::Chain::Auto && !chain_real &&
                   chain_if_idioms_read && idiom_count == 1) {
            const sim::DecodedInsn &d = body_prog.entry(
                static_cast<std::size_t>(first_idiom));
            addDiag(rep, "R3", Severity::Warning, Segment::Body,
                    first_idiom, body_prog.insn(d).toString(),
                    "this zero idiom breaks the only loop-carried "
                    "dependency chain in the body; if a latency "
                    "measurement was intended, the result is "
                    "throughput-bound");
        }
    }

    // R4: dead measured code -- a pure register result overwritten
    // later in the static body pattern before any read. Overwrite by
    // the *next unroll copy* of the same instruction is throughput
    // idiom, not deadness, so the scan does not wrap around.
    for (std::size_t i = 0; i < body_prog.entryCount(); ++i) {
        const sim::DecodedInsn &d = body_prog.entry(i);
        const Instruction &insn = body_prog.insn(d);
        if (d.hasLoad || d.hasStore || d.isBranch || d.writesFlags ||
            d.zeroIdiom || d.privileged || d.dstCount != 1 ||
            deadRuleExemptClass(insn.info().cls))
            continue;
        if (insn.operands.empty() ||
            insn.operands[0].kind != x86::OperandKind::Register ||
            insn.operands[0].reg != body_prog.dstRegs(d)[0] ||
            insn.operands[0].widthBits < 32)
            continue;
        Reg dst = body_prog.dstRegs(d)[0];
        Mask db = regBit(dst);
        for (std::size_t j = i + 1; j < body_prog.entryCount(); ++j) {
            const sim::DecodedInsn &dj = body_prog.entry(j);
            if (useMask(body_prog, dj) & db)
                break; // live
            if (defMask(body_prog, dj) & db) {
                if (defWidth(body_prog, dj, dst) >= 32) {
                    addDiag(rep, "R4", Severity::Warning,
                            Segment::Body,
                            static_cast<std::int32_t>(i),
                            insn.toString(),
                            "result in " + x86::regName(dst) +
                                " is overwritten by body "
                                "instruction " +
                                std::to_string(j) +
                                " without being read: dead measured "
                                "code");
                }
                break; // killed (or partially merged: treat as live)
            }
        }
    }

    // R7: model consistency -- the declared measurement intent vs the
    // bottleneck the static performance model predicts for the body
    // (analysis/bound.hh; the uops.info latency/throughput split).
    if (ctx.intent != Context::Intent::None &&
        body_prog.entryCount() > 0) {
        BoundReport bound = analyzeBounds(ua, body_prog);
        std::string bounds_txt =
            "latency " + shortDouble(bound.latencyBound) +
            " vs ports " + shortDouble(bound.portBound) +
            " vs front-end " + shortDouble(bound.frontEndBound) +
            " cycles/copy";
        if (ctx.intent == Context::Intent::Latency &&
            bound.bottleneck != Bottleneck::Latency) {
            // An architectural chain that carries no guaranteed
            // timing edge (LEA and pure-store address operands: the
            // scheduler reads address registers without stalling on
            // them) is a property of the instruction, not a planner
            // mistake -- informational, like the ADC/SBB flags
            // serialization below. No chain at all is an error.
            if (chainExists(body_prog, false)) {
                addDiag(rep, "R7", Severity::Info, Segment::Body, -1,
                        "",
                        "declared a latency measurement, but the "
                        "dependency chain is address-carried and the "
                        "scheduler does not serialize address-"
                        "register reads of non-load uops (" +
                            bounds_txt +
                            "); expect the measurement to "
                            "underestimate the architectural "
                            "latency");
            } else {
                addDiag(rep, "R7", Severity::Error, Segment::Body, -1,
                        "",
                        "declared a latency measurement, but the "
                        "model predicts a " +
                            std::string(
                                bottleneckName(bound.bottleneck)) +
                            "-bound body (" + bounds_txt +
                            "); the dependency chain does not bind "
                            "the measured cycles");
            }
        } else if (ctx.intent == Context::Intent::Throughput &&
                   bound.bottleneck == Bottleneck::Latency) {
            std::int32_t idx = bound.criticalPath.empty()
                                   ? -1
                                   : bound.criticalPath[0].index;
            std::string insn =
                bound.criticalPath.empty()
                    ? std::string()
                    : bound.criticalPath[0].insn;
            addDiag(rep, "R7", Severity::Info, Segment::Body, idx,
                    std::move(insn),
                    "declared a throughput measurement, but the "
                    "model predicts the loop-carried dependency "
                    "chain binds (" +
                        bounds_txt +
                        "); expect chain-serialized results");
        }
    }

    std::stable_sort(rep.diagnostics.begin(), rep.diagnostics.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         return a.rule < b.rule;
                     });
    return rep;
}

namespace
{

/**
 * Whole-report memo keyed on (uarch, context, canonical spec key),
 * mirroring the engine's assemble cache: campaign executors lint each
 * unique spec once per process. Bounded by clearing when full;
 * specs outnumbering the bound re-analyze, never grow memory.
 */
struct LintCache
{
    std::mutex mutex;
    std::unordered_map<std::string, std::shared_ptr<const Report>>
        reports;
    LintCacheStats stats;

    static constexpr std::size_t kMaxEntries = 4096;
};

LintCache &
lintCache()
{
    static LintCache cache;
    return cache;
}

std::string
lintCacheKey(const uarch::MicroArch &ua,
             const core::BenchmarkSpec &spec, const Context &ctx)
{
    std::string key = ua.name;
    key += '\0';
    key += core::modeName(ctx.mode);
    key += '\0';
    key += std::to_string(ctx.r14Base);
    key += ',';
    key += std::to_string(ctx.r14Size);
    key += ',';
    key += std::to_string(ctx.resultBase);
    key += ',';
    key += std::to_string(ctx.resultSize);
    key += ',';
    key += std::to_string(static_cast<unsigned>(ctx.chain));
    key += ',';
    key += std::to_string(static_cast<unsigned>(ctx.intent));
    key += '\0';
    key += core::specCanonicalKey(spec);
    return key;
}

} // namespace

Report
analyzeSpecCached(const uarch::MicroArch &ua,
                  const core::BenchmarkSpec &spec, const Context &ctx)
{
    LintCache &cache = lintCache();
    std::string key = lintCacheKey(ua, spec, ctx);
    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        auto it = cache.reports.find(key);
        if (it != cache.reports.end()) {
            ++cache.stats.hits;
            return *it->second;
        }
    }

    // Analyze outside the lock (assembly of a large spec is not
    // cheap); a concurrent duplicate analysis is harmless.
    Report rep = analyzeSpec(ua, spec, ctx);

    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        ++cache.stats.misses;
        if (cache.reports.size() >= LintCache::kMaxEntries) {
            cache.stats.evictions += cache.reports.size();
            cache.reports.clear();
        }
        cache.reports.emplace(
            std::move(key), std::make_shared<const Report>(rep));
    }
    return rep;
}

CacheStats
lintCacheCounters()
{
    LintCache &cache = lintCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    return {cache.stats.hits, cache.stats.misses,
            cache.stats.evictions};
}

LintCacheStats
lintCacheStats()
{
    LintCacheStats out;
    LintCache &cache = lintCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    out = cache.stats;
    return out;
}

} // namespace nb::analysis
