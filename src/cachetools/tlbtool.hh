/**
 * @file
 * TLB characterization (the paper's first named future-work direction,
 * §VIII): measure the capacities of the data-TLB levels and the miss
 * penalties with generated microbenchmarks, using the same methodology
 * as the cache tools -- counter differences over pointer-dense access
 * patterns, evaluated with the kernel-space runner in noMem mode.
 */

#ifndef NB_CACHETOOLS_TLBTOOL_HH
#define NB_CACHETOOLS_TLBTOOL_HH

#include "core/runner.hh"

namespace nb
{
class Session;
}

namespace nb::cachetools
{

/** Measured TLB characteristics. */
struct TlbCharacterization
{
    /** Largest page working set with (near-)zero DTLB misses. */
    unsigned dtlbEntries = 0;
    /** Largest page working set with (near-)zero page walks. */
    unsigned stlbEntries = 0;
    /** Extra load latency of an STLB hit vs a DTLB hit (cycles). */
    double stlbPenalty = 0.0;
    /** Extra load latency of a page walk vs a DTLB hit (cycles). */
    double walkPenalty = 0.0;
};

/**
 * Measure the TLB capacities by sweeping cyclic page working sets and
 * watching the DTLB_LOAD_MISSES.* events.
 *
 * @param runner   Kernel-mode runner.
 * @param max_pages Upper bound of the search (and the size of the
 *                  reserved memory area, in pages).
 */
TlbCharacterization measureTlb(core::Runner &runner,
                               unsigned max_pages = 4096);

/** Same, against the (kernel-mode) runner of an Engine session. */
TlbCharacterization measureTlb(Session &session,
                               unsigned max_pages = 4096);

} // namespace nb::cachetools

#endif // NB_CACHETOOLS_TLBTOOL_HH
