/**
 * @file
 * TLB characterization (the paper's first named future-work direction,
 * §VIII): measure the capacities of the data-TLB levels and the miss
 * penalties with generated microbenchmarks, using the same methodology
 * as the cache tools -- counter differences over pointer-dense access
 * patterns, evaluated with the kernel-space runner in noMem mode.
 *
 * The work is organized as a plan/decode split so TLB characterization
 * can ride the parallel campaign executor: planTlb() emits one miss
 * sweep spec per working-set size on a fixed ladder (powers of two and
 * 3*2^k, so the usual capacities land exactly on grid points) plus a
 * pointer-chase pair (page-strided vs densely packed) per ladder size;
 * decodeTlb() reads the capacities off the sweep -- the largest size
 * with (near-)zero misses at the respective level, the same criterion
 * the former binary search used -- and picks the penalty chases whose
 * ring sizes isolate the STLB and page-walk latencies. measureTlb() is
 * the serial driver: plan, run in plan order on one runner, decode.
 */

#ifndef NB_CACHETOOLS_TLBTOOL_HH
#define NB_CACHETOOLS_TLBTOOL_HH

#include <vector>

#include "core/engine.hh"
#include "core/runner.hh"

namespace nb::cachetools
{

/** Measured TLB characteristics. */
struct TlbCharacterization
{
    /** Largest page working set with (near-)zero DTLB misses. */
    unsigned dtlbEntries = 0;
    /** Largest page working set with (near-)zero page walks. */
    unsigned stlbEntries = 0;
    /** Extra load latency of an STLB hit vs a DTLB hit (cycles). */
    double stlbPenalty = 0.0;
    /** Extra load latency of a page walk vs a DTLB hit (cycles). */
    double walkPenalty = 0.0;
    /** Set if part of the measurement failed (plan/decode path);
     *  the fields decoded so far are still valid. */
    std::string error;
};

/** A planned TLB characterization, ready for a campaign. */
struct TlbPlan
{
    /** Upper bound of the capacity search (pages). */
    unsigned maxPages = 0;
    /** Working-set sizes probed, ascending (2^k and 3*2^k points). */
    std::vector<unsigned> ladder;
    /**
     * The benchmarks, in plan order: one miss-sweep spec per ladder
     * size, then one (page-strided, dense) chase pair per ladder size.
     * The chase addresses are absolute, based on the R14 area of the
     * planning runner: run the specs on machines with the same layout
     * (same uarch/seed, R14 area of r14Size bytes reserved first --
     * see CampaignOptions::machineSetup).
     */
    std::vector<core::BenchmarkSpec> specs;
    /** R14-area size the chase addresses assume. */
    Addr r14Size = 0;
};

/**
 * Plan the TLB characterization benchmarks. The runner must be in
 * kernel mode with an R14 area of at least (max_pages + 1) pages
 * reserved (measureTlb() does both; campaign planners reserve one
 * area for all their tools up front).
 */
TlbPlan planTlb(core::Runner &runner, unsigned max_pages = 4096);

/**
 * Fold campaign/batch outcomes back into the characterization.
 * @p outcomes must have one entry per plan.specs element, in plan
 * order. Failed outcomes degrade: affected fields keep their default
 * and error records the first failure.
 */
TlbCharacterization decodeTlb(const TlbPlan &plan,
                              const std::vector<RunOutcome> &outcomes);

/**
 * Measure the TLB capacities by sweeping cyclic page working sets and
 * watching the DTLB_LOAD_MISSES.* events (plan + run + decode on one
 * runner).
 *
 * @param runner   Kernel-mode runner.
 * @param max_pages Upper bound of the search (and the size of the
 *                  reserved memory area, in pages).
 */
TlbCharacterization measureTlb(core::Runner &runner,
                               unsigned max_pages = 4096);

/** Same, against the (kernel-mode) runner of an Engine session. */
TlbCharacterization measureTlb(Session &session,
                               unsigned max_pages = 4096);

} // namespace nb::cachetools

#endif // NB_CACHETOOLS_TLBTOOL_HH
