/**
 * @file
 * Detection of dedicated (leader) sets in caches that use set dueling
 * (paper §VI-C3, following Wong's approach), including caches where the
 * dedicated sets differ between C-Boxes (Haswell/Broadwell, §VI-D).
 *
 * Protocol: a *signature* access sequence is chosen offline (via policy
 * simulations) to maximally distinguish the two candidate policies.
 * Training workloads then drive the PSEL duel towards each policy in
 * turn — a recency-friendly pattern makes the deterministic-insertion
 * policy win, a scanning pattern the probabilistic one — and every
 * candidate set is probed in both states. Sets whose signature follows
 * the winner are followers; sets with a fixed signature are dedicated
 * to the policy their signature matches.
 *
 * The training workloads only *establish cache state*; for speed they
 * drive the hierarchy directly rather than through generated
 * microbenchmarks (behaviourally identical; all *measurements* go
 * through nanoBench/cacheSeq).
 */

#ifndef NB_CACHETOOLS_DUELING_SCAN_HH
#define NB_CACHETOOLS_DUELING_SCAN_HH

#include <string>
#include <vector>

#include "cachetools/cacheseq.hh"
#include "core/engine.hh"

namespace nb::cachetools
{

/** Classification of one cache set. */
enum class SetRole : std::uint8_t
{
    Follower,
    FixedA,
    FixedB,
    Unknown,
};

const char *setRoleName(SetRole role);

/** Scanner options. */
struct DuelingScanOptions
{
    unsigned setLo = 448;   ///< first set of the scanned band
    unsigned setHi = 895;   ///< last set (inclusive)
    unsigned stride = 4;    ///< probe every stride-th set
    unsigned reps = 2;      ///< signature repetitions
    /** Re-saturate the duel after this many probed sets. */
    unsigned retrainInterval = 8;
};

/** One detected contiguous range of dedicated sets. */
struct LeaderRangeResult
{
    unsigned slice = 0;
    unsigned setLo = 0;
    unsigned setHi = 0;
    SetRole role = SetRole::Unknown;
};

/** Scan result. */
struct DuelingScanResult
{
    /** roles[slice][k] = (set, role) for every probed set. */
    std::vector<std::vector<std::pair<unsigned, SetRole>>> roles;
    /** Dedicated ranges, grouped from the probes. */
    std::vector<LeaderRangeResult> dedicatedRanges;

    std::string summary() const;
};

/** Pattern replays per set within one training pass (the pattern must
 *  warm up in the set for the policies' miss counts to diverge). */
inline constexpr unsigned kTrainReplays = 4;

/**
 * Options of the planned (campaign-ready) scan. Unlike the serial
 * scan there is no adaptive stride-1 refinement pass -- every probed
 * set is fixed up front -- so boundaries are only as sharp as the
 * stride.
 */
struct DuelingPlanOptions
{
    unsigned setLo = 496;  ///< first set of the scanned band
    unsigned setHi = 847;  ///< last set (inclusive)
    unsigned stride = 16;  ///< probe every stride-th set
    unsigned reps = 1;     ///< signature repetitions (measurements)
    /**
     * Training replays carried inside each probe spec (the spec's
     * loop count): each iteration replays the training pattern over
     * the probed set grid (unmeasured, behind a pause marker) and
     * then probes the signature, so the PSEL duel saturates during
     * the warm-up execution and stays saturated while measuring.
     */
    unsigned trainReplays = 32;
};

/** What one planned probe spec measures. */
struct DuelingProbe
{
    unsigned slice = 0;
    unsigned set = 0;
    /** True: the spec trains the duel towards policy A. */
    bool phaseA = true;
};

/**
 * A planned set-dueling scan. Every spec is self-contained (training
 * + probe); it assumes a machine in its just-booted state -- PSEL at
 * the saturating counter's midpoint -- with the R14 area reserved at
 * the same base as the planning runner's, so run it through a
 * campaign with freshMachinePerSpec and a machineSetup reserving
 * r14Size bytes (the profile builder does exactly that).
 */
struct DuelingPlan
{
    DuelingPlanOptions options;
    std::string policyA;
    std::string policyB;
    /** Expected signature hits under each pure policy (simulated). */
    double expectedA = 0.0;
    double expectedB = 0.0;
    /** probes[i] describes specs[i]. */
    std::vector<DuelingProbe> probes;
    std::vector<core::BenchmarkSpec> specs;
    /** R14-area size the planned addresses assume. */
    Addr r14Size = 0;
};

/** The scanner, bound to one kernel runner. */
class DuelingScanner
{
  public:
    /**
     * @param policy_a,policy_b Candidate policy names whose duel is
     *        being looked for (QLRU names, §VI-D).
     */
    DuelingScanner(core::Runner &runner, std::string policy_a,
                   std::string policy_b);

    /** Same, bound to the runner of an Engine session. The session's
     *  machine must outlive this tool. */
    DuelingScanner(Session &session, std::string policy_a,
                   std::string policy_b);

    DuelingScanResult scan(const DuelingScanOptions &options);

    /**
     * Plan the scan as campaign-ready specs (see DuelingPlan). The
     * runner needs an R14 area large enough for the training lines;
     * @throws nb::FatalError if it is too small.
     */
    DuelingPlan plan(const DuelingPlanOptions &options);

    /** R14 bytes plan() needs for a band of the given options. */
    Addr planAreaSize(const DuelingPlanOptions &options);

    /** Fold campaign outcomes (one per plan spec, in plan order) back
     *  into a scan result; failed probes classify as Unknown. */
    static DuelingScanResult decode(const DuelingPlan &plan,
                                    const std::vector<RunOutcome> &outcomes);

    /** The signature sequence chosen by the offline search. */
    const std::vector<SeqAccess> &signatureSeq() const { return sig_; }
    double expectedHitsA() const { return expectedA_; }
    double expectedHitsB() const { return expectedB_; }

  private:
    void chooseSignature();
    void chooseTraining();
    /** Run the cold-pattern search once, on first use: only the
     *  planned scan needs it, serial scan() users never pay it. */
    void ensureColdTraining();
    void chooseColdTraining();
    /** Drive the PSEL duel so that the given policy wins. */
    void train(bool towards_a, unsigned set_lo, unsigned set_hi);
    /** Addresses in a given slice and set (direct physical). */
    std::vector<Addr> trainAddrs(unsigned slice, unsigned set,
                                 unsigned count);

    core::Runner &runner_;
    std::string policyA_;
    std::string policyB_;
    unsigned assoc_;
    /** Probe signature (maximal expected-hit gap between A and B). */
    std::vector<SeqAccess> sig_;
    double expectedA_ = 0.0;
    double expectedB_ = 0.0;
    /** Training patterns: A-favoring misses more under B and vice
     *  versa, driving the PSEL counter in the wanted direction. */
    std::vector<SeqAccess> trainSeqA_;
    std::vector<SeqAccess> trainSeqB_;
    /** Same, but optimized for a single pass from a flushed cache:
     *  the planned scan's probe specs flush (WBINVD) every loop
     *  iteration, so each training replay runs from cold and the
     *  steady-state patterns above lose (or even invert) their miss
     *  gap. */
    std::vector<SeqAccess> trainColdA_;
    std::vector<SeqAccess> trainColdB_;
};

} // namespace nb::cachetools

#endif // NB_CACHETOOLS_DUELING_SCAN_HH
