/**
 * @file
 * Replacement-policy inference tools (paper §VI-C1, §VI-C2).
 *
 * Two tools, mirroring the paper:
 *
 * 1. Permutation-policy inference ([15], RTAS 2013): establish a known
 *    cache state, perform one access, and observe the resulting
 *    eviction order through fresh-miss probing. The observable
 *    behaviour forms a *fingerprint*; a policy is identified by
 *    comparing its fingerprint against the fingerprints of reference
 *    policies (LRU, FIFO, PLRU) obtained by running the *same*
 *    procedure on software simulations.
 *
 * 2. Random-sequence identification: generate random access sequences,
 *    compare measured hit counts against simulations of all candidate
 *    policies (LRU, FIFO, PLRU, MRU variants, and all meaningful QLRU
 *    variants, §VI-B2); report the candidates that agree with every
 *    measurement. Non-deterministic behaviour (e.g. probabilistic
 *    insertion, §VI-D) is detected and reported, to be analyzed with
 *    age graphs instead.
 *
 * Both tools run against a SetProbe, which is implemented by cacheSeq
 * (the simulated hardware) and by PolicySim (references/candidates).
 */

#ifndef NB_CACHETOOLS_INFER_HH
#define NB_CACHETOOLS_INFER_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/permutation.hh"
#include "cachetools/cacheseq.hh"
#include "cachetools/policy_sim.hh"
#include "common/rng.hh"
#include "core/engine.hh"

namespace nb::cachetools
{

/** Abstract "run a sequence in one cache set, count measured hits". */
class SetProbe
{
  public:
    virtual ~SetProbe() = default;
    virtual unsigned assoc() const = 0;
    /** Mean measured hits of the sequence (fresh state per run). */
    virtual double hits(const std::vector<SeqAccess> &seq) = 0;
};

/** Probe backed by a software policy simulation. */
class SimSetProbe : public SetProbe
{
  public:
    /** @param reps Averaging runs (for probabilistic policies). */
    SimSetProbe(const std::string &policy_name, unsigned assoc, Rng *rng,
                unsigned reps = 1);

    unsigned assoc() const override { return assoc_; }
    double hits(const std::vector<SeqAccess> &seq) override;

  private:
    std::string policyName_;
    unsigned assoc_;
    Rng *rng_;
    unsigned reps_;
};

/** Probe backed by cacheSeq on the simulated machine. */
class HardwareSetProbe : public SetProbe
{
  public:
    HardwareSetProbe(CacheSeq &seq, unsigned assoc)
        : seq_(seq), assoc_(assoc)
    {
    }

    unsigned assoc() const override { return assoc_; }
    double hits(const std::vector<SeqAccess> &seq) override
    {
        return seq_.run(seq);
    }

  private:
    CacheSeq &seq_;
    unsigned assoc_;
};

/**
 * Measure the associativity: the largest k such that k freshly filled
 * blocks can all be re-accessed without a miss.
 */
unsigned inferAssociativity(SetProbe &probe, unsigned max_assoc = 32);

/**
 * The observable fingerprint of the permutation-inference procedure:
 * for every context (bare fill, hit at each fill position, one extra
 * miss) and every number of fresh misses j, which of the originally
 * filled blocks still hit.
 */
struct PermutationFingerprint
{
    unsigned assoc = 0;
    /** table[context][j-1][i] = block Bi survives j fresh misses. */
    std::vector<std::vector<std::vector<bool>>> table;

    bool operator==(const PermutationFingerprint &) const = default;
};

/** Run the fingerprint procedure against a probe. */
PermutationFingerprint permutationFingerprint(SetProbe &probe);

/**
 * Identify a permutation policy by fingerprint comparison against
 * references (LRU, FIFO, PLRU). Returns the policy name, or nullopt if
 * none matches (not a permutation policy of the known references).
 */
std::optional<std::string> identifyPermutationPolicy(SetProbe &probe,
                                                     Rng *rng);

/** Result of the random-sequence identification (§VI-C1, tool 2). */
struct PolicyIdentification
{
    /** Candidate policies that agree with every measurement. */
    std::vector<std::string> matches;
    /** Measurements were reproducible (integral and stable). */
    bool deterministic = true;
    /** Number of sequences tested. */
    unsigned sequencesTested = 0;
    /** Sequences whose benchmark failed (plan/decode path only);
     *  they constrain nothing, the rest still identify. */
    unsigned sequencesSkipped = 0;
};

/** Candidate policy names: basic policies + all meaningful QLRU
 *  variants (PLRU only for power-of-two associativities). */
std::vector<std::string> candidatePolicyNames(unsigned assoc);

/**
 * Identify the policy by comparing measured hit counts of random
 * sequences against all candidate simulations (§VI-C1).
 */
PolicyIdentification identifyPolicy(SetProbe &probe, Rng &rng,
                                    unsigned n_sequences = 150,
                                    unsigned seq_length_factor = 3);

/** Age graph (paper §VI-C2 / Figure 1). */
struct AgeGraph
{
    unsigned nBlocks = 0;
    std::vector<unsigned> freshCounts;
    /** hitRate[block][point] in [0,1]. */
    std::vector<std::vector<double>> hitRate;

    /** Render as CSV: header + one row per fresh count. */
    std::string toCsv() const;
};

/**
 * Compute the age graph for the sequence <wbinvd> B0 ... B{n_blocks-1}:
 * for each block and each number of fresh blocks, the probability that
 * the block still hits (§VI-C2).
 */
AgeGraph computeAgeGraph(SetProbe &probe, unsigned n_blocks,
                         unsigned max_fresh, unsigned step = 4);

// ------------------------------------------------------- plan/decode --
//
// Campaign-ready variants of the inference procedures: plan*() emits
// plain BenchmarkSpecs against a CacheSeq target (run them through
// Session::runBatch() or Engine::runCampaign()), decode*() folds the
// outcomes back, in plan order, tolerating per-spec failures.

/** Planned associativity measurement: spec k probes whether k freshly
 *  filled blocks all re-hit (k = 1 .. maxAssoc, in order). */
struct AssocPlan
{
    CacheLevel level = CacheLevel::L1;
    unsigned maxAssoc = 0;
    std::vector<core::BenchmarkSpec> specs;
};

AssocPlan planAssociativity(CacheSeq &seq, unsigned max_assoc = 32);

/** Decoded associativity; error is set if the measurement broke off
 *  early on a failed benchmark (assoc is the best lower bound then). */
struct AssocResult
{
    unsigned assoc = 0;
    std::string error;
};

AssocResult decodeAssociativity(const AssocPlan &plan,
                                const std::vector<RunOutcome> &outcomes);

/**
 * Planned random-sequence policy identification. Every sequence maps
 * to TWO specs (aggregate Min and Max over two measurement runs):
 * comparing the two aggregates of the same body is the plan-level
 * equivalent of the serial tool's run-twice determinism check, and the
 * differing aggregate keeps campaign dedup from collapsing the pair.
 */
struct PolicyIdPlan
{
    CacheLevel level = CacheLevel::L1;
    unsigned assoc = 0;
    std::vector<std::vector<SeqAccess>> sequences;
    /** specs[2*i] / specs[2*i+1]: Min/Max spec of sequences[i]. */
    std::vector<core::BenchmarkSpec> specs;
};

PolicyIdPlan planPolicyId(CacheSeq &seq, unsigned assoc, Rng &rng,
                          unsigned n_sequences = 150,
                          unsigned seq_length_factor = 3);

PolicyIdentification decodePolicyId(
    const PolicyIdPlan &plan, const std::vector<RunOutcome> &outcomes);

} // namespace nb::cachetools

#endif // NB_CACHETOOLS_INFER_HH
