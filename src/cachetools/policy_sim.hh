/**
 * @file
 * Software simulation of a single cache set under a replacement policy.
 *
 * Used by the inference tools (§VI-C1): measured hit counts from the
 * hardware (here: the simulated machine, reached through nanoBench) are
 * compared against the predictions of these pure-software simulators for
 * every candidate policy.
 */

#ifndef NB_CACHETOOLS_POLICY_SIM_HH
#define NB_CACHETOOLS_POLICY_SIM_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/policy.hh"

namespace nb::cachetools
{

/** One access in an abstract per-set sequence. */
struct SeqAccess
{
    /** Abstract block id; blocks with equal ids are the same block. */
    int block = 0;
    /** Include this access in the hit count (§VI-C: per-element
     *  selection via the pause/resume feature). */
    bool measured = true;
    /** Execute WBINVD before this access (flush marker). */
    bool wbinvd = false;
};

/** Parse a sequence string: "<wbinvd> B0 B1 B0? A" -- identifiers name
 *  blocks; a trailing '?' excludes the access from measurement;
 *  "<wbinvd>" flushes. @throws nb::FatalError on syntax errors. */
std::vector<SeqAccess> parseAccessSeq(const std::string &text);

/** Render a sequence back to its string form (for reports). */
std::string accessSeqToString(const std::vector<SeqAccess> &seq);

/** A software-simulated cache set. */
class PolicySim
{
  public:
    PolicySim(std::unique_ptr<cache::SetPolicy> policy);

    /** Access a block; returns true on a hit. */
    bool access(int block);

    /** Flush the set. */
    void flush();

    /** Number of measured hits over a whole sequence (flushes first if
     *  the sequence starts with <wbinvd>). */
    unsigned runSequence(const std::vector<SeqAccess> &seq);

    /** Per-access hit/miss trace of a sequence. */
    std::vector<bool> trace(const std::vector<SeqAccess> &seq);

    const cache::SetPolicy &policy() const { return *policy_; }
    unsigned assoc() const { return policy_->assoc(); }

  private:
    std::unique_ptr<cache::SetPolicy> policy_;
    std::vector<int> tags_;
    std::vector<bool> valid_;
};

} // namespace nb::cachetools

#endif // NB_CACHETOOLS_POLICY_SIM_HH
