/**
 * @file
 * cacheSeq (paper §VI-C): run an access sequence in a chosen cache set
 * and measure how many hits/misses it generates.
 *
 * The tool assigns each abstract block of the sequence a (physical)
 * address that maps to the chosen set (and, for the L3, to the chosen
 * C-Box/slice); it generates a microbenchmark from the sequence and
 * evaluates it with the kernel-space version of nanoBench in noMem mode
 * (§III-I). Per-element measurement selection uses the pause/resume
 * magic markers. Between two accesses to the same set of a lower-level
 * cache, the tool automatically inserts enough accesses to addresses
 * that map to the same L1/L2 sets but different L3 sets, so that the
 * next access actually reaches the cache under test; these eviction
 * accesses are excluded from the measurements. The physically-contiguous
 * R14 area of the kernel runner provides the address space (§IV-D).
 */

#ifndef NB_CACHETOOLS_CACHESEQ_HH
#define NB_CACHETOOLS_CACHESEQ_HH

#include <map>
#include <string>
#include <vector>

#include "cachetools/policy_sim.hh"
#include "core/runner.hh"

namespace nb
{
class Session;
}

namespace nb::cachetools
{

/** Which cache the sequence targets. */
enum class CacheLevel : std::uint8_t
{
    L1,
    L2,
    L3,
};

/** cacheSeq options (§VI-C). */
struct CacheSeqOptions
{
    CacheLevel level = CacheLevel::L3;
    /** Target set index (within a slice for the L3). */
    unsigned set = 0;
    /** Target C-Box/slice for L3 experiments. */
    unsigned cbox = 0;
    /** Runs to aggregate over (mean); more for noisy/probabilistic
     *  policies. */
    unsigned repetitions = 1;
    /** Disable the hardware prefetchers first (§IV-A2). */
    bool disablePrefetchers = true;
};

/** Measured hits and misses of one sequence. */
struct HitMiss
{
    double hits = 0.0;
    double misses = 0.0;
};

/** The cacheSeq tool bound to one kernel-mode runner. */
class CacheSeq
{
  public:
    /** @throws nb::FatalError if the runner is not in kernel mode or
     *  prefetchers cannot be disabled (§VI-D: AMD CPUs). */
    CacheSeq(core::Runner &runner, const CacheSeqOptions &options);

    /** Same, bound to the runner of an Engine session. The session's
     *  machine must outlive this tool. */
    CacheSeq(Session &session, const CacheSeqOptions &options);

    /** Mean measured hits over the repetitions. */
    double run(const std::vector<SeqAccess> &seq);
    double run(const std::string &seq_text);

    /** Mean measured hits and misses. */
    HitMiss runHitMiss(const std::vector<SeqAccess> &seq);

    /**
     * Plan the benchmark runHitMiss() would execute, without running
     * it: the returned spec carries the generated body (eviction runs,
     * pause/resume markers, hit/miss events of the targeted level) and
     * can go through Session::runBatch() or Engine::runCampaign().
     * Block addresses are assigned against this tool's current target,
     * so the spec is only valid on a machine with the same memory
     * layout (same uarch/seed, R14 area reserved at the same base --
     * see CampaignOptions::machineSetup).
     */
    core::BenchmarkSpec planSeq(const std::vector<SeqAccess> &seq);

    /**
     * Same, with @p prelude instructions executed (unmeasured, behind
     * a PFC_PAUSE marker) before the sequence body. The profile's
     * set-dueling probes use this to carry their PSEL training inside
     * the spec, making it self-contained.
     */
    core::BenchmarkSpec planSeqWithPrelude(
        const std::vector<x86::Instruction> &prelude,
        const std::vector<SeqAccess> &seq);

    /** Fold a planned spec's result back into hits/misses. */
    static HitMiss decodeHitMiss(CacheLevel level,
                                 const core::BenchmarkResult &result);

    /** Hit/miss event names of a cache level (the events planSeq()
     *  selects). */
    static const char *hitEventName(CacheLevel level);
    static const char *missEventName(CacheLevel level);

    /** Virtual address assigned to a block id. */
    Addr blockVaddr(int block);

    /**
     * Point the tool at a different set/slice without re-reserving the
     * memory area (used by the set-dueling scanner, §VI-C3). Clears the
     * block-address assignment.
     */
    void setTarget(unsigned set, unsigned cbox);

    const CacheSeqOptions &options() const { return opt_; }
    core::Runner &runner() { return runner_; }

    /** Associativity of the targeted cache level. */
    unsigned levelAssoc() const;

  private:
    void setupAddressSpace();
    void computeTargetLayout();
    Addr nextCandidate();
    /** Eviction-run addresses: same L1/L2 set, different target set. */
    std::vector<Addr> evictionRun();
    std::vector<x86::Instruction>
    buildBody(const std::vector<SeqAccess> &seq);

    core::Runner &runner_;
    CacheSeqOptions opt_;
    Addr areaVirt_ = 0;
    Addr areaPhys_ = 0;
    Addr areaSize_ = 0;
    /** Stride between consecutive same-set candidates. */
    Addr candidateStride_ = 0;
    Addr nextCandidateOffset_ = 0;
    std::map<int, Addr> blockAddrs_;
    std::vector<Addr> evictPool_;
    std::size_t evictPos_ = 0;
    unsigned evictRunLength_ = 0;
};

} // namespace nb::cachetools

#endif // NB_CACHETOOLS_CACHESEQ_HH
