/**
 * @file
 * Policy-simulator implementation.
 */

#include "policy_sim.hh"

#include <map>

#include "common/logging.hh"
#include "common/strings.hh"

namespace nb::cachetools
{

std::vector<SeqAccess>
parseAccessSeq(const std::string &text)
{
    std::vector<SeqAccess> seq;
    std::map<std::string, int> ids;
    for (auto token : splitWhitespace(text)) {
        SeqAccess acc;
        if (iequals(token, "<wbinvd>")) {
            acc.wbinvd = true;
            acc.block = -1;
            acc.measured = false;
            seq.push_back(acc);
            continue;
        }
        if (!token.empty() && token.back() == '?') {
            acc.measured = false;
            token.pop_back();
        }
        if (token.empty())
            fatal("empty block name in access sequence");
        auto [it, inserted] =
            ids.try_emplace(token, static_cast<int>(ids.size()));
        acc.block = it->second;
        seq.push_back(acc);
    }
    return seq;
}

std::string
accessSeqToString(const std::vector<SeqAccess> &seq)
{
    std::string out;
    for (const auto &acc : seq) {
        if (!out.empty())
            out += " ";
        if (acc.wbinvd) {
            out += "<wbinvd>";
            continue;
        }
        // Two appends, not operator+: GCC 12's -Wrestrict sees a
        // false-positive overlap in the temporary at -O3.
        out += "B";
        out += std::to_string(acc.block);
        if (!acc.measured)
            out += "?";
    }
    return out;
}

PolicySim::PolicySim(std::unique_ptr<cache::SetPolicy> policy)
    : policy_(std::move(policy))
{
    NB_ASSERT(policy_ != nullptr, "PolicySim requires a policy");
    tags_.assign(policy_->assoc(), -1);
    valid_.assign(policy_->assoc(), false);
}

bool
PolicySim::access(int block)
{
    for (unsigned w = 0; w < tags_.size(); ++w) {
        if (valid_[w] && tags_[w] == block) {
            policy_->onHit(w, valid_);
            return true;
        }
    }
    unsigned way = policy_->insertWay(valid_);
    NB_ASSERT(way < tags_.size(), "policy returned bad way");
    tags_[way] = block;
    valid_[way] = true;
    policy_->onInsert(way, valid_);
    return false;
}

void
PolicySim::flush()
{
    tags_.assign(tags_.size(), -1);
    valid_.assign(valid_.size(), false);
    policy_->reset();
}

unsigned
PolicySim::runSequence(const std::vector<SeqAccess> &seq)
{
    unsigned hits = 0;
    for (const auto &acc : seq) {
        if (acc.wbinvd) {
            flush();
            continue;
        }
        bool hit = access(acc.block);
        if (acc.measured && hit)
            ++hits;
    }
    return hits;
}

std::vector<bool>
PolicySim::trace(const std::vector<SeqAccess> &seq)
{
    std::vector<bool> out;
    for (const auto &acc : seq) {
        if (acc.wbinvd) {
            flush();
            continue;
        }
        out.push_back(access(acc.block));
    }
    return out;
}

} // namespace nb::cachetools
