/**
 * @file
 * Inference-tool implementation.
 */

#include "infer.hh"

#include <cmath>
#include <sstream>

#include "common/bits.hh"
#include "common/logging.hh"

namespace nb::cachetools
{

SimSetProbe::SimSetProbe(const std::string &policy_name, unsigned assoc,
                         Rng *rng, unsigned reps)
    : policyName_(policy_name), assoc_(assoc), rng_(rng), reps_(reps)
{
    NB_ASSERT(reps >= 1, "need at least one repetition");
}

double
SimSetProbe::hits(const std::vector<SeqAccess> &seq)
{
    double total = 0.0;
    for (unsigned r = 0; r < reps_; ++r) {
        PolicySim sim(cache::makePolicy(policyName_, assoc_, rng_));
        total += sim.runSequence(seq);
    }
    return total / reps_;
}

unsigned
inferAssociativity(SetProbe &probe, unsigned max_assoc)
{
    unsigned assoc = 0;
    for (unsigned k = 1; k <= max_assoc; ++k) {
        std::vector<SeqAccess> seq;
        seq.push_back({-1, false, true}); // <wbinvd>
        for (unsigned i = 0; i < k; ++i)
            seq.push_back({static_cast<int>(i), false, false});
        for (unsigned i = 0; i < k; ++i)
            seq.push_back({static_cast<int>(i), true, false});
        double hits = probe.hits(seq);
        if (hits + 0.5 < k)
            break;
        assoc = k;
    }
    return assoc;
}

namespace
{

/** Fresh block ids are taken from a range far above the fill blocks. */
int
freshId(unsigned j)
{
    return 1000 + static_cast<int>(j);
}

/**
 * Build the probe sequence: <wbinvd>, fill A blocks, optional extra
 * access, j fresh misses, and a measured probe of block i.
 */
std::vector<SeqAccess>
fingerprintSeq(unsigned assoc, int extra_access, unsigned j, unsigned i)
{
    std::vector<SeqAccess> seq;
    seq.push_back({-1, false, true}); // <wbinvd>
    for (unsigned b = 0; b < assoc; ++b)
        seq.push_back({static_cast<int>(b), false, false});
    if (extra_access >= 0)
        seq.push_back({extra_access, false, false});
    for (unsigned f = 0; f < j; ++f)
        seq.push_back({freshId(f), false, false});
    seq.push_back({static_cast<int>(i), true, false});
    return seq;
}

} // namespace

PermutationFingerprint
permutationFingerprint(SetProbe &probe)
{
    unsigned assoc = probe.assoc();
    PermutationFingerprint fp;
    fp.assoc = assoc;

    // Contexts: -1 = bare fill; 0..A-1 = hit access to block b after the
    // fill; A = one additional miss (a fresh block).
    std::vector<int> contexts;
    contexts.push_back(-1);
    for (unsigned b = 0; b < assoc; ++b)
        contexts.push_back(static_cast<int>(b));
    contexts.push_back(freshId(900)); // a miss access

    for (int extra : contexts) {
        std::vector<std::vector<bool>> per_j;
        for (unsigned j = 1; j <= assoc; ++j) {
            std::vector<bool> survives(assoc);
            for (unsigned i = 0; i < assoc; ++i) {
                double h = probe.hits(fingerprintSeq(assoc, extra, j, i));
                survives[i] = h >= 0.5;
            }
            per_j.push_back(std::move(survives));
        }
        fp.table.push_back(std::move(per_j));
    }
    return fp;
}

std::optional<std::string>
identifyPermutationPolicy(SetProbe &probe, Rng *rng)
{
    unsigned assoc = probe.assoc();
    PermutationFingerprint fp = permutationFingerprint(probe);

    std::vector<std::string> refs = {"LRU", "FIFO"};
    if (isPowerOfTwo(assoc))
        refs.push_back("PLRU");
    for (const auto &name : refs) {
        SimSetProbe ref(name, assoc, rng);
        if (permutationFingerprint(ref) == fp)
            return name;
    }
    return std::nullopt;
}

std::vector<std::string>
candidatePolicyNames(unsigned assoc)
{
    std::vector<std::string> names = {"LRU", "FIFO", "MRU", "MRU_SBV"};
    if (isPowerOfTwo(assoc))
        names.push_back("PLRU");
    for (const auto &spec : cache::allQlruSpecs())
        names.push_back(spec.name());
    return names;
}

namespace
{

/** One random identification sequence (§VI-C1): flushed first, a few
 *  more blocks than ways, every access measured. Shared by the serial
 *  tool and planPolicyId() so both test the same distribution. */
std::vector<SeqAccess>
randomIdSequence(Rng &rng, unsigned assoc, unsigned seq_length_factor)
{
    unsigned n_blocks =
        assoc + 1 + static_cast<unsigned>(rng.nextBelow(4));
    unsigned length = assoc * seq_length_factor +
                      static_cast<unsigned>(rng.nextBelow(assoc));
    std::vector<SeqAccess> seq;
    seq.push_back({-1, false, true});
    for (unsigned k = 0; k < length; ++k) {
        seq.push_back(
            {static_cast<int>(rng.nextBelow(n_blocks)), true, false});
    }
    return seq;
}

} // namespace

PolicyIdentification
identifyPolicy(SetProbe &probe, Rng &rng, unsigned n_sequences,
               unsigned seq_length_factor)
{
    unsigned assoc = probe.assoc();
    PolicyIdentification out;

    // Candidate simulations; removed as soon as they disagree once.
    struct Candidate
    {
        std::string name;
        bool alive = true;
    };
    std::vector<Candidate> candidates;
    for (auto &name : candidatePolicyNames(assoc))
        candidates.push_back({name, true});

    Rng sim_rng(12345); // candidate simulations are deterministic anyway

    for (unsigned s = 0; s < n_sequences; ++s) {
        auto seq = randomIdSequence(rng, assoc, seq_length_factor);
        ++out.sequencesTested;

        double measured = probe.hits(seq);
        double measured2 = probe.hits(seq);
        if (measured != measured2 ||
            measured != std::floor(measured)) {
            // Hits differ between identical runs: the policy is not
            // deterministic (§VI-D); the caller should use age graphs.
            out.deterministic = false;
            out.matches.clear();
            return out;
        }

        auto expected = static_cast<unsigned>(measured);
        for (auto &cand : candidates) {
            if (!cand.alive)
                continue;
            SimSetProbe sim(cand.name, assoc, &sim_rng);
            if (static_cast<unsigned>(sim.hits(seq)) != expected)
                cand.alive = false;
        }
    }

    for (const auto &cand : candidates) {
        if (cand.alive)
            out.matches.push_back(cand.name);
    }
    return out;
}

std::string
AgeGraph::toCsv() const
{
    std::ostringstream os;
    os << "fresh";
    for (unsigned b = 0; b < nBlocks; ++b)
        os << ",B" << b;
    os << "\n";
    for (std::size_t p = 0; p < freshCounts.size(); ++p) {
        os << freshCounts[p];
        for (unsigned b = 0; b < nBlocks; ++b)
            os << "," << hitRate[b][p];
        os << "\n";
    }
    return os.str();
}

// ------------------------------------------------------- plan/decode --

AssocPlan
planAssociativity(CacheSeq &seq, unsigned max_assoc)
{
    AssocPlan plan;
    plan.level = seq.options().level;
    plan.maxAssoc = max_assoc;
    for (unsigned k = 1; k <= max_assoc; ++k) {
        std::vector<SeqAccess> s;
        s.push_back({-1, false, true}); // <wbinvd>
        for (unsigned i = 0; i < k; ++i)
            s.push_back({static_cast<int>(i), false, false});
        for (unsigned i = 0; i < k; ++i)
            s.push_back({static_cast<int>(i), true, false});
        plan.specs.push_back(seq.planSeq(s));
    }
    return plan;
}

AssocResult
decodeAssociativity(const AssocPlan &plan,
                    const std::vector<RunOutcome> &outcomes)
{
    NB_ASSERT(outcomes.size() == plan.maxAssoc,
              "associativity decode needs one outcome per spec");
    AssocResult out;
    for (unsigned k = 1; k <= plan.maxAssoc; ++k) {
        const RunOutcome &outcome = outcomes[k - 1];
        if (!outcome.ok()) {
            // No information beyond this point; report the lower
            // bound found so far plus the failure.
            out.error = outcome.error().message;
            return out;
        }
        double hits =
            CacheSeq::decodeHitMiss(plan.level, outcome.result()).hits;
        if (hits + 0.5 < k)
            break;
        out.assoc = k;
    }
    return out;
}

PolicyIdPlan
planPolicyId(CacheSeq &seq, unsigned assoc, Rng &rng,
             unsigned n_sequences, unsigned seq_length_factor)
{
    PolicyIdPlan plan;
    plan.level = seq.options().level;
    plan.assoc = assoc;
    for (unsigned s = 0; s < n_sequences; ++s) {
        auto sequence = randomIdSequence(rng, assoc, seq_length_factor);
        core::BenchmarkSpec spec = seq.planSeq(sequence);
        spec.nMeasurements = 2;
        // The Min/Max aggregates over the two runs replace the serial
        // tool's "run it twice, compare" determinism check; the
        // differing aggregate also keeps the pair from being deduped
        // into one execution.
        spec.agg = Aggregate::Minimum;
        plan.specs.push_back(spec);
        spec.agg = Aggregate::Maximum;
        plan.specs.push_back(std::move(spec));
        plan.sequences.push_back(std::move(sequence));
    }
    return plan;
}

PolicyIdentification
decodePolicyId(const PolicyIdPlan &plan,
               const std::vector<RunOutcome> &outcomes)
{
    NB_ASSERT(outcomes.size() == 2 * plan.sequences.size(),
              "policy decode needs two outcomes per sequence");
    PolicyIdentification out;

    struct Candidate
    {
        std::string name;
        bool alive = true;
    };
    std::vector<Candidate> candidates;
    for (auto &name : candidatePolicyNames(plan.assoc))
        candidates.push_back({name, true});

    Rng sim_rng(12345); // candidate simulations are deterministic anyway

    for (std::size_t s = 0; s < plan.sequences.size(); ++s) {
        const RunOutcome &lo = outcomes[2 * s];
        const RunOutcome &hi = outcomes[2 * s + 1];
        if (!lo.ok() || !hi.ok()) {
            ++out.sequencesSkipped;
            continue;
        }
        ++out.sequencesTested;
        double min_hits =
            CacheSeq::decodeHitMiss(plan.level, lo.result()).hits;
        double max_hits =
            CacheSeq::decodeHitMiss(plan.level, hi.result()).hits;
        if (min_hits != max_hits ||
            min_hits != std::floor(min_hits)) {
            // The two runs of the same benchmark disagree (or the
            // count is fractional): not deterministic (§VI-D).
            out.deterministic = false;
            out.matches.clear();
            return out;
        }
        auto expected = static_cast<unsigned>(min_hits);
        for (auto &cand : candidates) {
            if (!cand.alive)
                continue;
            SimSetProbe sim(cand.name, plan.assoc, &sim_rng);
            if (static_cast<unsigned>(sim.hits(plan.sequences[s])) !=
                expected)
                cand.alive = false;
        }
    }

    for (const auto &cand : candidates) {
        if (cand.alive)
            out.matches.push_back(cand.name);
    }
    return out;
}

AgeGraph
computeAgeGraph(SetProbe &probe, unsigned n_blocks, unsigned max_fresh,
                unsigned step)
{
    AgeGraph graph;
    graph.nBlocks = n_blocks;
    for (unsigned n = 0; n <= max_fresh; n += step)
        graph.freshCounts.push_back(n);
    graph.hitRate.assign(n_blocks, {});

    for (unsigned b = 0; b < n_blocks; ++b) {
        for (unsigned n : graph.freshCounts) {
            std::vector<SeqAccess> seq;
            seq.push_back({-1, false, true}); // <wbinvd>
            for (unsigned i = 0; i < n_blocks; ++i)
                seq.push_back({static_cast<int>(i), false, false});
            for (unsigned f = 0; f < n; ++f)
                seq.push_back({freshId(f), false, false});
            seq.push_back({static_cast<int>(b), true, false});
            graph.hitRate[b].push_back(probe.hits(seq));
        }
    }
    return graph;
}

} // namespace nb::cachetools
