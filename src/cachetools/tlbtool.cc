/**
 * @file
 * TLB-characterization implementation.
 */

#include "tlbtool.hh"

#include <functional>

#include "common/logging.hh"
#include "core/engine.hh"
#include "x86/assembler.hh"

namespace nb::cachetools
{

namespace
{

using x86::Instruction;
using x86::MemRef;
using x86::Opcode;
using x86::Operand;
using x86::Reg;

/** One load per stride step: mov RBX, [R14 + i*stride]. */
std::vector<Instruction>
strideLoads(unsigned n, Addr stride)
{
    std::vector<Instruction> body;
    body.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        MemRef m;
        m.base = Reg::R14;
        m.disp = static_cast<std::int64_t>(i * stride);
        Instruction insn;
        insn.opcode = Opcode::MOV;
        insn.operands = {Operand::makeReg(Reg::RBX),
                         Operand::makeMem(m, 64)};
        body.push_back(std::move(insn));
    }
    return body;
}

Instruction
ins_mov_imm(Reg r, std::int64_t value)
{
    Instruction insn;
    insn.opcode = Opcode::MOV;
    insn.operands = {Operand::makeReg(r), Operand::makeImm(value)};
    return insn;
}

Instruction
ins_store_abs(Addr addr, Reg r)
{
    MemRef m;
    m.disp = static_cast<std::int64_t>(addr);
    Instruction insn;
    insn.opcode = Opcode::MOV;
    insn.operands = {Operand::makeMem(m, 64), Operand::makeReg(r)};
    return insn;
}

struct Probe
{
    double stlbHits = 0.0;  ///< DTLB misses that hit the STLB, per load
    double walks = 0.0;     ///< page walks per load
    double cycles = 0.0;    ///< cycles per load
};

Probe
probe(core::Runner &runner, unsigned n_pages, Addr stride = 4096)
{
    core::BenchmarkSpec spec;
    spec.code = strideLoads(n_pages, stride);
    spec.unrollCount = 1;
    spec.loopCount = 4; // cycle the working set (cyclic = LRU worst case)
    spec.warmUpCount = 2;
    spec.nMeasurements = 3;
    spec.agg = Aggregate::Median;
    spec.noMem = true;
    spec.fixedCounters = false;
    spec.config = core::CounterConfig::parseString(
        "08.20 DTLB_LOAD_MISSES.STLB_HIT\n"
        "08.01 DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK\n");
    auto result = runner.run(spec);
    Probe p;
    double denom = n_pages;
    p.stlbHits = result["DTLB_LOAD_MISSES.STLB_HIT"] / denom;
    p.walks = result["DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK"] / denom;

    // A second run with the fixed counters gives cycles per load.
    spec.noMem = false;
    spec.fixedCounters = true;
    spec.config = core::CounterConfig{};
    auto timing = runner.run(spec);
    p.cycles = timing["Core cycles"] / denom;
    return p;
}

/** Largest N in [lo, hi] where pred(N); pred must be monotone. */
unsigned
binarySearch(unsigned lo, unsigned hi,
             const std::function<bool(unsigned)> &pred)
{
    while (lo < hi) {
        unsigned mid = (lo + hi + 1) / 2;
        if (pred(mid))
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

} // namespace

TlbCharacterization
measureTlb(core::Runner &runner, unsigned max_pages)
{
    if (runner.mode() != core::Mode::Kernel)
        fatal("the TLB tool requires the kernel-space runner");
    if (!runner.reserveR14Area(static_cast<Addr>(max_pages + 1) * 4096))
        fatal("cannot reserve the page-sweep area");
    // Hardware prefetchers would give the dense baseline rings an
    // unfair cache advantage (§IV-A2); disable them like the cache
    // tools do.
    if (runner.machine().caches().prefetcherDisableSupported()) {
        runner.machine().writeMsr(sim::msr::kPrefetchControl,
                                  cache::pf::kDisableAll);
    }

    TlbCharacterization out;

    // Capacities: the largest cyclic working set with (near-)zero
    // misses at the respective level.
    out.dtlbEntries = binarySearch(1, max_pages, [&](unsigned n) {
        Probe p = probe(runner, n);
        return p.stlbHits + p.walks < 0.01;
    });
    out.stlbEntries = binarySearch(out.dtlbEntries, max_pages,
                                   [&](unsigned n) {
                                       return probe(runner, n).walks <
                                              0.01;
                                   });

    // Penalties: independent loads hide translation latency behind
    // memory-level parallelism, so the penalty is measured with a
    // *dependent* pointer chase around a ring of N lines -- once with
    // one line per page (N translations) and once densely packed (few
    // pages). The identical cache footprint cancels the cache-
    // hierarchy contribution and isolates the translation penalty.
    Addr base = runner.r14Area();
    // Page-stride rings stagger the line offset within each page, so
    // the ring spreads over all L1/L2 sets instead of colliding in one.
    auto ring_addr = [&](unsigned i, Addr stride) {
        Addr a = base + i * stride;
        // Stagger by (i/8)%64 lines: decorrelated from the low page-
        // number bits, so the ring spreads over all L1/L2 sets.
        if (stride >= 4096)
            a += ((i / 8) % 64) * 64;
        return a;
    };
    auto chase_cycles = [&](unsigned n, Addr stride) {
        std::vector<Instruction> init;
        for (unsigned i = 0; i < n; ++i) {
            Addr slot = ring_addr(i, stride);
            Addr next = ring_addr((i + 1) % n, stride);
            init.push_back(
                ins_mov_imm(Reg::RBX, static_cast<std::int64_t>(next)));
            init.push_back(ins_store_abs(slot, Reg::RBX));
        }
        core::BenchmarkSpec spec;
        spec.init = std::move(init);
        spec.asmCode = "mov R14, [R14]";
        spec.unrollCount = 1;
        spec.loopCount = 4 * n;
        spec.warmUpCount = 2;
        spec.nMeasurements = 3;
        spec.agg = Aggregate::Median;
        return runner.run(spec)["Core cycles"];
    };
    auto penalty_at = [&](unsigned n) {
        return chase_cycles(n, 4096) - chase_cycles(n, 64);
    };
    // STLB penalty: a ring small enough that both variants stay L1-
    // resident (pure translation difference); walk penalty: a ring
    // past the STLB but still L2-resident in both variants.
    unsigned stlb_n = std::min(6 * out.dtlbEntries,
                               (out.dtlbEntries + out.stlbEntries) / 2);
    if (out.stlbEntries > out.dtlbEntries)
        out.stlbPenalty = penalty_at(stlb_n);
    unsigned beyond = std::min(max_pages, out.stlbEntries + 512);
    if (beyond > out.stlbEntries)
        out.walkPenalty = penalty_at(beyond);
    return out;
}

TlbCharacterization
measureTlb(Session &session, unsigned max_pages)
{
    return measureTlb(session.runner(), max_pages);
}

} // namespace nb::cachetools
