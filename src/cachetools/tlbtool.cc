/**
 * @file
 * TLB-characterization implementation.
 */

#include "tlbtool.hh"

#include <algorithm>

#include "common/logging.hh"
#include "x86/assembler.hh"

namespace nb::cachetools
{

namespace
{

using x86::Instruction;
using x86::MemRef;
using x86::Opcode;
using x86::Operand;
using x86::Reg;

/** One load per stride step: mov RBX, [R14 + i*stride]. */
std::vector<Instruction>
strideLoads(unsigned n, Addr stride)
{
    std::vector<Instruction> body;
    body.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        MemRef m;
        m.base = Reg::R14;
        m.disp = static_cast<std::int64_t>(i * stride);
        Instruction insn;
        insn.opcode = Opcode::MOV;
        insn.operands = {Operand::makeReg(Reg::RBX),
                         Operand::makeMem(m, 64)};
        body.push_back(std::move(insn));
    }
    return body;
}

Instruction
ins_mov_imm(Reg r, std::int64_t value)
{
    Instruction insn;
    insn.opcode = Opcode::MOV;
    insn.operands = {Operand::makeReg(r), Operand::makeImm(value)};
    return insn;
}

Instruction
ins_store_abs(Addr addr, Reg r)
{
    MemRef m;
    m.disp = static_cast<std::int64_t>(addr);
    Instruction insn;
    insn.opcode = Opcode::MOV;
    insn.operands = {Operand::makeMem(m, 64), Operand::makeReg(r)};
    return insn;
}

/** The capacity-sweep grid: 2^k and 3*2^k points up to max_pages
 *  (plus max_pages itself), so the usual TLB sizes -- 64, 1536, ... --
 *  land exactly on grid points. */
std::vector<unsigned>
sweepLadder(unsigned max_pages)
{
    std::vector<unsigned> ladder = {1};
    for (unsigned p = 2; p <= max_pages && p != 0; p *= 2) {
        ladder.push_back(p);
        unsigned q = p + p / 2;
        if (q <= max_pages)
            ladder.push_back(q);
    }
    ladder.push_back(max_pages);
    std::sort(ladder.begin(), ladder.end());
    ladder.erase(std::unique(ladder.begin(), ladder.end()),
                 ladder.end());
    return ladder;
}

/** Ring addresses of the penalty chase: page-stride rings stagger the
 *  line offset within each page, so the ring spreads over all L1/L2
 *  sets instead of colliding in one. */
Addr
ringAddr(Addr base, unsigned i, Addr stride)
{
    Addr a = base + i * stride;
    if (stride >= 4096)
        a += ((i / 8) % 64) * 64;
    return a;
}

/** The dependent pointer chase around a ring of n lines at the given
 *  stride (§VI: dependent loads defeat memory-level parallelism, so
 *  the translation penalty shows up in full). */
core::BenchmarkSpec
chaseSpec(Addr base, unsigned n, Addr stride)
{
    std::vector<Instruction> init;
    for (unsigned i = 0; i < n; ++i) {
        Addr slot = ringAddr(base, i, stride);
        Addr next = ringAddr(base, (i + 1) % n, stride);
        init.push_back(
            ins_mov_imm(Reg::RBX, static_cast<std::int64_t>(next)));
        init.push_back(ins_store_abs(slot, Reg::RBX));
    }
    core::BenchmarkSpec spec;
    spec.init = std::move(init);
    spec.asmCode = "mov R14, [R14]";
    spec.unrollCount = 1;
    spec.loopCount = 4 * n;
    spec.warmUpCount = 2;
    spec.nMeasurements = 3;
    spec.agg = Aggregate::Median;
    return spec;
}

} // namespace

TlbPlan
planTlb(core::Runner &runner, unsigned max_pages)
{
    if (runner.mode() != core::Mode::Kernel)
        fatal("the TLB tool requires the kernel-space runner");
    Addr needed = static_cast<Addr>(max_pages + 1) * 4096;
    if (runner.r14AreaSize() < needed)
        fatal("the TLB plan needs an R14 area of at least ", needed,
              " bytes (reserve it first)");

    TlbPlan plan;
    plan.maxPages = max_pages;
    plan.ladder = sweepLadder(max_pages);
    plan.r14Size = runner.r14AreaSize();

    // Miss sweep: one spec per ladder size, cycling the working set
    // (cyclic = LRU worst case) and counting the DTLB miss events.
    for (unsigned n : plan.ladder) {
        core::BenchmarkSpec spec;
        spec.code = strideLoads(n, 4096);
        spec.unrollCount = 1;
        spec.loopCount = 4;
        spec.warmUpCount = 2;
        spec.nMeasurements = 3;
        spec.agg = Aggregate::Median;
        spec.noMem = true;
        spec.fixedCounters = false;
        spec.config = core::CounterConfig::parseString(
            "08.20 DTLB_LOAD_MISSES.STLB_HIT\n"
            "08.01 DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK\n");
        plan.specs.push_back(std::move(spec));
    }

    // Penalty chases: a (page-strided, dense) pair per ladder size.
    // The identical cache footprint of a pair cancels the cache-
    // hierarchy contribution and isolates the translation penalty;
    // decodeTlb() picks the pairs whose ring sizes bracket the
    // capacities it finds in the sweep.
    Addr base = runner.r14Area();
    for (unsigned n : plan.ladder) {
        plan.specs.push_back(chaseSpec(base, n, 4096));
        plan.specs.push_back(chaseSpec(base, n, 64));
    }
    return plan;
}

TlbCharacterization
decodeTlb(const TlbPlan &plan, const std::vector<RunOutcome> &outcomes)
{
    NB_ASSERT(outcomes.size() == 3 * plan.ladder.size(),
              "TLB decode needs one outcome per planned spec");
    TlbCharacterization out;
    auto fail = [&](const RunOutcome &outcome) {
        if (out.error.empty())
            out.error = outcome.error().message;
    };
    auto fail_text = [&](const std::string &message) {
        if (out.error.empty())
            out.error = message;
    };

    // Capacities: the largest ladder size with (near-)zero misses at
    // the respective level -- the same monotone criterion the former
    // binary search evaluated, on the fixed grid.
    std::size_t n_ladder = plan.ladder.size();
    bool dtlb_done = false;
    for (std::size_t i = 0; i < n_ladder; ++i) {
        const RunOutcome &outcome = outcomes[i];
        if (!outcome.ok()) {
            fail(outcome);
            break;
        }
        const auto &result = outcome.result();
        double denom = plan.ladder[i];
        auto stlb_line = result.find("DTLB_LOAD_MISSES.STLB_HIT");
        auto walk_line =
            result.find("DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK");
        if (!stlb_line || !walk_line) {
            fail_text("DTLB_LOAD_MISSES events unavailable");
            break;
        }
        double stlb_hits = *stlb_line / denom;
        double walks = *walk_line / denom;
        if (!dtlb_done && stlb_hits + walks < 0.01)
            out.dtlbEntries = plan.ladder[i];
        else
            dtlb_done = true;
        if (walks < 0.01)
            out.stlbEntries = plan.ladder[i];
        else
            break; // past both capacities: the rest adds nothing
    }

    // Penalties: STLB penalty from a ring small enough that both
    // chase variants stay L1-resident (pure translation difference);
    // walk penalty from a ring past the STLB but still cache-resident
    // in both variants.
    auto chase_pair = [&](unsigned n) -> std::optional<double> {
        auto it = std::find(plan.ladder.begin(), plan.ladder.end(), n);
        NB_ASSERT(it != plan.ladder.end(), "ring size off ladder");
        std::size_t i =
            n_ladder +
            2 * static_cast<std::size_t>(it - plan.ladder.begin());
        if (!outcomes[i].ok() || !outcomes[i + 1].ok()) {
            fail(!outcomes[i].ok() ? outcomes[i] : outcomes[i + 1]);
            return std::nullopt;
        }
        auto strided = outcomes[i].result().find("Core cycles");
        auto dense = outcomes[i + 1].result().find("Core cycles");
        if (!strided || !dense) {
            fail_text("no Core cycles line (fixed counters "
                      "unavailable on this machine)");
            return std::nullopt;
        }
        return *strided - *dense;
    };
    auto ladder_at_most = [&](unsigned cap,
                              unsigned above) -> std::optional<unsigned> {
        std::optional<unsigned> best;
        for (unsigned n : plan.ladder) {
            if (n > above && n <= cap)
                best = n;
        }
        return best;
    };

    if (out.stlbEntries > out.dtlbEntries) {
        unsigned target = std::min(
            6 * out.dtlbEntries,
            (out.dtlbEntries + out.stlbEntries) / 2);
        if (auto n = ladder_at_most(target, out.dtlbEntries)) {
            if (auto penalty = chase_pair(*n))
                out.stlbPenalty = *penalty;
        }
    }
    unsigned beyond = std::min(plan.maxPages, out.stlbEntries + 512);
    if (auto n = ladder_at_most(beyond, out.stlbEntries)) {
        if (auto penalty = chase_pair(*n))
            out.walkPenalty = *penalty;
    }
    return out;
}

TlbCharacterization
measureTlb(core::Runner &runner, unsigned max_pages)
{
    if (runner.mode() != core::Mode::Kernel)
        fatal("the TLB tool requires the kernel-space runner");
    Addr needed = static_cast<Addr>(max_pages + 1) * 4096;
    if (runner.r14AreaSize() < needed && !runner.reserveR14Area(needed))
        fatal("cannot reserve the page-sweep area");
    // Hardware prefetchers would give the dense baseline rings an
    // unfair cache advantage (§IV-A2); disable them like the cache
    // tools do.
    if (runner.machine().caches().prefetcherDisableSupported()) {
        runner.machine().writeMsr(sim::msr::kPrefetchControl,
                                  cache::pf::kDisableAll);
    }

    TlbPlan plan = planTlb(runner, max_pages);
    std::vector<RunOutcome> outcomes;
    outcomes.reserve(plan.specs.size());
    for (const auto &spec : plan.specs)
        outcomes.push_back(runSpecOnRunner(runner, spec));
    return decodeTlb(plan, outcomes);
}

TlbCharacterization
measureTlb(Session &session, unsigned max_pages)
{
    return measureTlb(session.runner(), max_pages);
}

} // namespace nb::cachetools
