/**
 * @file
 * cacheSeq implementation.
 */

#include "cacheseq.hh"

#include "common/bits.hh"
#include "common/logging.hh"
#include "core/engine.hh"

namespace nb::cachetools
{

using x86::Instruction;
using x86::MemRef;
using x86::Opcode;
using x86::Operand;
using x86::Reg;

namespace
{

Instruction
loadFrom(Addr vaddr)
{
    MemRef m;
    m.disp = static_cast<std::int64_t>(vaddr);
    Instruction insn;
    insn.opcode = Opcode::MOV;
    insn.operands = {Operand::makeReg(Reg::RBX),
                     Operand::makeMem(m, 64)};
    return insn;
}

Instruction
marker(Opcode op)
{
    Instruction insn;
    insn.opcode = op;
    return insn;
}

} // namespace

CacheSeq::CacheSeq(Session &session, const CacheSeqOptions &options)
    : CacheSeq(session.runner(), options)
{
}

CacheSeq::CacheSeq(core::Runner &runner, const CacheSeqOptions &options)
    : runner_(runner), opt_(options)
{
    if (runner.mode() != core::Mode::Kernel) {
        fatal("cacheSeq requires the kernel-space version of nanoBench "
              "(WBINVD and uncore access are privileged, §VI-C)");
    }
    auto &machine = runner_.machine();
    auto &caches = machine.caches();

    if (opt_.disablePrefetchers) {
        if (!caches.prefetcherDisableSupported()) {
            fatal("cannot disable the cache prefetchers on ",
                  machine.uarch().name,
                  " -- cache analysis is not supported (§VI-D)");
        }
        machine.writeMsr(sim::msr::kPrefetchControl,
                         cache::pf::kDisableAll);
    }

    if (opt_.level == CacheLevel::L3 &&
        opt_.cbox >= caches.numSlices()) {
        fatal("C-Box ", opt_.cbox, " out of range (", caches.numSlices(),
              " slices)");
    }
    setupAddressSpace();
}

unsigned
CacheSeq::levelAssoc() const
{
    const auto &cfg = runner_.machine().uarch().cacheConfig;
    switch (opt_.level) {
      case CacheLevel::L1:
        return cfg.l1.assoc;
      case CacheLevel::L2:
        return cfg.l2.assoc;
      case CacheLevel::L3:
        return cfg.l3.assoc;
    }
    panic("unreachable level");
}

void
CacheSeq::setupAddressSpace()
{
    auto &machine = runner_.machine();
    const auto &caches = machine.caches();
    unsigned target_sets = 0;
    switch (opt_.level) {
      case CacheLevel::L1:
        target_sets = caches.l1().numSets();
        break;
      case CacheLevel::L2:
        target_sets = caches.l2().numSets();
        break;
      case CacheLevel::L3:
        target_sets = caches.l3Slice(0).numSets();
        break;
    }
    if (opt_.set >= target_sets)
        fatal("set index ", opt_.set, " out of range (", target_sets,
              " sets)");
    candidateStride_ = static_cast<Addr>(target_sets) * kCacheLineSize;

    // Size the physically-contiguous area for a few hundred candidates
    // (plus slack for slice filtering on sliced L3s).
    unsigned slices = caches.numSlices();
    Addr needed = candidateStride_ * 320 *
                  (opt_.level == CacheLevel::L3 ? slices + 1 : 1);
    needed = std::max<Addr>(needed, 8 * 1024 * 1024);
    // Keep an already-reserved area that is big enough: re-reserving
    // would move the base, invalidating addresses other tools planned
    // against the same runner (the profile builder relies on one
    // stable reservation shared by all its tools).
    if (runner_.r14AreaSize() < needed && !runner_.reserveR14Area(needed))
        fatal("cannot reserve a physically-contiguous area of ", needed,
              " bytes; reboot the (simulated) machine (§IV-D)");
    areaVirt_ = runner_.r14Area();
    areaSize_ = runner_.r14AreaSize();
    areaPhys_ = machine.memory().translate(areaVirt_);

    computeTargetLayout();
}

void
CacheSeq::computeTargetLayout()
{
    auto &machine = runner_.machine();
    const auto &caches = machine.caches();
    unsigned l1_sets = caches.l1().numSets();
    unsigned l2_sets = caches.l2().numSets();
    unsigned l3_sets = caches.l3Slice(0).numSets();

    // Align the candidate origin to the stride, then add the set offset.
    Addr aligned = alignUp(areaPhys_, candidateStride_);
    nextCandidateOffset_ = aligned - areaPhys_ +
                           static_cast<Addr>(opt_.set) * kCacheLineSize;
    blockAddrs_.clear();
    evictPool_.clear();
    evictPos_ = 0;

    // Build the eviction pool (§VI-C): addresses with the same L1/L2
    // set as the target, but a *different* set in the cache under test.
    //
    // The pool is reused verbatim on every eviction run and is sized so
    // that it fits into the non-target sets of the cache under test
    // without causing evictions there: an eviction in (say) the L3
    // back-invalidates the line from L1/L2, which perturbs the fill
    // placement of subsequent eviction accesses and can
    // non-deterministically leave a block resident. Capping the pool
    // below the associativity of each (set, slice) it touches makes the
    // eviction runs exactly reproducible.
    const auto &cfg = machine.uarch().cacheConfig;
    if (opt_.level == CacheLevel::L1) {
        evictRunLength_ = 0; // L1 is the first level: nothing above it
        return;
    }
    unsigned want = 2 * (cfg.l1.assoc + cfg.l2.assoc);
    unsigned need = 2 * std::max(cfg.l1.assoc, cfg.l2.assoc);

    Addr first_block_paddr = areaPhys_ + nextCandidateOffset_;
    unsigned keep_bits; // low bits that must stay equal (L1/L2 set)
    unsigned set_bits;  // top of the under-test index range
    unsigned under_assoc;
    unsigned n_slices = opt_.level == CacheLevel::L3
                            ? caches.numSlices()
                            : 1;
    if (opt_.level == CacheLevel::L3) {
        keep_bits = 6 + floorLog2(l2_sets);
        set_bits = 6 + floorLog2(l3_sets);
        under_assoc = cfg.l3.assoc;
    } else {
        keep_bits = 6 + floorLog2(l1_sets);
        set_bits = 6 + floorLog2(l2_sets);
        under_assoc = cfg.l2.assoc;
    }
    unsigned cap_per_set = under_assoc >= 4 ? under_assoc - 2
                                            : under_assoc;

    // Enumerate candidates: vary the index bits above keep_bits (to
    // leave the target set) and the bits above the index (fresh tags),
    // and cap the load per (set, slice) of the cache under test.
    std::map<std::pair<Addr, unsigned>, unsigned> load;
    Addr vary_stride = Addr{1} << set_bits;
    unsigned free_combos =
        set_bits > keep_bits ? (1u << (set_bits - keep_bits)) : 1;
    for (unsigned tag = 0; tag < 64 && evictPool_.size() < want; ++tag) {
        for (unsigned combo = 0;
             combo < free_combos && evictPool_.size() < want; ++combo) {
            Addr paddr = (first_block_paddr &
                          ~((vary_stride - 1) & ~((Addr{1} << keep_bits) -
                                                  1))) |
                         (static_cast<Addr>(combo) << keep_bits);
            paddr += static_cast<Addr>(tag) * vary_stride;
            if (paddr < areaPhys_ ||
                paddr + kCacheLineSize > areaPhys_ + areaSize_)
                continue;
            // Never touch the target set.
            Addr set_of = bits(paddr, set_bits - 1, 6);
            if (set_of == opt_.set)
                continue;
            unsigned slice = opt_.level == CacheLevel::L3
                                 ? caches.sliceOf(paddr)
                                 : 0;
            auto key = std::make_pair(set_of, slice);
            if (load[key] >= cap_per_set)
                continue;
            ++load[key];
            evictPool_.push_back(areaVirt_ + (paddr - areaPhys_));
        }
    }
    (void)n_slices;
    evictRunLength_ = static_cast<unsigned>(evictPool_.size());
    if (evictRunLength_ < need) {
        warn("cacheSeq: eviction pool has only ", evictRunLength_,
             " lines (wanted ", need, "); results may be unreliable");
    }
}

void
CacheSeq::setTarget(unsigned set, unsigned cbox)
{
    const auto &caches = runner_.machine().caches();
    if (opt_.level == CacheLevel::L3 && cbox >= caches.numSlices())
        fatal("C-Box ", cbox, " out of range");
    opt_.set = set;
    opt_.cbox = cbox;
    computeTargetLayout();
}

Addr
CacheSeq::nextCandidate()
{
    auto &machine = runner_.machine();
    const auto &caches = machine.caches();
    for (;;) {
        Addr offset = nextCandidateOffset_;
        nextCandidateOffset_ += candidateStride_;
        if (offset + kCacheLineSize > areaSize_) {
            fatal("cacheSeq ran out of candidate addresses in the "
                  "reserved area (needed more than ", blockAddrs_.size(),
                  " blocks)");
        }
        Addr paddr = areaPhys_ + offset;
        if (opt_.level == CacheLevel::L3 &&
            caches.sliceOf(paddr) != opt_.cbox)
            continue; // wrong slice; try the next candidate
        return areaVirt_ + offset;
    }
}

Addr
CacheSeq::blockVaddr(int block)
{
    NB_ASSERT(block >= 0, "negative block id");
    auto [it, inserted] = blockAddrs_.try_emplace(block, 0);
    if (inserted)
        it->second = nextCandidate();
    return it->second;
}

std::vector<Addr>
CacheSeq::evictionRun()
{
    std::vector<Addr> run;
    for (unsigned i = 0; i < evictRunLength_; ++i) {
        run.push_back(evictPool_[evictPos_]);
        evictPos_ = (evictPos_ + 1) % evictPool_.size();
    }
    return run;
}

std::vector<Instruction>
CacheSeq::buildBody(const std::vector<SeqAccess> &seq)
{
    std::vector<Instruction> body;
    bool counting = true;
    auto set_counting = [&](bool on) {
        if (counting == on)
            return;
        body.push_back(
            marker(on ? Opcode::PFC_RESUME : Opcode::PFC_PAUSE));
        counting = on;
    };

    bool first_access = true;
    for (const auto &acc : seq) {
        if (acc.wbinvd) {
            set_counting(false);
            body.push_back(marker(Opcode::WBINVD));
            continue;
        }
        // Eviction accesses between two block accesses (§VI-C), so the
        // access below actually reaches the cache under test.
        if (!first_access && evictRunLength_ > 0) {
            set_counting(false);
            for (Addr vaddr : evictionRun())
                body.push_back(loadFrom(vaddr));
        }
        set_counting(acc.measured);
        body.push_back(loadFrom(blockVaddr(acc.block)));
        first_access = false;
    }
    set_counting(true);
    return body;
}

const char *
CacheSeq::hitEventName(CacheLevel level)
{
    switch (level) {
      case CacheLevel::L1:
        return "MEM_LOAD_RETIRED.L1_HIT";
      case CacheLevel::L2:
        return "MEM_LOAD_RETIRED.L2_HIT";
      case CacheLevel::L3:
        return "MEM_LOAD_RETIRED.L3_HIT";
    }
    panic("unreachable level");
}

const char *
CacheSeq::missEventName(CacheLevel level)
{
    switch (level) {
      case CacheLevel::L1:
        return "MEM_LOAD_RETIRED.L1_MISS";
      case CacheLevel::L2:
        return "MEM_LOAD_RETIRED.L2_MISS";
      case CacheLevel::L3:
        return "MEM_LOAD_RETIRED.L3_MISS";
    }
    panic("unreachable level");
}

core::BenchmarkSpec
CacheSeq::planSeq(const std::vector<SeqAccess> &seq)
{
    return planSeqWithPrelude({}, seq);
}

core::BenchmarkSpec
CacheSeq::planSeqWithPrelude(const std::vector<Instruction> &prelude,
                             const std::vector<SeqAccess> &seq)
{
    core::BenchmarkSpec spec;
    if (!prelude.empty()) {
        // The prelude runs inside the measured body but behind a pause
        // marker, so the counters ignore it; basic mode's zero-unroll
        // version skips the body entirely, so the prelude executes
        // once per measurement (an init part would execute for both
        // code versions).
        spec.code.push_back(marker(Opcode::PFC_PAUSE));
        spec.code.insert(spec.code.end(), prelude.begin(),
                         prelude.end());
    }
    auto body = buildBody(seq);
    spec.code.insert(spec.code.end(), body.begin(), body.end());
    spec.unrollCount = 1;
    spec.loopCount = 0;
    spec.nMeasurements = opt_.repetitions;
    spec.warmUpCount = 0;
    spec.agg = Aggregate::Mean;
    spec.basicMode = true;
    spec.noMem = true;
    spec.fixedCounters = false;

    // Select the hit/miss events of the targeted level.
    for (const char *name :
         {hitEventName(opt_.level), missEventName(opt_.level)}) {
        auto info = sim::findEvent(std::string(name));
        NB_ASSERT(info.has_value(), "event missing from catalog: ", name);
        spec.config.add(core::ConfiguredEvent{info->code, info->id,
                                              info->name});
    }
    return spec;
}

HitMiss
CacheSeq::decodeHitMiss(CacheLevel level,
                        const core::BenchmarkResult &result)
{
    return HitMiss{result[hitEventName(level)],
                   result[missEventName(level)]};
}

HitMiss
CacheSeq::runHitMiss(const std::vector<SeqAccess> &seq)
{
    return decodeHitMiss(opt_.level, runner_.run(planSeq(seq)));
}

double
CacheSeq::run(const std::vector<SeqAccess> &seq)
{
    return runHitMiss(seq).hits;
}

double
CacheSeq::run(const std::string &seq_text)
{
    return run(parseAccessSeq(seq_text));
}

} // namespace nb::cachetools
