/**
 * @file
 * Set-dueling scanner implementation.
 *
 * Two-phase protocol: first drive the duel so that policy A wins and
 * record every candidate set's signature, then drive it towards policy
 * B and record the signatures again. Follower sets change signature
 * between the phases; dedicated sets keep the signature of their own
 * policy. Probing a leader set itself nudges the PSEL counter, so the
 * training is refreshed periodically. A final stride-1 refinement pass
 * sharpens the boundaries of the detected ranges.
 */

#include "dueling_scan.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "cachetools/infer.hh"
#include "common/bits.hh"
#include "common/logging.hh"
#include "core/engine.hh"

namespace nb::cachetools
{

const char *
setRoleName(SetRole role)
{
    switch (role) {
      case SetRole::Follower:
        return "follower";
      case SetRole::FixedA:
        return "fixed-A";
      case SetRole::FixedB:
        return "fixed-B";
      case SetRole::Unknown:
        return "unknown";
    }
    return "?";
}

std::string
DuelingScanResult::summary() const
{
    std::ostringstream os;
    for (const auto &range : dedicatedRanges) {
        os << "slice " << range.slice << ": sets " << range.setLo << "-"
           << range.setHi << " " << setRoleName(range.role) << "\n";
    }
    if (dedicatedRanges.empty())
        os << "no dedicated sets found\n";
    return os.str();
}

DuelingScanner::DuelingScanner(Session &session, std::string policy_a,
                               std::string policy_b)
    : DuelingScanner(session.runner(), std::move(policy_a),
                     std::move(policy_b))
{
}

DuelingScanner::DuelingScanner(core::Runner &runner, std::string policy_a,
                               std::string policy_b)
    : runner_(runner), policyA_(std::move(policy_a)),
      policyB_(std::move(policy_b)),
      assoc_(runner.machine().uarch().cacheConfig.l3.assoc)
{
    chooseSignature();
}

void
DuelingScanner::chooseSignature()
{
    // Offline search: find sequences whose expected hit counts under
    // the two candidate policies differ by as much as possible -- in
    // both directions. The A-favoring sequence (A hits more) produces
    // extra leader-B misses and drives the duel towards A; the
    // B-favoring one does the opposite. The larger gap of the two
    // doubles as the probe signature.
    Rng rng(271828);
    Rng sim_rng(31415);
    double best_a = 0.0; // ha - hb
    double best_b = 0.0; // hb - ha
    constexpr unsigned kSimReps = 96;
    for (unsigned trial = 0; trial < 200; ++trial) {
        std::vector<SeqAccess> seq;
        seq.push_back({-1, false, true}); // <wbinvd>
        unsigned n_blocks = assoc_ + 1 +
                            static_cast<unsigned>(rng.nextBelow(3));
        unsigned len = 2 * assoc_ +
                       static_cast<unsigned>(rng.nextBelow(assoc_));
        for (unsigned k = 0; k < len; ++k) {
            seq.push_back({static_cast<int>(rng.nextBelow(n_blocks)),
                           true, false});
        }
        SimSetProbe pa(policyA_, assoc_, &sim_rng, kSimReps);
        SimSetProbe pb(policyB_, assoc_, &sim_rng, kSimReps);
        double ha = pa.hits(seq);
        double hb = pb.hits(seq);
        if (ha - hb > best_a) {
            best_a = ha - hb;
            trainSeqA_ = seq;
        }
        if (hb - ha > best_b) {
            best_b = hb - ha;
            trainSeqB_ = seq;
            sig_ = seq;
            expectedA_ = ha;
            expectedB_ = hb;
        }
    }
    if (best_a > best_b) {
        sig_ = trainSeqA_;
        Rng check_rng(8128);
        SimSetProbe pa(policyA_, assoc_, &check_rng, kSimReps);
        SimSetProbe pb(policyB_, assoc_, &check_rng, kSimReps);
        expectedA_ = pa.hits(sig_);
        expectedB_ = pb.hits(sig_);
    }
    if (std::max(best_a, best_b) < 1.5) {
        warn("set-dueling scanner: weak signature (gap ",
             std::max(best_a, best_b),
             "); classification may be unreliable");
    }

    chooseTraining();
}

void
DuelingScanner::chooseTraining()
{
    // Training replays its pattern *block-major across all sets and
    // slices* (see train()), so between two uses of a line dozens of
    // distinct lines map to the same L1/L2 set: every training access
    // is guaranteed to reach the L3. The per-set policy simulation is
    // therefore the correct oracle for the L3 miss-count gap.
    auto pass_misses = [&](const std::string &policy,
                           const std::vector<int> &pattern) {
        Rng sim_rng(998877);
        double misses = 0.0;
        constexpr unsigned kSimReps = 16; // average the probabilistic B
        for (unsigned outer = 0; outer < kSimReps; ++outer) {
            PolicySim sim(cache::makePolicy(policy, assoc_, &sim_rng));
            for (unsigned rep = 0; rep < kTrainReplays; ++rep) {
                for (int b : pattern) {
                    if (!sim.access(b))
                        misses += 1.0;
                }
            }
        }
        return misses / kSimReps;
    };

    // Between two uses of the same block, train() interleaves
    // slices-many distinct lines per pattern position into the same L2
    // set; the pattern's reuse distance must therefore be at least
    // 2*assoc(L2)/slices for the reuse to miss L1/L2 reliably.
    const auto &cfg = runner_.machine().uarch().cacheConfig;
    unsigned slices = runner_.machine().caches().numSlices();
    unsigned min_reuse =
        (2 * std::max(cfg.l1.assoc, cfg.l2.assoc) + slices - 1) / slices;

    auto min_reuse_distance = [](const std::vector<int> &pattern) {
        std::size_t best = ~std::size_t{0};
        for (std::size_t i = 0; i < pattern.size(); ++i) {
            std::set<int> seen;
            for (std::size_t j = i + 1; j < pattern.size(); ++j) {
                if (pattern[j] == pattern[i]) {
                    best = std::min(best, seen.size());
                    break;
                }
                seen.insert(pattern[j]);
            }
        }
        return best;
    };

    Rng rng(424242);
    double best_a = 0.0;
    double best_b = 0.0;
    for (unsigned trial = 0; trial < 400; ++trial) {
        // Rounds of one fixed random permutation (reuse distance =
        // n_blocks - 1), with occasional skips for diversity.
        unsigned n_blocks = std::max(assoc_ - 2, min_reuse + 2) +
                            static_cast<unsigned>(rng.nextBelow(8));
        std::vector<int> perm(n_blocks);
        for (unsigned i = 0; i < n_blocks; ++i)
            perm[i] = static_cast<int>(i);
        for (unsigned i = n_blocks; i > 1; --i) {
            std::size_t j = rng.nextBelow(i);
            std::swap(perm[i - 1], perm[j]);
        }
        unsigned rounds = 2 + static_cast<unsigned>(rng.nextBelow(2));
        std::vector<int> pattern;
        for (unsigned r = 0; r < rounds; ++r) {
            for (int b : perm) {
                if (rng.nextBelow(8) == 0)
                    continue;
                pattern.push_back(b);
            }
        }
        if (min_reuse_distance(pattern) < min_reuse)
            continue;
        double ma = pass_misses(policyA_, pattern);
        double mb = pass_misses(policyB_, pattern);
        auto to_seq = [](const std::vector<int> &p) {
            std::vector<SeqAccess> seq;
            for (int b : p)
                seq.push_back({b, false, false});
            return seq;
        };
        // More A-misses than B-misses drives PSEL towards B winning.
        if (ma - mb > best_b) {
            best_b = ma - mb;
            trainSeqB_ = to_seq(pattern);
        }
        if (mb - ma > best_a) {
            best_a = mb - ma;
            trainSeqA_ = to_seq(pattern);
        }
    }
    if (best_a < 0.5 || best_b < 0.5) {
        warn("set-dueling scanner: weak training patterns (gaps ",
             best_a, " / ", best_b, ")");
    }
}

void
DuelingScanner::ensureColdTraining()
{
    if (trainColdA_.empty() || trainColdB_.empty())
        chooseColdTraining();
}

void
DuelingScanner::chooseColdTraining()
{
    // Like chooseTraining(), but the oracle is a SINGLE pattern pass
    // against an initially empty set: the planned scan's probe specs
    // flush the caches every loop iteration, so their in-spec
    // training always runs from cold and needs patterns whose miss
    // gap exists without accumulated state.
    auto pass_misses_cold = [&](const std::string &policy,
                                const std::vector<int> &pattern) {
        Rng sim_rng(135791);
        double misses = 0.0;
        constexpr unsigned kSimReps = 16;
        for (unsigned outer = 0; outer < kSimReps; ++outer) {
            PolicySim sim(cache::makePolicy(policy, assoc_, &sim_rng));
            for (int b : pattern) {
                if (!sim.access(b))
                    misses += 1.0;
            }
        }
        return misses / kSimReps;
    };

    const auto &cfg = runner_.machine().uarch().cacheConfig;
    unsigned slices = runner_.machine().caches().numSlices();
    unsigned min_reuse =
        (2 * std::max(cfg.l1.assoc, cfg.l2.assoc) + slices - 1) / slices;

    auto min_reuse_distance = [](const std::vector<int> &pattern) {
        std::size_t best = ~std::size_t{0};
        for (std::size_t i = 0; i < pattern.size(); ++i) {
            std::set<int> seen;
            for (std::size_t j = i + 1; j < pattern.size(); ++j) {
                if (pattern[j] == pattern[i]) {
                    best = std::min(best, seen.size());
                    break;
                }
                seen.insert(pattern[j]);
            }
        }
        return best;
    };

    Rng rng(606060);
    double best_a = 0.0;
    double best_b = 0.0;
    for (unsigned trial = 0; trial < 400; ++trial) {
        unsigned n_blocks = std::max(assoc_ - 2, min_reuse + 2) +
                            static_cast<unsigned>(rng.nextBelow(8));
        std::vector<int> perm(n_blocks);
        for (unsigned i = 0; i < n_blocks; ++i)
            perm[i] = static_cast<int>(i);
        for (unsigned i = n_blocks; i > 1; --i) {
            std::size_t j = rng.nextBelow(i);
            std::swap(perm[i - 1], perm[j]);
        }
        unsigned rounds = 2 + static_cast<unsigned>(rng.nextBelow(2));
        std::vector<int> pattern;
        for (unsigned r = 0; r < rounds; ++r) {
            for (int b : perm) {
                if (rng.nextBelow(8) == 0)
                    continue;
                pattern.push_back(b);
            }
        }
        if (min_reuse_distance(pattern) < min_reuse)
            continue;
        double ma = pass_misses_cold(policyA_, pattern);
        double mb = pass_misses_cold(policyB_, pattern);
        auto to_seq = [](const std::vector<int> &p) {
            std::vector<SeqAccess> seq;
            for (int b : p)
                seq.push_back({b, false, false});
            return seq;
        };
        if (ma - mb > best_b) {
            best_b = ma - mb;
            trainColdB_ = to_seq(pattern);
        }
        if (mb - ma > best_a) {
            best_a = mb - ma;
            trainColdA_ = to_seq(pattern);
        }
    }
    if (best_a < 0.5 || best_b < 0.5) {
        warn("set-dueling scanner: weak cold training patterns (gaps ",
             best_a, " / ", best_b, ")");
    }
}

std::vector<Addr>
DuelingScanner::trainAddrs(unsigned slice, unsigned set, unsigned count)
{
    // Training state is built with direct physical addresses in a range
    // far away from any benchmark memory.
    constexpr Addr kTrainBase = 0x4'0000'0000ULL;
    auto &caches = runner_.machine().caches();
    Addr stride = static_cast<Addr>(caches.l3Slice(0).numSets()) *
                  kCacheLineSize;
    std::vector<Addr> out;
    Addr candidate = kTrainBase + static_cast<Addr>(set) * kCacheLineSize;
    while (out.size() < count) {
        if (caches.sliceOf(candidate) == slice)
            out.push_back(candidate);
        candidate += stride;
    }
    return out;
}

void
DuelingScanner::train(bool towards_a, unsigned set_lo, unsigned set_hi)
{
    // Replay the training pattern *block-major*: for each pattern
    // position, touch that block in every set of the band and every
    // slice before moving on. Between two uses of the same line this
    // pushes hundreds of distinct lines through its L1/L2 set, so every
    // training access reaches the L3 -- making the per-set policy
    // simulation used by chooseTraining() a faithful oracle. In leader
    // sets of the disfavoured policy the pattern produces surplus
    // misses, driving the PSEL counter until the favoured policy wins.
    const auto &seq = towards_a ? trainSeqA_ : trainSeqB_;
    auto &caches = runner_.machine().caches();
    unsigned slices = caches.numSlices();
    int max_block = 0;
    for (const auto &acc : seq)
        max_block = std::max(max_block, acc.block);

    // Address table: addrs[(set - set_lo) * slices + slice][block].
    std::vector<std::vector<Addr>> addrs;
    addrs.reserve((set_hi - set_lo + 1) * slices);
    for (unsigned set = set_lo; set <= set_hi; ++set) {
        for (unsigned slice = 0; slice < slices; ++slice) {
            addrs.push_back(trainAddrs(
                slice, set, static_cast<unsigned>(max_block) + 1));
        }
    }

    constexpr unsigned kPasses = 2;
    for (unsigned pass = 0; pass < kPasses; ++pass) {
        // The salt sits above the slice-hash mask bits, so it changes
        // the tag without moving the line to another set or slice.
        Addr salt = static_cast<Addr>(pass + 1) << 40;
        for (unsigned rep = 0; rep < kTrainReplays; ++rep) {
            for (const auto &acc : seq) {
                if (acc.wbinvd)
                    continue;
                auto b = static_cast<std::size_t>(acc.block);
                for (const auto &set_addrs : addrs) {
                    caches.access(set_addrs[b] ^ salt,
                                  cache::AccessType::Load);
                }
            }
        }
    }
}

namespace
{

/** mov RBX, [vaddr] -- the training load shape. */
x86::Instruction
trainLoad(Addr vaddr)
{
    x86::MemRef m;
    m.disp = static_cast<std::int64_t>(vaddr);
    x86::Instruction insn;
    insn.opcode = x86::Opcode::MOV;
    insn.operands = {x86::Operand::makeReg(x86::Reg::RBX),
                     x86::Operand::makeMem(m, 64)};
    return insn;
}

/** The follower/fixed-A/fixed-B verdict of one probed set, from its
 *  signature under the two training phases. */
SetRole
classifyRole(double sig_a, double sig_b, double gap, double expected_a,
             double expected_b)
{
    if (std::abs(sig_a - sig_b) > gap / 2)
        return SetRole::Follower;
    double s = 0.5 * (sig_a + sig_b);
    if (gap < 1e-9)
        return SetRole::Unknown;
    bool closer_to_a =
        std::abs(s - expected_a) < std::abs(s - expected_b);
    return closer_to_a ? SetRole::FixedA : SetRole::FixedB;
}

/** Group consecutive dedicated probes into ranges (per slice). */
void
groupDedicatedRanges(DuelingScanResult &result, unsigned stride)
{
    for (unsigned slice = 0; slice < result.roles.size(); ++slice) {
        const auto &probes = result.roles[slice];
        std::size_t i = 0;
        while (i < probes.size()) {
            SetRole role = probes[i].second;
            if (role != SetRole::FixedA && role != SetRole::FixedB) {
                ++i;
                continue;
            }
            std::size_t j = i;
            while (j + 1 < probes.size() &&
                   probes[j + 1].second == role &&
                   probes[j + 1].first - probes[j].first <= stride)
                ++j;
            result.dedicatedRanges.push_back(
                {slice, probes[i].first, probes[j].first, role});
            i = j + 1;
        }
    }
}

} // namespace

DuelingScanResult
DuelingScanner::scan(const DuelingScanOptions &opt)
{
    auto &machine = runner_.machine();
    auto &caches = machine.caches();
    unsigned slices = caches.numSlices();

    CacheSeqOptions seq_opt;
    seq_opt.level = CacheLevel::L3;
    seq_opt.set = opt.setLo;
    seq_opt.cbox = 0;
    seq_opt.repetitions = opt.reps;
    CacheSeq cache_seq(runner_, seq_opt);

    double gap = std::abs(expectedA_ - expectedB_);
    double mid = 0.5 * (expectedA_ + expectedB_);

    // Signatures of every probed (slice, set) under each phase.
    auto probe_phase =
        [&](bool towards_a,
            const std::vector<std::vector<unsigned>> &sets_per_slice) {
            std::vector<std::map<unsigned, double>> sig(slices);
            train(towards_a, opt.setLo, opt.setHi);
            unsigned since_retrain = 0;
            for (unsigned slice = 0; slice < slices; ++slice) {
                for (unsigned set : sets_per_slice[slice]) {
                    if (since_retrain++ >= opt.retrainInterval) {
                        train(towards_a, opt.setLo, opt.setHi);
                        since_retrain = 0;
                    }
                    cache_seq.setTarget(set, slice);
                    sig[slice][set] = cache_seq.run(sig_);
                }
            }
            return sig;
        };

    auto classify = [&](double a, double b) {
        (void)mid;
        return classifyRole(a, b, gap, expectedA_, expectedB_);
    };

    // ---- Coarse pass over the band.
    std::vector<std::vector<unsigned>> coarse_sets(slices);
    for (unsigned slice = 0; slice < slices; ++slice) {
        for (unsigned set = opt.setLo; set <= opt.setHi;
             set += opt.stride)
            coarse_sets[slice].push_back(set);
    }
    auto sig_a = probe_phase(true, coarse_sets);
    auto sig_b = probe_phase(false, coarse_sets);

    DuelingScanResult result;
    result.roles.resize(slices);
    std::vector<std::vector<unsigned>> refine_sets(slices);
    for (unsigned slice = 0; slice < slices; ++slice) {
        for (unsigned set : coarse_sets[slice]) {
            SetRole role = classify(sig_a[slice][set],
                                    sig_b[slice][set]);
            result.roles[slice].push_back({set, role});
            if (role == SetRole::FixedA || role == SetRole::FixedB) {
                // Refine the neighbourhood at stride 1.
                for (unsigned s = set >= opt.stride ? set - opt.stride
                                                    : 0;
                     s <= std::min(opt.setHi, set + opt.stride); ++s) {
                    if (s % opt.stride != opt.setLo % opt.stride)
                        refine_sets[slice].push_back(s);
                }
            }
        }
        std::sort(refine_sets[slice].begin(), refine_sets[slice].end());
        refine_sets[slice].erase(
            std::unique(refine_sets[slice].begin(),
                        refine_sets[slice].end()),
            refine_sets[slice].end());
    }

    // ---- Refinement pass (boundaries at stride 1).
    bool any_refine = false;
    for (const auto &sets : refine_sets)
        any_refine |= !sets.empty();
    if (any_refine) {
        auto ref_a = probe_phase(true, refine_sets);
        auto ref_b = probe_phase(false, refine_sets);
        for (unsigned slice = 0; slice < slices; ++slice) {
            for (unsigned set : refine_sets[slice]) {
                result.roles[slice].push_back(
                    {set,
                     classify(ref_a[slice][set], ref_b[slice][set])});
            }
            std::sort(result.roles[slice].begin(),
                      result.roles[slice].end());
        }
    }

    // ---- Group consecutive dedicated probes into ranges.
    groupDedicatedRanges(result, opt.stride);
    return result;
}

// ------------------------------------------------------- plan/decode --

Addr
DuelingScanner::planAreaSize(const DuelingPlanOptions &opt)
{
    (void)opt;
    ensureColdTraining();
    const auto &caches = runner_.machine().caches();
    Addr stride = static_cast<Addr>(caches.l3Slice(0).numSets()) *
                  kCacheLineSize;
    int max_block = 0;
    for (const auto &seq : {trainColdA_, trainColdB_}) {
        for (const auto &acc : seq)
            max_block = std::max(max_block, acc.block);
    }
    auto blocks = static_cast<Addr>(max_block) + 1;
    // Candidates for one (set, slice) appear every ~slices * stride
    // bytes; double that for slice-hash clustering, plus alignment.
    return stride * (blocks * caches.numSlices() * 2 + 2);
}

DuelingPlan
DuelingScanner::plan(const DuelingPlanOptions &opt)
{
    auto &machine = runner_.machine();
    auto &caches = machine.caches();
    unsigned slices = caches.numSlices();

    ensureColdTraining();

    DuelingPlan plan;
    plan.options = opt;
    plan.policyA = policyA_;
    plan.policyB = policyB_;
    plan.expectedA = expectedA_;
    plan.expectedB = expectedB_;

    // The CacheSeq reserves its (large) R14 area first; the training
    // lines are then laid out in the same area, so one machineSetup
    // reservation reproduces everything.
    CacheSeqOptions seq_opt;
    seq_opt.level = CacheLevel::L3;
    seq_opt.set = opt.setLo;
    seq_opt.cbox = 0;
    seq_opt.repetitions = opt.reps;
    CacheSeq cache_seq(runner_, seq_opt);
    if (runner_.r14AreaSize() < planAreaSize(opt))
        fatal("set-dueling plan: R14 area too small for the training "
              "lines (have ", runner_.r14AreaSize(), ", need ",
              planAreaSize(opt), ")");
    plan.r14Size = runner_.r14AreaSize();

    // The probed set grid; the in-spec training replays the pattern
    // over exactly this grid (block-major across sets and slices, the
    // same interleaving the serial train() uses, so reuses still
    // reach the L3 through the slice interleaving).
    std::vector<unsigned> grid;
    for (unsigned set = opt.setLo; set <= opt.setHi; set += opt.stride)
        grid.push_back(set);

    int max_block = 0;
    for (const auto &seq : {trainColdA_, trainColdB_}) {
        for (const auto &acc : seq)
            max_block = std::max(max_block, acc.block);
    }
    auto blocks = static_cast<unsigned>(max_block) + 1;

    // Training lines: lines[(set index in grid) * slices + slice][b].
    Addr area_virt = runner_.r14Area();
    Addr area_phys = machine.memory().translate(area_virt);
    Addr stride = static_cast<Addr>(caches.l3Slice(0).numSets()) *
                  kCacheLineSize;
    Addr origin = alignUp(area_phys, stride);
    std::vector<std::vector<Addr>> lines;
    lines.reserve(grid.size() * slices);
    for (unsigned set : grid) {
        for (unsigned slice = 0; slice < slices; ++slice) {
            std::vector<Addr> per_block;
            Addr candidate =
                origin + static_cast<Addr>(set) * kCacheLineSize;
            while (per_block.size() < blocks) {
                if (candidate + kCacheLineSize >
                    area_phys + runner_.r14AreaSize())
                    fatal("set-dueling plan ran out of training lines");
                if (caches.sliceOf(candidate) == slice)
                    per_block.push_back(area_virt +
                                        (candidate - area_phys));
                candidate += stride;
            }
            lines.push_back(std::move(per_block));
        }
    }

    // One training replay per phase, block-major over the grid.
    auto train_body = [&](bool towards_a) {
        const auto &seq = towards_a ? trainColdA_ : trainColdB_;
        std::vector<x86::Instruction> body;
        body.reserve(seq.size() * lines.size());
        for (const auto &acc : seq) {
            if (acc.wbinvd)
                continue;
            auto b = static_cast<std::size_t>(acc.block);
            for (const auto &set_lines : lines)
                body.push_back(trainLoad(set_lines[b]));
        }
        return body;
    };
    std::vector<x86::Instruction> train_a = train_body(true);
    std::vector<x86::Instruction> train_b = train_body(false);

    // One self-contained spec per (phase, slice, set): the loop
    // replays [train (paused), probe signature (measured)] -- the
    // warm-up execution saturates the PSEL duel, the measured
    // execution averages the signature over trainReplays probes.
    for (bool phase_a : {true, false}) {
        for (unsigned slice = 0; slice < slices; ++slice) {
            for (unsigned set : grid) {
                cache_seq.setTarget(set, slice);
                core::BenchmarkSpec spec = cache_seq.planSeqWithPrelude(
                    phase_a ? train_a : train_b, sig_);
                spec.loopCount = std::max(1u, opt.trainReplays);
                spec.warmUpCount = 1;
                plan.probes.push_back({slice, set, phase_a});
                plan.specs.push_back(std::move(spec));
            }
        }
    }
    return plan;
}

DuelingScanResult
DuelingScanner::decode(const DuelingPlan &plan,
                       const std::vector<RunOutcome> &outcomes)
{
    NB_ASSERT(outcomes.size() == plan.probes.size(),
              "dueling decode needs one outcome per probe");
    unsigned slices = 0;
    for (const auto &probe : plan.probes)
        slices = std::max(slices, probe.slice + 1);

    // Signatures of every probed (slice, set) under each phase;
    // failed probes simply stay absent.
    std::vector<std::map<unsigned, double>> sig_a(slices);
    std::vector<std::map<unsigned, double>> sig_b(slices);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].ok())
            continue;
        const DuelingProbe &probe = plan.probes[i];
        double hits = CacheSeq::decodeHitMiss(CacheLevel::L3,
                                              outcomes[i].result())
                          .hits;
        (probe.phaseA ? sig_a : sig_b)[probe.slice][probe.set] = hits;
    }

    double gap = std::abs(plan.expectedA - plan.expectedB);
    DuelingScanResult result;
    result.roles.resize(slices);
    for (unsigned slice = 0; slice < slices; ++slice) {
        for (const auto &[set, a] : sig_a[slice]) {
            auto it = sig_b[slice].find(set);
            SetRole role =
                it == sig_b[slice].end()
                    ? SetRole::Unknown
                    : classifyRole(a, it->second, gap, plan.expectedA,
                                   plan.expectedB);
            result.roles[slice].push_back({set, role});
        }
        // Phase-B-only probes (phase A failed) classify as Unknown.
        for (const auto &[set, b] : sig_b[slice]) {
            (void)b;
            if (!sig_a[slice].count(set))
                result.roles[slice].push_back({set, SetRole::Unknown});
        }
        std::sort(result.roles[slice].begin(),
                  result.roles[slice].end());
    }
    groupDedicatedRanges(result, plan.options.stride);
    return result;
}

} // namespace nb::cachetools
