/**
 * @file
 * Instruction-characterization implementation.
 */

#include "characterize.hh"

#include <iomanip>
#include <sstream>
#include <unordered_map>

#include "common/logging.hh"
#include "core/campaign.hh"
#include "uarch/timing.hh"
#include "x86/assembler.hh"

namespace nb::uops
{

using x86::Instruction;
using x86::MemRef;
using x86::Opcode;
using x86::Operand;
using x86::OperandKind;
using x86::Reg;

namespace
{

Instruction
ins(Opcode op, std::vector<Operand> operands = {})
{
    Instruction i;
    i.opcode = op;
    i.operands = std::move(operands);
    return i;
}

Operand
reg(Reg r, unsigned w = 64)
{
    return Operand::makeReg(r, w);
}

Operand
imm(std::int64_t v)
{
    return Operand::makeImm(v);
}

Operand
memAt(Reg base, std::int64_t disp = 0, unsigned w = 64)
{
    MemRef m;
    m.base = base;
    m.disp = disp;
    return Operand::makeMem(m, w);
}

/** Destination-register pool for throughput benchmarks. */
const std::vector<Reg> kGprPool = {Reg::RAX, Reg::RBX, Reg::RSI,
                                   Reg::RDI, Reg::R8,  Reg::R9,
                                   Reg::R10, Reg::R11, Reg::R12,
                                   Reg::R13};
const std::vector<Reg> kVecPool = {
    Reg::XMM1, Reg::XMM2, Reg::XMM3, Reg::XMM4, Reg::XMM5,
    Reg::XMM6, Reg::XMM7, Reg::XMM8, Reg::XMM9, Reg::XMM10};

/** Independent instances per throughput benchmark iteration. */
constexpr unsigned kTputCopies = 10;

bool
isVecInsn(const Instruction &insn)
{
    for (const auto &op : insn.operands) {
        if (op.kind == OperandKind::Register && x86::isVec(op.reg))
            return true;
    }
    return false;
}

/** Cycles line of a result: the fixed counter, or APERF (§II-A1). */
std::optional<double>
cyclesOf(const core::BenchmarkResult &result, bool has_fixed)
{
    return result.find(has_fixed ? "Core cycles" : "APERF");
}

} // namespace

std::string
VariantResult::portString() const
{
    std::ostringstream os;
    bool first = true;
    for (const auto &[port, usage] : portUsage) {
        if (usage < 0.05)
            continue;
        if (!first)
            os << " ";
        os << "p" << port << ":" << std::fixed << std::setprecision(2)
           << usage;
        first = false;
    }
    return os.str();
}

std::string
Characterizer::tableHeader()
{
    std::ostringstream os;
    os << std::left << std::setw(22) << "Instruction" << std::right
       << std::setw(8) << "Lat" << std::setw(8) << "Tput" << std::setw(7)
       << "Uops"
       << "  Ports";
    return os.str();
}

std::string
VariantResult::tableRow() const
{
    std::ostringstream os;
    os << std::left << std::setw(22) << asmText << std::right;
    if (requiresKernelMode) {
        os << "  (requires kernel mode)";
        return os.str();
    }
    if (!ok()) {
        os << "  (error: " << error << ")";
        return os.str();
    }
    if (latency) {
        os << std::setw(8) << std::fixed << std::setprecision(2)
           << *latency;
    } else {
        os << std::setw(8) << "-";
    }
    os << std::setw(8) << std::fixed << std::setprecision(2)
       << throughput;
    os << std::setw(7) << std::fixed << std::setprecision(2) << uops;
    os << "  " << portString();
    return os.str();
}

Characterizer::Characterizer(core::Runner &runner) : runner_(runner) {}

Characterizer::Characterizer(Session &session)
    : Characterizer(session.runner())
{
}

std::optional<Characterizer::ChainSpec>
Characterizer::buildLatencyChain(const Instruction &insn) const
{
    ChainSpec spec;
    const auto &info = insn.info();
    using IC = x86::InstrClass;

    switch (info.cls) {
      case IC::Branch:
      case IC::CallRet:
      case IC::Fence:
      case IC::Serialize:
      case IC::System:
      case IC::Nop:
      case IC::Magic:
      case IC::CounterRead:
        return std::nullopt;
      default:
        break;
    }

    // Loads: pointer chase through R14 (§III-A example). Pure moves
    // chase the stored pointer; read-modify-write forms instead apply
    // the operation's identity element (0 for ADD/SUB/OR/XOR/ADC/SBB,
    // all-ones for AND) so the pointer register survives the chain.
    if (insn.isLoad() && insn.memOperand()) {
        if (insn.operands.empty() ||
            insn.operands[0].kind != OperandKind::Register ||
            insn.operands[0].widthBits != 64 ||
            !x86::isGpr(insn.operands[0].reg))
            return std::nullopt; // no 64-bit pointer to chase through
        bool pure_move = insn.opcode == Opcode::MOV;
        std::int64_t identity;
        switch (insn.opcode) {
          case Opcode::MOV:
            identity = 0;
            break;
          case Opcode::ADD:
          case Opcode::ADC:
          case Opcode::SUB:
          case Opcode::SBB:
          case Opcode::OR:
          case Opcode::XOR:
            identity = 0;
            break;
          case Opcode::AND:
            identity = -1;
            break;
          default:
            return std::nullopt; // no register result to chain (CMP...)
        }
        Instruction chase = insn;
        chase.operands[0] = reg(Reg::R14);
        for (auto &op : chase.operands) {
            if (op.kind == OperandKind::Memory) {
                op.mem.base = Reg::R14;
                op.mem.index = Reg::Invalid;
                op.mem.disp = 0;
            }
        }
        spec.body = {chase};
        if (pure_move) {
            spec.init = {
                ins(Opcode::MOV, {memAt(Reg::R14), reg(Reg::R14)})};
        } else {
            spec.init = {
                ins(Opcode::MOV, {reg(Reg::RBX), imm(identity)}),
                ins(Opcode::MOV, {memAt(Reg::R14), reg(Reg::RBX)}),
                // Clear CF so ADC/SBB chains do not drift the pointer.
                ins(Opcode::TEST, {reg(Reg::RBX), reg(Reg::RBX)})};
        }
        return spec;
    }
    if (insn.isStore())
        return std::nullopt;

    // CMP/TEST/BT write only flags: tying the operands to one
    // register leaves no result to thread back into the next copy,
    // so the "chain" degenerates to independent instructions and
    // measures throughput. Decline, like the memory forms above.
    if (insn.opcode == Opcode::CMP || insn.opcode == Opcode::TEST ||
        insn.opcode == Opcode::BT)
        return std::nullopt;

    // MUL/DIV chain through the implicit RAX/RDX operands.
    if (insn.opcode == Opcode::MUL || insn.opcode == Opcode::DIV ||
        insn.opcode == Opcode::IDIV ||
        (insn.opcode == Opcode::IMUL && insn.operands.size() == 1)) {
        Instruction op = insn;
        op.operands = {reg(Reg::RBX)};
        spec.body = {op};
        spec.init = {ins(Opcode::MOV, {reg(Reg::RBX), imm(3)}),
                     ins(Opcode::MOV, {reg(Reg::RAX), imm(1000)}),
                     ins(Opcode::XOR, {reg(Reg::RDX), reg(Reg::RDX)})};
        return spec;
    }

    // SETcc: chain through the flags (SETZ -> TEST -> SETZ ...).
    if (info.cls == IC::SetCC) {
        Instruction set = insn;
        set.operands = {reg(Reg::RAX, 8)};
        spec.body = {set, ins(Opcode::TEST, {reg(Reg::RAX, 8),
                                             reg(Reg::RAX, 8)})};
        spec.overheadCycles = 1.0; // the TEST link
        return spec;
    }

    // SUB/XOR/PXOR with identical registers are dependency-breaking
    // zero idioms; chain through a register pair with a MOV link
    // instead. Only relevant for two-register forms.
    unsigned reg_count = 0;
    for (const auto &op : insn.operands)
        reg_count += op.kind == OperandKind::Register ? 1 : 0;
    bool zero_idiom = (insn.opcode == Opcode::SUB ||
                       insn.opcode == Opcode::XOR ||
                       insn.opcode == Opcode::PXOR) &&
                      reg_count >= 2;
    // BSF/BSR leave the destination unwritten for zero inputs; keep
    // the chained value non-zero with an OR link.
    bool bit_scan = insn.opcode == Opcode::BSF ||
                    insn.opcode == Opcode::BSR;

    // Generic register chain: tie the destination and a register
    // source to the same register.
    if (insn.operands.empty() ||
        insn.operands[0].kind != OperandKind::Register)
        return std::nullopt;
    // A plain move from an immediate has no input to thread the chain
    // through -- each copy is independent by design.
    if (insn.opcode == Opcode::MOV && insn.operands.size() == 2 &&
        insn.operands[1].kind == OperandKind::Immediate)
        return std::nullopt;
    bool vec = x86::isVec(insn.operands[0].reg);
    Reg chain_reg = vec ? Reg::XMM1 : Reg::RAX;
    Reg alt_reg = vec ? Reg::XMM2 : Reg::RBX;
    Instruction chained = insn;
    bool first = true;
    for (auto &op : chained.operands) {
        if (op.kind != OperandKind::Register)
            continue;
        if (zero_idiom && !first) {
            op.reg = alt_reg;
        } else {
            op.reg = chain_reg;
        }
        first = false;
    }
    spec.body = {chained};
    if (zero_idiom) {
        // Feed the result back through the second register.
        spec.body.push_back(
            vec ? ins(Opcode::MOVAPS, {Operand::makeReg(alt_reg, 128),
                                       Operand::makeReg(chain_reg, 128)})
                : ins(Opcode::MOV, {reg(alt_reg), reg(chain_reg)}));
        spec.overheadCycles = 1.0;
    } else if (bit_scan) {
        spec.body.push_back(ins(Opcode::OR, {reg(chain_reg), imm(2)}));
        spec.overheadCycles = 1.0;
    }
    if (!vec) {
        spec.init = {ins(Opcode::MOV, {reg(Reg::RAX), imm(2)}),
                     ins(Opcode::MOV, {reg(Reg::RBX), imm(2)})};
    }
    return spec;
}

Characterizer::ChainSpec
Characterizer::buildThroughputBench(const Instruction &insn,
                                    unsigned copies) const
{
    ChainSpec spec;
    const auto &pool = isVecInsn(insn) ? kVecPool : kGprPool;
    Reg shared_src = isVecInsn(insn) ? Reg::XMM0 : Reg::RBP;

    // DIV needs explicit dependency breaking (uops.info does the same).
    if (insn.opcode == Opcode::DIV || insn.opcode == Opcode::IDIV ||
        insn.opcode == Opcode::MUL ||
        (insn.opcode == Opcode::IMUL && insn.operands.size() == 1)) {
        for (unsigned c = 0; c < copies; ++c) {
            unsigned w = insn.operands.empty()
                             ? 64
                             : insn.operands[0].widthBits;
            spec.body.push_back(
                ins(Opcode::MOV, {reg(Reg::RAX), imm(1000)}));
            spec.body.push_back(
                ins(Opcode::XOR, {reg(Reg::RDX), reg(Reg::RDX)}));
            Instruction op = insn;
            op.operands = {reg(Reg::RBX, w)};
            spec.body.push_back(op);
        }
        spec.init = {ins(Opcode::MOV, {reg(Reg::RBX), imm(3)})};
        return spec;
    }

    // Counter-reading instructions take the counter index in RCX; point
    // them at a harmless source (APERF / fixed counter 0).
    if (insn.opcode == Opcode::RDMSR) {
        spec.init.push_back(
            ins(Opcode::MOV, {reg(Reg::RCX), imm(0xE8)})); // APERF
    } else if (insn.opcode == Opcode::RDPMC) {
        spec.init.push_back(ins(
            Opcode::MOV,
            {reg(Reg::RCX), imm(static_cast<std::int64_t>(
                                sim::kRdpmcFixedBase))}));
    }

    for (unsigned c = 0; c < copies; ++c) {
        Instruction copy = insn;
        bool first_reg = true;
        for (auto &op : copy.operands) {
            if (op.kind == OperandKind::Register) {
                if (first_reg) {
                    op.reg = pool[c % pool.size()];
                    first_reg = false;
                } else {
                    op.reg = shared_src;
                }
            } else if (op.kind == OperandKind::Memory &&
                       op.mem.base != Reg::Invalid) {
                op.mem.base = Reg::R14;
                op.mem.disp = static_cast<std::int64_t>(c) * 64;
            }
        }
        spec.body.push_back(copy);
    }
    spec.linksPerIteration = copies;
    return spec;
}

CharacterizationPlan
Characterizer::plan(const std::vector<Instruction> &variants) const
{
    CharacterizationPlan out;
    out.catalog = variants;
    out.rows.resize(variants.size());
    out.hasFixedCounters = runner_.machine().pmu().hasFixed();
    out.numPorts =
        std::min(runner_.machine().uarch().ports().numPorts, 8u);

    // Port-dispatch and µop events, shared by every throughput spec.
    core::CounterConfig tput_config;
    for (unsigned p = 0; p < out.numPorts; ++p) {
        auto info = sim::findEvent("UOPS_DISPATCHED_PORT.PORT_" +
                                   std::to_string(p));
        NB_ASSERT(info.has_value(), "port event missing");
        tput_config.add({info->code, info->id, info->name});
    }
    auto uops_info = sim::findEvent(std::string("UOPS_EXECUTED.THREAD"));
    tput_config.add({uops_info->code, uops_info->id, uops_info->name});

    for (std::size_t v = 0; v < variants.size(); ++v) {
        const Instruction &insn = variants[v];
        VariantResult &row = out.rows[v];
        row.signature = insn.formSignature();
        row.asmText = insn.toString();

        if (insn.info().privileged &&
            runner_.mode() != core::Mode::Kernel) {
            // The key nanoBench capability (§III-D): only the
            // kernel-space version can benchmark these at all.
            row.requiresKernelMode = true;
            continue;
        }

        // ---------------- latency ----------------
        if (auto chain = buildLatencyChain(insn)) {
            PlannedSpec planned;
            planned.spec.code = chain->body;
            planned.spec.init = chain->init;
            planned.spec.unrollCount = 50;
            planned.spec.nMeasurements = 5;
            planned.spec.warmUpCount = 2;
            planned.spec.agg = Aggregate::Median;
            planned.spec.aperfMperf = !out.hasFixedCounters;
            planned.role = PlannedSpec::Role::Latency;
            planned.variant = v;
            planned.overheadCycles = chain->overheadCycles;
            planned.linksPerIteration = chain->linksPerIteration;
            out.specs.push_back(std::move(planned));
        }

        // ---------------- throughput and ports ----------------
        auto tput = buildThroughputBench(insn, kTputCopies);
        PlannedSpec planned;
        planned.spec.code = tput.body;
        planned.spec.init = tput.init;
        planned.spec.unrollCount = 20;
        planned.spec.nMeasurements = 5;
        planned.spec.warmUpCount = 3;
        planned.spec.agg = Aggregate::Median;
        planned.spec.aperfMperf = !out.hasFixedCounters;
        planned.spec.config = tput_config;
        planned.variant = v;
        planned.copies = kTputCopies;
        // DIV-style benchmarks carry 2 dependency-breaking extra
        // instructions per copy; decode() subtracts their µops/ports.
        planned.depBroken = tput.body.size() == 3 * kTputCopies;

        // The throughput and port decoders read the SAME benchmark --
        // emit the spec twice with different roles and let campaign
        // dedup execute it once.
        planned.role = PlannedSpec::Role::Throughput;
        out.specs.push_back(planned);
        planned.role = PlannedSpec::Role::Ports;
        out.specs.push_back(std::move(planned));
    }
    return out;
}

CharacterizationPlan
Characterizer::plan() const
{
    return plan(variantCatalog());
}

std::vector<core::BenchmarkSpec>
Characterizer::planSpecs(const CharacterizationPlan &plan)
{
    std::vector<core::BenchmarkSpec> specs;
    specs.reserve(plan.specs.size());
    for (const auto &planned : plan.specs)
        specs.push_back(planned.spec);
    return specs;
}

std::vector<VariantResult>
Characterizer::decode(const CharacterizationPlan &plan,
                      const std::vector<RunOutcome> &outcomes)
{
    NB_ASSERT(outcomes.size() == plan.specs.size(),
              "decode: got ", outcomes.size(), " outcomes for ",
              plan.specs.size(), " planned specs");

    std::vector<VariantResult> rows = plan.rows;
    auto mark_error = [](VariantResult &row, const RunError &error) {
        if (row.ok()) {
            row.error = std::string(runErrorCodeName(error.code)) +
                        ": " + error.message;
        }
    };

    for (std::size_t i = 0; i < plan.specs.size(); ++i) {
        const PlannedSpec &planned = plan.specs[i];
        VariantResult &row = rows[planned.variant];
        const RunOutcome &outcome = outcomes[i];

        if (planned.role == PlannedSpec::Role::Latency) {
            // A failed chain only loses the latency column.
            if (!outcome.ok())
                continue;
            auto cycles = cyclesOf(outcome.result(),
                                   plan.hasFixedCounters);
            if (cycles) {
                row.latency = (*cycles - planned.overheadCycles) /
                              planned.linksPerIteration;
            }
            continue;
        }

        if (!outcome.ok()) {
            mark_error(row, outcome.error());
            continue;
        }
        const core::BenchmarkResult &result = outcome.result();
        double denom = planned.copies;

        if (planned.role == PlannedSpec::Role::Throughput) {
            auto cycles = cyclesOf(result, plan.hasFixedCounters);
            auto uops = result.find("UOPS_EXECUTED.THREAD");
            if (!cycles || !uops) {
                mark_error(row,
                           {RunError::Code::ExecutionError,
                            "cycle/µop counters missing from result"});
                continue;
            }
            row.throughput = *cycles / denom;
            row.uops = *uops / denom - (planned.depBroken ? 2.0 : 0.0);
        } else { // Role::Ports
            for (unsigned p = 0; p < plan.numPorts; ++p) {
                auto usage =
                    result.find("UOPS_DISPATCHED_PORT.PORT_" +
                                std::to_string(p));
                if (!usage)
                    continue;
                double v = *usage / denom;
                if (v > 0.02)
                    row.portUsage[p] = v;
            }
        }
    }
    return rows;
}

std::vector<RunOutcome>
Characterizer::runPlan(const CharacterizationPlan &plan)
{
    // Serial equivalent of the campaign path, including its dedup:
    // the throughput/port decoder pair shares one spec per variant,
    // which must execute once here too.
    std::unordered_map<std::string, std::size_t> seen;
    std::vector<RunOutcome> outcomes;
    outcomes.reserve(plan.specs.size());
    for (const auto &planned : plan.specs) {
        auto [it, inserted] = seen.emplace(
            specCanonicalKey(planned.spec), outcomes.size());
        if (inserted)
            outcomes.push_back(runSpecOnRunner(runner_, planned.spec));
        else
            outcomes.push_back(outcomes[it->second]);
    }
    return outcomes;
}

VariantResult
Characterizer::characterize(const Instruction &insn)
{
    auto one = plan(std::vector<Instruction>{insn});
    return decode(one, runPlan(one))[0];
}

std::vector<Instruction>
Characterizer::variantCatalog() const
{
    const auto &ua = runner_.machine().uarch();
    std::vector<Instruction> catalog;

    auto add = [&](Instruction insn) {
        if (uarch::supportsOpcode(ua.family, insn.opcode))
            catalog.push_back(std::move(insn));
    };

    // Integer ALU, common forms.
    for (Opcode op : {Opcode::ADD, Opcode::ADC, Opcode::SUB, Opcode::SBB,
                      Opcode::AND, Opcode::OR, Opcode::XOR, Opcode::CMP,
                      Opcode::TEST}) {
        add(ins(op, {reg(Reg::RAX), reg(Reg::RBX)}));
        add(ins(op, {reg(Reg::RAX), imm(42)}));
        add(ins(op, {reg(Reg::RAX, 32), reg(Reg::RBX, 32)}));
        add(ins(op, {reg(Reg::RAX), memAt(Reg::R14)}));
    }
    add(ins(Opcode::ADD, {memAt(Reg::R14), reg(Reg::RAX)}));

    // Moves and address generation.
    add(ins(Opcode::MOV, {reg(Reg::RAX), reg(Reg::RBX)}));
    add(ins(Opcode::MOV, {reg(Reg::RAX), imm(42)}));
    add(ins(Opcode::MOV, {reg(Reg::RAX), memAt(Reg::R14)}));
    add(ins(Opcode::MOV, {memAt(Reg::R14), reg(Reg::RAX)}));
    add(ins(Opcode::MOVZX, {reg(Reg::RAX), reg(Reg::RBX, 8)}));
    add(ins(Opcode::MOVSX, {reg(Reg::RAX), reg(Reg::RBX, 8)}));
    add(ins(Opcode::MOVNTI, {memAt(Reg::R14), reg(Reg::RAX)}));
    {
        MemRef fast;
        fast.base = Reg::RAX;
        fast.disp = 8;
        add(ins(Opcode::LEA, {reg(Reg::RAX), Operand::makeMem(fast)}));
        MemRef slow;
        slow.base = Reg::RAX;
        slow.index = Reg::RBX;
        slow.scale = 4;
        slow.disp = 8;
        add(ins(Opcode::LEA, {reg(Reg::RAX), Operand::makeMem(slow)}));
    }
    add(ins(Opcode::XCHG, {reg(Reg::RAX), reg(Reg::RBX)}));
    add(ins(Opcode::BSWAP, {reg(Reg::RAX)}));
    add(ins(Opcode::PUSH, {reg(Reg::RAX)}));
    add(ins(Opcode::POP, {reg(Reg::RAX)}));
    for (Opcode op : {Opcode::CMOVZ, Opcode::CMOVNZ, Opcode::CMOVC,
                      Opcode::CMOVNC})
        add(ins(op, {reg(Reg::RAX), reg(Reg::RBX)}));

    // Unary ALU.
    for (Opcode op :
         {Opcode::INC, Opcode::DEC, Opcode::NEG, Opcode::NOT})
        add(ins(op, {reg(Reg::RAX)}));

    // Multiply / divide.
    add(ins(Opcode::IMUL, {reg(Reg::RAX), reg(Reg::RBX)}));
    add(ins(Opcode::IMUL, {reg(Reg::RAX), reg(Reg::RBX), imm(19)}));
    add(ins(Opcode::IMUL, {reg(Reg::RBX)}));
    add(ins(Opcode::MUL, {reg(Reg::RBX)}));
    add(ins(Opcode::DIV, {reg(Reg::RBX)}));
    add(ins(Opcode::DIV, {reg(Reg::RBX, 32)}));
    add(ins(Opcode::IDIV, {reg(Reg::RBX)}));

    // Shifts and bit manipulation.
    for (Opcode op : {Opcode::SHL, Opcode::SHR, Opcode::SAR, Opcode::ROL,
                      Opcode::ROR})
        add(ins(op, {reg(Reg::RAX), imm(7)}));
    add(ins(Opcode::SHL, {reg(Reg::RAX), reg(Reg::RCX, 8)}));
    for (Opcode op : {Opcode::POPCNT, Opcode::LZCNT, Opcode::TZCNT,
                      Opcode::BSF, Opcode::BSR})
        add(ins(op, {reg(Reg::RAX), reg(Reg::RBX)}));
    for (Opcode op : {Opcode::BT, Opcode::BTS, Opcode::BTR})
        add(ins(op, {reg(Reg::RAX), reg(Reg::RBX)}));
    add(ins(Opcode::SETZ, {reg(Reg::RAX, 8)}));
    add(ins(Opcode::SETNZ, {reg(Reg::RAX, 8)}));

    // Branches (fall-through conditional: body-internal target).
    {
        Instruction jz = ins(Opcode::JZ);
        jz.targetIdx = 1; // next instruction within the body copy
        add(jz);
    }

    // SSE/AVX.
    add(ins(Opcode::MOVAPS, {reg(Reg::XMM1, 128), reg(Reg::XMM2, 128)}));
    add(ins(Opcode::MOVAPS,
            {reg(Reg::XMM1, 128), memAt(Reg::R14, 0, 128)}));
    add(ins(Opcode::MOVAPS,
            {memAt(Reg::R14, 0, 128), reg(Reg::XMM1, 128)}));
    add(ins(Opcode::PXOR, {reg(Reg::XMM1, 128), reg(Reg::XMM2, 128)}));
    add(ins(Opcode::PADDD, {reg(Reg::XMM1, 128), reg(Reg::XMM2, 128)}));
    for (Opcode op : {Opcode::ADDPS, Opcode::ADDPD, Opcode::MULPS,
                      Opcode::MULPD, Opcode::DIVPS, Opcode::DIVPD})
        add(ins(op, {reg(Reg::XMM1, 128), reg(Reg::XMM2, 128)}));
    add(ins(Opcode::VADDPS, {reg(Reg::XMM1, 256), reg(Reg::XMM2, 256),
                             reg(Reg::XMM3, 256)}));
    add(ins(Opcode::VMULPS, {reg(Reg::XMM1, 256), reg(Reg::XMM2, 256),
                             reg(Reg::XMM3, 256)}));
    add(ins(Opcode::VFMADD231PS, {reg(Reg::XMM1, 256),
                                  reg(Reg::XMM2, 256),
                                  reg(Reg::XMM3, 256)}));

    // Fences, serialization, counters, system (privileged included:
    // the point of the kernel-space version, §V).
    add(ins(Opcode::NOP));
    add(ins(Opcode::PAUSE));
    add(ins(Opcode::LFENCE));
    add(ins(Opcode::MFENCE));
    add(ins(Opcode::SFENCE));
    add(ins(Opcode::CPUID));
    add(ins(Opcode::RDTSC));
    add(ins(Opcode::RDPMC));
    add(ins(Opcode::RDMSR));
    add(ins(Opcode::CLFLUSH, {memAt(Reg::R14)}));
    add(ins(Opcode::PREFETCHT0, {memAt(Reg::R14)}));
    add(ins(Opcode::PREFETCHNTA, {memAt(Reg::R14)}));
    add(ins(Opcode::WBINVD));
    add(ins(Opcode::CLI));
    add(ins(Opcode::STI));

    return catalog;
}

std::vector<VariantResult>
Characterizer::characterizeAll()
{
    auto whole = plan();
    return decode(whole, runPlan(whole));
}

} // namespace nb::uops
