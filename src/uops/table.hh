/**
 * @file
 * Catalog-wide instruction tables (paper §V, uops.info-style).
 *
 * An InstructionTable is the result of characterizing a whole variant
 * catalog on one microarchitecture: one VariantResult row per variant,
 * in catalog order, plus the metadata identifying where the numbers
 * came from. Tables round-trip through JSON and CSV (so they can be
 * archived as golden references and post-processed externally) and can
 * be diffed against each other -- two microarchitectures, or a fresh
 * run against a committed golden table.
 *
 * buildInstructionTable() is the campaign-backed builder: it plans the
 * full catalog (uops/characterize.hh), ships the plan through
 * Engine::runCampaign() -- the throughput/port decoder pairs share one
 * spec per variant, so campaign dedup executes each once -- and
 * decodes the outcomes back into rows. Per-spec failures degrade the
 * affected row instead of aborting the catalog.
 */

#ifndef NB_UOPS_TABLE_HH
#define NB_UOPS_TABLE_HH

#include <functional>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "uops/characterize.hh"

namespace nb::uops
{

/** A full-catalog characterization result for one microarchitecture. */
struct InstructionTable
{
    /** Microarchitecture the table was measured on (e.g. "Skylake"). */
    std::string uarch;
    /** Runner mode: "kernel" or "user" (§III-D). */
    std::string mode;
    /** One row per catalog variant, in catalog order. */
    std::vector<VariantResult> rows;

    /** Row by signature; nullptr if absent. */
    const VariantResult *find(const std::string &signature) const;

    /** Rows with a non-empty error (failed benchmarks). */
    std::size_t errorCount() const;

    /** Human-readable table (header + one tableRow() per variant). */
    std::string format() const;

    /** Serialize to a self-contained JSON object. */
    std::string toJson() const;

    /** Serialize to CSV (one row per variant; metadata in '#' header
     *  comments, the BenchmarkResult dialect). */
    std::string toCsv() const;

    /** Parse a table back from toJson() output.
     *  @throws nb::FatalError on malformed input. */
    static InstructionTable fromJson(const std::string &text);

    /** Parse a table back from toCsv() output.
     *  @throws nb::FatalError on malformed input. */
    static InstructionTable fromCsv(const std::string &text);

    /** Load a table from a file, auto-detecting JSON vs CSV.
     *  @throws nb::FatalError on unreadable or malformed input. */
    static InstructionTable load(const std::string &path);
};

/** One changed/added/removed row between two tables. */
struct TableDiffEntry
{
    enum class Kind : std::uint8_t
    {
        /** Signature only in the second table. */
        Added,
        /** Signature only in the first table. */
        Removed,
        /** Latency appeared/disappeared or moved beyond tolerance. */
        LatencyChanged,
        /** Throughput moved beyond tolerance. */
        ThroughputChanged,
        /** µop count moved beyond tolerance. */
        UopsChanged,
        /** Port set or per-port usage moved beyond tolerance. */
        PortsChanged,
        /** Kernel-mode requirement or error status flipped. */
        StatusChanged,
    };

    Kind kind = Kind::Added;
    std::string signature;
    /** Human-readable "what changed", e.g. "latency 1.00 -> 3.00". */
    std::string detail;
};

/** The differences between two tables. */
struct TableDiff
{
    std::vector<TableDiffEntry> entries;

    bool empty() const { return entries.empty(); }

    /** One line per entry ("SIG: latency 1.00 -> 3.00"). */
    std::string format() const;
};

/**
 * Compare two tables row-by-row (matched by signature, so catalogs of
 * different sizes -- e.g. two microarchitectures -- diff cleanly).
 * Numeric fields count as changed when they differ by more than
 * @p tolerance cycles.
 */
TableDiff diffTables(const InstructionTable &before,
                     const InstructionTable &after,
                     double tolerance = 0.05);

/** Options for buildInstructionTable(). */
struct TableBuildOptions
{
    /** Machine selection (uarch, mode, seed) for the campaign. */
    SessionOptions session;
    /** Campaign worker threads (0 = one per hardware thread). */
    unsigned jobs = 1;
    /** Share outcomes of identical specs (the throughput/port pairs
     *  at minimum; leave on unless measuring dedup itself). */
    bool dedup = true;
    /** Run every spec on a freshly constructed machine, making the
     *  table independent of the worker layout -- -jobs N output is
     *  bit-identical to -jobs 1 (the golden-table CI gate relies on
     *  this). Costs one machine construction per unique spec
     *  (CampaignOptions::freshMachinePerSpec). */
    bool freshMachinePerSpec = false;
    /** Campaign progress callback (settled specs / total specs). */
    std::function<void(std::size_t done, std::size_t total)> progress;
    /** Span tracer forwarded to the campaign (not owned; may be
     *  null). See CampaignOptions::trace. */
    obs::Tracer *trace = nullptr;
    /** Attach per-worker execution observers (never perturbs
     *  outcomes). See CampaignOptions::observe. */
    bool observe = false;
};

/** Everything buildInstructionTable() produces. */
struct TableBuild
{
    InstructionTable table;
    /** The underlying campaign's execution report (wall time,
     *  per-worker counts, dedup hits, error histogram). */
    CampaignReport report;
};

/**
 * Characterize the full variant catalog through Engine::runCampaign()
 * and assemble the rows into a table. @throws nb::FatalError for an
 * unknown uarch (before any work starts); per-spec failures are
 * folded into the affected rows instead.
 */
TableBuild buildInstructionTable(Engine &engine,
                                 const TableBuildOptions &options = {});

} // namespace nb::uops

#endif // NB_UOPS_TABLE_HH
