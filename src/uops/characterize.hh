/**
 * @file
 * Case study I (paper §V): automatic characterization of instruction
 * latency, throughput, and port usage, in the style of uops.info.
 *
 * For each instruction variant the tool generates microbenchmarks:
 *
 *  - latency: a dependency chain through the destination/source
 *    operands (pointer chasing for loads, flag chains for SETcc, the
 *    implicit RAX/RDX chain for MUL/DIV);
 *  - throughput: many independent instances using rotated destination
 *    registers (with dependency-breaking idioms where needed);
 *  - port usage: the throughput benchmark evaluated with the
 *    UOPS_DISPATCHED_PORT.* events.
 *
 * The work is organized as a plan/decode split so full-catalog
 * characterization can ride the parallel campaign executor:
 *
 *  1. plan() walks the variant catalog and emits plain BenchmarkSpecs,
 *     each tagged with a decoder (PlannedSpec) describing how to fold
 *     its BenchmarkResult back into a VariantResult;
 *  2. the specs run anywhere -- a single Session, or fanned out via
 *     Engine::runCampaign() (the throughput and port decoders share
 *     one spec per variant, so campaign dedup executes it once);
 *  3. decode() assembles VariantResults in catalog order, tolerating
 *     per-spec RunErrors: a failed latency chain downgrades latency
 *     to nullopt, a failed throughput/port benchmark marks the
 *     variant errored -- the catalog never aborts.
 *
 * The kernel-space runner allows characterizing privileged
 * instructions (RDMSR, WBINVD, CLI, ...), which no previous tool
 * could do (§V).
 */

#ifndef NB_UOPS_CHARACTERIZE_HH
#define NB_UOPS_CHARACTERIZE_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "core/runner.hh"

namespace nb::uops
{

/** Measured characteristics of one instruction variant. */
struct VariantResult
{
    std::string signature;   ///< e.g. "ADD_R64_R64"
    std::string asmText;     ///< example instance
    /** Chain latency in cycles; nullopt if no chain can be built (or
     *  the chain benchmark failed). */
    std::optional<double> latency;
    /** Reciprocal throughput in cycles per instruction. */
    double throughput = 0.0;
    /** Executed µops per instruction. */
    double uops = 0.0;
    /** Port -> µops per instruction (measured). */
    std::map<unsigned, double> portUsage;
    /** Set if the variant needs kernel mode but the runner is user. */
    bool requiresKernelMode = false;
    /** Non-empty if the variant's throughput/port benchmark failed;
     *  the other fields are unreliable then. */
    std::string error;

    /** True unless the throughput/port benchmark failed. */
    bool ok() const { return error.empty(); }

    /** Compact port string, e.g. "p2:0.50 p3:0.50". */
    std::string portString() const;
    /** One table row. */
    std::string tableRow() const;
};

/**
 * One planned benchmark plus the decoder that folds its result back
 * into a VariantResult. Plain data: the spec can run on any session
 * or go through a campaign.
 */
struct PlannedSpec
{
    enum class Role : std::uint8_t
    {
        /** Decode chain cycles into VariantResult::latency. */
        Latency,
        /** Decode cycles/µops into throughput and uops. */
        Throughput,
        /** Decode UOPS_DISPATCHED_PORT.* into portUsage. */
        Ports,
    };

    core::BenchmarkSpec spec;
    Role role = Role::Throughput;
    /** Index into CharacterizationPlan::rows this spec folds into. */
    std::size_t variant = 0;
    /** Latency decode: auxiliary chain cycles and links per body. */
    double overheadCycles = 0.0;
    unsigned linksPerIteration = 1;
    /** Throughput/ports decode: independent copies per iteration and
     *  whether dependency-breaking instructions inflate the counts. */
    unsigned copies = 1;
    bool depBroken = false;
};

/** A full characterization work list, ready for a campaign. */
struct CharacterizationPlan
{
    /** The instruction variants, in catalog order. */
    std::vector<x86::Instruction> catalog;
    /** Partially-filled rows (signature, asm text, kernel-mode flag),
     *  one per catalog entry; decode() completes them. */
    std::vector<VariantResult> rows;
    /** The benchmarks to execute, with their decoders. */
    std::vector<PlannedSpec> specs;
    /** Whether cycles come from the fixed counter or APERF (§II-A1). */
    bool hasFixedCounters = true;
    /** Ports modelled by the planning machine's microarchitecture. */
    unsigned numPorts = 0;
};

/** The characterization tool bound to one runner. */
class Characterizer
{
  public:
    explicit Characterizer(core::Runner &runner);

    /** Same, bound to the runner of an Engine session. The session's
     *  machine must outlive this tool. */
    explicit Characterizer(Session &session);

    /** Plan benchmarks for the given variants. */
    CharacterizationPlan plan(
        const std::vector<x86::Instruction> &variants) const;

    /** Plan the whole variant catalog. */
    CharacterizationPlan plan() const;

    /**
     * Fold campaign/batch outcomes back into rows, in catalog order.
     * @p outcomes must have one entry per plan.specs element, in plan
     * order (exactly what runCampaign()/runBatch() return for the
     * extracted spec list). Failed outcomes degrade gracefully: a
     * failed latency chain leaves latency unset, a failed
     * throughput/port benchmark marks the variant errored.
     */
    static std::vector<VariantResult> decode(
        const CharacterizationPlan &plan,
        const std::vector<RunOutcome> &outcomes);

    /** Benchmark specs of a plan, in plan order (campaign input). */
    static std::vector<core::BenchmarkSpec> planSpecs(
        const CharacterizationPlan &plan);

    /** Characterize a single variant (plan + run + decode on this
     *  tool's runner). */
    VariantResult characterize(const x86::Instruction &insn);

    /** All instruction variants of the modelled ISA, specialized for
     *  the runner's microarchitecture (unsupported opcodes omitted). */
    std::vector<x86::Instruction> variantCatalog() const;

    /** Characterize the whole catalog serially on this tool's runner.
     *  (Parallel full-catalog runs: uops/table.hh
     *  buildInstructionTable(), which ships the plan through
     *  Engine::runCampaign().) */
    std::vector<VariantResult> characterizeAll();

    /** Table header matching VariantResult::tableRow(). */
    static std::string tableHeader();

  private:
    struct ChainSpec
    {
        std::vector<x86::Instruction> body;
        std::vector<x86::Instruction> init;
        /** Chain links per body execution. */
        unsigned linksPerIteration = 1;
        /** Cycles contributed by auxiliary chain instructions. */
        double overheadCycles = 0.0;
    };

    /** Build a latency chain; nullopt if the variant has no register
     *  result to chain through. */
    std::optional<ChainSpec> buildLatencyChain(
        const x86::Instruction &insn) const;

    /** Build the independent-instances throughput benchmark. */
    ChainSpec buildThroughputBench(const x86::Instruction &insn,
                                   unsigned copies) const;

    /** Run every planned spec on this tool's runner, in plan order. */
    std::vector<RunOutcome> runPlan(const CharacterizationPlan &plan);

    core::Runner &runner_;
};

} // namespace nb::uops

#endif // NB_UOPS_CHARACTERIZE_HH
