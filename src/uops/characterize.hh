/**
 * @file
 * Case study I (paper §V): automatic characterization of instruction
 * latency, throughput, and port usage, in the style of uops.info.
 *
 * For each instruction variant the tool generates microbenchmarks:
 *
 *  - latency: a dependency chain through the destination/source
 *    operands (pointer chasing for loads, flag chains for SETcc, the
 *    implicit RAX/RDX chain for MUL/DIV);
 *  - throughput: many independent instances using rotated destination
 *    registers (with dependency-breaking idioms where needed);
 *  - port usage: the throughput benchmark evaluated with the
 *    UOPS_DISPATCHED_PORT.* events.
 *
 * The benchmarks are evaluated with nanoBench; the kernel-space runner
 * allows characterizing privileged instructions (RDMSR, WBINVD, CLI,
 * ...), which no previous tool could do (§V).
 */

#ifndef NB_UOPS_CHARACTERIZE_HH
#define NB_UOPS_CHARACTERIZE_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/runner.hh"

namespace nb
{
class Session;
}

namespace nb::uops
{

/** Measured characteristics of one instruction variant. */
struct VariantResult
{
    std::string signature;   ///< e.g. "ADD_R64_R64"
    std::string asmText;     ///< example instance
    /** Chain latency in cycles; nullopt if no chain can be built. */
    std::optional<double> latency;
    /** Reciprocal throughput in cycles per instruction. */
    double throughput = 0.0;
    /** Executed µops per instruction. */
    double uops = 0.0;
    /** Port -> µops per instruction (measured). */
    std::map<unsigned, double> portUsage;
    /** Set if the variant needs kernel mode but the runner is user. */
    bool requiresKernelMode = false;

    /** Compact port string, e.g. "p2:0.50 p3:0.50". */
    std::string portString() const;
    /** One table row. */
    std::string tableRow() const;
};

/** The characterization tool bound to one runner. */
class Characterizer
{
  public:
    explicit Characterizer(core::Runner &runner);

    /** Same, bound to the runner of an Engine session. The session's
     *  machine must outlive this tool. */
    explicit Characterizer(Session &session);

    /** Characterize a single variant. */
    VariantResult characterize(const x86::Instruction &insn);

    /** All instruction variants of the modelled ISA, specialized for
     *  the runner's microarchitecture (unsupported opcodes omitted). */
    std::vector<x86::Instruction> variantCatalog() const;

    /** Characterize the whole catalog. */
    std::vector<VariantResult> characterizeAll();

    /** Table header matching VariantResult::tableRow(). */
    static std::string tableHeader();

  private:
    struct ChainSpec
    {
        std::vector<x86::Instruction> body;
        std::vector<x86::Instruction> init;
        /** Chain links per body execution. */
        unsigned linksPerIteration = 1;
        /** Cycles contributed by auxiliary chain instructions. */
        double overheadCycles = 0.0;
    };

    /** Build a latency chain; nullopt if the variant has no register
     *  result to chain through. */
    std::optional<ChainSpec> buildLatencyChain(
        const x86::Instruction &insn) const;

    /** Build the independent-instances throughput benchmark. */
    ChainSpec buildThroughputBench(const x86::Instruction &insn,
                                   unsigned copies) const;

    core::Runner &runner_;
};

} // namespace nb::uops

#endif // NB_UOPS_CHARACTERIZE_HH
