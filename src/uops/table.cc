/**
 * @file
 * Instruction-table implementation: campaign-backed builder,
 * JSON/CSV round-trip, and table diffing.
 */

#include "table.hh"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "common/strings.hh"
#include "core/json.hh"
#include "core/result.hh"

namespace nb::uops
{

using core::csvEscape;
using core::exactDouble;
using core::jsonEscape;
using core::JsonCursor;

// -------------------------------------------------------------- table --

const VariantResult *
InstructionTable::find(const std::string &signature) const
{
    for (const auto &row : rows) {
        if (row.signature == signature)
            return &row;
    }
    return nullptr;
}

std::size_t
InstructionTable::errorCount() const
{
    std::size_t count = 0;
    for (const auto &row : rows)
        count += row.ok() ? 0 : 1;
    return count;
}

std::string
InstructionTable::format() const
{
    std::ostringstream os;
    os << "Instruction table: " << uarch << ", " << mode << " mode, "
       << rows.size() << " variants\n";
    os << Characterizer::tableHeader() << "\n";
    os << std::string(70, '-') << "\n";
    for (const auto &row : rows)
        os << row.tableRow() << "\n";
    return os.str();
}

namespace
{

/** Ports map as exact-round-trip text, e.g. "0:0.25 1:0.25". */
std::string
portsField(const std::map<unsigned, double> &ports)
{
    std::ostringstream os;
    bool first = true;
    for (const auto &[port, usage] : ports) {
        if (!first)
            os << " ";
        os << port << ":" << exactDouble(usage);
        first = false;
    }
    return os.str();
}

std::map<unsigned, double>
parsePortsField(const std::string &text, const char *what)
{
    std::map<unsigned, double> ports;
    for (const auto &item : splitWhitespace(text)) {
        auto colon = item.find(':');
        auto port = colon == std::string::npos
                        ? std::nullopt
                        : parseInt(item.substr(0, colon));
        if (!port || *port < 0)
            fatal(what, ": malformed ports field '", text, "'");
        try {
            ports[static_cast<unsigned>(*port)] =
                std::stod(item.substr(colon + 1));
        } catch (const std::exception &) {
            fatal(what, ": malformed ports field '", text, "'");
        }
    }
    return ports;
}

} // namespace

std::string
InstructionTable::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"uarch\": \"" << jsonEscape(uarch) << "\",\n";
    os << "  \"mode\": \"" << jsonEscape(mode) << "\",\n";
    os << "  \"rows\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const VariantResult &row = rows[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"signature\": \"" << jsonEscape(row.signature)
           << "\", \"asm\": \"" << jsonEscape(row.asmText) << "\"";
        // The cursor has no null literal: absent optionals are simply
        // omitted (the reader treats missing keys as unset).
        if (row.latency)
            os << ", \"latency\": " << exactDouble(*row.latency);
        os << ", \"throughput\": " << exactDouble(row.throughput);
        os << ", \"uops\": " << exactDouble(row.uops);
        os << ", \"ports\": \"" << jsonEscape(portsField(row.portUsage))
           << "\"";
        if (row.requiresKernelMode)
            os << ", \"requires_kernel_mode\": 1";
        if (!row.error.empty())
            os << ", \"error\": \"" << jsonEscape(row.error) << "\"";
        os << "}";
    }
    os << (rows.empty() ? "]\n" : "\n  ]\n");
    os << "}\n";
    return os.str();
}

std::string
InstructionTable::toCsv() const
{
    std::ostringstream os;
    os << "# uarch: " << uarch << "\n";
    os << "# mode: " << mode << "\n";
    os << "signature,asm,latency,throughput,uops,ports,"
          "requires_kernel_mode,error\n";
    for (const auto &row : rows) {
        os << csvEscape(row.signature) << "," << csvEscape(row.asmText)
           << "," << (row.latency ? exactDouble(*row.latency) : "")
           << "," << exactDouble(row.throughput) << ","
           << exactDouble(row.uops) << ","
           << csvEscape(portsField(row.portUsage)) << ","
           << (row.requiresKernelMode ? "1" : "0") << ","
           << csvEscape(row.error) << "\n";
    }
    return os.str();
}

namespace
{

VariantResult
parseJsonRow(JsonCursor &cur)
{
    VariantResult row;
    cur.expect('{');
    do {
        std::string key = cur.parseString();
        cur.expect(':');
        if (key == "signature")
            row.signature = cur.parseString();
        else if (key == "asm")
            row.asmText = cur.parseString();
        else if (key == "latency")
            row.latency = cur.parseNumber();
        else if (key == "throughput")
            row.throughput = cur.parseNumber();
        else if (key == "uops")
            row.uops = cur.parseNumber();
        else if (key == "ports")
            row.portUsage =
                parsePortsField(cur.parseString(), "JSON table");
        else if (key == "requires_kernel_mode")
            row.requiresKernelMode = cur.parseNumber() != 0.0;
        else if (key == "error")
            row.error = cur.parseString();
        else
            cur.skipValue();
    } while (cur.tryConsume(','));
    cur.expect('}');
    return row;
}

} // namespace

InstructionTable
InstructionTable::fromJson(const std::string &text)
{
    InstructionTable table;
    JsonCursor cur(text);
    cur.expect('{');
    if (!cur.tryConsume('}')) {
        do {
            std::string key = cur.parseString();
            cur.expect(':');
            if (key == "uarch") {
                table.uarch = cur.parseString();
            } else if (key == "mode") {
                table.mode = cur.parseString();
            } else if (key == "rows") {
                cur.expect('[');
                if (!cur.tryConsume(']')) {
                    do {
                        table.rows.push_back(parseJsonRow(cur));
                    } while (cur.tryConsume(','));
                    cur.expect(']');
                }
            } else {
                cur.skipValue();
            }
        } while (cur.tryConsume(','));
        cur.expect('}');
    }
    cur.expectEnd();
    return table;
}

InstructionTable
InstructionTable::fromCsv(const std::string &text)
{
    InstructionTable table;
    bool seen_header = false;
    std::size_t line_no = 0;
    for (const auto &raw_line : split(text, '\n')) {
        ++line_no;
        std::string line = trim(raw_line);
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::string meta = trim(line.substr(1));
            auto colon = meta.find(':');
            if (colon == std::string::npos)
                continue;
            std::string key = trim(meta.substr(0, colon));
            std::string value = trim(meta.substr(colon + 1));
            if (key == "uarch")
                table.uarch = value;
            else if (key == "mode")
                table.mode = value;
            continue;
        }
        if (!seen_header) {
            seen_header = true;
            continue;
        }
        auto fields = core::splitCsvRecord(raw_line);
        if (fields.size() != 8) {
            fatal("CSV table line ", line_no, ": expected 8 fields, got ",
                  fields.size());
        }
        VariantResult row;
        row.signature = core::csvUnescape(fields[0]);
        row.asmText = core::csvUnescape(fields[1]);
        try {
            if (!fields[2].empty())
                row.latency = std::stod(fields[2]);
            row.throughput = std::stod(fields[3]);
            row.uops = std::stod(fields[4]);
        } catch (const std::exception &) {
            fatal("CSV table line ", line_no, ": bad numeric field");
        }
        row.portUsage = parsePortsField(fields[5], "CSV table");
        row.requiresKernelMode = fields[6] == "1";
        row.error = core::csvUnescape(fields[7]);
        table.rows.push_back(std::move(row));
    }
    return table;
}

InstructionTable
InstructionTable::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open table file '", path, "'");
    std::string text{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
    // JSON tables start with '{'; everything else parses as CSV.
    auto start = text.find_first_not_of(" \t\r\n");
    if (start != std::string::npos && text[start] == '{')
        return fromJson(text);
    return fromCsv(text);
}

// --------------------------------------------------------------- diff --

namespace
{

std::string
fixed2(double v)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << v;
    return os.str();
}

std::string
optLatency(const std::optional<double> &latency)
{
    return latency ? fixed2(*latency) : "-";
}

} // namespace

std::string
TableDiff::format() const
{
    std::ostringstream os;
    for (const auto &entry : entries)
        os << entry.signature << ": " << entry.detail << "\n";
    return os.str();
}

TableDiff
diffTables(const InstructionTable &before, const InstructionTable &after,
           double tolerance)
{
    TableDiff diff;
    auto moved = [&](double a, double b) {
        return std::abs(a - b) > tolerance;
    };

    // Signatures can legitimately repeat (e.g. the fast and slow LEA
    // forms both print LEA_R64_M64): match the k-th occurrence of a
    // signature in one table with the k-th in the other.
    std::map<std::string, std::vector<const VariantResult *>> in_after;
    for (const auto &row : after.rows)
        in_after[row.signature].push_back(&row);
    std::map<std::string, std::size_t> seen;

    for (const auto &row : before.rows) {
        std::size_t k = seen[row.signature]++;
        auto it = in_after.find(row.signature);
        const VariantResult *other =
            it != in_after.end() && k < it->second.size()
                ? it->second[k]
                : nullptr;
        if (!other) {
            diff.entries.push_back({TableDiffEntry::Kind::Removed,
                                    row.signature,
                                    "only in " + before.uarch + "/" +
                                        before.mode + " table"});
            continue;
        }
        // Status first: rows that did not measure on one side would
        // otherwise report meaningless numeric changes.
        if (row.requiresKernelMode != other->requiresKernelMode ||
            row.ok() != other->ok()) {
            std::string from =
                !row.ok() ? "error"
                          : (row.requiresKernelMode ? "kernel-only"
                                                    : "measured");
            std::string to =
                !other->ok() ? "error"
                             : (other->requiresKernelMode ? "kernel-only"
                                                          : "measured");
            diff.entries.push_back({TableDiffEntry::Kind::StatusChanged,
                                    row.signature, from + " -> " + to});
            continue;
        }
        if (row.requiresKernelMode || !row.ok())
            continue;
        if (row.latency.has_value() != other->latency.has_value() ||
            (row.latency && moved(*row.latency, *other->latency))) {
            diff.entries.push_back(
                {TableDiffEntry::Kind::LatencyChanged, row.signature,
                 "latency " + optLatency(row.latency) + " -> " +
                     optLatency(other->latency)});
        }
        if (moved(row.throughput, other->throughput)) {
            diff.entries.push_back(
                {TableDiffEntry::Kind::ThroughputChanged, row.signature,
                 "throughput " + fixed2(row.throughput) + " -> " +
                     fixed2(other->throughput)});
        }
        if (moved(row.uops, other->uops)) {
            diff.entries.push_back(
                {TableDiffEntry::Kind::UopsChanged, row.signature,
                 "uops " + fixed2(row.uops) + " -> " +
                     fixed2(other->uops)});
        }
        // Ports: union of the two port sets, any usage moving beyond
        // tolerance (including appearing/disappearing ports).
        std::map<unsigned, double> all = row.portUsage;
        all.insert(other->portUsage.begin(), other->portUsage.end());
        for (const auto &[port, unused] : all) {
            auto a = row.portUsage.find(port);
            auto b = other->portUsage.find(port);
            double va = a == row.portUsage.end() ? 0.0 : a->second;
            double vb = b == other->portUsage.end() ? 0.0 : b->second;
            if (moved(va, vb)) {
                diff.entries.push_back(
                    {TableDiffEntry::Kind::PortsChanged, row.signature,
                     "p" + std::to_string(port) + " " + fixed2(va) +
                         " -> " + fixed2(vb)});
            }
        }
    }
    std::map<std::string, std::size_t> in_before;
    for (const auto &row : before.rows)
        ++in_before[row.signature];
    seen.clear();
    for (const auto &row : after.rows) {
        if (seen[row.signature]++ >= in_before[row.signature]) {
            diff.entries.push_back({TableDiffEntry::Kind::Added,
                                    row.signature,
                                    "only in " + after.uarch + "/" +
                                        after.mode + " table"});
        }
    }
    return diff;
}

// ------------------------------------------------------------ builder --

TableBuild
buildInstructionTable(Engine &engine, const TableBuildOptions &options)
{
    // One session up front: planning reads the machine's uarch/PMU
    // capabilities. Its machine is pooled, so campaign worker 0 (same
    // replica key) reuses it warm.
    Session session = engine.session(options.session);
    Characterizer tool(session);
    CharacterizationPlan plan = tool.plan();

    CampaignOptions campaign_opt;
    campaign_opt.jobs = options.jobs;
    campaign_opt.dedup = options.dedup;
    campaign_opt.session = options.session;
    campaign_opt.freshMachinePerSpec = options.freshMachinePerSpec;
    if (options.progress) {
        // The table's coarse (done, total) callback maps onto the
        // settle events of the richer campaign progress stream.
        campaign_opt.progress =
            [cb = options.progress](const CampaignProgress &event) {
                if (!event.starting)
                    cb(event.done, event.total);
            };
    }
    campaign_opt.trace = options.trace;
    campaign_opt.observe = options.observe;
    // A runaway planner spec settles as BudgetExceeded instead of
    // hanging table generation (outcomes for sane specs, and thus the
    // golden tables, are unaffected).
    campaign_opt.specBudget = kBuilderSpecBudget;
    CampaignResult campaign =
        engine.runCampaign(Characterizer::planSpecs(plan), campaign_opt);

    TableBuild build;
    build.table.uarch = session.uarch();
    build.table.mode = core::modeName(session.mode());
    build.table.rows = Characterizer::decode(plan, campaign.outcomes);
    build.report = std::move(campaign.report);
    return build;
}

} // namespace nb::uops
