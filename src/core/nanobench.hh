/**
 * @file
 * DEPRECATED one-shot facade, kept as a thin shim over the Engine /
 * Session API (engine.hh).
 *
 * Historically this was the C++ equivalent of nanoBench.sh /
 * kernel-nanoBench.sh (paper §III-E): one call built a simulated
 * machine, set up the runner, and ran the benchmark -- and every
 * user-level error aborted via fatal(). New code should use
 * nb::Engine / nb::Session instead, which pool machines across
 * benchmarks, run batches, and report failures as RunOutcome values.
 * See README.md for the migration note.
 */

#ifndef NB_CORE_NANOBENCH_HH
#define NB_CORE_NANOBENCH_HH

#include <string>

#include "core/engine.hh"
#include "core/runner.hh"

namespace nb::core
{

/** Options mirroring the shell-script command line (§III-E). */
struct NanoBenchOptions
{
    std::string uarch = "Skylake";
    Mode mode = Mode::Kernel;
    std::uint64_t seed = 42;
    /** Path of a counter-config file; empty = none. */
    std::string configFile;
    BenchmarkSpec spec;
};

/**
 * @deprecated Thin shim over nb::Engine / nb::Session: constructs a
 * private (non-pooled) machine, exactly like the old facade, and
 * restores abort-on-error semantics by throwing nb::FatalError for
 * failed runs. Prefer Engine::session() in new code.
 */
class NanoBench
{
  public:
    explicit NanoBench(const NanoBenchOptions &options);

    BenchmarkResult run() { return session_.runOrThrow(options_.spec); }
    BenchmarkResult run(const BenchmarkSpec &spec)
    {
        return session_.runOrThrow(spec);
    }

    sim::Machine &machine() { return session_.machine(); }
    Runner &runner() { return session_.runner(); }
    NanoBenchOptions &options() { return options_; }

    /** The underlying session (for incremental migration). */
    Session &session() { return session_; }

  private:
    NanoBenchOptions options_;
    Session session_;
};

} // namespace nb::core

#endif // NB_CORE_NANOBENCH_HH
