/**
 * @file
 * High-level facade: the C++ equivalent of nanoBench.sh /
 * kernel-nanoBench.sh (paper §III-E). One call builds a simulated
 * machine for the requested microarchitecture, sets up the runner in the
 * requested mode, and runs the benchmark.
 */

#ifndef NB_CORE_NANOBENCH_HH
#define NB_CORE_NANOBENCH_HH

#include <memory>
#include <string>

#include "core/runner.hh"

namespace nb::core
{

/** Options mirroring the shell-script command line (§III-E). */
struct NanoBenchOptions
{
    std::string uarch = "Skylake";
    Mode mode = Mode::Kernel;
    std::uint64_t seed = 42;
    /** Path of a counter-config file; empty = the shipped per-uarch
     *  default (configs/cfg_<uarch>.txt). */
    std::string configFile;
    BenchmarkSpec spec;
};

/** A machine + runner pair ready to execute benchmarks. */
class NanoBench
{
  public:
    explicit NanoBench(const NanoBenchOptions &options);

    BenchmarkResult run() { return runner_->run(options_.spec); }
    BenchmarkResult run(const BenchmarkSpec &spec)
    {
        return runner_->run(spec);
    }

    sim::Machine &machine() { return *machine_; }
    Runner &runner() { return *runner_; }
    NanoBenchOptions &options() { return options_; }

  private:
    NanoBenchOptions options_;
    std::unique_ptr<sim::Machine> machine_;
    std::unique_ptr<Runner> runner_;
};

} // namespace nb::core

#endif // NB_CORE_NANOBENCH_HH
