/**
 * @file
 * Facade implementation.
 */

#include "nanobench.hh"

#include "uarch/uarch.hh"

namespace nb::core
{

NanoBench::NanoBench(const NanoBenchOptions &options) : options_(options)
{
    const auto &ua = uarch::getMicroArch(options.uarch);
    machine_ = std::make_unique<sim::Machine>(ua, options.seed);
    runner_ = std::make_unique<Runner>(*machine_, options.mode);
    if (options_.spec.config.empty()) {
        if (!options_.configFile.empty()) {
            options_.spec.config =
                CounterConfig::parseFile(options_.configFile);
        }
    }
}

} // namespace nb::core
