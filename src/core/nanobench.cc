/**
 * @file
 * Deprecated facade, implemented on top of Engine / Session.
 */

#include "nanobench.hh"

namespace nb::core
{

namespace
{

SessionOptions
toSessionOptions(const NanoBenchOptions &options)
{
    SessionOptions so;
    so.uarch = options.uarch;
    so.mode = options.mode;
    so.seed = options.seed;
    // configFile is deliberately NOT forwarded: the old facade applied
    // it to options().spec only, never to other specs passed to run().
    return so;
}

} // namespace

NanoBench::NanoBench(const NanoBenchOptions &options)
    : options_(options),
      // A temporary Engine gives this facade a private machine (the
      // session's lease keeps it alive), preserving the old semantics:
      // every NanoBench instance gets a fresh machine, never a pooled
      // one shared with other instances.
      session_(Engine().session(toSessionOptions(options)))
{
    if (options_.spec.config.empty() && !options_.configFile.empty())
        options_.spec.config = CounterConfig::parseFile(
            options_.configFile);
}

} // namespace nb::core
