/**
 * @file
 * Unified cache telemetry for the engine layer.
 *
 * The library grew three cache counter structs with three shapes and
 * three accessors: the Runner's measurement-program cache
 * (ProgramCacheStats, builds/hits), the session-layer assembly memo
 * (AssembleCacheStats, hits/misses) and the lint memo (LintCacheStats,
 * hits/misses). This header unifies them: every cache reports an
 * nb::CacheStats, and Engine::telemetry() snapshots them all -- plus
 * the machine pool counters -- into one EngineTelemetry that
 * serializes to JSON (round-trippable) and CSV in the BenchmarkResult
 * dialect. The old per-cache accessors remain as deprecated shims.
 */

#ifndef NB_CORE_TELEMETRY_HH
#define NB_CORE_TELEMETRY_HH

#include <cstdint>
#include <string>

namespace nb
{

namespace core
{
class JsonCursor;
} // namespace core

/** Hit/miss counters of one cache. A "miss" is a lookup that had to
 *  build/parse/analyze the entry; a "hit" was served from the cache.
 *  Bounded caches also count evicted entries: the clear-when-full
 *  policy drops the whole map, so a nonzero eviction count explains
 *  what would otherwise read as an inexplicable miss storm. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    bool operator==(const CacheStats &) const = default;
};

/**
 * One snapshot of every cache and pool counter the engine layer
 * maintains (Engine::telemetry()). The pool counters are per-engine;
 * the assembly and lint memos are process-wide singletons, so their
 * numbers aggregate over every engine in the process.
 */
struct EngineTelemetry
{
    /** Machines currently pooled (Engine::poolSize()). */
    std::uint64_t poolSize = 0;
    /** Machines constructed over the engine's lifetime. */
    std::uint64_t machinesConstructed = 0;
    /** session() calls served from the pool. */
    std::uint64_t poolHits = 0;
    /** Programs currently held by the shared measurement-program
     *  cache. */
    std::uint64_t programCacheSize = 0;
    /** Shared measurement-program cache (decodes are misses). */
    CacheStats program;
    /** Process-wide assembly memo (parses are misses). */
    CacheStats assemble;
    /** Process-wide lint memo (analyses are misses). */
    CacheStats lint;

    bool operator==(const EngineTelemetry &) const = default;

    /** Serialize to a self-contained JSON object. */
    std::string toJson() const;

    /** Serialize to CSV ("key,value" rows, the BenchmarkResult
     *  dialect). */
    std::string toCsv() const;

    /** Human-readable multi-line summary (the CLI -stats dump). */
    std::string format() const;

    /** Parse a telemetry object at the cursor (for readers embedding
     *  telemetry in a larger document, e.g. CampaignReport). */
    static EngineTelemetry parse(core::JsonCursor &cur);

    /** Parse a report back from toJson() output.
     *  @throws nb::FatalError on malformed input. */
    static EngineTelemetry fromJson(const std::string &text);
};

} // namespace nb

#endif // NB_CORE_TELEMETRY_HH
