/**
 * @file
 * Kernel-module VFS implementation.
 */

#include "module.hh"

#include "common/logging.hh"
#include "common/strings.hh"
#include "x86/assembler.hh"
#include "x86/encoding.hh"

namespace nb::core
{

NanoBenchModule::NanoBenchModule(sim::Machine &machine)
    : machine_(machine),
      runner_(std::make_unique<Runner>(machine, Mode::Kernel))
{
    // The raw kernel module is cheap by default: one copy of the code,
    // no warm-up runs (the shell front end layers its own 100/2
    // defaults on top, §III-E). Keep that even though BenchmarkSpec
    // itself defaults to the front-end values.
    spec_.unrollCount = 1;
    spec_.warmUpCount = 0;
}

namespace
{

std::uint64_t
parseCount(const std::string &path, const std::string &data)
{
    auto v = parseInt(data);
    if (!v || *v < 0)
        fatal("bad value '", trim(data), "' written to ", path);
    return static_cast<std::uint64_t>(*v);
}

bool
parseBool(const std::string &path, const std::string &data)
{
    std::string t = trim(data);
    if (t == "0" || t == "false")
        return false;
    if (t == "1" || t == "true")
        return true;
    fatal("bad boolean '", t, "' written to ", path);
}

std::vector<std::uint8_t>
toBytes(const std::string &data)
{
    return {data.begin(), data.end()};
}

} // namespace

void
NanoBenchModule::writeFile(const std::string &path, const std::string &data)
{
    if (path == "/sys/nb/code") {
        spec_.asmCode = data;
        spec_.code.clear();
    } else if (path == "/sys/nb/init") {
        spec_.asmInit = data;
        spec_.init.clear();
    } else if (path == "/sys/nb/code_bytes") {
        // Raw machine code, as the real module receives it (§IV-B).
        spec_.code = x86::decode(toBytes(data));
        spec_.asmCode.clear();
    } else if (path == "/sys/nb/init_bytes") {
        spec_.init = x86::decode(toBytes(data));
        spec_.asmInit.clear();
    } else if (path == "/sys/nb/loop_count") {
        spec_.loopCount = parseCount(path, data);
    } else if (path == "/sys/nb/unroll_count") {
        spec_.unrollCount = std::max<std::uint64_t>(
            1, parseCount(path, data));
    } else if (path == "/sys/nb/n_measurements") {
        spec_.nMeasurements =
            static_cast<unsigned>(parseCount(path, data));
    } else if (path == "/sys/nb/warm_up_count") {
        spec_.warmUpCount = static_cast<unsigned>(parseCount(path, data));
    } else if (path == "/sys/nb/agg") {
        spec_.agg = parseAggregate(trim(data));
    } else if (path == "/sys/nb/basic_mode") {
        spec_.basicMode = parseBool(path, data);
    } else if (path == "/sys/nb/no_mem") {
        spec_.noMem = parseBool(path, data);
    } else if (path == "/sys/nb/serialize") {
        spec_.serialize = parseSerializeMode(trim(data));
    } else if (path == "/sys/nb/fixed_counters") {
        spec_.fixedCounters = parseBool(path, data);
    } else if (path == "/sys/nb/aperf_mperf") {
        spec_.aperfMperf = parseBool(path, data);
    } else if (path == "/sys/nb/config") {
        spec_.config = CounterConfig::parseString(data);
    } else {
        fatal("write to unknown virtual file '", path, "'");
    }
}

std::string
NanoBenchModule::readFile(const std::string &path)
{
    if (path == "/proc/nanoBench") {
        // Generates the code, runs the benchmark (possibly several
        // rounds), and returns the result (§IV-C).
        return runner_->run(spec_).format();
    }
    if (path == "/sys/nb/loop_count")
        return std::to_string(spec_.loopCount);
    if (path == "/sys/nb/unroll_count")
        return std::to_string(spec_.unrollCount);
    if (path == "/sys/nb/n_measurements")
        return std::to_string(spec_.nMeasurements);
    if (path == "/sys/nb/warm_up_count")
        return std::to_string(spec_.warmUpCount);
    if (path == "/sys/nb/agg")
        return aggregateName(spec_.agg);
    if (path == "/sys/nb/code")
        return spec_.asmCode;
    if (path == "/sys/nb/init")
        return spec_.asmInit;
    fatal("read from unknown virtual file '", path, "'");
}

std::vector<std::string>
NanoBenchModule::paths() const
{
    return {
        "/proc/nanoBench",          "/sys/nb/code",
        "/sys/nb/init",             "/sys/nb/code_bytes",
        "/sys/nb/init_bytes",       "/sys/nb/loop_count",
        "/sys/nb/unroll_count",     "/sys/nb/n_measurements",
        "/sys/nb/warm_up_count",    "/sys/nb/agg",
        "/sys/nb/basic_mode",       "/sys/nb/no_mem",
        "/sys/nb/serialize",        "/sys/nb/fixed_counters",
        "/sys/nb/aperf_mperf",      "/sys/nb/config",
    };
}

} // namespace nb::core
