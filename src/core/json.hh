/**
 * @file
 * Minimal JSON cursor over the subset this library emits (objects,
 * arrays, strings with escapes, numbers). Tolerant about member order
 * and unknown keys so externally post-processed files still load.
 * Shared by the result and campaign-report readers.
 */

#ifndef NB_CORE_JSON_HH
#define NB_CORE_JSON_HH

#include <cctype>
#include <string>

#include "common/logging.hh"
#include "common/strings.hh"

namespace nb::core
{

class JsonCursor
{
  public:
    explicit JsonCursor(const std::string &text) : text_(text) {}

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fatal("JSON result: unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fatal("JSON result: expected '", c, "' at offset ", pos_);
        ++pos_;
    }

    bool
    tryConsume(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fatal("JSON result: dangling escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fatal("JSON result: truncated \\u escape");
                auto code = parseHex(text_.substr(pos_, 4));
                if (!code)
                    fatal("JSON result: bad \\u escape");
                pos_ += 4;
                // The emitter only produces \u00XX control codes.
                out += static_cast<char>(*code & 0xFF);
                break;
              }
              default:
                fatal("JSON result: unsupported escape '\\", esc, "'");
            }
        }
        if (pos_ >= text_.size())
            fatal("JSON result: unterminated string");
        ++pos_; // closing quote
        return out;
    }

    double
    parseNumber()
    {
        skipWs();
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (start == pos_)
            fatal("JSON result: expected a number at offset ", pos_);
        try {
            return std::stod(text_.substr(start, pos_ - start));
        } catch (const std::exception &) {
            fatal("JSON result: bad number '",
                  text_.substr(start, pos_ - start), "'");
        }
    }

    /** @throws nb::FatalError unless only whitespace remains. */
    void
    expectEnd()
    {
        skipWs();
        if (pos_ < text_.size())
            fatal("JSON result: trailing data at offset ", pos_);
    }

    /** Skip any value (used for unknown keys). */
    void
    skipValue()
    {
        char c = peek();
        if (c == '"') {
            parseString();
        } else if (c == '{') {
            ++pos_;
            if (tryConsume('}'))
                return;
            do {
                parseString();
                expect(':');
                skipValue();
            } while (tryConsume(','));
            expect('}');
        } else if (c == '[') {
            ++pos_;
            if (tryConsume(']'))
                return;
            do {
                skipValue();
            } while (tryConsume(','));
            expect(']');
        } else {
            parseNumber();
        }
    }

    /** Skip any value and return its raw text (for re-parsing a
     *  nested document with its own reader). */
    std::string
    captureValue()
    {
        skipWs();
        std::size_t start = pos_;
        skipValue();
        return text_.substr(start, pos_ - start);
    }

  private:
    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace nb::core

#endif // NB_CORE_JSON_HH
