/**
 * @file
 * The simulated nanoBench kernel module interface (paper §IV-C).
 *
 * While the real module is loaded it exposes virtual files: benchmark
 * parameters are set by writing to files under /sys/nb/ (e.g. the loop
 * count or the code bytes), and reading /proc/nanoBench generates the
 * measurement code, runs the benchmark, and returns the results. This
 * class reproduces that interface on top of the simulated machine; the
 * code file accepts the binary encoding from x86::encode(), mirroring
 * how the real module receives raw machine code.
 */

#ifndef NB_CORE_MODULE_HH
#define NB_CORE_MODULE_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/runner.hh"

namespace nb::core
{

/** The loaded kernel module: a virtual-file front end over a Runner. */
class NanoBenchModule
{
  public:
    /** "insmod": binds to a machine and allocates the memory areas. */
    explicit NanoBenchModule(sim::Machine &machine);

    /** Write to a virtual file (configuration). Known paths:
     *  /sys/nb/{code,init,code_bytes,init_bytes,loop_count,
     *  unroll_count,n_measurements,warm_up_count,agg,basic_mode,
     *  no_mem,serialize,config,fixed_counters,aperf_mperf}.
     *  @throws nb::FatalError for unknown paths or bad values. */
    void writeFile(const std::string &path, const std::string &data);

    /** Read a virtual file. Reading /proc/nanoBench runs the benchmark
     *  and returns the formatted results (§IV-C). */
    std::string readFile(const std::string &path);

    /** All defined virtual-file paths. */
    std::vector<std::string> paths() const;

    Runner &runner() { return *runner_; }
    const BenchmarkSpec &spec() const { return spec_; }

  private:
    sim::Machine &machine_;
    std::unique_ptr<Runner> runner_;
    BenchmarkSpec spec_;
};

} // namespace nb::core

#endif // NB_CORE_MODULE_HH
