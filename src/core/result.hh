/**
 * @file
 * Structured benchmark results.
 *
 * A BenchmarkResult is the machine-consumable output of one benchmark
 * run: the per-iteration counter values (one ResultLine per event, in
 * the paper's §III-A output order) plus metadata identifying where the
 * numbers came from (microarchitecture, runner mode, a compact echo of
 * the spec, and the simulated cost of producing them). Results can be
 * rendered for humans (format()), serialized to JSON or CSV, and parsed
 * back from either format.
 */

#ifndef NB_CORE_RESULT_HH
#define NB_CORE_RESULT_HH

#include <optional>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace nb::core
{

/** One output line: event name and per-iteration value. */
struct ResultLine
{
    std::string name;
    double value = 0.0;
};

/** Thrown by BenchmarkResult::operator[] for a missing line. Derives
 *  from FatalError so existing catch sites keep working; unlike
 *  fatal(), it does not print to stderr before unwinding. */
class ResultLookupError : public FatalError
{
  public:
    explicit ResultLookupError(const std::string &name)
        : FatalError("no result line named '" + name + "'"), name_(name)
    {
    }

    /** The line name that was looked up. */
    const std::string &missingName() const { return name_; }

  private:
    std::string name_;
};

/** Benchmark output. */
struct BenchmarkResult
{
    std::vector<ResultLine> lines;

    /** Microarchitecture the benchmark ran on (e.g. "Skylake"). */
    std::string uarch;
    /** Runner mode: "kernel" or "user" (§III-D). */
    std::string mode;
    /** Compact echo of the BenchmarkSpec that produced this result. */
    std::string specEcho;
    /** Simulated cycles the whole run() took (§III-K). */
    Cycles lastRunCycles = 0;

    /** Value of a line by name, or std::nullopt if absent. */
    std::optional<double> find(const std::string &name) const;

    /** Value of a line by name; @throws ResultLookupError if absent. */
    double operator[](const std::string &name) const;

    bool has(const std::string &name) const;

    /** Render like the paper's §III-A example output. */
    std::string format() const;

    /** Serialize to a self-contained JSON object. */
    std::string toJson() const;

    /** Serialize to CSV ("name,value" rows; metadata in '#' header
     *  comments). */
    std::string toCsv() const;

    /** Parse a result back from toJson() output.
     *  @throws nb::FatalError on malformed input. */
    static BenchmarkResult fromJson(const std::string &text);

    /** Parse a result back from toCsv() output.
     *  @throws nb::FatalError on malformed input. */
    static BenchmarkResult fromCsv(const std::string &text);
};

/** JSON string escaping (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

/** CSV field escaping in this library's dialect: newlines are
 *  backslash-escaped (records stay line-wise), then fields containing
 *  commas or quotes are double-quoted. */
std::string csvEscape(const std::string &raw);

/** Split one CSV record into fields, honouring the double-quote
 *  escaping csvEscape() produces (shared by the table reader). */
std::vector<std::string> splitCsvRecord(const std::string &line);

/** Undo csvEscape()'s backslash-escaping of newlines in a field
 *  already unquoted by splitCsvRecord(). */
std::string csvUnescape(const std::string &field);

/** Format a double with enough digits to round-trip exactly. */
std::string exactDouble(double v);

} // namespace nb::core

#endif // NB_CORE_RESULT_HH
