/**
 * @file
 * Code-generator implementation.
 */

#include "codegen.hh"

#include "common/logging.hh"
#include "sim/pmu.hh"

namespace nb::core
{

using x86::Instruction;
using x86::MemRef;
using x86::Opcode;
using x86::Operand;
using x86::Reg;

SerializeMode
parseSerializeMode(const std::string &name)
{
    if (name == "none")
        return SerializeMode::None;
    if (name == "cpuid")
        return SerializeMode::Cpuid;
    if (name == "lfence")
        return SerializeMode::Lfence;
    fatal("unknown serialize mode '", name,
          "' (expected none, cpuid, or lfence)");
}

const std::vector<Reg> &
noMemAccumulators()
{
    static const std::vector<Reg> regs = {Reg::R8,  Reg::R9,  Reg::R10,
                                          Reg::R11, Reg::R12, Reg::R13};
    return regs;
}

unsigned
maxNoMemReadouts()
{
    return static_cast<unsigned>(noMemAccumulators().size());
}

namespace
{

Instruction
makeInsn(Opcode op, std::vector<Operand> operands = {})
{
    Instruction insn;
    insn.opcode = op;
    insn.operands = std::move(operands);
    return insn;
}

Operand
absMem(Addr addr)
{
    MemRef m;
    m.disp = static_cast<std::int64_t>(addr);
    return Operand::makeMem(m, 64);
}

void
emitFence(std::vector<Instruction> &out, SerializeMode mode)
{
    switch (mode) {
      case SerializeMode::None:
        break;
      case SerializeMode::Cpuid:
        // Setting RAX to a fixed value first reduces (but does not
        // eliminate) CPUID's variance (§IV-A1 / Paoloni).
        out.push_back(makeInsn(
            Opcode::MOV, {Operand::makeReg(Reg::RAX), Operand::makeImm(0)}));
        out.push_back(makeInsn(Opcode::CPUID));
        break;
      case SerializeMode::Lfence:
        out.push_back(makeInsn(Opcode::LFENCE));
        break;
    }
}

/** Emit "read counter into RAX" for one readout item. */
void
emitReadValue(std::vector<Instruction> &out, const ReadoutItem &item)
{
    std::uint64_t index = item.index;
    Opcode read_op = Opcode::RDPMC;
    switch (item.kind) {
      case ReadoutItem::Kind::FixedPmc:
        index |= sim::kRdpmcFixedBase;
        break;
      case ReadoutItem::Kind::ProgPmc:
        break;
      case ReadoutItem::Kind::Msr:
        read_op = Opcode::RDMSR;
        break;
    }
    out.push_back(makeInsn(Opcode::MOV,
                           {Operand::makeReg(Reg::RCX),
                            Operand::makeImm(
                                static_cast<std::int64_t>(index))}));
    out.push_back(makeInsn(read_op));
    // Combine EDX:EAX into RAX.
    out.push_back(makeInsn(Opcode::SHL, {Operand::makeReg(Reg::RDX),
                                         Operand::makeImm(32)}));
    out.push_back(makeInsn(Opcode::OR, {Operand::makeReg(Reg::RAX),
                                        Operand::makeReg(Reg::RDX)}));
}

/**
 * Emit a full readout block. In memory mode, values go to the m1/m2
 * slots and RAX/RCX/RDX are spilled/restored around the block so the
 * microbenchmark's registers survive (§III-B). In noMem mode, the first
 * readout subtracts from the accumulators and the second adds, leaving
 * m2-m1 in the accumulator registers (§III-I).
 */
void
emitReadout(std::vector<Instruction> &out, const GenParams &p,
            bool is_second)
{
    emitFence(out, p.serialize);

    if (p.noMem) {
        for (std::size_t i = 0; i < p.readouts.size(); ++i) {
            emitReadValue(out, p.readouts[i]);
            Reg accum = noMemAccumulators()[i];
            out.push_back(makeInsn(is_second ? Opcode::ADD : Opcode::SUB,
                                   {Operand::makeReg(accum),
                                    Operand::makeReg(Reg::RAX)}));
        }
        emitFence(out, p.serialize);
        return;
    }

    // Spill the registers the readout clobbers.
    Addr spill = p.resultBase + layout::kSpillOffset;
    out.push_back(makeInsn(Opcode::MOV,
                           {absMem(spill + 0), Operand::makeReg(Reg::RAX)}));
    out.push_back(makeInsn(Opcode::MOV,
                           {absMem(spill + 8), Operand::makeReg(Reg::RCX)}));
    out.push_back(makeInsn(Opcode::MOV, {absMem(spill + 16),
                                         Operand::makeReg(Reg::RDX)}));

    Addr slot_base = p.resultBase +
                     (is_second ? layout::kM2Offset : layout::kM1Offset);
    for (std::size_t i = 0; i < p.readouts.size(); ++i) {
        emitReadValue(out, p.readouts[i]);
        out.push_back(makeInsn(Opcode::MOV, {absMem(slot_base + 8 * i),
                                             Operand::makeReg(Reg::RAX)}));
    }

    // Restore the spilled registers.
    out.push_back(makeInsn(Opcode::MOV, {Operand::makeReg(Reg::RAX),
                                         absMem(spill + 0)}));
    out.push_back(makeInsn(Opcode::MOV, {Operand::makeReg(Reg::RCX),
                                         absMem(spill + 8)}));
    out.push_back(makeInsn(Opcode::MOV, {Operand::makeReg(Reg::RDX),
                                         absMem(spill + 16)}));

    emitFence(out, p.serialize);
}

void
checkGenParams(const GenParams &p)
{
    NB_ASSERT(!p.noMem || p.readouts.size() <= maxNoMemReadouts(),
              "too many readout items for noMem mode (max ",
              maxNoMemReadouts(), ")");
    NB_ASSERT(p.noMem || p.resultBase != 0,
              "memory-mode codegen needs a results area");
}

/** Whether the generated code wraps the body in the R15 loop. */
bool
hasLoop(const GenParams &p)
{
    return p.loopCount > 0 && p.localUnrollCount > 0;
}

/**
 * Everything before the body copies: init (line 3 of Algorithm 1),
 * the noMem accumulator zeroing, the m1 readout (line 4), and -- when
 * looping -- the loop-counter setup.
 */
std::vector<Instruction>
emitPreamble(const GenParams &p)
{
    std::vector<Instruction> out;
    out.insert(out.end(), p.init.begin(), p.init.end());

    // noMem: zero the accumulators before the first read.
    if (p.noMem) {
        for (std::size_t i = 0; i < p.readouts.size(); ++i) {
            Reg accum = noMemAccumulators()[i];
            out.push_back(makeInsn(Opcode::XOR,
                                   {Operand::makeReg(accum),
                                    Operand::makeReg(accum)}));
        }
    }

    emitReadout(out, p, false);

    if (hasLoop(p)) {
        out.push_back(makeInsn(
            Opcode::MOV,
            {Operand::makeReg(Reg::R15),
             Operand::makeImm(static_cast<std::int64_t>(p.loopCount))}));
    }
    return out;
}

/** The loop tail: decrement R15, jump back to the first body copy
 *  (the target is an absolute index into the full sequence). */
std::vector<Instruction>
emitLoopTail(std::uint64_t loop_head)
{
    std::vector<Instruction> out;
    out.push_back(makeInsn(Opcode::DEC, {Operand::makeReg(Reg::R15)}));
    Instruction jnz = makeInsn(Opcode::JNZ);
    jnz.targetIdx = static_cast<std::int32_t>(loop_head);
    out.push_back(jnz);
    return out;
}

/** The m2 readout (line 10 of Algorithm 1). */
std::vector<Instruction>
emitPostamble(const GenParams &p)
{
    std::vector<Instruction> out;
    emitReadout(out, p, true);
    return out;
}

} // namespace

std::vector<Instruction>
generateMeasurementCode(const GenParams &p)
{
    checkGenParams(p);

    std::vector<Instruction> out = emitPreamble(p);

    // Lines 5-9: the (possibly looped) unrolled body. Body-internal
    // branch targets are indices relative to the body start and are
    // relocated for each unrolled copy. localUnrollCount = 0 (basic
    // mode): no instructions at all between the two readouts, not
    // even the loop (§III-C).
    std::size_t loop_head = out.size();
    for (std::uint64_t u = 0; u < p.localUnrollCount; ++u) {
        std::size_t copy_start = out.size();
        for (const Instruction &insn : p.body) {
            Instruction relocated = insn;
            if (relocated.targetIdx >= 0) {
                relocated.targetIdx += static_cast<std::int32_t>(
                    copy_start);
            }
            out.push_back(std::move(relocated));
        }
    }
    if (hasLoop(p)) {
        auto tail = emitLoopTail(loop_head);
        out.insert(out.end(), tail.begin(), tail.end());
    }

    auto post = emitPostamble(p);
    out.insert(out.end(), post.begin(), post.end());
    return out;
}

std::vector<sim::Program::Segment>
buildMeasurementSegments(const GenParams &p)
{
    checkGenParams(p);

    std::vector<sim::Program::Segment> segments;
    segments.reserve(4);

    sim::Program::Segment pre;
    pre.code = emitPreamble(p);
    std::uint64_t loop_head = pre.code.size();
    segments.push_back(std::move(pre));

    if (p.localUnrollCount > 0) {
        // The whole point: the body is decoded once and repeated,
        // instead of being copied localUnrollCount times. Body-
        // internal branch targets stay pattern-relative; the executor
        // rebases them per copy.
        sim::Program::Segment body;
        body.code = p.body;
        body.repeat = p.localUnrollCount;
        segments.push_back(std::move(body));

        if (p.loopCount > 0) {
            sim::Program::Segment tail;
            tail.code = emitLoopTail(loop_head);
            tail.absoluteTargets = true; // back edge into the body block
            segments.push_back(std::move(tail));
        }
    }

    sim::Program::Segment post;
    post.code = emitPostamble(p);
    segments.push_back(std::move(post));

    return segments;
}

sim::Program
buildMeasurementProgram(const GenParams &p, const uarch::MicroArch &ua)
{
    return sim::Program::decode(ua, buildMeasurementSegments(p));
}

} // namespace nb::core
