/**
 * @file
 * Parallel campaign executor on the Engine pool.
 *
 * The paper's headline use case is uops.info-style campaigns that run
 * thousands of microbenchmarks per microarchitecture (§V). A campaign
 * takes a vector of BenchmarkSpecs and fans it out across N worker
 * threads. Guarantees:
 *
 *  - Isolation: each worker holds a private machine replica -- the
 *    pool key is (uarch, mode, seed, workerIndex) -- so the
 *    single-threaded Session invariant holds per worker. Replicas
 *    stay pooled in the Engine, so a second campaign on the same
 *    engine reuses warm machines.
 *
 *  - Order: the returned outcomes vector has exactly one entry per
 *    input spec, in input order, regardless of which worker ran it.
 *
 *  - Determinism: specs are assigned to workers by a static stride
 *    (worker w runs unique specs w, w+N, w+2N, ...), not by dynamic
 *    work stealing, so repeating a campaign with the same options
 *    against fresh machines (a new Engine, or after clearPool())
 *    produces identical results.
 *
 *  - Dedup: identical specs -- compared by a canonical key covering
 *    every BenchmarkSpec field -- are executed once and their result
 *    shared across all duplicate slots (opt out via
 *    CampaignOptions::dedup). Dedup happens before the fan-out, so
 *    it is deterministic too: a duplicate always resolves to the
 *    outcome of its first occurrence.
 *
 * Alongside the outcomes the executor returns a CampaignReport with
 * wall time, per-worker spec counts, an error histogram by
 * RunError::Code, and cache-hit stats; the report serializes to JSON
 * (round-trippable) and CSV in the same dialect as BenchmarkResult.
 */

#ifndef NB_CORE_CAMPAIGN_HH
#define NB_CORE_CAMPAIGN_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace nb
{

/**
 * Cooperative cancellation for campaigns. Workers poll the token at
 * every spec pickup; once cancelled, no new specs start, in-flight
 * specs finish, and every spec that never ran settles as a typed
 * RunError::Code::Cancelled outcome in a partial CampaignReport.
 * cancel() is one relaxed atomic store, so it is safe to call from a
 * signal handler (the CLI's SIGINT path) or any thread.
 */
class CancelToken
{
  public:
    void cancel() { flag_.store(true, std::memory_order_relaxed); }
    bool
    cancelled() const
    {
        return flag_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> flag_{false};
};

/**
 * Install a process SIGINT handler that cancels @p token (keeping it
 * alive until cleared). The handler performs one relaxed atomic store
 * -- async-signal-safe -- and leaves writing partial reports and
 * flushing checkpoints to the interrupted campaign's normal exit
 * path. Pass nullptr (or call clearSigintCancel()) to restore the
 * default disposition.
 */
void installSigintCancel(std::shared_ptr<CancelToken> token);
void clearSigintCancel();

/**
 * One campaign progress event. Two events fire per unique spec: one
 * with starting == true when a worker picks it up (so long-running
 * campaigns are attributable -- the callback sees *which* spec is in
 * flight, not just a count), and one with starting == false when it
 * settles (done then includes the spec and its dedup duplicates).
 */
struct CampaignProgress
{
    /** Input specs settled so far (duplicates settle together). */
    std::size_t done = 0;
    /** Total input specs. */
    std::size_t total = 0;
    /** Canonical key (specCanonicalKey) of the spec in flight. */
    std::string specKey;
    /** Human-readable one-line echo (BenchmarkSpec::summary). */
    std::string specLabel;
    /** true: the spec just started on a worker; false: it settled. */
    bool starting = false;
};

/** Options for Engine::runCampaign(). */
struct CampaignOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency()
     *  (clamped to the number of unique specs). */
    unsigned jobs = 0;

    /** The worker count jobs resolves to: itself if non-zero, else
     *  hardware_concurrency(), never less than 1. runCampaign() uses
     *  this (and additionally clamps to the unique-spec count), so a
     *  zero never reaches the worker setup. */
    unsigned resolvedJobs() const;
    /** Execute identical specs once and share the outcome. */
    bool dedup = true;
    /** Machine selection for the workers. The replica field is
     *  overwritten with each worker's index. */
    SessionOptions session;
    /**
     * Reset each worker's machine micro-state before every unique
     * spec: instead of running on a pooled replica (whose simulated
     * caches, predictors, and RNG carry the history of earlier specs),
     * the worker constructs a fresh machine + runner pair per spec,
     * applies machineSetup, runs the spec, and discards the machine.
     *
     * This makes every outcome a pure function of its spec: -jobs N
     * results are bit-identical to -jobs 1 (and to any other layout),
     * which is what the profile/table golden gates rely on. The cost
     * is one full machine construction per unique spec (~2x a typical
     * short campaign; more for campaigns of very cheap specs) --
     * hence opt-in, default off.
     */
    bool freshMachinePerSpec = false;
    /**
     * Machine preparation hook, run on a worker's runner before it
     * executes any spec (and, with freshMachinePerSpec, on every
     * fresh machine before its spec). Campaign planners use this to
     * reproduce the machine state their specs assume -- e.g. the
     * profile builder reserves the R14 area its planned addresses
     * point into and disables the hardware prefetchers. Invoked
     * concurrently from worker threads, each on its own runner, so it
     * must not touch shared mutable state; pooled workers may have
     * run earlier campaigns, so the hook should be idempotent (e.g.
     * only reserve an area if the current one is too small).
     */
    std::function<void(core::Runner &)> machineSetup;
    /**
     * Called when a spec starts on a worker and again when it settles
     * (see CampaignProgress). Invoked from worker threads under a
     * campaign-internal mutex, so the callback itself need not be
     * thread-safe; it must not call back into the campaign.
     */
    std::function<void(const CampaignProgress &)> progress;
    /**
     * Span tracer (not owned; may be null). When set and enabled, the
     * campaign records a whole-campaign span plus one span per unique
     * spec on its worker's lane (tid = worker index), Perfetto-ready
     * via obs::Tracer::writeFile. A null or disabled tracer costs one
     * predicted branch per spec.
     */
    obs::Tracer *trace = nullptr;
    /**
     * Attach a per-worker sim::ExecObserver to each worker's machine
     * for the duration of the campaign, and fold the totals into the
     * process registry ("campaign.observed.*" counters). Observation
     * never perturbs outcomes (the parity tests pin bit-identity), so
     * golden tables may be regenerated with this on.
     */
    bool observe = false;
    /**
     * Default cycle budget (0 = none) for specs that do not carry
     * their own BenchmarkSpec::cycleBudget. Applied to the resolved
     * spec at execution time -- after dedup keys are computed -- so
     * canonical keys, dedup behavior, and golden artifacts are
     * unaffected; only a runaway spec can observe the difference (it
     * settles as RunError::Code::BudgetExceeded instead of hanging a
     * worker). The table/profile builders arm this so a planner bug
     * can never hang a golden-regeneration CI job.
     */
    std::uint64_t specBudget = 0;
    /**
     * Retry a spec whose outcome is a *transient* error (see
     * RunError::transient) up to this many times, with a short
     * exponential backoff between attempts. Permanent errors fail
     * fast. Retries count into CampaignReport::retries and the
     * "campaign.retries.*" process counters.
     */
    unsigned maxRetries = 0;
    /**
     * Checkpoint journal path (empty = off). The campaign appends one
     * line per settled unique spec -- its canonical key and full
     * outcome -- flushing every checkpointEvery entries, so a killed
     * or cancelled campaign can be resumed. Write failures degrade
     * (the campaign finishes without a journal) rather than abort.
     */
    std::string checkpoint;
    /** Settled unique specs between checkpoint flushes. */
    std::size_t checkpointEvery = 16;
    /**
     * Resume from a checkpoint journal written by a previous
     * (interrupted) run of the same campaign: unique specs whose
     * canonical keys appear in the journal settle from their recorded
     * outcomes without executing; everything else runs normally. The
     * journal's uarch/mode must match the campaign's (canonical keys
     * do not cover them). A truncated trailing line -- the kill -9
     * case -- is ignored. The resulting outcomes and report are
     * bit-identical (modulo wall-time fields) to an uninterrupted
     * run when the campaign is deterministic (freshMachinePerSpec).
     */
    std::string resume;
    /** Cooperative cancellation (may be null; see CancelToken). */
    std::shared_ptr<CancelToken> cancel;
};

/**
 * The CampaignOptions::specBudget the table/profile builders arm by
 * default: generous enough that no sane characterization spec gets
 * near it (the longest golden-table specs retire well under 10M
 * cycles), so golden artifacts stay byte-identical, while a planner
 * bug that would otherwise hang a builder job settles as a
 * BudgetExceeded outcome in seconds.
 */
inline constexpr std::uint64_t kBuilderSpecBudget = 2'000'000'000;

/** Execution statistics of one campaign. */
struct CampaignReport
{
    /** Worker threads actually used. */
    unsigned jobs = 0;
    /** Input specs submitted. */
    std::size_t totalSpecs = 0;
    /** Specs actually executed after dedup. */
    std::size_t uniqueSpecs = 0;
    /** Input specs served from the dedup cache. */
    std::size_t cacheHits = 0;
    /** Outcomes (over all input specs) that were ok(). */
    std::size_t okCount = 0;
    /** Wall-clock time of the whole campaign in seconds. */
    double wallSeconds = 0.0;
    /** Specs executed by each worker (size == jobs). */
    std::vector<std::size_t> perWorkerSpecs;
    /** Wall-clock seconds each worker spent in its run loop (size ==
     *  jobs): the spread is the static-stride load imbalance. */
    std::vector<double> perWorkerSeconds;
    /** Aggregate per-phase runner time across all workers
     *  (obs::Phase): where the campaign's CPU time actually went. */
    obs::PhaseTimes phaseTimes;
    /** Failed outcomes (over all input specs) by RunError code,
     *  indexed by static_cast<unsigned>(RunError::Code). */
    std::vector<std::size_t> errorHistogram =
        std::vector<std::size_t>(kNumRunErrorCodes, 0);
    /** Transient-failure retry attempts across all workers. */
    std::size_t retries = 0;
    /** Unique specs settled from the resume journal (not executed). */
    std::size_t resumedSpecs = 0;
    /** True if the campaign was cancelled before completing; specs
     *  that never ran settled as RunError::Code::Cancelled. */
    bool cancelled = false;
    /** Engine::telemetry() snapshot taken when the campaign finished:
     *  how hard the machine pool, program cache, and process-wide
     *  memos worked. (The memos aggregate over the whole process, not
     *  just this campaign -- see telemetry.hh.) */
    EngineTelemetry telemetry;

    /** Failed outcomes over all input specs. */
    std::size_t errorCount() const;

    /** Serialize to a self-contained JSON object. */
    std::string toJson() const;

    /** Serialize to CSV ("key,value" rows, the BenchmarkResult
     *  dialect). */
    std::string toCsv() const;

    /** Parse a report back from toJson() output.
     *  @throws nb::FatalError on malformed input. */
    static CampaignReport fromJson(const std::string &text);
};

/** Everything Engine::runCampaign() produces. */
struct CampaignResult
{
    /** One outcome per input spec, in input order. */
    std::vector<RunOutcome> outcomes;
    CampaignReport report;
};

/**
 * One parsed spec-file line: either a ready BenchmarkSpec or a parse
 * error. A malformed line (unknown option, bad aggregate name, ...)
 * must not kill a whole campaign, so errors are per-entry data; the
 * message carries the 1-based line number.
 */
struct SpecFileEntry
{
    std::size_t lineNumber = 0;
    core::BenchmarkSpec spec;
    /** Set iff the line failed to parse; spec is meaningless then. */
    std::optional<RunError> error;
};

/**
 * Parse spec-file text: one benchmark per line, '#' starts a comment,
 * blank lines are skipped. A plain line is an -asm style benchmark
 * body. A line starting with '-' is parsed as per-line options
 * (double-quote aware), e.g.:
 *
 *     -asm "div RBX" -agg min -unroll_count 10
 *
 * supporting -asm, -asm_init, -unroll_count, -loop_count,
 * -n_measurements, -warm_up_count, -agg, -serialize, -basic_mode,
 * -no_mem, -aperf_mperf, and -config FILE (a per-line counter-config
 * file, so one campaign can mix event sets; an unreadable path
 * reports as that line's error). Each line's spec starts from
 * @p defaults. Never throws for line-level problems: malformed lines
 * come back as entries with error set, in position.
 */
std::vector<SpecFileEntry> parseSpecLines(
    const std::string &text, const core::BenchmarkSpec &defaults);

/**
 * Canonical text key of a spec: two specs compare equal (for campaign
 * dedup) iff their keys are equal. Covers every BenchmarkSpec field,
 * including pre-assembled code (by its encoding) and the counter
 * config. Lives at the spec level (core/runner.hh) since the Runner's
 * measurement-program cache keys on it too; re-exported here for the
 * campaign-facing callers. specHash is its stable FNV-1a hash.
 */
using core::specCanonicalKey;
using core::specHash;

} // namespace nb

#endif // NB_CORE_CAMPAIGN_HH
