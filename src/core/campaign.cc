/**
 * @file
 * Campaign executor implementation.
 *
 * The fan-out is deliberately simple: dedup first (so the work list
 * and the duplicate resolution are fixed before any thread starts),
 * then static strided assignment of the unique work list across the
 * workers. No dynamic work stealing -- a campaign's spec-to-worker
 * mapping is a pure function of (specs, options), which is what makes
 * repeated campaigns against fresh machines bit-identical (the
 * determinism guarantee in campaign.hh).
 */

#include "campaign.hh"

#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <exception>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/strings.hh"
#include "core/json.hh"
#include "core/result.hh"
#include "fault/fault.hh"
#include "uarch/uarch.hh"

namespace nb
{

namespace
{

/** Split a spec-file line into tokens, honouring double quotes
 *  ("add RAX, RBX" is one token, quotes stripped). Returns nullopt
 *  for an unterminated quote. */
std::optional<std::vector<std::string>>
tokenizeSpecLine(const std::string &line)
{
    std::vector<std::string> tokens;
    std::string token;
    bool in_token = false;
    bool quoted = false;
    for (char c : line) {
        if (quoted) {
            if (c == '"')
                quoted = false;
            else
                token += c;
        } else if (c == '"') {
            quoted = true;
            in_token = true;
        } else if (std::isspace(static_cast<unsigned char>(c))) {
            if (in_token) {
                tokens.push_back(std::move(token));
                token.clear();
                in_token = false;
            }
        } else {
            token += c;
            in_token = true;
        }
    }
    if (quoted)
        return std::nullopt;
    if (in_token)
        tokens.push_back(std::move(token));
    return tokens;
}

} // namespace

unsigned
CampaignOptions::resolvedJobs() const
{
    unsigned n = jobs != 0 ? jobs : std::thread::hardware_concurrency();
    return std::max(1u, n);
}

std::vector<SpecFileEntry>
parseSpecLines(const std::string &text,
               const core::BenchmarkSpec &defaults)
{
    std::vector<SpecFileEntry> entries;
    // Parse failures become per-entry data; keep fatal()'s courtesy
    // stderr print quiet for them (the CLI reports them in position).
    ScopedFatalMessageSuppression suppress_fatal_prints;
    std::size_t line_no = 0;
    for (const auto &raw : split(text, '\n')) {
        ++line_no;
        std::string line = trim(raw);
        if (line.empty() || line[0] == '#')
            continue;

        SpecFileEntry entry;
        entry.lineNumber = line_no;
        entry.spec = defaults;
        entry.spec.asmCode.clear();
        entry.spec.code.clear();

        auto fail = [&](const std::string &why) {
            entry.error = RunError{RunError::Code::InvalidSpec,
                                   "spec file line " +
                                       std::to_string(line_no) + ": " +
                                       why};
        };

        // A plain line is the benchmark body verbatim (the original
        // spec-file format); options start with '-'.
        if (line[0] != '-') {
            entry.spec.asmCode = line;
            entries.push_back(std::move(entry));
            continue;
        }

        auto tokens = tokenizeSpecLine(line);
        if (!tokens) {
            fail("unterminated quote");
            entries.push_back(std::move(entry));
            continue;
        }
        for (std::size_t t = 0; t < tokens->size() && !entry.error;
             ++t) {
            const std::string &opt = (*tokens)[t];
            auto value = [&]() -> std::optional<std::string> {
                if (t + 1 >= tokens->size()) {
                    fail("missing value for option " + opt);
                    return std::nullopt;
                }
                return (*tokens)[++t];
            };
            auto count = [&](const std::string &v)
                -> std::optional<std::uint64_t> {
                auto parsed = parseInt(v);
                if (!parsed || *parsed < 0) {
                    fail("bad value '" + v + "' for option " + opt);
                    return std::nullopt;
                }
                return static_cast<std::uint64_t>(*parsed);
            };
            try {
                if (opt == "-asm") {
                    if (auto v = value())
                        entry.spec.asmCode = *v;
                } else if (opt == "-asm_init") {
                    if (auto v = value())
                        entry.spec.asmInit = *v;
                } else if (opt == "-unroll_count") {
                    if (auto v = value())
                        if (auto n = count(*v))
                            entry.spec.unrollCount = *n;
                } else if (opt == "-loop_count") {
                    if (auto v = value())
                        if (auto n = count(*v))
                            entry.spec.loopCount = *n;
                } else if (opt == "-n_measurements") {
                    if (auto v = value())
                        if (auto n = count(*v))
                            entry.spec.nMeasurements =
                                static_cast<unsigned>(*n);
                } else if (opt == "-warm_up_count") {
                    if (auto v = value())
                        if (auto n = count(*v))
                            entry.spec.warmUpCount =
                                static_cast<unsigned>(*n);
                } else if (opt == "-agg") {
                    // parseAggregate fatal()s on unknown names; keep
                    // that as a per-line error, not a process exit.
                    if (auto v = value())
                        entry.spec.agg = parseAggregate(*v);
                } else if (opt == "-serialize") {
                    if (auto v = value())
                        entry.spec.serialize =
                            core::parseSerializeMode(*v);
                } else if (opt == "-basic_mode") {
                    entry.spec.basicMode = true;
                } else if (opt == "-no_mem") {
                    entry.spec.noMem = true;
                } else if (opt == "-aperf_mperf") {
                    entry.spec.aperfMperf = true;
                } else if (opt == "-lint_level") {
                    if (auto v = value()) {
                        auto level = core::lintLevelFromName(*v);
                        if (!level) {
                            fail("bad value '" + *v +
                                 "' for option -lint_level (use "
                                 "off, warn, or error)");
                        } else {
                            entry.spec.lintLevel = *level;
                        }
                    }
                } else if (opt == "-config") {
                    // Per-line counter configs (§III-J): one campaign
                    // can mix event sets. parseFile fatal()s on an
                    // unreadable path; keep that per-line too.
                    if (auto v = value())
                        entry.spec.config =
                            core::CounterConfig::parseFile(*v);
                } else {
                    fail("unknown option '" + opt + "'");
                }
            } catch (const FatalError &e) {
                fail(e.what());
            }
        }
        if (!entry.error && entry.spec.asmCode.empty())
            fail("option line has no -asm body");
        entries.push_back(std::move(entry));
    }
    return entries;
}

// ------------------------------------------------------ cancellation --

namespace
{

/** The token the SIGINT handler cancels. The handler itself only
 *  performs a relaxed atomic store through the raw pointer; the
 *  shared_ptr (mutated only from installSigintCancel/clear, normal
 *  context) keeps the token alive while the handler is installed. */
std::atomic<CancelToken *> sigintToken{nullptr};
std::shared_ptr<CancelToken> sigintOwner;

extern "C" void
nbSigintHandler(int)
{
    if (CancelToken *token =
            sigintToken.load(std::memory_order_relaxed))
        token->cancel();
}

} // namespace

void
installSigintCancel(std::shared_ptr<CancelToken> token)
{
    if (!token) {
        clearSigintCancel();
        return;
    }
    sigintOwner = token;
    sigintToken.store(token.get(), std::memory_order_relaxed);
    std::signal(SIGINT, &nbSigintHandler);
}

void
clearSigintCancel()
{
    std::signal(SIGINT, SIG_DFL);
    sigintToken.store(nullptr, std::memory_order_relaxed);
    sigintOwner.reset();
}

// ----------------------------------------------------- checkpointing --

namespace
{

/** Flatten a multi-line JSON emission onto one journal line. Only
 *  structural whitespace is affected: jsonEscape encodes embedded
 *  newlines as
, so string contents survive. */
std::string
flattenJson(std::string text)
{
    for (char &c : text)
        if (c == '\n')
            c = ' ';
    while (!text.empty() && text.back() == ' ')
        text.pop_back();
    return text;
}

/** One journal line for a settled unique spec: canonical key plus
 *  the full outcome, round-trippable. */
std::string
journalLine(const std::string &key, const RunOutcome &outcome)
{
    std::ostringstream os;
    os << "{\"key\": \"" << core::jsonEscape(key) << "\", \"ok\": "
       << (outcome.ok() ? 1 : 0);
    if (outcome.ok()) {
        os << ", \"result\": "
           << flattenJson(outcome.result().toJson());
    } else {
        const RunError &error = outcome.error();
        os << ", \"code\": \"" << runErrorCodeName(error.code)
           << "\", \"transient\": " << (error.transient ? 1 : 0)
           << ", \"message\": \"" << core::jsonEscape(error.message)
           << "\"";
    }
    os << "}";
    return os.str();
}

/** The journal header: schema version plus the campaign identity
 *  fields canonical keys do not cover. */
std::string
journalHeader(const std::string &uarch, const std::string &mode,
              std::size_t total, std::size_t unique)
{
    std::ostringstream os;
    os << "{\"nb_checkpoint\": 1, \"uarch\": \""
       << core::jsonEscape(uarch) << "\", \"mode\": \""
       << core::jsonEscape(mode) << "\", \"total_specs\": " << total
       << ", \"unique_specs\": " << unique << "}";
    return os.str();
}

/** Parse one journal entry line into (key, outcome). @throws
 *  nb::FatalError on malformed input (the caller decides whether a
 *  bad line is fatal or just the torn tail of a killed writer). */
std::pair<std::string, RunOutcome>
parseJournalLine(const std::string &line)
{
    core::JsonCursor cur(line);
    std::string key;
    bool have_key = false;
    bool ok = false;
    bool have_ok = false;
    std::optional<core::BenchmarkResult> result;
    RunError error;
    cur.expect('{');
    if (!cur.tryConsume('}')) {
        do {
            std::string field = cur.parseString();
            cur.expect(':');
            if (field == "key") {
                key = cur.parseString();
                have_key = true;
            } else if (field == "ok") {
                ok = cur.parseNumber() != 0;
                have_ok = true;
            } else if (field == "result") {
                // Re-parse the nested result with its own reader:
                // capture the raw object extent, then hand it over.
                result = core::BenchmarkResult::fromJson(
                    cur.captureValue());
            } else if (field == "code") {
                std::string name = cur.parseString();
                auto code = runErrorCodeFromName(name);
                if (!code)
                    fatal("checkpoint: unknown error code '", name,
                          "'");
                error.code = *code;
            } else if (field == "transient") {
                error.transient = cur.parseNumber() != 0;
            } else if (field == "message") {
                error.message = cur.parseString();
            } else {
                cur.skipValue();
            }
        } while (cur.tryConsume(','));
        cur.expect('}');
    }
    cur.expectEnd();
    if (!have_key || !have_ok)
        fatal("checkpoint: journal line missing key/ok fields");
    if (ok) {
        if (!result)
            fatal("checkpoint: ok entry without a result");
        return {std::move(key), RunOutcome(std::move(*result))};
    }
    return {std::move(key), RunOutcome(std::move(error))};
}

/**
 * Load a checkpoint journal for resumption. Returns canonical key ->
 * recorded outcome. Fatal on an unreadable file, a bad header, or a
 * campaign-identity mismatch; a malformed *trailing* entry line (the
 * torn write of a killed process) is skipped with a warning, but a
 * malformed line in the middle is fatal (the journal is line-append
 * only, so corruption there means the file is not what it claims).
 */
std::unordered_map<std::string, RunOutcome>
loadCheckpoint(const std::string &path, const std::string &uarch,
               const std::string &mode)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read checkpoint '", path, "'");
    std::string line;
    if (!std::getline(in, line))
        fatal("checkpoint '", path, "' is empty");
    // Header: require the schema marker and matching identity.
    {
        core::JsonCursor cur(line);
        bool versioned = false;
        std::string ck_uarch;
        std::string ck_mode;
        cur.expect('{');
        if (!cur.tryConsume('}')) {
            do {
                std::string field = cur.parseString();
                cur.expect(':');
                if (field == "nb_checkpoint") {
                    versioned = cur.parseNumber() == 1;
                } else if (field == "uarch") {
                    ck_uarch = cur.parseString();
                } else if (field == "mode") {
                    ck_mode = cur.parseString();
                } else {
                    cur.skipValue();
                }
            } while (cur.tryConsume(','));
            cur.expect('}');
        }
        if (!versioned)
            fatal("'", path, "' is not a version-1 nanoBench ",
                  "checkpoint journal");
        if (ck_uarch != uarch || ck_mode != mode) {
            fatal("checkpoint '", path, "' was written for ",
                  ck_uarch, "/", ck_mode, ", not ", uarch, "/", mode,
                  " (canonical spec keys do not cover the uarch, so ",
                  "cross-machine resumption would corrupt results)");
        }
    }
    std::unordered_map<std::string, RunOutcome> outcomes;
    std::vector<std::string> pending;
    while (std::getline(in, line)) {
        if (!trim(line).empty())
            pending.push_back(line);
    }
    for (std::size_t i = 0; i < pending.size(); ++i) {
        try {
            auto [key, outcome] = parseJournalLine(pending[i]);
            outcomes.insert_or_assign(std::move(key),
                                      std::move(outcome));
        } catch (const FatalError &e) {
            if (i + 1 == pending.size()) {
                warn("checkpoint '", path, "': ignoring torn final ",
                     "entry (", e.what(), ")");
                break;
            }
            fatal("checkpoint '", path, "' entry ", i + 1,
                  " is corrupt: ", e.what());
        }
    }
    return outcomes;
}

} // namespace

// ------------------------------------------------------------ report --

std::size_t
CampaignReport::errorCount() const
{
    std::size_t total = 0;
    for (std::size_t count : errorHistogram)
        total += count;
    return total;
}

std::string
CampaignReport::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"jobs\": " << jobs << ",\n";
    os << "  \"total_specs\": " << totalSpecs << ",\n";
    os << "  \"unique_specs\": " << uniqueSpecs << ",\n";
    os << "  \"cache_hits\": " << cacheHits << ",\n";
    os << "  \"ok\": " << okCount << ",\n";
    os << "  \"retries\": " << retries << ",\n";
    os << "  \"resumed_specs\": " << resumedSpecs << ",\n";
    // The JSON subset has no booleans (core/json.hh): 0/1.
    os << "  \"cancelled\": " << (cancelled ? 1 : 0) << ",\n";
    os << "  \"wall_seconds\": " << core::exactDouble(wallSeconds)
       << ",\n";
    os << "  \"per_worker_specs\": [";
    for (std::size_t i = 0; i < perWorkerSpecs.size(); ++i)
        os << (i ? ", " : "") << perWorkerSpecs[i];
    os << "],\n";
    os << "  \"per_worker_seconds\": [";
    for (std::size_t i = 0; i < perWorkerSeconds.size(); ++i)
        os << (i ? ", " : "") << core::exactDouble(perWorkerSeconds[i]);
    os << "],\n";
    os << "  \"phases\": {";
    for (unsigned i = 0; i < obs::kNumPhases; ++i) {
        os << (i ? ", " : "") << "\""
           << obs::phaseName(static_cast<obs::Phase>(i))
           << "\": " << phaseTimes.ns[i];
    }
    os << "},\n";
    os << "  \"errors\": {";
    bool first = true;
    for (unsigned i = 0; i < errorHistogram.size(); ++i) {
        if (!errorHistogram[i])
            continue;
        os << (first ? "" : ", ") << "\""
           << core::jsonEscape(
                  runErrorCodeName(static_cast<RunError::Code>(i)))
           << "\": " << errorHistogram[i];
        first = false;
    }
    os << "},\n";
    // Embed the telemetry snapshot as a nested object (whitespace
    // inside it is irrelevant to the reader).
    std::string tj = telemetry.toJson();
    while (!tj.empty() && tj.back() == '\n')
        tj.pop_back();
    os << "  \"telemetry\": " << tj << "\n";
    os << "}\n";
    return os.str();
}

std::string
CampaignReport::toCsv() const
{
    std::ostringstream os;
    os << "# campaign report\n";
    os << "key,value\n";
    os << "jobs," << jobs << "\n";
    os << "total_specs," << totalSpecs << "\n";
    os << "unique_specs," << uniqueSpecs << "\n";
    os << "cache_hits," << cacheHits << "\n";
    os << "ok," << okCount << "\n";
    os << "retries," << retries << "\n";
    os << "resumed_specs," << resumedSpecs << "\n";
    os << "cancelled," << (cancelled ? 1 : 0) << "\n";
    os << "wall_seconds," << core::exactDouble(wallSeconds) << "\n";
    for (std::size_t i = 0; i < perWorkerSpecs.size(); ++i)
        os << "worker_" << i << "_specs," << perWorkerSpecs[i] << "\n";
    for (std::size_t i = 0; i < perWorkerSeconds.size(); ++i) {
        os << "worker_" << i << "_seconds,"
           << core::exactDouble(perWorkerSeconds[i]) << "\n";
    }
    for (unsigned i = 0; i < obs::kNumPhases; ++i) {
        os << "phase_" << obs::phaseName(static_cast<obs::Phase>(i))
           << "_ns," << phaseTimes.ns[i] << "\n";
    }
    for (unsigned i = 0; i < errorHistogram.size(); ++i) {
        if (!errorHistogram[i])
            continue;
        os << core::csvEscape(
                  std::string("error_") +
                  runErrorCodeName(static_cast<RunError::Code>(i)))
           << "," << errorHistogram[i] << "\n";
    }
    // Telemetry rows ride along, minus their own two header lines.
    std::string tcsv = telemetry.toCsv();
    std::size_t skip = tcsv.find('\n');
    skip = tcsv.find('\n', skip + 1);
    os << tcsv.substr(skip + 1);
    return os.str();
}

CampaignReport
CampaignReport::fromJson(const std::string &text)
{
    CampaignReport report;
    report.errorHistogram.assign(kNumRunErrorCodes, 0);
    core::JsonCursor cur(text);
    cur.expect('{');
    if (!cur.tryConsume('}')) {
        do {
            std::string key = cur.parseString();
            cur.expect(':');
            if (key == "jobs") {
                report.jobs =
                    static_cast<unsigned>(cur.parseNumber());
            } else if (key == "total_specs") {
                report.totalSpecs =
                    static_cast<std::size_t>(cur.parseNumber());
            } else if (key == "unique_specs") {
                report.uniqueSpecs =
                    static_cast<std::size_t>(cur.parseNumber());
            } else if (key == "cache_hits") {
                report.cacheHits =
                    static_cast<std::size_t>(cur.parseNumber());
            } else if (key == "ok") {
                report.okCount =
                    static_cast<std::size_t>(cur.parseNumber());
            } else if (key == "retries") {
                report.retries =
                    static_cast<std::size_t>(cur.parseNumber());
            } else if (key == "resumed_specs") {
                report.resumedSpecs =
                    static_cast<std::size_t>(cur.parseNumber());
            } else if (key == "cancelled") {
                report.cancelled = cur.parseNumber() != 0;
            } else if (key == "wall_seconds") {
                report.wallSeconds = cur.parseNumber();
            } else if (key == "per_worker_specs") {
                cur.expect('[');
                if (!cur.tryConsume(']')) {
                    do {
                        report.perWorkerSpecs.push_back(
                            static_cast<std::size_t>(
                                cur.parseNumber()));
                    } while (cur.tryConsume(','));
                    cur.expect(']');
                }
            } else if (key == "per_worker_seconds") {
                cur.expect('[');
                if (!cur.tryConsume(']')) {
                    do {
                        report.perWorkerSeconds.push_back(
                            cur.parseNumber());
                    } while (cur.tryConsume(','));
                    cur.expect(']');
                }
            } else if (key == "phases") {
                cur.expect('{');
                if (!cur.tryConsume('}')) {
                    do {
                        std::string name = cur.parseString();
                        cur.expect(':');
                        double ns = cur.parseNumber();
                        unsigned idx = obs::phaseIndexFromName(name);
                        if (idx >= obs::kNumPhases)
                            fatal("campaign report: unknown phase '",
                                  name, "'");
                        report.phaseTimes.ns[idx] =
                            static_cast<std::uint64_t>(ns);
                    } while (cur.tryConsume(','));
                    cur.expect('}');
                }
            } else if (key == "errors") {
                cur.expect('{');
                if (!cur.tryConsume('}')) {
                    do {
                        std::string name = cur.parseString();
                        cur.expect(':');
                        double count = cur.parseNumber();
                        auto code = runErrorCodeFromName(name);
                        if (!code)
                            fatal("campaign report: unknown error "
                                  "code '", name, "'");
                        report.errorHistogram[static_cast<unsigned>(
                            *code)] =
                            static_cast<std::size_t>(count);
                    } while (cur.tryConsume(','));
                    cur.expect('}');
                }
            } else if (key == "telemetry") {
                report.telemetry = EngineTelemetry::parse(cur);
            } else {
                cur.skipValue();
            }
        } while (cur.tryConsume(','));
        cur.expect('}');
    }
    cur.expectEnd();
    return report;
}

// ---------------------------------------------------------- executor --

CampaignResult
Engine::runCampaign(const std::vector<core::BenchmarkSpec> &specs,
                    const CampaignOptions &options)
{
    auto start = std::chrono::steady_clock::now();

    // Resolve the session options once on this thread: unknown uarchs
    // and unreadable config files throw here, before any worker
    // starts, and workers do not repeat the file parse.
    SessionOptions session_opt = options.session;
    if (session_opt.config.empty() && !session_opt.configFile.empty())
        session_opt.config =
            core::CounterConfig::parseFile(session_opt.configFile);
    session_opt.configFile.clear();
    uarch::getMicroArch(session_opt.uarch);

    // Dedup pass: uniqueIdx lists the spec indices to execute;
    // sourceOf maps every input spec to its position in uniqueIdx.
    std::vector<std::size_t> uniqueIdx;
    std::vector<std::size_t> sourceOf(specs.size());
    std::vector<std::size_t> multiplicity;
    if (options.dedup) {
        std::unordered_map<std::string, std::size_t> seen;
        seen.reserve(specs.size());
        for (std::size_t i = 0; i < specs.size(); ++i) {
            auto [it, inserted] = seen.emplace(
                specCanonicalKey(specs[i]), uniqueIdx.size());
            if (inserted) {
                uniqueIdx.push_back(i);
                multiplicity.push_back(1);
            } else {
                ++multiplicity[it->second];
            }
            sourceOf[i] = it->second;
        }
    } else {
        uniqueIdx.resize(specs.size());
        multiplicity.assign(specs.size(), 1);
        for (std::size_t i = 0; i < specs.size(); ++i) {
            uniqueIdx[i] = i;
            sourceOf[i] = i;
        }
    }

    std::size_t unique_count = uniqueIdx.size();
    unsigned jobs = static_cast<unsigned>(std::min<std::size_t>(
        options.resolvedJobs(), unique_count));

    CampaignResult campaign;
    campaign.report.jobs = jobs;
    campaign.report.totalSpecs = specs.size();
    campaign.report.uniqueSpecs = unique_count;
    campaign.report.cacheHits = specs.size() - unique_count;
    campaign.report.perWorkerSpecs.assign(jobs, 0);
    campaign.report.perWorkerSeconds.assign(jobs, 0.0);

    // Keys and labels for progress events and trace spans, resolved
    // once outside the workers (and not at all when nobody listens).
    obs::Tracer *tracer = options.trace && options.trace->enabled()
                              ? options.trace
                              : nullptr;
    std::vector<std::string> spec_keys;
    std::vector<std::string> spec_labels;
    bool journalling =
        !options.checkpoint.empty() || !options.resume.empty();
    if (options.progress || tracer || journalling) {
        spec_keys.resize(unique_count);
        spec_labels.resize(unique_count);
        for (std::size_t u = 0; u < unique_count; ++u) {
            spec_keys[u] = specCanonicalKey(specs[uniqueIdx[u]]);
            spec_labels[u] = specs[uniqueIdx[u]].summary();
        }
    }
    if (tracer) {
        // The whole-campaign span lives on its own lane past the
        // worker lanes (tid = worker index).
        tracer->nameLane(jobs, "campaign");
        tracer->begin(jobs, "campaign", "specs",
                      std::to_string(specs.size()));
    }

    // Per-worker accounting sinks, folded into the report (and, for
    // the observers, the process registry) after the join.
    std::vector<obs::PhaseTimes> worker_phases(jobs);
    std::vector<sim::ExecObserver> observers(jobs);

    // RunOutcome has no default state, hence the optional wrapper;
    // every slot is filled unless a worker aborted by exception.
    std::vector<std::optional<RunOutcome>> unique_outcomes(
        unique_count);

    std::mutex progress_mutex;
    std::size_t settled = 0;
    std::atomic<bool> abort{false};
    std::atomic<std::size_t> total_retries{0};
    std::exception_ptr failure;
    CancelToken *cancel = options.cancel.get();

    // Resumption: pre-fill unique outcomes recorded by an earlier,
    // interrupted campaign. Workers skip filled slots, so a resumed
    // campaign only executes the remainder -- and because duplicate
    // resolution happens after the workers anyway, the final report
    // is shaped exactly like an uninterrupted run's.
    if (!options.resume.empty()) {
        auto recorded =
            loadCheckpoint(options.resume, session_opt.uarch,
                           core::modeName(session_opt.mode));
        for (std::size_t u = 0; u < unique_count; ++u) {
            auto it = recorded.find(spec_keys[u]);
            if (it == recorded.end())
                continue;
            unique_outcomes[u] = it->second;
            ++campaign.report.resumedSpecs;
            settled += multiplicity[u];
        }
        obs::Registry::process()
            .counter("campaign.checkpoint.resumed")
            .add(campaign.report.resumedSpecs);
    }

    // Checkpoint journal: header first, then one line per settled
    // unique spec (resumed entries are re-recorded immediately so the
    // new journal is complete on its own). Entry writes happen under
    // progress_mutex; flushes are batched (options.checkpointEvery).
    std::ofstream checkpoint_out;
    std::size_t checkpoint_unflushed = 0;
    if (!options.checkpoint.empty()) {
        checkpoint_out.open(options.checkpoint,
                            std::ios::out | std::ios::trunc);
        if (!checkpoint_out)
            fatal("cannot write checkpoint '", options.checkpoint,
                  "'");
        checkpoint_out << journalHeader(
                              session_opt.uarch,
                              core::modeName(session_opt.mode),
                              specs.size(), unique_count)
                       << "\n";
        for (std::size_t u = 0; u < unique_count; ++u) {
            if (unique_outcomes[u].has_value()) {
                checkpoint_out << journalLine(spec_keys[u],
                                              *unique_outcomes[u])
                               << "\n";
            }
        }
        checkpoint_out.flush();
    }
    // Record one settled spec; call with progress_mutex held. A write
    // failure (injected via the report-write fault site or a real I/O
    // error) degrades the campaign to checkpoint-less instead of
    // killing it: the results in memory are still good.
    auto record_checkpoint = [&](std::size_t u,
                                 const RunOutcome &outcome) {
        if (!checkpoint_out.is_open())
            return;
        try {
            fault::maybeInject(fault::Site::ReportWrite);
        } catch (const fault::InjectedFault &f) {
            warn("checkpoint '", options.checkpoint,
                 "' disabled: ", f.what());
            checkpoint_out.close();
            obs::Registry::process()
                .counter("campaign.checkpoint.write_failures")
                .add();
            return;
        }
        checkpoint_out << journalLine(spec_keys[u], outcome) << "\n";
        if (!checkpoint_out) {
            warn("checkpoint '", options.checkpoint,
                 "' disabled: write error");
            checkpoint_out.close();
            obs::Registry::process()
                .counter("campaign.checkpoint.write_failures")
                .add();
            return;
        }
        obs::Registry::process()
            .counter("campaign.checkpoint.entries")
            .add();
        if (++checkpoint_unflushed >= options.checkpointEvery) {
            checkpoint_out.flush();
            checkpoint_unflushed = 0;
            obs::Registry::process()
                .counter("campaign.checkpoint.flushes")
                .add();
        }
    };

    // Fresh-machine mode reconstructs a machine per spec; resolve the
    // uarch descriptor once, outside the workers.
    const uarch::MicroArch &ua = uarch::getMicroArch(session_opt.uarch);

    // Pooled machines outlive the campaign (and the observers vector),
    // so an attached observer must be detached on every worker exit
    // path, including exceptions and aborts.
    struct ObserverScope
    {
        sim::Machine *machine = nullptr;
        ~ObserverScope()
        {
            if (machine)
                machine->setExecObserver(nullptr);
        }
    };

    auto worker = [&](unsigned w) {
        auto worker_start = std::chrono::steady_clock::now();
        if (tracer)
            tracer->nameLane(w, "worker " + std::to_string(w));
        try {
            // A pooled replica per worker in the default mode; in
            // freshMachinePerSpec mode no pooled machine is used at
            // all -- each spec gets a private, just-constructed one,
            // so its outcome cannot depend on which worker ran it or
            // which specs preceded it (layout invariance).
            std::optional<Session> session;
            ObserverScope observer_scope;
            obs::PhaseTimes phase_base;
            if (!options.freshMachinePerSpec) {
                SessionOptions opt = session_opt;
                opt.replica = w;
                session.emplace(this->session(opt));
                if (options.machineSetup)
                    options.machineSetup(session->runner());
                if (options.observe) {
                    session->machine().setExecObserver(&observers[w]);
                    observer_scope.machine = &session->machine();
                }
                // The pooled runner's phase accumulator carries
                // earlier campaigns; window it to this one.
                phase_base = session->runner().phaseTimes();
            }
            for (std::size_t u = w; u < unique_count; u += jobs) {
                if (abort.load(std::memory_order_relaxed))
                    return;
                // Cooperative cancellation: stop picking up new work,
                // but break (not return) so this worker's phase and
                // timing accounting still folds into the report.
                if (cancel && cancel->cancelled())
                    break;
                // Slot pre-filled from a resume journal.
                if (unique_outcomes[u].has_value())
                    continue;
                if (options.progress) {
                    std::lock_guard<std::mutex> lock(progress_mutex);
                    CampaignProgress event;
                    event.done = settled;
                    event.total = specs.size();
                    event.specKey = spec_keys[u];
                    event.specLabel = spec_labels[u];
                    event.starting = true;
                    options.progress(event);
                }
                if (tracer)
                    tracer->begin(w, spec_labels[u]);

                // One attempt: the worker-pickup fault site, then the
                // actual run. Reported as data, never an exception.
                auto attempt_once = [&]() -> RunOutcome {
                    try {
                        fault::maybeInject(fault::Site::WorkerPickup);
                    } catch (const fault::InjectedFault &f) {
                        return RunError{
                            RunError::Code::ExecutionError, f.what(),
                            f.transient()};
                    }
                    core::BenchmarkSpec resolved = specs[uniqueIdx[u]];
                    // The campaign-wide budget is applied post-dedup
                    // to the resolved copy only, so canonical keys
                    // (and every golden artifact keyed on them) are
                    // unaffected.
                    if (options.specBudget != 0 &&
                        resolved.cycleBudget == 0)
                        resolved.cycleBudget = options.specBudget;
                    if (options.freshMachinePerSpec) {
                        sim::Machine machine(ua, session_opt.seed);
                        core::Runner runner(machine,
                                            session_opt.mode);
                        // The machine is private per spec (layout
                        // invariance), but decoded programs are
                        // immutable and layout-keyed: share them
                        // engine-wide.
                        runner.setSharedProgramCache(programCache_);
                        if (options.machineSetup)
                            options.machineSetup(runner);
                        // The machine dies with this attempt, so no
                        // detach is needed here.
                        if (options.observe)
                            machine.setExecObserver(&observers[w]);
                        if (resolved.config.empty())
                            resolved.config = session_opt.config;
                        RunOutcome out = runSpecOnRunner(
                            runner, std::move(resolved));
                        worker_phases[w] += runner.phaseTimes();
                        return out;
                    }
                    return session->run(resolved);
                };

                // Transient failures (injected transient faults,
                // flaky external state) retry with bounded
                // exponential backoff; permanent ones fail fast.
                RunOutcome outcome = attempt_once();
                unsigned attempt = 0;
                while (!outcome.ok() && outcome.error().transient &&
                       attempt < options.maxRetries) {
                    ++attempt;
                    total_retries.fetch_add(1,
                                            std::memory_order_relaxed);
                    obs::Registry::process()
                        .counter("campaign.retries.attempted")
                        .add();
                    if (tracer)
                        tracer->instant(w, "retry");
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(
                            1u << std::min(attempt, 10u)));
                    outcome = attempt_once();
                }
                if (attempt > 0) {
                    obs::Registry::process()
                        .counter(outcome.ok()
                                     ? "campaign.retries.recovered"
                                     : "campaign.retries.exhausted")
                        .add();
                }
                unique_outcomes[u] = std::move(outcome);

                if (tracer)
                    tracer->end(w, spec_labels[u]);
                ++campaign.report.perWorkerSpecs[w];
                std::lock_guard<std::mutex> lock(progress_mutex);
                settled += multiplicity[u];
                record_checkpoint(u, *unique_outcomes[u]);
                if (options.progress) {
                    CampaignProgress event;
                    event.done = settled;
                    event.total = specs.size();
                    event.specKey = spec_keys[u];
                    event.specLabel = spec_labels[u];
                    event.starting = false;
                    options.progress(event);
                }
            }
            if (session) {
                worker_phases[w] =
                    session->runner().phaseTimes() - phase_base;
            }
            campaign.report.perWorkerSeconds[w] =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - worker_start)
                    .count();
        } catch (...) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            if (!failure)
                failure = std::current_exception();
            abort.store(true, std::memory_order_relaxed);
        }
    };

    if (jobs <= 1) {
        // One worker: run inline, no thread overhead.
        if (jobs == 1)
            worker(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(jobs);
        for (unsigned w = 0; w < jobs; ++w)
            threads.emplace_back(worker, w);
        for (auto &thread : threads)
            thread.join();
    }
    if (tracer)
        tracer->end(jobs, "campaign");
    if (failure)
        std::rethrow_exception(failure);

    if (checkpoint_out.is_open())
        checkpoint_out.flush();
    campaign.report.retries = total_retries.load();
    campaign.report.cancelled = cancel && cancel->cancelled();
    if (campaign.report.cancelled) {
        obs::Registry::process()
            .counter("campaign.cancelled")
            .add();
        if (tracer)
            tracer->instant(jobs, "cancelled");
    }

    for (const obs::PhaseTimes &pt : worker_phases)
        campaign.report.phaseTimes += pt;

    if (options.observe) {
        // Fold the per-worker observations into the process registry;
        // the -observe campaign path and the golden-invariance gate
        // read them back from a snapshot.
        obs::Registry &reg = obs::Registry::process();
        sim::ExecObserver total;
        for (const sim::ExecObserver &o : observers) {
            for (unsigned p = 0; p < sim::ExecObserver::kMaxPorts; ++p)
                total.portUops[p] += o.portUops[p];
            total.uopsIssued += o.uopsIssued;
            total.uopsDispatched += o.uopsDispatched;
            total.retireStallCycles += o.retireStallCycles;
            total.instructions += o.instructions;
            total.cycles += o.cycles;
        }
        reg.counter("campaign.observed.uops_issued")
            .add(total.uopsIssued);
        reg.counter("campaign.observed.uops_dispatched")
            .add(total.uopsDispatched);
        reg.counter("campaign.observed.retire_stall_cycles")
            .add(total.retireStallCycles);
        reg.counter("campaign.observed.instructions")
            .add(total.instructions);
        reg.counter("campaign.observed.cycles").add(total.cycles);
        for (unsigned p = 0; p < sim::ExecObserver::kMaxPorts; ++p) {
            reg.counter("campaign.observed.port_" + std::to_string(p) +
                        "_uops")
                .add(total.portUops[p]);
        }
    }

    // Resolve every input spec (duplicates share the unique outcome)
    // and fold the histogram.
    campaign.outcomes.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        auto &outcome = unique_outcomes[sourceOf[i]];
        if (!outcome.has_value()) {
            // Only cancellation legitimately leaves a slot empty
            // (worker exceptions rethrew above); back-fill a typed,
            // retryable error so the partial report stays total.
            NB_ASSERT(campaign.report.cancelled,
                      "campaign left spec ", i, " unexecuted");
            outcome = RunOutcome(RunError{
                RunError::Code::Cancelled,
                "campaign cancelled before this spec ran", true});
        }
        campaign.outcomes.push_back(*outcome);
        if (outcome->ok()) {
            ++campaign.report.okCount;
        } else {
            ++campaign.report.errorHistogram[static_cast<unsigned>(
                outcome->error().code)];
        }
    }

    campaign.report.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    campaign.report.telemetry = telemetry();
    return campaign;
}

} // namespace nb
