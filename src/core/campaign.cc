/**
 * @file
 * Campaign executor implementation.
 *
 * The fan-out is deliberately simple: dedup first (so the work list
 * and the duplicate resolution are fixed before any thread starts),
 * then static strided assignment of the unique work list across the
 * workers. No dynamic work stealing -- a campaign's spec-to-worker
 * mapping is a pure function of (specs, options), which is what makes
 * repeated campaigns against fresh machines bit-identical (the
 * determinism guarantee in campaign.hh).
 */

#include "campaign.hh"

#include <atomic>
#include <cctype>
#include <chrono>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/strings.hh"
#include "core/json.hh"
#include "core/result.hh"
#include "uarch/uarch.hh"

namespace nb
{

namespace
{

/** Split a spec-file line into tokens, honouring double quotes
 *  ("add RAX, RBX" is one token, quotes stripped). Returns nullopt
 *  for an unterminated quote. */
std::optional<std::vector<std::string>>
tokenizeSpecLine(const std::string &line)
{
    std::vector<std::string> tokens;
    std::string token;
    bool in_token = false;
    bool quoted = false;
    for (char c : line) {
        if (quoted) {
            if (c == '"')
                quoted = false;
            else
                token += c;
        } else if (c == '"') {
            quoted = true;
            in_token = true;
        } else if (std::isspace(static_cast<unsigned char>(c))) {
            if (in_token) {
                tokens.push_back(std::move(token));
                token.clear();
                in_token = false;
            }
        } else {
            token += c;
            in_token = true;
        }
    }
    if (quoted)
        return std::nullopt;
    if (in_token)
        tokens.push_back(std::move(token));
    return tokens;
}

} // namespace

unsigned
CampaignOptions::resolvedJobs() const
{
    unsigned n = jobs != 0 ? jobs : std::thread::hardware_concurrency();
    return std::max(1u, n);
}

std::vector<SpecFileEntry>
parseSpecLines(const std::string &text,
               const core::BenchmarkSpec &defaults)
{
    std::vector<SpecFileEntry> entries;
    // Parse failures become per-entry data; keep fatal()'s courtesy
    // stderr print quiet for them (the CLI reports them in position).
    ScopedFatalMessageSuppression suppress_fatal_prints;
    std::size_t line_no = 0;
    for (const auto &raw : split(text, '\n')) {
        ++line_no;
        std::string line = trim(raw);
        if (line.empty() || line[0] == '#')
            continue;

        SpecFileEntry entry;
        entry.lineNumber = line_no;
        entry.spec = defaults;
        entry.spec.asmCode.clear();
        entry.spec.code.clear();

        auto fail = [&](const std::string &why) {
            entry.error = RunError{RunError::Code::InvalidSpec,
                                   "spec file line " +
                                       std::to_string(line_no) + ": " +
                                       why};
        };

        // A plain line is the benchmark body verbatim (the original
        // spec-file format); options start with '-'.
        if (line[0] != '-') {
            entry.spec.asmCode = line;
            entries.push_back(std::move(entry));
            continue;
        }

        auto tokens = tokenizeSpecLine(line);
        if (!tokens) {
            fail("unterminated quote");
            entries.push_back(std::move(entry));
            continue;
        }
        for (std::size_t t = 0; t < tokens->size() && !entry.error;
             ++t) {
            const std::string &opt = (*tokens)[t];
            auto value = [&]() -> std::optional<std::string> {
                if (t + 1 >= tokens->size()) {
                    fail("missing value for option " + opt);
                    return std::nullopt;
                }
                return (*tokens)[++t];
            };
            auto count = [&](const std::string &v)
                -> std::optional<std::uint64_t> {
                auto parsed = parseInt(v);
                if (!parsed || *parsed < 0) {
                    fail("bad value '" + v + "' for option " + opt);
                    return std::nullopt;
                }
                return static_cast<std::uint64_t>(*parsed);
            };
            try {
                if (opt == "-asm") {
                    if (auto v = value())
                        entry.spec.asmCode = *v;
                } else if (opt == "-asm_init") {
                    if (auto v = value())
                        entry.spec.asmInit = *v;
                } else if (opt == "-unroll_count") {
                    if (auto v = value())
                        if (auto n = count(*v))
                            entry.spec.unrollCount = *n;
                } else if (opt == "-loop_count") {
                    if (auto v = value())
                        if (auto n = count(*v))
                            entry.spec.loopCount = *n;
                } else if (opt == "-n_measurements") {
                    if (auto v = value())
                        if (auto n = count(*v))
                            entry.spec.nMeasurements =
                                static_cast<unsigned>(*n);
                } else if (opt == "-warm_up_count") {
                    if (auto v = value())
                        if (auto n = count(*v))
                            entry.spec.warmUpCount =
                                static_cast<unsigned>(*n);
                } else if (opt == "-agg") {
                    // parseAggregate fatal()s on unknown names; keep
                    // that as a per-line error, not a process exit.
                    if (auto v = value())
                        entry.spec.agg = parseAggregate(*v);
                } else if (opt == "-serialize") {
                    if (auto v = value())
                        entry.spec.serialize =
                            core::parseSerializeMode(*v);
                } else if (opt == "-basic_mode") {
                    entry.spec.basicMode = true;
                } else if (opt == "-no_mem") {
                    entry.spec.noMem = true;
                } else if (opt == "-aperf_mperf") {
                    entry.spec.aperfMperf = true;
                } else if (opt == "-lint_level") {
                    if (auto v = value()) {
                        auto level = core::lintLevelFromName(*v);
                        if (!level) {
                            fail("bad value '" + *v +
                                 "' for option -lint_level (use "
                                 "off, warn, or error)");
                        } else {
                            entry.spec.lintLevel = *level;
                        }
                    }
                } else if (opt == "-config") {
                    // Per-line counter configs (§III-J): one campaign
                    // can mix event sets. parseFile fatal()s on an
                    // unreadable path; keep that per-line too.
                    if (auto v = value())
                        entry.spec.config =
                            core::CounterConfig::parseFile(*v);
                } else {
                    fail("unknown option '" + opt + "'");
                }
            } catch (const FatalError &e) {
                fail(e.what());
            }
        }
        if (!entry.error && entry.spec.asmCode.empty())
            fail("option line has no -asm body");
        entries.push_back(std::move(entry));
    }
    return entries;
}

// ------------------------------------------------------------ report --

std::size_t
CampaignReport::errorCount() const
{
    std::size_t total = 0;
    for (std::size_t count : errorHistogram)
        total += count;
    return total;
}

std::string
CampaignReport::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"jobs\": " << jobs << ",\n";
    os << "  \"total_specs\": " << totalSpecs << ",\n";
    os << "  \"unique_specs\": " << uniqueSpecs << ",\n";
    os << "  \"cache_hits\": " << cacheHits << ",\n";
    os << "  \"ok\": " << okCount << ",\n";
    os << "  \"wall_seconds\": " << core::exactDouble(wallSeconds)
       << ",\n";
    os << "  \"per_worker_specs\": [";
    for (std::size_t i = 0; i < perWorkerSpecs.size(); ++i)
        os << (i ? ", " : "") << perWorkerSpecs[i];
    os << "],\n";
    os << "  \"per_worker_seconds\": [";
    for (std::size_t i = 0; i < perWorkerSeconds.size(); ++i)
        os << (i ? ", " : "") << core::exactDouble(perWorkerSeconds[i]);
    os << "],\n";
    os << "  \"phases\": {";
    for (unsigned i = 0; i < obs::kNumPhases; ++i) {
        os << (i ? ", " : "") << "\""
           << obs::phaseName(static_cast<obs::Phase>(i))
           << "\": " << phaseTimes.ns[i];
    }
    os << "},\n";
    os << "  \"errors\": {";
    bool first = true;
    for (unsigned i = 0; i < errorHistogram.size(); ++i) {
        if (!errorHistogram[i])
            continue;
        os << (first ? "" : ", ") << "\""
           << core::jsonEscape(
                  runErrorCodeName(static_cast<RunError::Code>(i)))
           << "\": " << errorHistogram[i];
        first = false;
    }
    os << "},\n";
    // Embed the telemetry snapshot as a nested object (whitespace
    // inside it is irrelevant to the reader).
    std::string tj = telemetry.toJson();
    while (!tj.empty() && tj.back() == '\n')
        tj.pop_back();
    os << "  \"telemetry\": " << tj << "\n";
    os << "}\n";
    return os.str();
}

std::string
CampaignReport::toCsv() const
{
    std::ostringstream os;
    os << "# campaign report\n";
    os << "key,value\n";
    os << "jobs," << jobs << "\n";
    os << "total_specs," << totalSpecs << "\n";
    os << "unique_specs," << uniqueSpecs << "\n";
    os << "cache_hits," << cacheHits << "\n";
    os << "ok," << okCount << "\n";
    os << "wall_seconds," << core::exactDouble(wallSeconds) << "\n";
    for (std::size_t i = 0; i < perWorkerSpecs.size(); ++i)
        os << "worker_" << i << "_specs," << perWorkerSpecs[i] << "\n";
    for (std::size_t i = 0; i < perWorkerSeconds.size(); ++i) {
        os << "worker_" << i << "_seconds,"
           << core::exactDouble(perWorkerSeconds[i]) << "\n";
    }
    for (unsigned i = 0; i < obs::kNumPhases; ++i) {
        os << "phase_" << obs::phaseName(static_cast<obs::Phase>(i))
           << "_ns," << phaseTimes.ns[i] << "\n";
    }
    for (unsigned i = 0; i < errorHistogram.size(); ++i) {
        if (!errorHistogram[i])
            continue;
        os << core::csvEscape(
                  std::string("error_") +
                  runErrorCodeName(static_cast<RunError::Code>(i)))
           << "," << errorHistogram[i] << "\n";
    }
    // Telemetry rows ride along, minus their own two header lines.
    std::string tcsv = telemetry.toCsv();
    std::size_t skip = tcsv.find('\n');
    skip = tcsv.find('\n', skip + 1);
    os << tcsv.substr(skip + 1);
    return os.str();
}

CampaignReport
CampaignReport::fromJson(const std::string &text)
{
    CampaignReport report;
    report.errorHistogram.assign(kNumRunErrorCodes, 0);
    core::JsonCursor cur(text);
    cur.expect('{');
    if (!cur.tryConsume('}')) {
        do {
            std::string key = cur.parseString();
            cur.expect(':');
            if (key == "jobs") {
                report.jobs =
                    static_cast<unsigned>(cur.parseNumber());
            } else if (key == "total_specs") {
                report.totalSpecs =
                    static_cast<std::size_t>(cur.parseNumber());
            } else if (key == "unique_specs") {
                report.uniqueSpecs =
                    static_cast<std::size_t>(cur.parseNumber());
            } else if (key == "cache_hits") {
                report.cacheHits =
                    static_cast<std::size_t>(cur.parseNumber());
            } else if (key == "ok") {
                report.okCount =
                    static_cast<std::size_t>(cur.parseNumber());
            } else if (key == "wall_seconds") {
                report.wallSeconds = cur.parseNumber();
            } else if (key == "per_worker_specs") {
                cur.expect('[');
                if (!cur.tryConsume(']')) {
                    do {
                        report.perWorkerSpecs.push_back(
                            static_cast<std::size_t>(
                                cur.parseNumber()));
                    } while (cur.tryConsume(','));
                    cur.expect(']');
                }
            } else if (key == "per_worker_seconds") {
                cur.expect('[');
                if (!cur.tryConsume(']')) {
                    do {
                        report.perWorkerSeconds.push_back(
                            cur.parseNumber());
                    } while (cur.tryConsume(','));
                    cur.expect(']');
                }
            } else if (key == "phases") {
                cur.expect('{');
                if (!cur.tryConsume('}')) {
                    do {
                        std::string name = cur.parseString();
                        cur.expect(':');
                        double ns = cur.parseNumber();
                        unsigned idx = obs::phaseIndexFromName(name);
                        if (idx >= obs::kNumPhases)
                            fatal("campaign report: unknown phase '",
                                  name, "'");
                        report.phaseTimes.ns[idx] =
                            static_cast<std::uint64_t>(ns);
                    } while (cur.tryConsume(','));
                    cur.expect('}');
                }
            } else if (key == "errors") {
                cur.expect('{');
                if (!cur.tryConsume('}')) {
                    do {
                        std::string name = cur.parseString();
                        cur.expect(':');
                        double count = cur.parseNumber();
                        auto code = runErrorCodeFromName(name);
                        if (!code)
                            fatal("campaign report: unknown error "
                                  "code '", name, "'");
                        report.errorHistogram[static_cast<unsigned>(
                            *code)] =
                            static_cast<std::size_t>(count);
                    } while (cur.tryConsume(','));
                    cur.expect('}');
                }
            } else if (key == "telemetry") {
                report.telemetry = EngineTelemetry::parse(cur);
            } else {
                cur.skipValue();
            }
        } while (cur.tryConsume(','));
        cur.expect('}');
    }
    cur.expectEnd();
    return report;
}

// ---------------------------------------------------------- executor --

CampaignResult
Engine::runCampaign(const std::vector<core::BenchmarkSpec> &specs,
                    const CampaignOptions &options)
{
    auto start = std::chrono::steady_clock::now();

    // Resolve the session options once on this thread: unknown uarchs
    // and unreadable config files throw here, before any worker
    // starts, and workers do not repeat the file parse.
    SessionOptions session_opt = options.session;
    if (session_opt.config.empty() && !session_opt.configFile.empty())
        session_opt.config =
            core::CounterConfig::parseFile(session_opt.configFile);
    session_opt.configFile.clear();
    uarch::getMicroArch(session_opt.uarch);

    // Dedup pass: uniqueIdx lists the spec indices to execute;
    // sourceOf maps every input spec to its position in uniqueIdx.
    std::vector<std::size_t> uniqueIdx;
    std::vector<std::size_t> sourceOf(specs.size());
    std::vector<std::size_t> multiplicity;
    if (options.dedup) {
        std::unordered_map<std::string, std::size_t> seen;
        seen.reserve(specs.size());
        for (std::size_t i = 0; i < specs.size(); ++i) {
            auto [it, inserted] = seen.emplace(
                specCanonicalKey(specs[i]), uniqueIdx.size());
            if (inserted) {
                uniqueIdx.push_back(i);
                multiplicity.push_back(1);
            } else {
                ++multiplicity[it->second];
            }
            sourceOf[i] = it->second;
        }
    } else {
        uniqueIdx.resize(specs.size());
        multiplicity.assign(specs.size(), 1);
        for (std::size_t i = 0; i < specs.size(); ++i) {
            uniqueIdx[i] = i;
            sourceOf[i] = i;
        }
    }

    std::size_t unique_count = uniqueIdx.size();
    unsigned jobs = static_cast<unsigned>(std::min<std::size_t>(
        options.resolvedJobs(), unique_count));

    CampaignResult campaign;
    campaign.report.jobs = jobs;
    campaign.report.totalSpecs = specs.size();
    campaign.report.uniqueSpecs = unique_count;
    campaign.report.cacheHits = specs.size() - unique_count;
    campaign.report.perWorkerSpecs.assign(jobs, 0);
    campaign.report.perWorkerSeconds.assign(jobs, 0.0);

    // Keys and labels for progress events and trace spans, resolved
    // once outside the workers (and not at all when nobody listens).
    obs::Tracer *tracer = options.trace && options.trace->enabled()
                              ? options.trace
                              : nullptr;
    std::vector<std::string> spec_keys;
    std::vector<std::string> spec_labels;
    if (options.progress || tracer) {
        spec_keys.resize(unique_count);
        spec_labels.resize(unique_count);
        for (std::size_t u = 0; u < unique_count; ++u) {
            spec_keys[u] = specCanonicalKey(specs[uniqueIdx[u]]);
            spec_labels[u] = specs[uniqueIdx[u]].summary();
        }
    }
    if (tracer) {
        // The whole-campaign span lives on its own lane past the
        // worker lanes (tid = worker index).
        tracer->nameLane(jobs, "campaign");
        tracer->begin(jobs, "campaign", "specs",
                      std::to_string(specs.size()));
    }

    // Per-worker accounting sinks, folded into the report (and, for
    // the observers, the process registry) after the join.
    std::vector<obs::PhaseTimes> worker_phases(jobs);
    std::vector<sim::ExecObserver> observers(jobs);

    // RunOutcome has no default state, hence the optional wrapper;
    // every slot is filled unless a worker aborted by exception.
    std::vector<std::optional<RunOutcome>> unique_outcomes(
        unique_count);

    std::mutex progress_mutex;
    std::size_t settled = 0;
    std::atomic<bool> abort{false};
    std::exception_ptr failure;

    // Fresh-machine mode reconstructs a machine per spec; resolve the
    // uarch descriptor once, outside the workers.
    const uarch::MicroArch &ua = uarch::getMicroArch(session_opt.uarch);

    // Pooled machines outlive the campaign (and the observers vector),
    // so an attached observer must be detached on every worker exit
    // path, including exceptions and aborts.
    struct ObserverScope
    {
        sim::Machine *machine = nullptr;
        ~ObserverScope()
        {
            if (machine)
                machine->setExecObserver(nullptr);
        }
    };

    auto worker = [&](unsigned w) {
        auto worker_start = std::chrono::steady_clock::now();
        if (tracer)
            tracer->nameLane(w, "worker " + std::to_string(w));
        try {
            // A pooled replica per worker in the default mode; in
            // freshMachinePerSpec mode no pooled machine is used at
            // all -- each spec gets a private, just-constructed one,
            // so its outcome cannot depend on which worker ran it or
            // which specs preceded it (layout invariance).
            std::optional<Session> session;
            ObserverScope observer_scope;
            obs::PhaseTimes phase_base;
            if (!options.freshMachinePerSpec) {
                SessionOptions opt = session_opt;
                opt.replica = w;
                session.emplace(this->session(opt));
                if (options.machineSetup)
                    options.machineSetup(session->runner());
                if (options.observe) {
                    session->machine().setExecObserver(&observers[w]);
                    observer_scope.machine = &session->machine();
                }
                // The pooled runner's phase accumulator carries
                // earlier campaigns; window it to this one.
                phase_base = session->runner().phaseTimes();
            }
            for (std::size_t u = w; u < unique_count; u += jobs) {
                if (abort.load(std::memory_order_relaxed))
                    return;
                if (options.progress) {
                    std::lock_guard<std::mutex> lock(progress_mutex);
                    CampaignProgress event;
                    event.done = settled;
                    event.total = specs.size();
                    event.specKey = spec_keys[u];
                    event.specLabel = spec_labels[u];
                    event.starting = true;
                    options.progress(event);
                }
                if (tracer)
                    tracer->begin(w, spec_labels[u]);
                if (options.freshMachinePerSpec) {
                    sim::Machine machine(ua, session_opt.seed);
                    core::Runner runner(machine, session_opt.mode);
                    // The machine is private per spec (layout
                    // invariance), but decoded programs are immutable
                    // and layout-keyed: share them engine-wide.
                    runner.setSharedProgramCache(programCache_);
                    if (options.machineSetup)
                        options.machineSetup(runner);
                    // The machine dies with this iteration, so no
                    // detach is needed here.
                    if (options.observe)
                        machine.setExecObserver(&observers[w]);
                    core::BenchmarkSpec resolved = specs[uniqueIdx[u]];
                    if (resolved.config.empty())
                        resolved.config = session_opt.config;
                    unique_outcomes[u] =
                        runSpecOnRunner(runner, std::move(resolved));
                    worker_phases[w] += runner.phaseTimes();
                } else {
                    unique_outcomes[u] =
                        session->run(specs[uniqueIdx[u]]);
                }
                if (tracer)
                    tracer->end(w, spec_labels[u]);
                ++campaign.report.perWorkerSpecs[w];
                std::lock_guard<std::mutex> lock(progress_mutex);
                settled += multiplicity[u];
                if (options.progress) {
                    CampaignProgress event;
                    event.done = settled;
                    event.total = specs.size();
                    event.specKey = spec_keys[u];
                    event.specLabel = spec_labels[u];
                    event.starting = false;
                    options.progress(event);
                }
            }
            if (session) {
                worker_phases[w] =
                    session->runner().phaseTimes() - phase_base;
            }
            campaign.report.perWorkerSeconds[w] =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - worker_start)
                    .count();
        } catch (...) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            if (!failure)
                failure = std::current_exception();
            abort.store(true, std::memory_order_relaxed);
        }
    };

    if (jobs <= 1) {
        // One worker: run inline, no thread overhead.
        if (jobs == 1)
            worker(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(jobs);
        for (unsigned w = 0; w < jobs; ++w)
            threads.emplace_back(worker, w);
        for (auto &thread : threads)
            thread.join();
    }
    if (tracer)
        tracer->end(jobs, "campaign");
    if (failure)
        std::rethrow_exception(failure);

    for (const obs::PhaseTimes &pt : worker_phases)
        campaign.report.phaseTimes += pt;

    if (options.observe) {
        // Fold the per-worker observations into the process registry;
        // the -observe campaign path and the golden-invariance gate
        // read them back from a snapshot.
        obs::Registry &reg = obs::Registry::process();
        sim::ExecObserver total;
        for (const sim::ExecObserver &o : observers) {
            for (unsigned p = 0; p < sim::ExecObserver::kMaxPorts; ++p)
                total.portUops[p] += o.portUops[p];
            total.uopsIssued += o.uopsIssued;
            total.uopsDispatched += o.uopsDispatched;
            total.retireStallCycles += o.retireStallCycles;
            total.instructions += o.instructions;
            total.cycles += o.cycles;
        }
        reg.counter("campaign.observed.uops_issued")
            .add(total.uopsIssued);
        reg.counter("campaign.observed.uops_dispatched")
            .add(total.uopsDispatched);
        reg.counter("campaign.observed.retire_stall_cycles")
            .add(total.retireStallCycles);
        reg.counter("campaign.observed.instructions")
            .add(total.instructions);
        reg.counter("campaign.observed.cycles").add(total.cycles);
        for (unsigned p = 0; p < sim::ExecObserver::kMaxPorts; ++p) {
            reg.counter("campaign.observed.port_" + std::to_string(p) +
                        "_uops")
                .add(total.portUops[p]);
        }
    }

    // Resolve every input spec (duplicates share the unique outcome)
    // and fold the histogram.
    campaign.outcomes.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto &outcome = unique_outcomes[sourceOf[i]];
        NB_ASSERT(outcome.has_value(),
                  "campaign left spec ", i, " unexecuted");
        campaign.outcomes.push_back(*outcome);
        if (outcome->ok()) {
            ++campaign.report.okCount;
        } else {
            ++campaign.report.errorHistogram[static_cast<unsigned>(
                outcome->error().code)];
        }
    }

    campaign.report.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    campaign.report.telemetry = telemetry();
    return campaign;
}

} // namespace nb
