/**
 * @file
 * BenchmarkResult lookups and (de)serialization.
 *
 * The JSON reader is the shared minimal cursor from json.hh; the CSV
 * escaping helpers here are exported so other writers (the campaign
 * report) emit the same dialect.
 */

#include "result.hh"

#include <iomanip>
#include <limits>
#include <sstream>

#include "common/strings.hh"
#include "core/json.hh"

namespace nb::core
{

std::string
exactDouble(double v)
{
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10)
       << v;
    return os.str();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::ostringstream os;
                os << "\\u" << std::hex << std::setw(4)
                   << std::setfill('0') << static_cast<int>(c);
                out += os.str();
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

/** Backslash-escape newlines (CSV is parsed line-wise, so embedded
 *  newlines in names or metadata would break records). */
std::string
escapeNewlines(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
unescapeNewlines(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 >= s.size()) {
            out += s[i];
            continue;
        }
        switch (s[++i]) {
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          default: out += '\\'; out += s[i];
        }
    }
    return out;
}

} // namespace

std::string
csvEscape(const std::string &raw)
{
    std::string s = escapeNewlines(raw);
    if (s.find_first_of(",\"") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        out += c;
        if (c == '"')
            out += '"';
    }
    out += '"';
    return out;
}

namespace
{

ResultLine
parseJsonLine(JsonCursor &cur)
{
    ResultLine line;
    cur.expect('{');
    do {
        std::string key = cur.parseString();
        cur.expect(':');
        if (key == "name")
            line.name = cur.parseString();
        else if (key == "value")
            line.value = cur.parseNumber();
        else
            cur.skipValue();
    } while (cur.tryConsume(','));
    cur.expect('}');
    return line;
}

} // namespace

std::vector<std::string>
splitCsvRecord(const std::string &line)
{
    std::vector<std::string> fields;
    std::string field;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (quoted) {
            if (c == '"' && i + 1 < line.size() && line[i + 1] == '"') {
                field += '"';
                ++i;
            } else if (c == '"') {
                quoted = false;
            } else {
                field += c;
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            fields.push_back(field);
            field.clear();
        } else {
            field += c;
        }
    }
    fields.push_back(field);
    return fields;
}

std::string
csvUnescape(const std::string &field)
{
    return unescapeNewlines(field);
}

std::optional<double>
BenchmarkResult::find(const std::string &name) const
{
    for (const auto &line : lines) {
        if (line.name == name)
            return line.value;
    }
    return std::nullopt;
}

double
BenchmarkResult::operator[](const std::string &name) const
{
    if (auto value = find(name))
        return *value;
    throw ResultLookupError(name);
}

bool
BenchmarkResult::has(const std::string &name) const
{
    return find(name).has_value();
}

std::string
BenchmarkResult::format() const
{
    std::ostringstream os;
    for (const auto &line : lines) {
        os << line.name << ": " << std::fixed << std::setprecision(2)
           << line.value << "\n";
    }
    return os.str();
}

std::string
BenchmarkResult::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"uarch\": \"" << jsonEscape(uarch) << "\",\n";
    os << "  \"mode\": \"" << jsonEscape(mode) << "\",\n";
    os << "  \"spec\": \"" << jsonEscape(specEcho) << "\",\n";
    os << "  \"last_run_cycles\": " << lastRunCycles << ",\n";
    os << "  \"lines\": [";
    for (std::size_t i = 0; i < lines.size(); ++i) {
        os << (i ? ",\n    " : "\n    ");
        os << "{\"name\": \"" << jsonEscape(lines[i].name)
           << "\", \"value\": " << exactDouble(lines[i].value) << "}";
    }
    os << (lines.empty() ? "]\n" : "\n  ]\n");
    os << "}\n";
    return os.str();
}

std::string
BenchmarkResult::toCsv() const
{
    std::ostringstream os;
    os << "# uarch: " << escapeNewlines(uarch) << "\n";
    os << "# mode: " << escapeNewlines(mode) << "\n";
    os << "# spec: " << escapeNewlines(specEcho) << "\n";
    os << "# last_run_cycles: " << lastRunCycles << "\n";
    os << "name,value\n";
    for (const auto &line : lines)
        os << csvEscape(line.name) << "," << exactDouble(line.value)
           << "\n";
    return os.str();
}

BenchmarkResult
BenchmarkResult::fromJson(const std::string &text)
{
    BenchmarkResult result;
    JsonCursor cur(text);
    cur.expect('{');
    if (!cur.tryConsume('}')) {
        do {
            std::string key = cur.parseString();
            cur.expect(':');
            if (key == "uarch") {
                result.uarch = cur.parseString();
            } else if (key == "mode") {
                result.mode = cur.parseString();
            } else if (key == "spec") {
                result.specEcho = cur.parseString();
            } else if (key == "last_run_cycles") {
                result.lastRunCycles =
                    static_cast<Cycles>(cur.parseNumber());
            } else if (key == "lines") {
                cur.expect('[');
                if (!cur.tryConsume(']')) {
                    do {
                        result.lines.push_back(parseJsonLine(cur));
                    } while (cur.tryConsume(','));
                    cur.expect(']');
                }
            } else {
                cur.skipValue();
            }
        } while (cur.tryConsume(','));
        cur.expect('}');
    }
    // Concatenated documents would otherwise be silently truncated to
    // the first object.
    cur.expectEnd();
    return result;
}

BenchmarkResult
BenchmarkResult::fromCsv(const std::string &text)
{
    BenchmarkResult result;
    bool seen_header = false;
    for (const auto &raw_line : split(text, '\n')) {
        std::string line = trim(raw_line);
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::string meta = trim(line.substr(1));
            auto colon = meta.find(':');
            if (colon == std::string::npos)
                continue;
            std::string key = trim(meta.substr(0, colon));
            std::string value =
                unescapeNewlines(trim(meta.substr(colon + 1)));
            if (key == "uarch")
                result.uarch = value;
            else if (key == "mode")
                result.mode = value;
            else if (key == "spec")
                result.specEcho = value;
            else if (key == "last_run_cycles")
                result.lastRunCycles = static_cast<Cycles>(
                    parseInt(value).value_or(0));
            continue;
        }
        if (!seen_header) {
            // The "name,value" column header.
            seen_header = true;
            continue;
        }
        auto fields = splitCsvRecord(raw_line);
        if (fields.size() != 2)
            fatal("CSV result: malformed record '", raw_line, "'");
        double value = 0.0;
        try {
            value = std::stod(fields[1]);
        } catch (const std::exception &) {
            fatal("CSV result: bad value '", fields[1], "'");
        }
        result.lines.push_back({unescapeNewlines(fields[0]), value});
    }
    return result;
}

} // namespace nb::core
