/**
 * @file
 * Engine / Session implementation.
 */

#include "engine.hh"

#include <chrono>
#include <unordered_map>

#include "analysis/analysis.hh"
#include "fault/fault.hh"
#include "obs/metrics.hh"
#include "uarch/uarch.hh"
#include "x86/assembler.hh"

namespace nb
{

namespace
{

/** The session-layer assembly memo behind assembleCacheStats().
 *  Values are shared_ptr so a hit only bumps a refcount under the
 *  mutex; the deep copy the caller needs happens outside it. */
struct AssembleCache
{
    std::mutex mutex;
    std::unordered_map<std::string,
                       std::shared_ptr<const std::vector<x86::Instruction>>>
        map;
    AssembleCacheStats stats;
};

AssembleCache &
assembleCache()
{
    static AssembleCache cache;
    return cache;
}

/**
 * x86::assemble, memoized: each distinct source text is parsed once
 * per process. Only successful parses are cached; syntax errors
 * propagate (they abort the spec anyway, so re-parsing a bad text is
 * the rare path). Thread-safe -- campaign workers assemble
 * concurrently, and neither the parse nor the copy-out holds the
 * cache mutex.
 */
std::vector<x86::Instruction>
assembleMemoized(const std::string &source)
{
    AssembleCache &cache = assembleCache();
    std::shared_ptr<const std::vector<x86::Instruction>> cached;
    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        auto it = cache.map.find(source);
        if (it != cache.map.end()) {
            ++cache.stats.hits;
            cached = it->second;
        }
    }
    if (cached)
        return *cached;
    // Parse outside the lock: assembly is the expensive part.
    auto code = std::make_shared<const std::vector<x86::Instruction>>(
        x86::assemble(source));
    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        ++cache.stats.misses;
        if (cache.map.size() >= 4096) {
            // Crude bound; entries are one rebuild away. Holders of
            // dropped entries keep them alive via their shared_ptr.
            // Count what was dropped so a full memo never reads as an
            // unexplained miss storm.
            cache.stats.evictions += cache.map.size();
            obs::Registry::process()
                .counter("engine.assemble_cache.evicted")
                .add(cache.map.size());
            cache.map.clear();
        }
        cache.map.emplace(source, code);
    }
    return *code;
}

} // namespace

CacheStats
assembleCacheCounters()
{
    AssembleCache &cache = assembleCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    return {cache.stats.hits, cache.stats.misses,
            cache.stats.evictions};
}

AssembleCacheStats
assembleCacheStats()
{
    AssembleCache &cache = assembleCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    return cache.stats;
}

const char *
runErrorCodeName(RunError::Code code)
{
    switch (code) {
      case RunError::Code::InvalidSpec: return "invalid-spec";
      case RunError::Code::AssemblyError: return "assembly-error";
      case RunError::Code::Unsupported: return "unsupported";
      case RunError::Code::LintError: return "lint-error";
      case RunError::Code::ExecutionError: return "execution-error";
      case RunError::Code::BudgetExceeded: return "budget-exceeded";
      case RunError::Code::Cancelled: return "cancelled";
    }
    return "unknown";
}

std::optional<RunError::Code>
runErrorCodeFromName(const std::string &name)
{
    for (unsigned i = 0; i < kNumRunErrorCodes; ++i) {
        auto code = static_cast<RunError::Code>(i);
        if (name == runErrorCodeName(code))
            return code;
    }
    return std::nullopt;
}

// ----------------------------------------------------------- outcome --

const core::BenchmarkResult &
RunOutcome::result() const
{
    NB_ASSERT(ok_, "RunOutcome::result() on a failed outcome: ",
              error_.message);
    return result_;
}

core::BenchmarkResult &
RunOutcome::result()
{
    NB_ASSERT(ok_, "RunOutcome::result() on a failed outcome: ",
              error_.message);
    return result_;
}

const RunError &
RunOutcome::error() const
{
    NB_ASSERT(!ok_, "RunOutcome::error() on a successful outcome");
    return error_;
}

const core::BenchmarkResult &
RunOutcome::resultOrThrow() const
{
    if (!ok_) {
        throw FatalError(std::string(runErrorCodeName(error_.code)) +
                         ": " + error_.message);
    }
    return result_;
}

// ----------------------------------------------------------- session --

RunOutcome
runSpecOnRunner(core::Runner &runner, core::BenchmarkSpec spec)
{
    // Failures below come back as RunError data; keep fatal()'s
    // courtesy stderr print quiet for them.
    ScopedFatalMessageSuppression suppress_fatal_prints;

    // Assemble up front so syntax errors are classified separately
    // from execution failures (and reported without running anything).
    // The time goes to the runner's Assemble phase: run() receives
    // pre-assembled code, so this is where the phase happens.
    auto assemble_start = std::chrono::steady_clock::now();
    if (spec.code.empty()) {
        if (spec.asmCode.empty()) {
            return RunError{RunError::Code::InvalidSpec,
                            "empty benchmark body"};
        }
        try {
            fault::maybeInject(fault::Site::Assemble);
            spec.code = assembleMemoized(spec.asmCode);
        } catch (const fault::InjectedFault &f) {
            return RunError{RunError::Code::AssemblyError, f.what(),
                            f.transient()};
        } catch (const FatalError &e) {
            return RunError{RunError::Code::AssemblyError, e.what()};
        }
    }
    if (spec.init.empty() && !spec.asmInit.empty()) {
        try {
            fault::maybeInject(fault::Site::Assemble);
            spec.init = assembleMemoized(spec.asmInit);
        } catch (const fault::InjectedFault &f) {
            return RunError{RunError::Code::AssemblyError, f.what(),
                            f.transient()};
        } catch (const FatalError &e) {
            return RunError{RunError::Code::AssemblyError, e.what()};
        }
    }
    runner.addPhaseTime(
        obs::Phase::Assemble,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - assemble_start)
                .count()));

    // Parameter validation before any work: typed errors instead of a
    // fatal() (or an assert) from deep inside the measurement loop.
    if (auto issue = core::validateSpec(spec, runner.mode())) {
        return RunError{issue->kind == core::SpecIssue::Kind::Invalid
                            ? RunError::Code::InvalidSpec
                            : RunError::Code::Unsupported,
                        issue->message};
    }

    // Opt-in static analysis (observe-only unless the spec asks):
    // diagnostics at or above the requested threshold become a typed
    // LintError instead of a meaningless measurement. Reports are
    // memoized per unique canonical spec key, so campaign re-runs and
    // warm-ups re-lint for free.
    if (spec.lintLevel != core::LintLevel::Off) {
        analysis::Severity threshold =
            spec.lintLevel == core::LintLevel::Warn
                ? analysis::Severity::Warning
                : analysis::Severity::Error;
        analysis::Report report = analysis::analyzeSpecCached(
            runner.machine().uarch(), spec,
            analysis::Context::forRunner(runner));
        if (report.countAtLeast(threshold) > 0) {
            std::string message;
            unsigned listed = 0;
            for (const analysis::Diagnostic &d : report.diagnostics) {
                if (static_cast<int>(d.severity) <
                    static_cast<int>(threshold))
                    continue;
                if (listed == 3) {
                    message += "; ...";
                    break;
                }
                if (listed > 0)
                    message += "; ";
                message += d.format();
                ++listed;
            }
            return RunError{RunError::Code::LintError, message};
        }
    }

    try {
        return RunOutcome(runner.run(spec));
    } catch (const BudgetExceededError &e) {
        // The resilience guard, not a spec defect per se: the message
        // carries the partial progress (instructions, cycles, PMU
        // snapshot) the dispatcher captured when the budget tripped.
        obs::Registry::process()
            .counter("runner.budget.exceeded")
            .add();
        return RunError{RunError::Code::BudgetExceeded, e.what()};
    } catch (const fault::InjectedFault &f) {
        return RunError{RunError::Code::ExecutionError, f.what(),
                        f.transient()};
    } catch (const FatalError &e) {
        return RunError{RunError::Code::ExecutionError, e.what()};
    }
}

RunOutcome
Session::run(const core::BenchmarkSpec &spec)
{
    core::BenchmarkSpec resolved = spec;
    if (resolved.config.empty())
        resolved.config = options_.config;
    return runSpecOnRunner(*lease_->runner, std::move(resolved));
}

std::vector<RunOutcome>
Session::runBatch(const std::vector<core::BenchmarkSpec> &specs)
{
    std::vector<RunOutcome> outcomes;
    outcomes.reserve(specs.size());
    for (const auto &spec : specs)
        outcomes.push_back(run(spec));
    return outcomes;
}

core::BenchmarkResult
Session::runOrThrow(const core::BenchmarkSpec &spec)
{
    RunOutcome outcome = run(spec);
    if (!outcome.ok())
        throw FatalError(outcome.error().message);
    return std::move(outcome.result());
}

// ------------------------------------------------------------ engine --

Session
Engine::session(const SessionOptions &options)
{
    SessionOptions resolved = options;
    if (resolved.config.empty() && !resolved.configFile.empty())
        resolved.config = core::CounterConfig::parseFile(
            resolved.configFile);

    // Resolve the uarch before touching the pool so unknown names
    // throw without leaving a half-built entry behind.
    const auto &ua = uarch::getMicroArch(resolved.uarch);

    PoolKey key{resolved.uarch, resolved.mode, resolved.seed,
                resolved.replica};
    std::shared_ptr<detail::MachineLease> lease;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = pool_.find(key);
        if (it != pool_.end()) {
            lease = it->second;
            ++hits_;
        }
    }
    if (!lease) {
        // Construct outside the lock: machine setup is the expensive
        // part, and concurrent sessions for other keys should not
        // serialize behind it.
        auto fresh = std::make_shared<detail::MachineLease>();
        fresh->machine =
            std::make_unique<sim::Machine>(ua, resolved.seed);
        fresh->runner = std::make_unique<core::Runner>(*fresh->machine,
                                                       resolved.mode);
        fresh->runner->setSharedProgramCache(programCache_);
        std::lock_guard<std::mutex> lock(mutex_);
        auto [it, inserted] = pool_.emplace(key, std::move(fresh));
        if (inserted)
            ++constructed_;
        else
            ++hits_; // another thread won the race; share its machine
        lease = it->second;
    }
    return Session(std::move(lease), std::move(resolved));
}

std::size_t
Engine::poolSize() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pool_.size();
}

std::uint64_t
Engine::machinesConstructed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return constructed_;
}

std::uint64_t
Engine::poolHits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

void
Engine::clearPool()
{
    std::lock_guard<std::mutex> lock(mutex_);
    pool_.clear();
}

void
Engine::resetStats()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        constructed_ = 0;
        hits_ = 0;
    }
    programCache_->resetStats();
}

EngineTelemetry
Engine::telemetry() const
{
    EngineTelemetry t;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        t.poolSize = pool_.size();
        t.machinesConstructed = constructed_;
        t.poolHits = hits_;
    }
    t.programCacheSize = programCache_->size();
    t.program = programCache_->stats();
    t.assemble = assembleCacheCounters();
    t.lint = analysis::lintCacheCounters();
    return t;
}

} // namespace nb
