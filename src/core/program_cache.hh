/**
 * @file
 * Shared, thread-safe measurement-program cache.
 *
 * A campaign fans one spec list out over N workers, each with a
 * private Runner. Before this cache, every Runner decoded its own
 * measurement programs: N workers (or, with freshMachinePerSpec, every
 * single spec) paid the decode cost for specs the process had already
 * decoded. The Engine owns one SharedProgramCache and attaches it to
 * every Runner it creates; a unique (uarch, mode, layout, spec, round,
 * unroll-version) program is then decoded once per process and shared
 * by reference.
 *
 * Programs are immutable after decode (execute() takes const
 * Program&), so sharing one instance across threads is safe; the
 * shared_ptr keeps a program alive for a runner even if the cache is
 * cleared (capacity) or the engine is destroyed mid-use.
 */

#ifndef NB_CORE_PROGRAM_CACHE_HH
#define NB_CORE_PROGRAM_CACHE_HH

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/telemetry.hh"
#include "sim/program.hh"

namespace nb::core
{

/** The Engine-wide program cache (see the file comment). All members
 *  are thread-safe. */
class SharedProgramCache
{
  public:
    /**
     * Look up a program. Returns nullptr -- and counts a miss -- if
     * the key is absent; the caller then decodes and insert()s.
     * A non-null return counts a hit.
     */
    std::shared_ptr<const sim::Program> lookup(const std::string &key);

    /**
     * Insert a freshly decoded program, returning the cached instance.
     * If another thread inserted the same key in the meantime, the
     * existing program wins (and the argument is discarded), so
     * concurrent racers converge on one shared instance.
     */
    std::shared_ptr<const sim::Program> insert(std::string key,
                                               sim::Program prog);

    /** Programs currently cached. */
    std::size_t size() const;

    /** Hit/miss counters since construction or resetStats(). */
    CacheStats stats() const;

    /** Zero the counters; cached programs are kept. */
    void resetStats();

  private:
    /** Bound the cache: campaigns can stream an unbounded spec set
     *  through one engine, and a dropped program is only a rebuild
     *  away. Same clear-when-full policy as the Runner-local cache. */
    static constexpr std::size_t kCapacity = 4096;

    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<const sim::Program>>
        map_;
    CacheStats stats_;
};

} // namespace nb::core

#endif // NB_CORE_PROGRAM_CACHE_HH
