/**
 * @file
 * EngineTelemetry serialization (see telemetry.hh). All fields are
 * integral counters, so the JSON round-trip is exact.
 */

#include "core/telemetry.hh"

#include <sstream>

#include "common/logging.hh"
#include "core/json.hh"

namespace nb
{

namespace
{

void
emitCache(std::ostringstream &os, const char *name,
          const CacheStats &stats)
{
    os << "  \"" << name << "\": {\"hits\": " << stats.hits
       << ", \"misses\": " << stats.misses
       << ", \"evictions\": " << stats.evictions << "}";
}

CacheStats
parseCache(core::JsonCursor &cur)
{
    CacheStats stats;
    cur.expect('{');
    if (!cur.tryConsume('}')) {
        do {
            std::string key = cur.parseString();
            cur.expect(':');
            if (key == "hits")
                stats.hits =
                    static_cast<std::uint64_t>(cur.parseNumber());
            else if (key == "misses")
                stats.misses =
                    static_cast<std::uint64_t>(cur.parseNumber());
            else if (key == "evictions")
                stats.evictions =
                    static_cast<std::uint64_t>(cur.parseNumber());
            else
                cur.skipValue();
        } while (cur.tryConsume(','));
        cur.expect('}');
    }
    return stats;
}

} // namespace

std::string
EngineTelemetry::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"pool_size\": " << poolSize << ",\n";
    os << "  \"machines_constructed\": " << machinesConstructed
       << ",\n";
    os << "  \"pool_hits\": " << poolHits << ",\n";
    os << "  \"program_cache_size\": " << programCacheSize << ",\n";
    emitCache(os, "program_cache", program);
    os << ",\n";
    emitCache(os, "assemble_cache", assemble);
    os << ",\n";
    emitCache(os, "lint_cache", lint);
    os << "\n}\n";
    return os.str();
}

std::string
EngineTelemetry::toCsv() const
{
    std::ostringstream os;
    os << "# engine telemetry\n";
    os << "key,value\n";
    os << "pool_size," << poolSize << "\n";
    os << "machines_constructed," << machinesConstructed << "\n";
    os << "pool_hits," << poolHits << "\n";
    os << "program_cache_size," << programCacheSize << "\n";
    os << "program_cache_hits," << program.hits << "\n";
    os << "program_cache_misses," << program.misses << "\n";
    os << "program_cache_evictions," << program.evictions << "\n";
    os << "assemble_cache_hits," << assemble.hits << "\n";
    os << "assemble_cache_misses," << assemble.misses << "\n";
    os << "assemble_cache_evictions," << assemble.evictions << "\n";
    os << "lint_cache_hits," << lint.hits << "\n";
    os << "lint_cache_misses," << lint.misses << "\n";
    os << "lint_cache_evictions," << lint.evictions << "\n";
    return os.str();
}

std::string
EngineTelemetry::format() const
{
    std::ostringstream os;
    os << "engine telemetry:\n";
    os << "  machine pool:   " << poolSize << " pooled, "
       << machinesConstructed << " constructed, " << poolHits
       << " pool hits\n";
    os << "  program cache:  " << programCacheSize << " programs, "
       << program.hits << " hits, " << program.misses << " decodes, "
       << program.evictions << " evicted\n";
    os << "  assemble cache: " << assemble.hits << " hits, "
       << assemble.misses << " parses, " << assemble.evictions
       << " evicted\n";
    os << "  lint cache:     " << lint.hits << " hits, " << lint.misses
       << " analyses\n";
    return os.str();
}

EngineTelemetry
EngineTelemetry::parse(core::JsonCursor &cur)
{
    EngineTelemetry t;
    cur.expect('{');
    if (!cur.tryConsume('}')) {
        do {
            std::string key = cur.parseString();
            cur.expect(':');
            if (key == "pool_size") {
                t.poolSize =
                    static_cast<std::uint64_t>(cur.parseNumber());
            } else if (key == "machines_constructed") {
                t.machinesConstructed =
                    static_cast<std::uint64_t>(cur.parseNumber());
            } else if (key == "pool_hits") {
                t.poolHits =
                    static_cast<std::uint64_t>(cur.parseNumber());
            } else if (key == "program_cache_size") {
                t.programCacheSize =
                    static_cast<std::uint64_t>(cur.parseNumber());
            } else if (key == "program_cache") {
                t.program = parseCache(cur);
            } else if (key == "assemble_cache") {
                t.assemble = parseCache(cur);
            } else if (key == "lint_cache") {
                t.lint = parseCache(cur);
            } else {
                cur.skipValue();
            }
        } while (cur.tryConsume(','));
        cur.expect('}');
    }
    return t;
}

EngineTelemetry
EngineTelemetry::fromJson(const std::string &text)
{
    core::JsonCursor cur(text);
    EngineTelemetry t = parse(cur);
    cur.expectEnd();
    return t;
}

} // namespace nb
