/**
 * @file
 * Measurement-code generation (paper Algorithm 1, §III-B, §IV-B).
 *
 * For a microbenchmark the generator emits:
 *
 *   codeInit                       (initialization, not measured)
 *   m1 <- readPerfCtrs             (serialized per the chosen mode)
 *   [loop head if loopCount > 0]
 *   code x localUnrollCount        (the benchmark body, unrolled)
 *   [loop tail]
 *   m2 <- readPerfCtrs
 *
 * Register save/restore (lines 2 and 11 of Algorithm 1) is performed by
 * the runner at the architectural-state level, which is behaviourally
 * equivalent to the push/pop sequences the real tool emits.
 *
 * In the default (memory) mode the counter readout stores the raw values
 * to a results buffer via absolute addressing, temporarily spilling
 * RAX/RCX/RDX to a scratch slot and restoring them afterwards, so the
 * microbenchmark's registers survive (§III-B). In noMem mode (§III-I)
 * the readout instead accumulates m2-m1 directly into dedicated
 * accumulator registers (sub on the first read, add on the second) and
 * performs no memory access at all; the microbenchmark must then
 * preserve those registers. PFC_PAUSE/PFC_RESUME magic markers embedded
 * in the body are rewritten (byte-level, like the real tool) into
 * counter pause/resume operations by the encoder/decoder path.
 */

#ifndef NB_CORE_CODEGEN_HH
#define NB_CORE_CODEGEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/config.hh"
#include "sim/program.hh"
#include "x86/instruction.hh"

namespace nb::core
{

/** How counter reads are serialized (§IV-A1). */
enum class SerializeMode : std::uint8_t
{
    None,   ///< no fences: reads may be reordered by the OOO engine
    Cpuid,  ///< CPUID fences (variable latency/µops; problematic)
    Lfence, ///< LFENCE fences (the paper's recommendation)
};

SerializeMode parseSerializeMode(const std::string &name);

/** One value to read in a readout block. */
struct ReadoutItem
{
    enum class Kind : std::uint8_t
    {
        FixedPmc, ///< RDPMC with index 0x40000000+i
        ProgPmc,  ///< RDPMC with index i
        Msr,      ///< RDMSR (kernel only): APERF/MPERF/uncore
    };
    Kind kind = Kind::ProgPmc;
    std::uint32_t index = 0; ///< counter index or MSR address
    std::string name;        ///< display name
};

/** Parameters of one generated-code build. */
struct GenParams
{
    std::vector<x86::Instruction> body;
    std::vector<x86::Instruction> init;
    std::uint64_t loopCount = 0;
    std::uint64_t localUnrollCount = 1;
    SerializeMode serialize = SerializeMode::Lfence;
    bool noMem = false;
    std::vector<ReadoutItem> readouts;
    /** Virtual base of the results/scratch area (memory mode). */
    Addr resultBase = 0;
};

/** Memory layout of the results area (memory mode). */
namespace layout
{
/** m1 slots start here (8 bytes per readout item). */
inline constexpr Addr kM1Offset = 0x000;
/** m2 slots start here. */
inline constexpr Addr kM2Offset = 0x100;
/** RAX/RCX/RDX spill slots. */
inline constexpr Addr kSpillOffset = 0x200;
/** Total size of the results area. */
inline constexpr Addr kAreaSize = 0x240;
} // namespace layout

/** Accumulator registers used by the noMem readout (§III-I); the
 *  microbenchmark must not modify them. */
const std::vector<x86::Reg> &noMemAccumulators();

/** Maximum readout items supported in noMem mode. */
unsigned maxNoMemReadouts();

/**
 * Generate the full measurement function per Algorithm 1 as a
 * materialized instruction vector (localUnrollCount copies of the
 * body, branch targets relocated per copy).
 *
 * The loop counter register is R15 (the body must not modify it when
 * loopCount > 0, as documented in §III-B).
 */
std::vector<x86::Instruction> generateMeasurementCode(const GenParams &p);

/**
 * Build the same measurement function as a predecoded, repeat-encoded
 * sim::Program: the body is decoded ONCE and iterated
 * localUnrollCount times instead of being copied, and every static
 * per-instruction fact is resolved up front. Executing the program is
 * bit-identical to executing generateMeasurementCode(p) -- same
 * virtual instruction indices, same counter values -- but building it
 * is O(|body|) instead of O(unroll x |body|), and it can be cached
 * and reused across all warm-up and measurement runs of a round
 * (Runner::programCacheStats()).
 */
sim::Program buildMeasurementProgram(const GenParams &p,
                                     const uarch::MicroArch &ua);

/**
 * The generation half of buildMeasurementProgram(): emit the repeat-
 * encoded segment list (preamble, body pattern, loop tail, postamble)
 * without decoding it. buildMeasurementProgram(p, ua) ==
 * sim::Program::decode(ua, buildMeasurementSegments(p)); the split
 * lets the Runner attribute codegen and decode time separately
 * (obs::Phase) on program-cache misses.
 */
std::vector<sim::Program::Segment>
buildMeasurementSegments(const GenParams &p);

} // namespace nb::core

#endif // NB_CORE_CODEGEN_HH
