/**
 * @file
 * Reusable benchmark-execution API.
 *
 * The one-shot NanoBench facade (nanobench.hh) mirrors the paper's
 * shell scripts: one process, one machine, one benchmark, abort on
 * error. This layer makes the same machinery reusable and batchable:
 *
 *  - An Engine owns a pool of simulated machine + runner pairs, keyed
 *    by (uarch, mode, seed). Requesting a session for a key that was
 *    already built reuses the warmed-up machine instead of paying the
 *    full construction cost again (uops.info-style campaigns run
 *    thousands of benchmarks per microarchitecture).
 *
 *  - A Session is a lightweight handle on one pooled machine. It runs
 *    a single BenchmarkSpec (run()) or a whole batch (runBatch()),
 *    returning RunOutcome values: user-level failures (malformed
 *    assembly, invalid parameters, privileged instructions in user
 *    mode) come back as RunError data instead of unwinding the caller,
 *    so one bad spec cannot take down a batch. Internal invariant
 *    violations still panic() -- those are bugs, not inputs.
 *
 * Sessions keep their machine alive through a shared lease: an Engine
 * may be destroyed (or its pool cleared) while sessions on it are
 * still in use. Engine::session() is thread-safe; an individual
 * Session (and the machine behind it) is not, so run benchmarks on a
 * session from one thread at a time.
 */

#ifndef NB_CORE_ENGINE_HH
#define NB_CORE_ENGINE_HH

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "core/program_cache.hh"
#include "core/runner.hh"
#include "core/telemetry.hh"

namespace nb
{

namespace detail
{

/** One pooled machine + runner pair (shared by sessions). */
struct MachineLease
{
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<core::Runner> runner;
};

} // namespace detail

/** A user-level benchmark failure, reported as data (not an abort). */
struct RunError
{
    enum class Code : std::uint8_t
    {
        /** The spec itself is unusable (e.g. empty benchmark body). */
        InvalidSpec,
        /** The asm text of the body or init part did not assemble. */
        AssemblyError,
        /** The spec asks for a feature this session cannot provide
         *  (e.g. APERF/MPERF in user mode, §II-A1). */
        Unsupported,
        /** The spec opted into linting (BenchmarkSpec::lintLevel) and
         *  the static analyzer found diagnostics at or above the
         *  requested threshold. */
        LintError,
        /** The benchmark failed while executing (e.g. a privileged
         *  instruction in user mode, a bad memory access). */
        ExecutionError,
        /** The run exceeded its cycle budget
         *  (BenchmarkSpec::cycleBudget / CampaignOptions::specBudget)
         *  and was stopped; the message carries the partial progress
         *  (instructions retired, cycles consumed, PMU state). */
        BudgetExceeded,
        /** The campaign was cancelled (CancelToken / SIGINT) before
         *  this spec ran. */
        Cancelled,
        // Keep Cancelled last: kNumRunErrorCodes (and the histograms
        // sized by it) is asserted against it below.
    };

    Code code = Code::ExecutionError;
    std::string message;
    /** Transient failures (injected transient faults, cancelled-
     *  before-run) are worth retrying; the campaign worker loop
     *  retries them up to CampaignOptions::maxRetries times.
     *  Permanent failures fail fast. */
    bool transient = false;
};

/** Human-readable name of a RunError code. */
const char *runErrorCodeName(RunError::Code code);

/** Number of distinct RunError codes (histogram sizing). */
inline constexpr unsigned kNumRunErrorCodes = 7;
static_assert(static_cast<unsigned>(RunError::Code::Cancelled) ==
                  kNumRunErrorCodes - 1,
              "kNumRunErrorCodes must track RunError::Code");

/** Inverse of runErrorCodeName(); std::nullopt for unknown names. */
std::optional<RunError::Code> runErrorCodeFromName(
    const std::string &name);

class RunOutcome;

/**
 * Counters of the session-layer assembly memo: runSpecOnRunner()
 * parses each distinct asm text once per process and serves repeats
 * from a cache (campaign warm-ups, repeated specs, and profile
 * re-runs stop re-parsing). Monotonic and process-wide; thread-safe.
 * Pre-telemetry shape, kept for the deprecated accessor; new code
 * reads assembleCacheCounters() (or Engine::telemetry()).
 */
struct AssembleCacheStats
{
    std::uint64_t hits = 0;   ///< texts served from the memo
    std::uint64_t misses = 0; ///< texts parsed (successfully)
    std::uint64_t evictions = 0; ///< entries dropped by clear-when-full
};

/** Current counters of the assembly memo, in the unified telemetry
 *  shape (misses are successful parses). Thread-safe. */
CacheStats assembleCacheCounters();

/** @deprecated Pre-telemetry shape of assembleCacheCounters(). */
[[deprecated("use assembleCacheCounters()")]] AssembleCacheStats
assembleCacheStats();

/**
 * Run one spec on a bare Runner with Session::run() semantics:
 * assembly problems, invalid parameters (validateSpec), and execution
 * failures come back as RunError outcomes instead of unwinding. This
 * is the shared classification path -- Session::run() delegates here,
 * and tools holding a Runner directly (e.g. the characterizer) get
 * identical error taxonomy without a Session.
 */
RunOutcome runSpecOnRunner(core::Runner &runner,
                           core::BenchmarkSpec spec);

/** Result of one Session::run(): a BenchmarkResult or a RunError. */
class RunOutcome
{
  public:
    /*implicit*/ RunOutcome(core::BenchmarkResult result)
        : result_(std::move(result)), ok_(true)
    {
    }

    /*implicit*/ RunOutcome(RunError error)
        : error_(std::move(error)), ok_(false)
    {
    }

    bool ok() const { return ok_; }
    explicit operator bool() const { return ok_; }

    /** The benchmark result; asserts ok(). */
    const core::BenchmarkResult &result() const;
    core::BenchmarkResult &result();

    /** The failure; asserts !ok(). */
    const RunError &error() const;

    /** The result if ok(); @throws nb::FatalError otherwise. */
    const core::BenchmarkResult &resultOrThrow() const;

  private:
    core::BenchmarkResult result_;
    RunError error_;
    bool ok_;
};

/** Options selecting (and configuring) one pooled machine. */
struct SessionOptions
{
    std::string uarch = "Skylake";
    core::Mode mode = core::Mode::Kernel;
    std::uint64_t seed = 42;
    /**
     * Machine-replica index, part of the pool key. Sessions are
     * single-threaded (see the file comment), so concurrent workers
     * that want identical machines -- same uarch, mode, and seed --
     * must each use a distinct replica to get a private copy. The
     * campaign executor keys its workers by worker index; plain
     * callers leave this at 0.
     */
    std::uint32_t replica = 0;
    /** Path of a counter-config file, parsed once when the session is
     *  created; empty = none. */
    std::string configFile;
    /** Events used when a spec's own config is empty (overrides
     *  configFile if both are set). */
    core::CounterConfig config;
};

/**
 * A handle on one pooled machine, able to run benchmarks against it.
 * Copyable and cheap to pass around; copies share the same machine.
 */
class Session
{
  public:
    /**
     * Run one benchmark. User-level failures are returned as RunError
     * outcomes; PanicError (library bugs) still propagates.
     */
    RunOutcome run(const core::BenchmarkSpec &spec);

    /**
     * Run a batch of benchmarks against this session's machine. The
     * returned vector has exactly one outcome per spec, in spec order;
     * failures are recorded and the batch continues.
     */
    std::vector<RunOutcome> runBatch(
        const std::vector<core::BenchmarkSpec> &specs);

    /** run() + resultOrThrow(): for callers that want abort-on-error
     *  semantics (the CLI, one-shot drivers). */
    core::BenchmarkResult runOrThrow(const core::BenchmarkSpec &spec);

    sim::Machine &machine() { return *lease_->machine; }
    core::Runner &runner() { return *lease_->runner; }
    const SessionOptions &options() const { return options_; }
    const std::string &uarch() const { return options_.uarch; }
    core::Mode mode() const { return options_.mode; }

  private:
    friend class Engine;
    Session(std::shared_ptr<detail::MachineLease> lease,
            SessionOptions options)
        : lease_(std::move(lease)), options_(std::move(options))
    {
    }

    std::shared_ptr<detail::MachineLease> lease_;
    SessionOptions options_;
};

// Campaign executor types (campaign.hh); runCampaign() is declared
// here so the Engine owns the entry point, and defined in campaign.cc.
struct CampaignOptions;
struct CampaignResult;

/**
 * The machine pool. session() hands out Sessions backed by cached
 * machines; identical (uarch, mode, seed, replica) keys share one
 * machine.
 */
class Engine
{
  public:
    Engine() = default;
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Create (or reuse) a machine for the options and return a
     *  session on it. @throws nb::FatalError for an unknown uarch or
     *  an unreadable configFile. */
    Session session(const SessionOptions &options = {});

    /**
     * Run a campaign: fan @p specs out across a pool of worker
     * threads, each holding a private machine replica (see
     * campaign.hh for the options, report, and guarantees). Outcomes
     * come back in spec order. @throws nb::FatalError for an unknown
     * uarch or an unreadable configFile (before any work starts).
     */
    CampaignResult runCampaign(
        const std::vector<core::BenchmarkSpec> &specs,
        const CampaignOptions &options);

    /** Number of distinct machines currently pooled. */
    std::size_t poolSize() const;

    /**
     * Total machines constructed over this engine's LIFETIME. This is
     * a monotonic counter, deliberately not tied to the pool's
     * current contents: clearPool() drops the machines but keeps the
     * counters, so construction cost across clears stays visible.
     * Call resetStats() for a fresh measurement window.
     */
    std::uint64_t machinesConstructed() const;

    /**
     * session() calls served from the pool without construction, over
     * the engine's lifetime (monotonic, survives clearPool(); see
     * machinesConstructed()).
     */
    std::uint64_t poolHits() const;

    /** Drop all pooled machines. Outstanding sessions keep theirs
     *  alive through their lease; new sessions get fresh machines.
     *  The lifetime counters are NOT reset -- use resetStats(). */
    void clearPool();

    /** Zero machinesConstructed(), poolHits(), and the shared
     *  program-cache counters without touching the pool or the cached
     *  programs. Benches use this to open a clean measurement window
     *  after warm-up. */
    void resetStats();

    /**
     * Unified snapshot of every cache and pool counter: the machine
     * pool, the shared measurement-program cache, and the process-wide
     * assembly and lint memos (see telemetry.hh for the aggregation
     * caveat on the latter two). Serializable via
     * EngineTelemetry::toJson()/toCsv(); the CLI dumps it with -stats.
     */
    EngineTelemetry telemetry() const;

    /**
     * The engine-wide measurement-program cache. Every Runner this
     * engine creates -- pooled session runners and the per-spec
     * runners of freshMachinePerSpec campaigns -- shares it, so each
     * unique (uarch, mode, layout, spec, round, unroll-version)
     * program is decoded once per engine, not once per runner.
     */
    core::SharedProgramCache &programCache() { return *programCache_; }

  private:
    using PoolKey = std::tuple<std::string, core::Mode, std::uint64_t,
                               std::uint32_t>;

    mutable std::mutex mutex_;
    std::map<PoolKey, std::shared_ptr<detail::MachineLease>> pool_;
    std::uint64_t constructed_ = 0;
    std::uint64_t hits_ = 0;
    /** shared_ptr ownership: runners hand out copies to their cached
     *  programs' owners, and sessions may outlive the engine. */
    std::shared_ptr<core::SharedProgramCache> programCache_ =
        std::make_shared<core::SharedProgramCache>();
};

} // namespace nb

#endif // NB_CORE_ENGINE_HH
