/**
 * @file
 * Performance-counter configuration files (paper §III-J).
 *
 * Events are specified in a configuration file, one per line, as
 * "<EvSel>.<Umask> <Name>" in hex (e.g. "A1.01
 * UOPS_DISPATCHED_PORT.PORT_0"); '#' starts a comment. Unlike in some
 * previous tools (libpfc), events are not hard-coded: adapting the tool
 * to a new CPU only requires a new configuration file. If a file names
 * more events than there are programmable counters, the benchmark is
 * automatically executed multiple times with different counter
 * configurations (rounds).
 */

#ifndef NB_CORE_CONFIG_HH
#define NB_CORE_CONFIG_HH

#include <string>
#include <vector>

#include "sim/events.hh"

namespace nb::core
{

/** One configured event: catalog entry + display name from the file. */
struct ConfiguredEvent
{
    sim::EventCode code;
    sim::EventId id;
    std::string displayName;
};

/** A parsed counter configuration. */
class CounterConfig
{
  public:
    CounterConfig() = default;

    /** Parse configuration text. Unknown codes are warned about and
     *  skipped (they may exist on other CPUs). */
    static CounterConfig parseString(const std::string &text);

    /** Parse a configuration file. @throws nb::FatalError if the file
     *  cannot be read. */
    static CounterConfig parseFile(const std::string &path);

    /** Default configuration for a microarchitecture name (the shipped
     *  cfg_<uarch>.txt files). */
    static CounterConfig forMicroArch(const std::string &uarch_name);

    const std::vector<ConfiguredEvent> &events() const { return events_; }
    bool empty() const { return events_.empty(); }

    void add(const ConfiguredEvent &event) { events_.push_back(event); }

    /**
     * Split the events into rounds of at most @p num_prog_counters
     * events; each round is one benchmark execution (§III-J).
     */
    std::vector<std::vector<ConfiguredEvent>>
    rounds(unsigned num_prog_counters) const;

  private:
    std::vector<ConfiguredEvent> events_;
};

/** Directory containing the shipped cfg_*.txt files (set by the build).*/
const char *configDir();

} // namespace nb::core

#endif // NB_CORE_CONFIG_HH
