/**
 * @file
 * SharedProgramCache implementation (see program_cache.hh). Decoding
 * happens outside the lock -- lookup() and insert() are two separate
 * critical sections -- so a slow decode never serializes the other
 * workers' cache traffic.
 */

#include "core/program_cache.hh"

#include "obs/metrics.hh"

namespace nb::core
{

std::shared_ptr<const sim::Program>
SharedProgramCache::lookup(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    ++stats_.hits;
    return it->second;
}

std::shared_ptr<const sim::Program>
SharedProgramCache::insert(std::string key, sim::Program prog)
{
    auto owned =
        std::make_shared<const sim::Program>(std::move(prog));
    std::lock_guard<std::mutex> lock(mutex_);
    if (map_.size() >= kCapacity) {
        // Clear-when-full, but never silently: the eviction count
        // explains the miss storm a full cache otherwise looks like.
        stats_.evictions += map_.size();
        obs::Registry::process()
            .counter("engine.program_cache.evicted")
            .add(map_.size());
        map_.clear();
    }
    auto [it, inserted] = map_.try_emplace(std::move(key), owned);
    // On a lost race the first decode wins; both racers already
    // counted a miss, which is accurate: both paid a decode.
    return it->second;
}

std::size_t
SharedProgramCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

CacheStats
SharedProgramCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
SharedProgramCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = {};
}

} // namespace nb::core
