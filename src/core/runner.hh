/**
 * @file
 * The nanoBench benchmark runner (paper Algorithm 2, §III).
 *
 * Runs a microbenchmark: programs the counters (in rounds if there are
 * more events than programmable counters, §III-J), performs warm-up runs
 * (§III-H), runs the generated code nMeasurements times, applies the
 * aggregate (§III-C), and removes measurement overhead by running two
 * code versions (localUnrollCount = unrollCount and 2x unrollCount, or 0
 * in basic mode) and reporting the normalized difference (§III-C).
 *
 * Two modes mirror the two nanoBench variants (§III-D):
 *  - Kernel: privileged instructions allowed, interrupts disabled during
 *    measurements, APERF/MPERF and uncore counters readable, memory
 *    areas backed by physically-contiguous pages, and an optional large
 *    physically-contiguous R14 area (§III-G, §IV-D).
 *  - User: no privileged instructions, timer interrupts perturb runs,
 *    memory areas are backed by scattered physical pages, and counter
 *    (re)programming costs simulated syscalls.
 */

#ifndef NB_CORE_RUNNER_HH
#define NB_CORE_RUNNER_HH

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "core/codegen.hh"
#include "core/config.hh"
#include "core/result.hh"
#include "core/telemetry.hh"
#include "kernel/kalloc.hh"
#include "obs/metrics.hh"
#include "sim/machine.hh"

namespace nb::core
{

class SharedProgramCache;

/** Which nanoBench variant to model (§III-D). */
enum class Mode : std::uint8_t
{
    User,
    Kernel,
};

/** Human-readable name of a Mode ("user" / "kernel"). */
const char *modeName(Mode mode);

/**
 * Opt-in spec linting threshold (the static analyzer in
 * src/analysis/). Off keeps the pre-lint behavior: specs run
 * unchecked. Warn fails the run on warning-or-worse diagnostics,
 * Error only on error-severity ones; either failure surfaces as a
 * typed RunError (LintError) from Session::run, never as an abort.
 */
enum class LintLevel : std::uint8_t
{
    Off,
    Warn,
    Error,
};

/** Human-readable name ("off" / "warn" / "error"). */
const char *lintLevelName(LintLevel level);

/** Inverse of lintLevelName(); std::nullopt for unknown names. */
std::optional<LintLevel> lintLevelFromName(std::string_view name);

/** User-visible benchmark parameters (the CLI options, §III). */
struct BenchmarkSpec
{
    /** Benchmark body (Intel-syntax assembly, §III-E). */
    std::string asmCode;
    /** Initialization part, not measured (§III-A). */
    std::string asmInit;
    /** Pre-assembled alternatives to the strings above. */
    std::vector<x86::Instruction> code;
    std::vector<x86::Instruction> init;

    /** Defaults follow the paper's shell-script front end (§III-E),
     *  which the CLI usage text advertises: 100 unrolled copies and 2
     *  discarded warm-up runs. */
    std::uint64_t unrollCount = 100;
    std::uint64_t loopCount = 0;
    unsigned nMeasurements = 10;
    unsigned warmUpCount = 2;
    Aggregate agg = Aggregate::Median;
    /** Second run uses localUnrollCount=0 instead of 2x (§III-C). */
    bool basicMode = false;
    bool noMem = false;
    SerializeMode serialize = SerializeMode::Lfence;
    /** Also read the fixed-function counters (Intel). */
    bool fixedCounters = true;
    /** Read APERF/MPERF via RDMSR (kernel mode only, §II-A1). */
    bool aperfMperf = false;
    /** Static-analysis opt-in (observe-only default: Off). */
    LintLevel lintLevel = LintLevel::Off;
    /**
     * Cycle budget for the whole run() (0 = unlimited): once the
     * simulated machine has consumed this many cycles across every
     * warm-up and measurement execution of this spec, the run stops
     * with nb::BudgetExceededError (surfaced by the session/campaign
     * layers as RunError::Code::BudgetExceeded). The runaway-spec
     * guard: an R1-style infinite loop that dodges the opt-in linter
     * returns a typed error instead of hanging a worker. Campaigns
     * can impose a default via CampaignOptions::specBudget.
     */
    std::uint64_t cycleBudget = 0;
    /** Programmable events. */
    CounterConfig config;

    /** Compact one-line echo of the spec (the BenchmarkResult
     *  metadata). */
    std::string summary() const;
};

/** A structural problem with a BenchmarkSpec, found before running. */
struct SpecIssue
{
    enum class Kind : std::uint8_t
    {
        /** The spec's parameters are unusable on any runner (e.g.
         *  nMeasurements == 0: the aggregate of an empty measurement
         *  set is undefined). */
        Invalid,
        /** The spec asks for a feature this runner's mode cannot
         *  provide (e.g. APERF/MPERF in user mode, §II-A1). */
        Unsupported,
    };

    Kind kind = Kind::Invalid;
    std::string message;
};

/**
 * Validate a spec's parameters against a runner mode. Returns the
 * first problem found, or std::nullopt for a clean spec. Runner::run
 * calls this and fatal()s on an issue (instead of tripping asserts or
 * worse deep inside the measurement loop); Session::run calls it to
 * produce typed RunErrors. Note the body is checked elsewhere (it may
 * still be unassembled text here).
 */
std::optional<SpecIssue> validateSpec(const BenchmarkSpec &spec,
                                      Mode mode);

/**
 * Canonical text key of a spec: two specs compare equal iff their
 * keys are equal. Covers every BenchmarkSpec field, including
 * pre-assembled code (by its encoding) and the counter config. Used
 * by campaign dedup and the Runner's measurement-program cache.
 */
std::string specCanonicalKey(const BenchmarkSpec &spec);

/** FNV-1a hash of specCanonicalKey() (stable across runs). */
std::uint64_t specHash(const BenchmarkSpec &spec);

/**
 * Hit/build counters of a Runner's measurement-program cache, the
 * pre-telemetry shape kept for the deprecated programCacheStats()
 * accessor. New code reads Runner::programStats(), which reports the
 * same numbers as an nb::CacheStats (builds are the misses).
 */
struct ProgramCacheStats
{
    /** Measurement programs fetched or decoded (local-cache misses). */
    std::uint64_t builds = 0;
    /** Measurement programs served from the local cache. */
    std::uint64_t hits = 0;
    /** Entries dropped by the clear-when-full policy. */
    std::uint64_t evictions = 0;
};

/** The benchmark runner; owns the memory-area setup for one machine. */
class Runner
{
  public:
    Runner(sim::Machine &machine, Mode mode);

    Mode mode() const { return mode_; }
    sim::Machine &machine() { return machine_; }
    kernel::KernelAllocator &allocator() { return alloc_; }

    /** Run a benchmark and return the aggregated, normalized results. */
    BenchmarkResult run(const BenchmarkSpec &spec);

    /**
     * Reserve a physically-contiguous memory area of @p size bytes that
     * R14 will point to (kernel mode only; §III-G / §IV-D). Returns
     * false if the greedy allocation failed (reboot suggested).
     */
    bool reserveR14Area(Addr size);

    /** Base virtual addresses of the dedicated memory areas (§III-G). */
    Addr r14Area() const { return r14Base_; }
    Addr rdiArea() const { return rdiBase_; }
    Addr rsiArea() const { return rsiBase_; }
    Addr rbpArea() const { return rbpBase_; }
    Addr rspArea() const { return rspBase_; }
    /** Size of the R14 area (1 MB unless reserveR14Area enlarged it). */
    Addr r14AreaSize() const { return r14Size_; }
    /** Base of the results/scratch area the memory-mode readout spills
     *  counters into (layout::kAreaSize bytes; the lint footprint rule
     *  flags microbenchmarks that touch it). */
    Addr resultArea() const { return resultBase_; }

    /** Total simulated cycles spent in the last run() call (for the
     *  §III-K execution-time experiment). */
    Cycles lastRunCycles() const { return lastRunCycles_; }

    /**
     * Cumulative wall time this runner spent per pipeline phase
     * (obs::Phase) across all run() calls since construction or
     * resetPhaseTimes(). Codegen/Decode only accrue on measurement-
     * program cache misses; Assemble accrues here when run() parses
     * asm text itself and via addPhaseTime() when the session layer
     * (runSpecOnRunner) pre-assembles. The campaign executor windows
     * this accumulator per spec to aggregate per-worker phase totals.
     */
    const obs::PhaseTimes &phaseTimes() const { return phaseTimes_; }
    void resetPhaseTimes() { phaseTimes_ = {}; }

    /**
     * Credit @p ns of externally-timed work to @p phase: adds to
     * phaseTimes() and feeds the process-wide "runner.phase.<name>"
     * histograms (obs::Registry::process()).
     */
    void addPhaseTime(obs::Phase phase, std::uint64_t ns);

    /**
     * Measurement-program cache counters in the unified telemetry
     * shape: hits were served from this runner's local cache; misses
     * had to fetch from the shared cache or decode. One miss per
     * (round, unroll-version) per unique spec is the expected steady
     * state; misses growing with nMeasurements would mean the codegen
     * hoisting regressed.
     */
    CacheStats programStats() const
    {
        return {progStats_.hits, progStats_.builds,
                progStats_.evictions};
    }
    /** Zero the cache counters (the cache itself is kept). */
    void resetProgramStats() { progStats_ = {}; }

    /** @deprecated Pre-telemetry shape of programStats(). */
    [[deprecated("use programStats()")]] ProgramCacheStats
    programCacheStats() const
    {
        return progStats_;
    }
    /** @deprecated Renamed; use resetProgramStats(). */
    [[deprecated("use resetProgramStats()")]] void
    resetProgramCacheStats()
    {
        progStats_ = {};
    }

    /**
     * Attach the engine-wide shared program cache
     * (core/program_cache.hh). On a local-cache miss the runner
     * consults -- and populates -- the shared cache before decoding;
     * without one attached it decodes privately, as before. The
     * runner holds cached programs by shared_ptr, so they stay valid
     * if the cache (or the engine owning it) goes away mid-use.
     */
    void setSharedProgramCache(std::shared_ptr<SharedProgramCache> cache)
    {
        sharedCache_ = std::move(cache);
    }

  private:
    void setupMemoryAreas();
    void initRegisters();
    /** Models the syscall cost of (re)programming counters in user
     *  mode. */
    void userModeProgrammingOverhead();

    /**
     * The predecoded measurement program for one (spec, round,
     * unroll-version), built on first use and cached: all warm-up and
     * measurement iterations share one program, and a repeated spec
     * skips regeneration entirely. @p spec_key is the canonical spec
     * key; @p round the counter-round index; the unroll version comes
     * from @p params.localUnrollCount.
     */
    const sim::Program &measurementProgram(const std::string &spec_key,
                                           std::size_t round,
                                           const GenParams &params);

    /** Raw m2-m1 values for one measurement-program execution. */
    std::vector<double> executeOnce(const sim::Program &prog,
                                    const GenParams &params);

    sim::Machine &machine_;
    Mode mode_;
    kernel::KernelAllocator alloc_;
    Addr r14Base_ = 0;
    Addr rdiBase_ = 0;
    Addr rsiBase_ = 0;
    Addr rbpBase_ = 0;
    Addr rspBase_ = 0;
    Addr resultBase_ = 0;
    Addr r14Size_ = 0;
    Cycles lastRunCycles_ = 0;
    /** Cumulative per-phase wall time (see phaseTimes()). */
    obs::PhaseTimes phaseTimes_;
    /** Cached process-registry histogram handles, one per phase
     *  (registration is mutex-protected; updates are lock-free). */
    std::array<obs::Histogram *, obs::kNumPhases> phaseHist_{};

    /** Measurement programs keyed on (spec key, round, localUnroll).
     *  Values are shared with (and may originate from) the engine-wide
     *  cache; privately decoded programs use the same ownership. */
    std::unordered_map<std::string, std::shared_ptr<const sim::Program>>
        programCache_;
    ProgramCacheStats progStats_;
    /** Engine-wide cache, if attached (setSharedProgramCache). */
    std::shared_ptr<SharedProgramCache> sharedCache_;
    /** Predecoded user-mode counter-programming overhead (a repeat-
     *  encoded NOP block), built on first use. */
    std::optional<sim::Program> syscallProgram_;
};

} // namespace nb::core

#endif // NB_CORE_RUNNER_HH
