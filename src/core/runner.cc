/**
 * @file
 * Runner implementation.
 */

#include "runner.hh"

#include <chrono>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"
#include "core/program_cache.hh"
#include "fault/fault.hh"
#include "x86/assembler.hh"
#include "x86/encoding.hh"

namespace nb::core
{

using x86::Instruction;
using x86::Reg;

namespace
{

/** Append a length-prefixed field to a canonical key (unambiguous
 *  even if the payload contains the separator). */
void
appendField(std::string &key, const std::string &payload)
{
    key += std::to_string(payload.size());
    key += ':';
    key += payload;
    key += '\x1f';
}

void
appendField(std::string &key, std::uint64_t value)
{
    appendField(key, std::to_string(value));
}

using PhaseClock = std::chrono::steady_clock;

/** Nanoseconds elapsed since @p start. */
std::uint64_t
nsSince(PhaseClock::time_point start)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            PhaseClock::now() - start)
            .count());
}

std::string
encodeHex(const std::vector<Instruction> &code)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    if (code.empty())
        return out;
    auto bytes = x86::encode(code);
    out.reserve(bytes.size() * 2);
    for (std::uint8_t b : bytes) {
        out += digits[b >> 4];
        out += digits[b & 0xF];
    }
    return out;
}

} // namespace

std::string
specCanonicalKey(const BenchmarkSpec &spec)
{
    std::string key;
    appendField(key, spec.asmCode);
    appendField(key, spec.asmInit);
    appendField(key, encodeHex(spec.code));
    appendField(key, encodeHex(spec.init));
    appendField(key, spec.unrollCount);
    appendField(key, spec.loopCount);
    appendField(key, spec.nMeasurements);
    appendField(key, spec.warmUpCount);
    appendField(key, static_cast<std::uint64_t>(spec.agg));
    appendField(key, static_cast<std::uint64_t>(spec.basicMode));
    appendField(key, static_cast<std::uint64_t>(spec.noMem));
    appendField(key, static_cast<std::uint64_t>(spec.serialize));
    appendField(key, static_cast<std::uint64_t>(spec.fixedCounters));
    appendField(key, static_cast<std::uint64_t>(spec.aperfMperf));
    appendField(key, static_cast<std::uint64_t>(spec.lintLevel));
    // Appended only when armed so every pre-existing key (and the
    // golden artifacts deduped/cached under them) stays byte-stable.
    if (spec.cycleBudget != 0)
        appendField(key, spec.cycleBudget);
    for (const auto &event : spec.config.events()) {
        appendField(key, event.code.evsel);
        appendField(key, event.code.umask);
        appendField(key, static_cast<std::uint64_t>(event.id));
        appendField(key, event.displayName);
    }
    return key;
}

std::uint64_t
specHash(const BenchmarkSpec &spec)
{
    // FNV-1a, 64 bit.
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char c : specCanonicalKey(spec)) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

const char *
modeName(Mode mode)
{
    return mode == Mode::Kernel ? "kernel" : "user";
}

const char *
lintLevelName(LintLevel level)
{
    switch (level) {
      case LintLevel::Off: return "off";
      case LintLevel::Warn: return "warn";
      case LintLevel::Error: return "error";
    }
    return "?";
}

std::optional<LintLevel>
lintLevelFromName(std::string_view name)
{
    for (LintLevel level :
         {LintLevel::Off, LintLevel::Warn, LintLevel::Error}) {
        if (name == lintLevelName(level))
            return level;
    }
    return std::nullopt;
}

std::string
BenchmarkSpec::summary() const
{
    std::ostringstream os;
    if (!asmCode.empty())
        os << "asm=\"" << asmCode << "\"";
    else
        os << "code=<" << code.size() << " insns>";
    if (!asmInit.empty())
        os << " init=\"" << asmInit << "\"";
    else if (!init.empty())
        os << " init=<" << init.size() << " insns>";
    os << " unroll=" << unrollCount << " loop=" << loopCount
       << " n=" << nMeasurements << " warmup=" << warmUpCount
       << " agg=" << aggregateName(agg);
    if (basicMode)
        os << " basic_mode";
    if (noMem)
        os << " no_mem";
    if (aperfMperf)
        os << " aperf_mperf";
    if (lintLevel != LintLevel::Off)
        os << " lint=" << lintLevelName(lintLevel);
    if (cycleBudget != 0)
        os << " cycle_budget=" << cycleBudget;
    return os.str();
}

std::optional<SpecIssue>
validateSpec(const BenchmarkSpec &spec, Mode mode)
{
    if (spec.nMeasurements == 0) {
        return SpecIssue{SpecIssue::Kind::Invalid,
                         "nMeasurements must be at least 1 (the "
                         "aggregate of zero measurements is undefined)"};
    }
    if (spec.unrollCount == 0) {
        return SpecIssue{SpecIssue::Kind::Invalid,
                         "unrollCount must be at least 1 (zero unrolled "
                         "copies measure nothing)"};
    }
    if (spec.aperfMperf && mode != Mode::Kernel) {
        return SpecIssue{
            SpecIssue::Kind::Unsupported,
            "APERF/MPERF can only be read in kernel space (§II-A1)"};
    }
    return std::nullopt;
}

Runner::Runner(sim::Machine &machine, Mode mode)
    : machine_(machine), mode_(mode),
      alloc_(machine.memory(), &machine.rng(),
             /*frag_probability=*/mode == Mode::Kernel ? 0.0 : 0.15)
{
    machine_.setPrivilege(mode == Mode::Kernel ? sim::Privilege::Kernel
                                               : sim::Privilege::User);
    machine_.setRdpmcUserEnabled(true); // the tool sets CR4.PCE
    setupMemoryAreas();
    // Register the per-phase timing histograms once; updates through
    // the cached handles are lock-free on the run path.
    for (unsigned i = 0; i < obs::kNumPhases; ++i) {
        phaseHist_[i] = &obs::Registry::process().histogram(
            std::string("runner.phase.") +
                obs::phaseName(static_cast<obs::Phase>(i)),
            obs::phaseHistogramBounds());
    }
}

void
Runner::addPhaseTime(obs::Phase phase, std::uint64_t ns)
{
    phaseTimes_[phase] += ns;
    phaseHist_[static_cast<unsigned>(phase)]->observe(
        static_cast<double>(ns));
}

void
Runner::setupMemoryAreas()
{
    constexpr Addr kAreaSize = 1024 * 1024; // 1 MB each (§III-G)
    auto alloc_area = [&](const char *what) -> Addr {
        if (mode_ == Mode::Kernel) {
            auto a = alloc_.allocContiguous(kAreaSize);
            NB_ASSERT(a.has_value(), "cannot allocate ", what, " area");
            return a->vaddr;
        }
        // User-space areas are ordinary pages: physically scattered.
        return alloc_.allocFragmented(kAreaSize).vaddr;
    };
    r14Base_ = alloc_area("R14");
    rdiBase_ = alloc_area("RDI");
    rsiBase_ = alloc_area("RSI");
    rbpBase_ = alloc_area("RBP");
    rspBase_ = alloc_area("RSP");
    r14Size_ = kAreaSize;
    // Results/scratch area for the counter readout (memory mode).
    resultBase_ = alloc_.allocFragmented(layout::kAreaSize).vaddr;
}

bool
Runner::reserveR14Area(Addr size)
{
    if (mode_ != Mode::Kernel) {
        warn("reserveR14Area is only available in kernel mode (§III-G)");
        return false;
    }
    auto a = alloc_.allocContiguous(size);
    if (!a)
        return false;
    r14Base_ = a->vaddr;
    r14Size_ = a->size;
    return true;
}

void
Runner::initRegisters()
{
    auto &arch = machine_.arch();
    arch.writeGpr(Reg::R14, 64, r14Base_);
    arch.writeGpr(Reg::RDI, 64, rdiBase_);
    arch.writeGpr(Reg::RSI, 64, rsiBase_);
    arch.writeGpr(Reg::RBP, 64, rbpBase_ + 0x80000);
    arch.writeGpr(Reg::RSP, 64, rspBase_ + 0x80000);
}

void
Runner::userModeProgrammingOverhead()
{
    // Programming counters from user space goes through the perf
    // subsystem: model the syscall + kernel path as a few thousand
    // simulated instructions of unmeasured work. One NOP, decoded
    // once and repeat-encoded 4000 times -- the legacy path executed
    // a materialized 4000-element NOP vector on every counter-
    // programming round.
    if (!syscallProgram_) {
        std::vector<sim::Program::Segment> segments(1);
        segments[0].code = x86::assemble("nop");
        segments[0].repeat = 4000;
        syscallProgram_ = sim::Program::decode(machine_.uarch(),
                                               std::move(segments));
    }
    machine_.execute(*syscallProgram_);
}

const sim::Program &
Runner::measurementProgram(const std::string &spec_key,
                           std::size_t round, const GenParams &params)
{
    // Bound the cache: campaigns stream thousands of unique specs
    // through one pooled runner, and a stale program is only a
    // rebuild away.
    constexpr std::size_t kProgramCacheCap = 1024;

    std::string key = spec_key;
    key += '\x1F';
    key += std::to_string(round);
    key += ':';
    key += std::to_string(params.localUnrollCount);

    auto it = programCache_.find(key);
    if (it != programCache_.end()) {
        ++progStats_.hits;
        return *it->second;
    }
    if (programCache_.size() >= kProgramCacheCap) {
        // Clear-when-full, but never silently: a full cache otherwise
        // reads as an inexplicable 100% miss storm in the telemetry.
        progStats_.evictions += programCache_.size();
        obs::Registry::process()
            .counter("runner.program_cache.evictions")
            .add(programCache_.size());
        programCache_.clear();
    }
    ++progStats_.builds;

    // Generation and decode are timed separately (obs::Phase): a
    // campaign whose Codegen/Decode share does not shrink over time
    // means the program caches stopped working.
    auto build = [&]() -> sim::Program {
        fault::maybeInject(fault::Site::Decode);
        auto t0 = PhaseClock::now();
        auto segments = buildMeasurementSegments(params);
        addPhaseTime(obs::Phase::Codegen, nsSince(t0));
        auto t1 = PhaseClock::now();
        sim::Program built =
            sim::Program::decode(machine_.uarch(), std::move(segments));
        addPhaseTime(obs::Phase::Decode, nsSince(t1));
        return built;
    };

    std::shared_ptr<const sim::Program> prog;
    if (sharedCache_) {
        // The shared key adds everything the generated program depends
        // on beyond the spec: the uarch, the runner mode, and the
        // layout (resultBase) the memory-mode readout is materialized
        // against. Runners with identical layouts share one decode.
        std::string shared_key = machine_.uarch().name;
        shared_key += '\x1F';
        shared_key += modeName(mode_);
        shared_key += '\x1F';
        shared_key += std::to_string(resultBase_);
        shared_key += '\x1F';
        shared_key += key;
        prog = sharedCache_->lookup(shared_key);
        if (!prog) {
            // Decode outside the cache lock; if another worker raced
            // us to the same key, its program wins and ours is
            // discarded (both decodes happened, both count as misses).
            prog = sharedCache_->insert(std::move(shared_key), build());
        }
    } else {
        prog = std::make_shared<const sim::Program>(build());
    }
    auto [pos, inserted] =
        programCache_.emplace(std::move(key), std::move(prog));
    return *pos->second;
}

std::vector<double>
Runner::executeOnce(const sim::Program &prog, const GenParams &params)
{
    // Algorithm 1, lines 2/11: save and restore all registers.
    sim::ArchState saved = machine_.arch();
    initRegisters();

    bool kernel = mode_ == Mode::Kernel;
    bool prev_irq = machine_.interruptsEnabled();
    if (kernel) {
        // The kernel version disables interrupts during measurements
        // (§III-D, §IV-A2).
        machine_.setInterruptsEnabled(false);
    }

    machine_.pmu().beginEpoch();
    machine_.pmu().setPaused(false);
    machine_.execute(prog);

    // Collect raw m2-m1 values.
    std::vector<double> raw(params.readouts.size(), 0.0);
    if (params.noMem) {
        for (std::size_t i = 0; i < params.readouts.size(); ++i) {
            Reg accum = noMemAccumulators()[i];
            raw[i] = static_cast<double>(static_cast<std::int64_t>(
                machine_.arch().readGpr(accum, 64)));
        }
    } else {
        auto &mem = machine_.memory();
        for (std::size_t i = 0; i < params.readouts.size(); ++i) {
            std::uint64_t m1 = mem.readVirt(
                params.resultBase + layout::kM1Offset + 8 * i, 8);
            std::uint64_t m2 = mem.readVirt(
                params.resultBase + layout::kM2Offset + 8 * i, 8);
            raw[i] = static_cast<double>(m2) - static_cast<double>(m1);
        }
    }

    if (kernel)
        machine_.setInterruptsEnabled(prev_irq);
    machine_.arch() = saved;
    return raw;
}

BenchmarkResult
Runner::run(const BenchmarkSpec &spec)
{
    Cycles cycles_begin = machine_.cycles();

    // Assemble body/init if given as text (the session layer usually
    // pre-assembles and credits its time via addPhaseTime).
    std::vector<Instruction> body = spec.code;
    std::vector<Instruction> init = spec.init;
    if (body.empty() && !spec.asmCode.empty()) {
        auto t0 = PhaseClock::now();
        body = x86::assemble(spec.asmCode);
        addPhaseTime(obs::Phase::Assemble, nsSince(t0));
    }
    if (init.empty() && !spec.asmInit.empty()) {
        auto t0 = PhaseClock::now();
        init = x86::assemble(spec.asmInit);
        addPhaseTime(obs::Phase::Assemble, nsSince(t0));
    }
    if (body.empty())
        fatal("empty benchmark body");
    // Reject unusable parameters up front: without this, an empty
    // measurement set would trip (or, without asserts, overrun) the
    // aggregate functions deep inside the measurement loop.
    if (auto issue = validateSpec(spec, mode_))
        fatal(issue->message);

    // Arm the per-run cycle budget. RAII: a pooled machine must never
    // carry a previous spec's deadline into the next run, including
    // when the budget trips and unwinds through here.
    struct BudgetGuard
    {
        sim::Machine &machine;
        ~BudgetGuard() { machine.setCycleBudget(0); }
    } budget_guard{machine_};
    if (spec.cycleBudget != 0) {
        machine_.setCycleBudget(spec.cycleBudget);
        obs::Registry::process().counter("runner.budget.armed").add();
    }

    auto &pmu = machine_.pmu();
    BenchmarkResult result;

    // Fixed counters first, like the §III-A example output.
    std::vector<ReadoutItem> fixed_items;
    if (spec.fixedCounters && pmu.hasFixed()) {
        fixed_items.push_back({ReadoutItem::Kind::FixedPmc, 0,
                               "Instructions retired"});
        fixed_items.push_back(
            {ReadoutItem::Kind::FixedPmc, 1, "Core cycles"});
        fixed_items.push_back(
            {ReadoutItem::Kind::FixedPmc, 2, "Reference cycles"});
    }
    if (spec.aperfMperf) {
        // mode_ == Kernel here: validateSpec() rejected the rest.
        fixed_items.push_back(
            {ReadoutItem::Kind::Msr, sim::msr::kAperf, "APERF"});
        fixed_items.push_back(
            {ReadoutItem::Kind::Msr, sim::msr::kMperf, "MPERF"});
    }

    auto rounds = spec.config.rounds(pmu.numProg());
    if (rounds.empty())
        rounds.push_back({}); // fixed counters only

    std::uint64_t normalization =
        std::max<std::uint64_t>(1, spec.loopCount) * spec.unrollCount;

    // Program-cache key prefix: one canonical key per spec, computed
    // once per run (a repeated spec reuses its cached programs).
    std::string spec_key = specCanonicalKey(spec);

    bool first_round = true;
    for (std::size_t round_idx = 0; round_idx < rounds.size();
         ++round_idx) {
        const auto &round = rounds[round_idx];
        // Program the counters for this round.
        for (unsigned i = 0; i < pmu.numProg(); ++i)
            pmu.disableProg(i);
        std::vector<ReadoutItem> items = first_round
                                             ? fixed_items
                                             : std::vector<ReadoutItem>{};
        for (std::size_t i = 0; i < round.size(); ++i) {
            pmu.configureProg(static_cast<unsigned>(i), round[i].code);
            items.push_back({ReadoutItem::Kind::ProgPmc,
                             static_cast<std::uint32_t>(i),
                             round[i].displayName});
        }
        if (mode_ == Mode::User)
            userModeProgrammingOverhead();
        if (items.empty())
            continue;

        GenParams params;
        params.body = body;
        params.init = init;
        params.loopCount = spec.loopCount;
        params.serialize = spec.serialize;
        params.noMem = spec.noMem;
        params.readouts = items;
        params.resultBase = resultBase_;

        // The two code versions whose difference removes the
        // measurement overhead (§III-C).
        std::uint64_t unroll_a = spec.basicMode ? 0 : spec.unrollCount;
        std::uint64_t unroll_b =
            spec.basicMode ? spec.unrollCount : 2 * spec.unrollCount;

        std::vector<std::vector<double>> agg_ab;
        for (std::uint64_t local_unroll : {unroll_a, unroll_b}) {
            params.localUnrollCount = local_unroll;
            // Built once per (round, unroll-version) and shared by
            // every warm-up and measurement iteration below; repeated
            // specs skip even that one build.
            const sim::Program &prog =
                measurementProgram(spec_key, round_idx, params);
            // Algorithm 2: warm-up runs are executed but discarded.
            std::vector<std::vector<double>> measurements(items.size());
            auto exec_start = PhaseClock::now();
            for (int i = -static_cast<int>(spec.warmUpCount);
                 i < static_cast<int>(spec.nMeasurements); ++i) {
                auto raw = executeOnce(prog, params);
                if (i >= 0) {
                    for (std::size_t k = 0; k < raw.size(); ++k)
                        measurements[k].push_back(raw[k]);
                }
            }
            addPhaseTime(obs::Phase::Execute, nsSince(exec_start));
            auto agg_start = PhaseClock::now();
            std::vector<double> agg(items.size());
            for (std::size_t k = 0; k < items.size(); ++k)
                agg[k] = applyAggregate(spec.agg,
                                        std::move(measurements[k]));
            addPhaseTime(obs::Phase::Aggregate, nsSince(agg_start));
            agg_ab.push_back(std::move(agg));
        }

        // In both modes the two versions differ by exactly
        // loopCount * unrollCount body executions.
        double denom = static_cast<double>(normalization);
        for (std::size_t k = 0; k < items.size(); ++k) {
            double diff = agg_ab[1][k] - agg_ab[0][k];
            result.lines.push_back({items[k].name, diff / denom});
        }
        first_round = false;
    }

    lastRunCycles_ = machine_.cycles() - cycles_begin;

    result.uarch = machine_.uarch().name;
    result.mode = modeName(mode_);
    result.specEcho = spec.summary();
    result.lastRunCycles = lastRunCycles_;
    return result;
}

} // namespace nb::core
