/**
 * @file
 * Command-line front end: the equivalent of nanoBench.sh and
 * kernel-nanoBench.sh (paper §III-E). Example:
 *
 *   nanobench -asm "mov R14, [R14]" -asm_init "mov [R14], R14" \
 *             -config configs/cfg_Skylake.txt -uarch Skylake -kernel
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "common/strings.hh"
#include "core/nanobench.hh"
#include "uarch/uarch.hh"
#include "x86/encoding.hh"

namespace
{

void
printUsage()
{
    std::cout <<
        "nanoBench (simulated) -- run microbenchmarks with performance "
        "counters\n\n"
        "usage: nanobench [options]\n"
        "  -asm <code>          benchmark body (Intel syntax)\n"
        "  -asm_init <code>     initialization code (not measured)\n"
        "  -code <file>         benchmark body from an encoded binary\n"
        "  -config <file>       performance-counter config file\n"
        "  -uarch <name>        microarchitecture (default Skylake)\n"
        "  -kernel | -user      kernel- or user-space version\n"
        "  -unroll_count <n>    unroll factor (default 100)\n"
        "  -loop_count <n>      loop iterations (default 0 = no loop)\n"
        "  -n_measurements <n>  repetitions (default 10)\n"
        "  -warm_up_count <n>   discarded initial runs (default 2)\n"
        "  -agg <min|med|avg>   aggregate function (default med)\n"
        "  -basic_mode          compare against localUnrollCount=0\n"
        "  -no_mem              keep counter values in registers\n"
        "  -serialize <mode>    none | cpuid | lfence (default lfence)\n"
        "  -aperf_mperf         also read APERF/MPERF (kernel only)\n"
        "  -seed <n>            simulation seed\n"
        "  -list_uarchs         list supported microarchitectures\n";
}

std::string
readBinaryFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        nb::fatal("cannot open code file '", path, "'");
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace nb;
    using namespace nb::core;

    NanoBenchOptions opt;
    opt.spec.unrollCount = 100;
    opt.spec.warmUpCount = 2;

    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    fatal("missing value for option ", arg);
                return argv[++i];
            };
            if (arg == "-asm") {
                opt.spec.asmCode = next();
            } else if (arg == "-asm_init") {
                opt.spec.asmInit = next();
            } else if (arg == "-code") {
                std::string blob = readBinaryFile(next());
                opt.spec.code = x86::decode(std::vector<std::uint8_t>(
                    blob.begin(), blob.end()));
            } else if (arg == "-config") {
                opt.configFile = next();
            } else if (arg == "-uarch") {
                opt.uarch = next();
            } else if (arg == "-kernel") {
                opt.mode = Mode::Kernel;
            } else if (arg == "-user") {
                opt.mode = Mode::User;
            } else if (arg == "-unroll_count") {
                opt.spec.unrollCount = std::stoull(next());
            } else if (arg == "-loop_count") {
                opt.spec.loopCount = std::stoull(next());
            } else if (arg == "-n_measurements") {
                opt.spec.nMeasurements =
                    static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "-warm_up_count") {
                opt.spec.warmUpCount =
                    static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "-agg") {
                opt.spec.agg = parseAggregate(next());
            } else if (arg == "-basic_mode") {
                opt.spec.basicMode = true;
            } else if (arg == "-no_mem") {
                opt.spec.noMem = true;
            } else if (arg == "-serialize") {
                opt.spec.serialize = parseSerializeMode(next());
            } else if (arg == "-aperf_mperf") {
                opt.spec.aperfMperf = true;
            } else if (arg == "-seed") {
                opt.seed = std::stoull(next());
            } else if (arg == "-list_uarchs") {
                for (const auto &name : uarch::allMicroArchNames())
                    std::cout << name << "\n";
                return 0;
            } else if (arg == "-h" || arg == "--help") {
                printUsage();
                return 0;
            } else {
                fatal("unknown option '", arg, "' (try --help)");
            }
        }

        if (opt.spec.asmCode.empty() && opt.spec.code.empty()) {
            printUsage();
            return 1;
        }

        NanoBench nb(opt);
        std::cout << nb.run(nb.options().spec).format();
        return 0;
    } catch (const FatalError &e) {
        return 1;
    } catch (const PanicError &e) {
        return 2;
    }
}
