/**
 * @file
 * Command-line front end: the equivalent of nanoBench.sh and
 * kernel-nanoBench.sh (paper §III-E), built on the Engine / Session
 * API. Example:
 *
 *   nanobench -asm "mov R14, [R14]" -asm_init "mov [R14], R14" \
 *             -config configs/cfg_Skylake.txt -uarch Skylake -kernel
 *
 * Repeating -asm (or -code) queues several benchmarks; they run as one
 * batch against a single cached machine, and a failing spec reports an
 * error without aborting the rest.
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analysis.hh"
#include "analysis/bound.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "core/campaign.hh"
#include "core/engine.hh"
#include "fault/fault.hh"
#include "obs/metrics.hh"
#include "obs/observe.hh"
#include "obs/trace.hh"
#include "uarch/uarch.hh"
#include "profile/build.hh"
#include "uops/table.hh"
#include "x86/encoding.hh"

namespace
{

enum class OutputFormat : std::uint8_t
{
    Text,
    Json,
    Csv,
};

void
printUsage()
{
    // The parameter defaults below are the BenchmarkSpec defaults
    // (asserted in tests/test_engine.cc).
    std::cout <<
        "nanoBench (simulated) -- run microbenchmarks with performance "
        "counters\n\n"
        "usage: nanobench [options]\n"
        "  -asm <code>          benchmark body (Intel syntax); may be\n"
        "                       repeated to run a batch on one machine\n"
        "  -asm_init <code>     initialization code (not measured)\n"
        "  -code <file>         benchmark body from an encoded binary\n"
        "  -spec_file <file>    queue one -asm style benchmark per line\n"
        "                       (a line starting with '-' carries\n"
        "                       per-line options, e.g. -asm \"..\" -agg\n"
        "                       min; malformed lines report their line\n"
        "                       number as per-spec errors)\n"
        "  -jobs <n>            campaign worker threads (default 1;\n"
        "                       0 = one per hardware thread)\n"
        "  -characterize        characterize the full instruction-\n"
        "                       variant catalog (§V, uops.info-style)\n"
        "                       through the campaign executor and print\n"
        "                       the table\n"
        "  -table <file>        with -characterize: also write the\n"
        "                       table there (JSON, or CSV with -csv);\n"
        "                       alone: load and print a table file\n"
        "  -table_diff <a> <b>  diff two table files (exit 1 when rows\n"
        "                       changed)\n"
        "  -profile <file>      measure a full machine profile (cache\n"
        "                       geometry/latency/policies, TLB, set-\n"
        "                       dueling leaders, \u00a7VI) through one\n"
        "                       campaign and write it there (JSON, or\n"
        "                       CSV with -csv)\n"
        "  -profile_diff <a> <b>  diff two profile files (exit 1 when\n"
        "                       sections changed)\n"
        "  -fresh_machine       reset machine micro-state before every\n"
        "                       unique campaign spec: -jobs N output\n"
        "                       becomes layout-invariant (~2x cost;\n"
        "                       profiles default to this)\n"
        "  -no_dedup            run duplicate specs instead of sharing\n"
        "                       one cached result\n"
        "  -report <file>       write the campaign report (JSON, or CSV\n"
        "                       with -csv) to a file ('-' = stderr)\n"
        "  -cycle_budget <n>    abort any single run after n simulated\n"
        "                       cycles with a budget-exceeded error\n"
        "                       (default 0 = unlimited); applies to\n"
        "                       every queued spec, incl. spec-file\n"
        "                       lines\n"
        "  -max_retries <n>     retry a spec whose failure is marked\n"
        "                       transient up to n times with backoff\n"
        "                       (default 0; campaign runs only)\n"
        "  -checkpoint <file>   journal every settled campaign spec to\n"
        "                       a file; an interrupted campaign (kill,\n"
        "                       Ctrl-C) can continue with -resume\n"
        "  -resume <file>       skip specs already settled in a\n"
        "                       checkpoint journal (same uarch/mode)\n"
        "  -fault <plan>        inject deterministic faults at named\n"
        "                       sites, e.g. 'assemble:transient:x1' or\n"
        "                       'execute@10000,seed:7' (sites:\n"
        "                       assemble, decode, execute,\n"
        "                       worker-pickup, report-write; also read\n"
        "                       from the NB_FAULT env var; see README\n"
        "                       \"Resilience\")\n"
        "  -progress            print campaign progress to stderr\n"
        "  -config <file>       performance-counter config file\n"
        "  -uarch <name>        microarchitecture (default Skylake)\n"
        "  -kernel | -user      kernel- or user-space version\n"
        "  -unroll_count <n>    unroll factor (default 100)\n"
        "  -loop_count <n>      loop iterations (default 0 = no loop)\n"
        "  -n_measurements <n>  repetitions (default 10)\n"
        "  -warm_up_count <n>   discarded initial runs (default 2)\n"
        "  -agg <fn>            min | max | med | avg | mean\n"
        "                       (default med)\n"
        "  -basic_mode          compare against localUnrollCount=0\n"
        "  -no_mem              keep counter values in registers\n"
        "  -serialize <mode>    none | cpuid | lfence (default lfence)\n"
        "  -aperf_mperf         also read APERF/MPERF (kernel only)\n"
        "  -lint                statically analyze the queued specs\n"
        "                       instead of running them: print the\n"
        "                       diagnostics (rules R0-R6, see README\n"
        "                       \"Spec linting\"); exit 1 if any spec\n"
        "                       has an error-severity diagnostic\n"
        "  -explain             statically predict each queued spec's\n"
        "                       performance bounds instead of running\n"
        "                       it: bottleneck class, per-port\n"
        "                       utilization, and the critical latency\n"
        "                       cycle (see README \"Static performance\n"
        "                       bounds\"); exit 1 if any spec fails to\n"
        "                       assemble or decode\n"
        "  -lint_level <l>      off | warn | error (default off): fail\n"
        "                       a *measurement* run with a lint-error\n"
        "                       when the analyzer finds diagnostics at\n"
        "                       or above the level\n"
        "  -observe             run each queued spec with an execution\n"
        "                       observer attached and print predicted\n"
        "                       (-explain bounds) vs observed per-port\n"
        "                       pressure side by side; with\n"
        "                       -characterize / -profile, fold the\n"
        "                       campaign's observed totals into the\n"
        "                       -stats registry instead\n"
        "                       (campaign.observed.* counters)\n"
        "  -trace <file>        write a Chrome trace-event JSON file\n"
        "                       (load in Perfetto / chrome://tracing)\n"
        "                       with spans for campaign, per-worker\n"
        "                       per-spec execution, and batch runs\n"
        "  -stats               after running, dump the engine\n"
        "                       telemetry (machine pool, program\n"
        "                       cache, assemble/lint memos) and the\n"
        "                       metrics registry (runner phase\n"
        "                       histograms, observed counters) to\n"
        "                       stderr\n"
        "  -seed <n>            simulation seed\n"
        "  -json | -csv         machine-readable output\n"
        "  -list_uarchs         list supported microarchitectures\n";
}

std::uint64_t
parseCount(const std::string &option, const std::string &value)
{
    auto parsed = nb::parseInt(value);
    if (!parsed || *parsed < 0)
        nb::fatal("bad value '", value, "' for option ", option);
    return static_cast<std::uint64_t>(*parsed);
}

std::string
readBinaryFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        nb::fatal("cannot open code file '", path, "'");
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace nb;
    using namespace nb::core;

    SessionOptions session_opt;
    // Shared parameters, applied to every queued benchmark. The
    // defaults are the BenchmarkSpec defaults advertised above.
    BenchmarkSpec shared;
    // One entry per -asm/-code occurrence, in command-line order.
    std::vector<BenchmarkSpec> queued;
    OutputFormat format = OutputFormat::Text;
    unsigned jobs = 1;
    bool dedup = true;
    bool show_progress = false;
    bool characterize = false;
    bool fresh_machine = false;
    bool lint = false;
    bool explain = false;
    bool observe = false;
    bool show_stats = false;
    std::string trace_path;
    std::string spec_file;
    std::string report_path;
    std::string fault_spec;
    std::string checkpoint_path;
    std::string resume_path;
    unsigned max_retries = 0;
    std::string table_path;
    std::string profile_path;
    std::string diff_path_a;
    std::string diff_path_b;
    std::string profile_diff_a;
    std::string profile_diff_b;

    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    fatal("missing value for option ", arg);
                return argv[++i];
            };
            if (arg == "-asm") {
                BenchmarkSpec spec;
                spec.asmCode = next();
                queued.push_back(spec);
            } else if (arg == "-asm_init") {
                shared.asmInit = next();
            } else if (arg == "-code") {
                std::string blob = readBinaryFile(next());
                BenchmarkSpec spec;
                spec.code = x86::decode(std::vector<std::uint8_t>(
                    blob.begin(), blob.end()));
                queued.push_back(spec);
            } else if (arg == "-spec_file") {
                spec_file = next();
            } else if (arg == "-jobs") {
                jobs = static_cast<unsigned>(parseCount(arg, next()));
                // 0 means one worker per hardware thread; resolve (and
                // clamp to >= 1) here so an unclamped zero never
                // reaches the worker setup.
                if (jobs == 0) {
                    jobs = std::max(
                        1u, std::thread::hardware_concurrency());
                }
            } else if (arg == "-characterize") {
                characterize = true;
            } else if (arg == "-table") {
                table_path = next();
            } else if (arg == "-table_diff") {
                diff_path_a = next();
                diff_path_b = next();
            } else if (arg == "-profile") {
                profile_path = next();
            } else if (arg == "-profile_diff") {
                profile_diff_a = next();
                profile_diff_b = next();
            } else if (arg == "-fresh_machine") {
                fresh_machine = true;
            } else if (arg == "-no_dedup") {
                dedup = false;
            } else if (arg == "-report") {
                report_path = next();
            } else if (arg == "-cycle_budget") {
                shared.cycleBudget = parseCount(arg, next());
            } else if (arg == "-max_retries") {
                max_retries =
                    static_cast<unsigned>(parseCount(arg, next()));
            } else if (arg == "-checkpoint") {
                checkpoint_path = next();
            } else if (arg == "-resume") {
                resume_path = next();
            } else if (arg == "-fault") {
                fault_spec = next();
            } else if (arg == "-progress") {
                show_progress = true;
            } else if (arg == "-config") {
                session_opt.configFile = next();
            } else if (arg == "-uarch") {
                session_opt.uarch = next();
            } else if (arg == "-kernel") {
                session_opt.mode = Mode::Kernel;
            } else if (arg == "-user") {
                session_opt.mode = Mode::User;
            } else if (arg == "-unroll_count") {
                shared.unrollCount =
                    std::max<std::uint64_t>(1, parseCount(arg, next()));
            } else if (arg == "-loop_count") {
                shared.loopCount = parseCount(arg, next());
            } else if (arg == "-n_measurements") {
                shared.nMeasurements =
                    static_cast<unsigned>(parseCount(arg, next()));
            } else if (arg == "-warm_up_count") {
                shared.warmUpCount =
                    static_cast<unsigned>(parseCount(arg, next()));
            } else if (arg == "-agg") {
                shared.agg = parseAggregate(next());
            } else if (arg == "-basic_mode") {
                shared.basicMode = true;
            } else if (arg == "-no_mem") {
                shared.noMem = true;
            } else if (arg == "-serialize") {
                shared.serialize = parseSerializeMode(next());
            } else if (arg == "-aperf_mperf") {
                shared.aperfMperf = true;
            } else if (arg == "-lint") {
                lint = true;
            } else if (arg == "-explain") {
                explain = true;
            } else if (arg == "-observe") {
                observe = true;
            } else if (arg == "-trace") {
                trace_path = next();
            } else if (arg == "-stats") {
                show_stats = true;
            } else if (arg == "-lint_level") {
                std::string value = next();
                auto level = lintLevelFromName(value);
                if (!level) {
                    fatal("bad value '", value,
                          "' for option -lint_level (use off, warn, "
                          "or error)");
                }
                shared.lintLevel = *level;
            } else if (arg == "-seed") {
                session_opt.seed = parseCount(arg, next());
            } else if (arg == "-json") {
                format = OutputFormat::Json;
            } else if (arg == "-csv") {
                format = OutputFormat::Csv;
            } else if (arg == "-list_uarchs") {
                for (const auto &name : uarch::allMicroArchNames())
                    std::cout << name << "\n";
                return 0;
            } else if (arg == "-h" || arg == "--help") {
                printUsage();
                return 0;
            } else {
                fatal("unknown option '", arg, "' (try --help)");
            }
        }

        // Fault injection: -fault wins over the NB_FAULT environment
        // variable (the CI sweep uses the latter so it needs no
        // command-line surgery). The plan stays active for the whole
        // invocation; a bad plan string fails here, before any work.
        if (fault_spec.empty()) {
            if (const char *env = std::getenv("NB_FAULT"))
                fault_spec = env;
        }
        std::optional<fault::ScopedFaultPlan> fault_scope;
        if (!fault_spec.empty())
            fault_scope.emplace(fault_spec);

        // One tracer for the whole invocation, disabled (and
        // near-free) unless -trace was given. Verbs that execute
        // benchmarks write it out right before they return.
        obs::Tracer tracer;
        if (!trace_path.empty()) {
            // Fail an unwritable path before any measurement work.
            std::ofstream probe(trace_path);
            if (!probe)
                fatal("cannot write trace file '", trace_path, "'");
            tracer.enable();
        }
        auto write_trace = [&]() {
            if (tracer.enabled())
                tracer.writeFile(trace_path);
        };
        // -stats: engine telemetry (as before), now mirrored into the
        // process metrics registry so one machine-readable dump also
        // covers the runner phase histograms and observed counters.
        auto print_stats = [&](Engine &engine) {
            if (!show_stats)
                return;
            EngineTelemetry t = engine.telemetry();
            obs::publishEngineTelemetry(t, obs::Registry::process());
            obs::RegistrySnapshot snap =
                obs::Registry::process().snapshot();
            switch (format) {
              case OutputFormat::Text:
                std::cerr << t.format() << snap.format();
                break;
              case OutputFormat::Json:
                std::cerr << snap.toJson();
                break;
              case OutputFormat::Csv:
                std::cerr << snap.toCsv();
                break;
            }
        };

        // ------------- machine-profile verbs (§VI) --------------

        if (!profile_diff_a.empty()) {
            auto before = profile::MachineProfile::load(profile_diff_a);
            auto after = profile::MachineProfile::load(profile_diff_b);
            auto diff = profile::diffProfiles(before, after);
            if (diff.empty()) {
                std::cout << "profiles match (" << before.uarch << "/"
                          << before.mode << ")\n";
                return 0;
            }
            std::cout << diff.format();
            std::cout << diff.entries.size() << " difference(s)\n";
            return 1;
        }

        if (!profile_path.empty()) {
            // Open the output file up front: an unwritable path must
            // fail before the measurement campaign, not after.
            std::ofstream profile_out(profile_path);
            if (!profile_out)
                fatal("cannot write profile file '", profile_path, "'");
            std::ofstream report_out;
            if (!report_path.empty() && report_path != "-") {
                report_out.open(report_path);
                if (!report_out)
                    fatal("cannot write report file '", report_path,
                          "'");
            }
            profile::ProfileOptions profile_opt;
            profile_opt.session = session_opt;
            profile_opt.jobs = jobs;
            profile_opt.dedup = dedup;
            // Profiles default to fresh machines (their specs assume
            // just-booted state); -fresh_machine is a no-op here.
            profile_opt.freshMachinePerSpec = true;
            profile_opt.trace = &tracer;
            profile_opt.observe = observe;
            if (show_progress) {
                profile_opt.progress = [](std::size_t done,
                                          std::size_t total) {
                    std::cerr << "\rprofile: " << done << "/" << total
                              << (done == total ? "\n" : "");
                };
            }
            Engine engine;
            auto build = profile::buildMachineProfile(engine,
                                                      profile_opt);
            std::cout << build.profile.format();
            profile_out << (format == OutputFormat::Csv
                                ? build.profile.toCsv()
                                : build.profile.toJson());
            if (!report_path.empty()) {
                std::string text = format == OutputFormat::Csv
                                       ? build.report.toCsv()
                                       : build.report.toJson();
                if (report_path == "-")
                    std::cerr << text;
                else
                    report_out << text;
            }
            write_trace();
            print_stats(engine);
            return build.profile.complete() ? 0 : 1;
        }

        // ------------- instruction-table verbs (§V) -------------

        if (!diff_path_a.empty()) {
            auto before = uops::InstructionTable::load(diff_path_a);
            auto after = uops::InstructionTable::load(diff_path_b);
            auto diff = uops::diffTables(before, after);
            if (diff.empty()) {
                std::cout << "tables match (" << before.rows.size()
                          << " rows)\n";
                return 0;
            }
            std::cout << diff.format();
            std::cout << diff.entries.size() << " row(s) differ\n";
            return 1;
        }

        if (!table_path.empty() && !characterize) {
            auto table = uops::InstructionTable::load(table_path);
            switch (format) {
              case OutputFormat::Text:
                std::cout << table.format();
                break;
              case OutputFormat::Json:
                std::cout << table.toJson();
                break;
              case OutputFormat::Csv:
                std::cout << table.toCsv();
                break;
            }
            return 0;
        }

        if (characterize) {
            // Open the output files up front: an unwritable path must
            // fail before the full-catalog campaign, not after.
            std::ofstream table_out;
            if (!table_path.empty()) {
                table_out.open(table_path);
                if (!table_out)
                    fatal("cannot write table file '", table_path, "'");
            }
            std::ofstream report_out;
            if (!report_path.empty() && report_path != "-") {
                report_out.open(report_path);
                if (!report_out)
                    fatal("cannot write report file '", report_path,
                          "'");
            }
            uops::TableBuildOptions table_opt;
            table_opt.session = session_opt;
            table_opt.jobs = jobs;
            table_opt.dedup = dedup;
            table_opt.freshMachinePerSpec = fresh_machine;
            table_opt.trace = &tracer;
            table_opt.observe = observe;
            if (show_progress) {
                table_opt.progress = [](std::size_t done,
                                        std::size_t total) {
                    std::cerr << "\rcharacterize: " << done << "/"
                              << total << (done == total ? "\n" : "");
                };
            }
            Engine engine;
            auto build = uops::buildInstructionTable(engine, table_opt);
            switch (format) {
              case OutputFormat::Text:
                std::cout << build.table.format();
                break;
              case OutputFormat::Json:
                std::cout << build.table.toJson();
                break;
              case OutputFormat::Csv:
                std::cout << build.table.toCsv();
                break;
            }
            if (!table_path.empty()) {
                table_out << (format == OutputFormat::Csv
                                  ? build.table.toCsv()
                                  : build.table.toJson());
            }
            if (!report_path.empty()) {
                std::string text = format == OutputFormat::Csv
                                       ? build.report.toCsv()
                                       : build.report.toJson();
                if (report_path == "-")
                    std::cerr << text;
                else
                    report_out << text;
            }
            write_trace();
            print_stats(engine);
            return build.table.errorCount() != 0 ? 1 : 0;
        }

        // ------------------- benchmark queue --------------------

        // Merge the shared parameters into each explicitly queued
        // body; spec-file entries below start from the same defaults
        // and may override them per line.
        for (auto &spec : queued) {
            auto body = std::move(spec.asmCode);
            auto code = std::move(spec.code);
            spec = shared;
            spec.asmCode = std::move(body);
            spec.code = std::move(code);
        }

        // One slot per benchmark, in order. Slots from malformed
        // spec-file lines carry a preset error (reported in position,
        // with the line number) instead of anything to run.
        std::vector<std::optional<RunError>> preset(queued.size());
        if (!spec_file.empty()) {
            std::ifstream in(spec_file);
            if (!in)
                fatal("cannot open spec file '", spec_file, "'");
            std::string text{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
            for (auto &entry : parseSpecLines(text, shared)) {
                preset.push_back(entry.error);
                queued.push_back(std::move(entry.spec));
            }
        }

        if (queued.empty()) {
            printUsage();
            return 1;
        }

        // ----------------------- lint verb ----------------------

        if (lint) {
            const auto &ua = uarch::getMicroArch(session_opt.uarch);
            analysis::Context ctx;
            ctx.mode = session_opt.mode;
            bool any_error = false;
            bool json_array =
                format == OutputFormat::Json && queued.size() > 1;
            if (json_array)
                std::cout << "[\n";
            for (std::size_t i = 0; i < queued.size(); ++i) {
                bool last = i + 1 == queued.size();
                if (queued.size() > 1 && format == OutputFormat::Csv) {
                    std::cout << "# benchmark " << i + 1 << "/"
                              << queued.size() << "\n";
                }
                std::optional<RunError> failure = preset[i];
                analysis::Report report;
                if (!failure) {
                    try {
                        // Assembly errors become per-spec failures,
                        // like the run path; print them ourselves
                        // instead of fatal()'s courtesy line.
                        ScopedFatalMessageSuppression suppress;
                        report = analysis::analyzeSpec(ua, queued[i],
                                                       ctx);
                    } catch (const FatalError &e) {
                        failure = RunError{
                            RunError::Code::AssemblyError, e.what()};
                    }
                }
                if (failure) {
                    any_error = true;
                    std::cerr << "spec " << i + 1 << "/"
                              << queued.size() << " failed ("
                              << runErrorCodeName(failure->code)
                              << "): " << failure->message << "\n";
                    if (format == OutputFormat::Json) {
                        std::cout << "{\"error\": {\"code\": \""
                                  << runErrorCodeName(failure->code)
                                  << "\", \"message\": \""
                                  << jsonEscape(failure->message)
                                  << "\"}}"
                                  << (json_array && !last ? "," : "")
                                  << "\n";
                    }
                    if (format == OutputFormat::Csv && !last)
                        std::cout << "\n";
                    continue;
                }
                if (report.count(analysis::Severity::Error) > 0)
                    any_error = true;
                switch (format) {
                  case OutputFormat::Text:
                    if (queued.size() > 1)
                        std::cout << "## " << queued[i].summary()
                                  << "\n";
                    std::cout << (report.empty()
                                      ? std::string(
                                            "clean (no diagnostics)\n")
                                      : report.format());
                    break;
                  case OutputFormat::Json:
                    std::cout << report.toJson();
                    if (json_array && !last)
                        std::cout << ",";
                    break;
                  case OutputFormat::Csv:
                    std::cout << report.toCsv();
                    break;
                }
                if (format != OutputFormat::Json &&
                    queued.size() > 1 && !last)
                    std::cout << "\n";
            }
            if (json_array)
                std::cout << "]\n";
            return any_error ? 1 : 0;
        }

        // --------------------- explain verb ---------------------

        if (explain) {
            const auto &ua = uarch::getMicroArch(session_opt.uarch);
            bool any_error = false;
            bool json_array =
                format == OutputFormat::Json && queued.size() > 1;
            if (json_array)
                std::cout << "[\n";
            for (std::size_t i = 0; i < queued.size(); ++i) {
                bool last = i + 1 == queued.size();
                if (queued.size() > 1 && format == OutputFormat::Csv) {
                    std::cout << "# benchmark " << i + 1 << "/"
                              << queued.size() << "\n";
                }
                std::optional<RunError> failure = preset[i];
                analysis::BoundReport report;
                if (!failure) {
                    try {
                        // Assembly and decode errors become per-spec
                        // failures, like the lint verb.
                        ScopedFatalMessageSuppression suppress;
                        report = analysis::analyzeBounds(ua,
                                                         queued[i]);
                    } catch (const FatalError &e) {
                        failure = RunError{
                            RunError::Code::AssemblyError, e.what()};
                    }
                }
                if (failure) {
                    any_error = true;
                    std::cerr << "spec " << i + 1 << "/"
                              << queued.size() << " failed ("
                              << runErrorCodeName(failure->code)
                              << "): " << failure->message << "\n";
                    if (format == OutputFormat::Json) {
                        std::cout << "{\"error\": {\"code\": \""
                                  << runErrorCodeName(failure->code)
                                  << "\", \"message\": \""
                                  << jsonEscape(failure->message)
                                  << "\"}}"
                                  << (json_array && !last ? "," : "")
                                  << "\n";
                    }
                    if (format == OutputFormat::Csv && !last)
                        std::cout << "\n";
                    continue;
                }
                switch (format) {
                  case OutputFormat::Text:
                    if (queued.size() > 1)
                        std::cout << "## " << queued[i].summary()
                                  << "\n";
                    std::cout << report.format();
                    break;
                  case OutputFormat::Json:
                    std::cout << report.toJson();
                    if (json_array && !last)
                        std::cout << ",";
                    break;
                  case OutputFormat::Csv:
                    std::cout << report.toCsv();
                    break;
                }
                if (format != OutputFormat::Json &&
                    queued.size() > 1 && !last)
                    std::cout << "\n";
            }
            if (json_array)
                std::cout << "]\n";
            return any_error ? 1 : 0;
        }

        // --------------------- observe verb ---------------------

        if (observe) {
            const auto &ua = uarch::getMicroArch(session_opt.uarch);
            // Resolve the session-level counter config into each
            // spec, like Session::run would -- observeSpec runs on
            // private machines and bypasses the session layer.
            if (!session_opt.configFile.empty()) {
                CounterConfig session_config =
                    CounterConfig::parseFile(session_opt.configFile);
                for (auto &spec : queued) {
                    if (spec.config.empty())
                        spec.config = session_config;
                }
            }
            bool any_error = false;
            bool json_array =
                format == OutputFormat::Json && queued.size() > 1;
            // The per-spec JSON documents nest the two reports under
            // "predicted" / "observed"; both toJson() outputs end in
            // a newline that must not land inside the wrapper.
            auto trimmed = [](std::string text) {
                while (!text.empty() &&
                       (text.back() == '\n' || text.back() == ' '))
                    text.pop_back();
                return text;
            };
            if (json_array)
                std::cout << "[\n";
            for (std::size_t i = 0; i < queued.size(); ++i) {
                bool last = i + 1 == queued.size();
                if (queued.size() > 1 && format == OutputFormat::Csv) {
                    std::cout << "# benchmark " << i + 1 << "/"
                              << queued.size() << "\n";
                }
                std::optional<RunError> failure = preset[i];
                analysis::BoundReport bounds;
                obs::ObservedProfile profile;
                if (!failure) {
                    // Assembly/decode errors from the static pass and
                    // execution errors from the observed run become
                    // per-spec failures, like the run path.
                    ScopedFatalMessageSuppression suppress;
                    try {
                        bounds = analysis::analyzeBounds(ua, queued[i]);
                    } catch (const FatalError &e) {
                        failure = RunError{
                            RunError::Code::AssemblyError, e.what()};
                    }
                }
                if (!failure) {
                    ScopedFatalMessageSuppression suppress;
                    std::string label = queued[i].summary();
                    try {
                        tracer.nameLane(0, "observe");
                        tracer.begin(0, label);
                        profile = obs::observeSpec(ua, queued[i],
                                                   session_opt.mode,
                                                   session_opt.seed);
                        tracer.end(0, label);
                    } catch (const FatalError &e) {
                        tracer.end(0, label);
                        failure = RunError{
                            RunError::Code::ExecutionError, e.what()};
                    }
                }
                if (failure) {
                    any_error = true;
                    std::cerr << "spec " << i + 1 << "/"
                              << queued.size() << " failed ("
                              << runErrorCodeName(failure->code)
                              << "): " << failure->message << "\n";
                    if (format == OutputFormat::Json) {
                        std::cout << "{\"error\": {\"code\": \""
                                  << runErrorCodeName(failure->code)
                                  << "\", \"message\": \""
                                  << jsonEscape(failure->message)
                                  << "\"}}"
                                  << (json_array && !last ? "," : "")
                                  << "\n";
                    }
                    if (format == OutputFormat::Csv && !last)
                        std::cout << "\n";
                    continue;
                }
                switch (format) {
                  case OutputFormat::Text:
                    if (queued.size() > 1)
                        std::cout << "## " << queued[i].summary()
                                  << "\n";
                    std::cout << obs::formatPredictedVsObserved(
                        bounds, profile);
                    break;
                  case OutputFormat::Json:
                    std::cout << "{\"predicted\": "
                              << trimmed(bounds.toJson())
                              << ",\n \"observed\": "
                              << trimmed(profile.toJson()) << "}"
                              << (json_array && !last ? "," : "")
                              << "\n";
                    break;
                  case OutputFormat::Csv:
                    std::cout << "# predicted\n" << bounds.toCsv()
                              << "# observed\n" << profile.toCsv();
                    break;
                }
                if (format != OutputFormat::Json &&
                    queued.size() > 1 && !last)
                    std::cout << "\n";
            }
            if (json_array)
                std::cout << "]\n";
            write_trace();
            return any_error ? 1 : 0;
        }

        std::vector<BenchmarkSpec> runnable;
        runnable.reserve(queued.size());
        for (std::size_t i = 0; i < queued.size(); ++i) {
            if (!preset[i])
                runnable.push_back(queued[i]);
        }

        Engine engine;
        std::vector<RunOutcome> ran;
        // The single-session batch path stays the default; campaigns
        // (worker pool, dedup cache, report) kick in as soon as any
        // campaign option is used.
        bool campaign_mode = jobs != 1 || !dedup || show_progress ||
                             fresh_machine || !spec_file.empty() ||
                             !report_path.empty() || max_retries != 0 ||
                             !checkpoint_path.empty() ||
                             !resume_path.empty();
        bool was_cancelled = false;
        if (campaign_mode) {
            // Open the report file up front: an unwritable path must
            // fail before hours of campaign work, not after.
            std::ofstream report_out;
            if (!report_path.empty() && report_path != "-") {
                report_out.open(report_path);
                if (!report_out)
                    fatal("cannot write report file '", report_path,
                          "'");
            }
            CampaignOptions campaign_opt;
            campaign_opt.jobs = jobs;
            campaign_opt.dedup = dedup;
            campaign_opt.session = session_opt;
            campaign_opt.freshMachinePerSpec = fresh_machine;
            campaign_opt.trace = &tracer;
            campaign_opt.maxRetries = max_retries;
            campaign_opt.checkpoint = checkpoint_path;
            campaign_opt.resume = resume_path;
            // Ctrl-C cancels cooperatively: in-flight specs finish,
            // the checkpoint flushes, and a partial report (with the
            // unexecuted specs settled as "cancelled" errors) is
            // still written below.
            campaign_opt.cancel = std::make_shared<CancelToken>();
            installSigintCancel(campaign_opt.cancel);
            struct SigintScope
            {
                ~SigintScope() { clearSigintCancel(); }
            } sigint_scope;
            if (show_progress) {
                campaign_opt.progress =
                    [](const CampaignProgress &event) {
                        // Settle events keep the coarse counter;
                        // start events name the spec in flight so a
                        // stalled campaign is attributable.
                        if (event.starting) {
                            std::cerr << "\rcampaign: " << event.done
                                      << "/" << event.total << " ["
                                      << event.specLabel << "]";
                            return;
                        }
                        std::cerr << "\rcampaign: " << event.done << "/"
                                  << event.total
                                  << (event.done == event.total ? "\n"
                                                                : "");
                    };
            }
            auto campaign = engine.runCampaign(runnable, campaign_opt);
            ran = std::move(campaign.outcomes);
            was_cancelled = campaign.report.cancelled;
            if (was_cancelled) {
                std::size_t unrun =
                    campaign.report.errorHistogram[static_cast<
                        unsigned>(RunError::Code::Cancelled)];
                std::cerr << "campaign cancelled: "
                          << campaign.report.totalSpecs - unrun << "/"
                          << campaign.report.totalSpecs
                          << " specs settled"
                          << (checkpoint_path.empty()
                                  ? ""
                                  : " (resume with -resume " +
                                        checkpoint_path + ")")
                          << "\n";
            }
            if (!report_path.empty()) {
                std::string text = format == OutputFormat::Csv
                                       ? campaign.report.toCsv()
                                       : campaign.report.toJson();
                if (report_path == "-")
                    std::cerr << text;
                else
                    report_out << text;
            }
        } else if (tracer.enabled()) {
            // Single-session batch with tracing: one lane, one span
            // per spec (runBatch would hide the per-spec boundaries).
            Session session = engine.session(session_opt);
            tracer.nameLane(0, "session");
            ran.reserve(runnable.size());
            for (const auto &spec : runnable) {
                std::string label = spec.summary();
                tracer.begin(0, label);
                ran.push_back(session.run(spec));
                tracer.end(0, label);
            }
        } else {
            Session session = engine.session(session_opt);
            ran = session.runBatch(runnable);
        }

        // Fold the executed outcomes back into slot order around the
        // preset spec-file parse errors.
        std::vector<RunOutcome> outcomes;
        outcomes.reserve(queued.size());
        std::size_t next_ran = 0;
        for (std::size_t i = 0; i < queued.size(); ++i) {
            if (preset[i])
                outcomes.push_back(RunOutcome(*preset[i]));
            else
                outcomes.push_back(std::move(ran[next_ran++]));
        }

        // -json always prints ONE parseable document: a bare object
        // (result or {"error": ...}) for a single spec, an array with
        // one entry per spec (error entries in position) for a batch.
        // -csv prints one standalone fromCsv()-parseable document per
        // spec, separated by blank lines, each preceded by a
        // "# benchmark i/N" comment in batch mode.
        bool json_array =
            format == OutputFormat::Json && outcomes.size() > 1;
        if (json_array)
            std::cout << "[\n";

        bool any_failed = false;
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            const auto &outcome = outcomes[i];
            bool last = i + 1 == outcomes.size();
            if (outcomes.size() > 1 && format == OutputFormat::Csv) {
                std::cout << "# benchmark " << i + 1 << "/"
                          << outcomes.size() << "\n";
            }
            if (!outcome.ok()) {
                any_failed = true;
                std::cerr << "benchmark " << i + 1 << "/"
                          << outcomes.size() << " failed ("
                          << runErrorCodeName(outcome.error().code)
                          << "): " << outcome.error().message << "\n";
                if (format == OutputFormat::Json) {
                    std::cout << "{\"error\": {\"code\": \""
                              << runErrorCodeName(outcome.error().code)
                              << "\", \"message\": \""
                              << jsonEscape(outcome.error().message)
                              << "\"}}" << (json_array && !last ? "," : "")
                              << "\n";
                }
                if (format == OutputFormat::Csv && !last)
                    std::cout << "\n";
                continue;
            }
            const auto &result = outcome.result();
            if (outcomes.size() > 1 && format == OutputFormat::Text) {
                std::cout << "## " << result.specEcho << "\n";
            }
            switch (format) {
              case OutputFormat::Text:
                std::cout << result.format();
                break;
              case OutputFormat::Json:
                std::cout << result.toJson();
                if (json_array && !last)
                    std::cout << ",";
                break;
              case OutputFormat::Csv:
                std::cout << result.toCsv();
                break;
            }
            if (format != OutputFormat::Json &&
                outcomes.size() > 1 && !last)
                std::cout << "\n";
        }
        if (json_array)
            std::cout << "]\n";
        write_trace();
        print_stats(engine);
        // 130 = interrupted (the conventional 128 + SIGINT).
        if (was_cancelled)
            return 130;
        return any_failed ? 1 : 0;
    } catch (const FatalError &e) {
        return 1;
    } catch (const PanicError &e) {
        return 2;
    }
}
