/**
 * @file
 * Counter-configuration parsing.
 */

#include "config.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/strings.hh"

#ifndef NB_CONFIG_DIR
#define NB_CONFIG_DIR "configs"
#endif

namespace nb::core
{

const char *
configDir()
{
    return NB_CONFIG_DIR;
}

CounterConfig
CounterConfig::parseString(const std::string &text)
{
    CounterConfig cfg;
    for (const auto &raw_line : split(text, '\n')) {
        std::string line = raw_line;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;

        auto fields = splitWhitespace(line);
        if (fields.size() < 2) {
            warn("counter config: skipping malformed line '", line, "'");
            continue;
        }
        auto code_parts = split(fields[0], '.');
        if (code_parts.size() != 2) {
            warn("counter config: bad event code '", fields[0], "'");
            continue;
        }
        auto evsel = parseHex(code_parts[0]);
        auto umask = parseHex(code_parts[1]);
        if (!evsel || !umask || *evsel > 0xFF || *umask > 0xFF) {
            warn("counter config: bad event code '", fields[0], "'");
            continue;
        }
        sim::EventCode code{static_cast<std::uint8_t>(*evsel),
                            static_cast<std::uint8_t>(*umask)};
        auto info = sim::findEvent(code);
        if (!info) {
            warn("counter config: event ", fields[0], " (", fields[1],
                 ") is not supported by this CPU model; skipping");
            continue;
        }
        cfg.events_.push_back(ConfiguredEvent{code, info->id, fields[1]});
    }
    return cfg;
}

CounterConfig
CounterConfig::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open counter config file '", path, "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseString(ss.str());
}

CounterConfig
CounterConfig::forMicroArch(const std::string &uarch_name)
{
    return parseFile(std::string(configDir()) + "/cfg_" + uarch_name +
                     ".txt");
}

std::vector<std::vector<ConfiguredEvent>>
CounterConfig::rounds(unsigned num_prog_counters) const
{
    NB_ASSERT(num_prog_counters > 0, "need at least one counter");
    std::vector<std::vector<ConfiguredEvent>> out;
    for (std::size_t i = 0; i < events_.size(); i += num_prog_counters) {
        std::size_t end = std::min(events_.size(),
                                   i + num_prog_counters);
        out.emplace_back(events_.begin() + static_cast<std::ptrdiff_t>(i),
                         events_.begin() +
                             static_cast<std::ptrdiff_t>(end));
    }
    return out;
}

} // namespace nb::core
