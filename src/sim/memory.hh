/**
 * @file
 * Simulated physical memory and virtual-to-physical page mapping.
 *
 * The machine executes on virtual addresses; L1 index bits fall within
 * the page offset, but L2/L3 set selection and the slice hash use
 * physical addresses, so the mapping matters for the cache case study —
 * exactly why nanoBench's kernel version offers physically-contiguous
 * allocation (§III-G, §IV-D).
 */

#ifndef NB_SIM_MEMORY_HH
#define NB_SIM_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace nb::sim
{

/** Byte-addressable sparse physical memory. */
class PhysMemory
{
  public:
    std::uint64_t read(Addr paddr, unsigned bytes) const;
    void write(Addr paddr, std::uint64_t value, unsigned bytes);

  private:
    using Page = std::array<std::uint8_t, kPageSize>;
    Page &pageFor(Addr paddr);
    const Page *pageForRead(Addr paddr) const;

    mutable std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

/** Per-page virtual-to-physical mapping. */
class PageTable
{
  public:
    /** Map virtual page containing @p vaddr to the physical page
     *  containing @p paddr (both aligned down). */
    void mapPage(Addr vaddr, Addr paddr);

    /** Remove a mapping. */
    void unmapPage(Addr vaddr);

    bool isMapped(Addr vaddr) const;

    /** Translate; throws nb::FatalError (page fault) if unmapped. */
    Addr translate(Addr vaddr) const;

    /** Number of mapped pages. */
    std::size_t size() const { return map_.size(); }

  private:
    std::unordered_map<Addr, Addr> map_; ///< vpage -> ppage
};

/** Combined memory system handed to the machine. */
class Memory
{
  public:
    PageTable &pageTable() { return pt_; }
    const PageTable &pageTable() const { return pt_; }
    PhysMemory &phys() { return phys_; }

    Addr translate(Addr vaddr) const { return pt_.translate(vaddr); }

    std::uint64_t
    readVirt(Addr vaddr, unsigned bytes) const
    {
        return phys_.read(pt_.translate(vaddr), bytes);
    }

    void
    writeVirt(Addr vaddr, std::uint64_t value, unsigned bytes)
    {
        phys_.write(pt_.translate(vaddr), value, bytes);
    }

  private:
    PageTable pt_;
    PhysMemory phys_;
};

} // namespace nb::sim

#endif // NB_SIM_MEMORY_HH
