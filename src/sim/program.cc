/**
 * @file
 * Program decoder: static-fact extraction, done once per static
 * instruction instead of once per dynamic instruction.
 */

#include "program.hh"

#include <algorithm>

#include "common/logging.hh"

namespace nb::sim
{

using x86::Instruction;
using x86::Opcode;
using x86::Operand;
using x86::OperandKind;
using x86::Reg;

namespace
{

/** Append a register to a pool slice, skipping duplicates (readiness
 *  is a max over the slice, so duplicates are redundant work). */
void
addReg(std::vector<Reg> &pool, std::uint32_t begin, Reg r)
{
    for (std::size_t i = begin; i < pool.size(); ++i) {
        if (pool[i] == r)
            return;
    }
    pool.push_back(r);
}

/** Handler class of an opcode (one computed-goto label per class in
 *  the threaded executor; opcodes sharing a reference-switch body
 *  share a class). */
OpClass
opcodeClass(Opcode op)
{
    switch (op) {
      case Opcode::NOP:
      case Opcode::PAUSE:
        return OpClass::Nop;
      case Opcode::MOV:
      case Opcode::MOVNTI:
      case Opcode::MOVZX:
        return OpClass::Mov;
      case Opcode::MOVSX:
        return OpClass::Movsx;
      case Opcode::LEA:
        return OpClass::Lea;
      case Opcode::XCHG:
        return OpClass::Xchg;
      case Opcode::BSWAP:
        return OpClass::Bswap;
      case Opcode::CMOVZ:
      case Opcode::CMOVNZ:
      case Opcode::CMOVC:
      case Opcode::CMOVNC:
        return OpClass::Cmov;
      case Opcode::ADD:
      case Opcode::ADC:
        return OpClass::AddAdc;
      case Opcode::SUB:
      case Opcode::SBB:
      case Opcode::CMP:
        return OpClass::SubSbbCmp;
      case Opcode::AND:
      case Opcode::OR:
      case Opcode::XOR:
      case Opcode::TEST:
        return OpClass::Logic;
      case Opcode::INC:
      case Opcode::DEC:
        return OpClass::IncDec;
      case Opcode::NEG:
        return OpClass::Neg;
      case Opcode::NOT:
        return OpClass::Not;
      case Opcode::IMUL:
        return OpClass::Imul;
      case Opcode::MUL:
        return OpClass::Mul;
      case Opcode::DIV:
      case Opcode::IDIV:
        return OpClass::Div;
      case Opcode::SHL:
      case Opcode::SHR:
      case Opcode::SAR:
      case Opcode::ROL:
      case Opcode::ROR:
        return OpClass::Shift;
      case Opcode::POPCNT:
        return OpClass::Popcnt;
      case Opcode::LZCNT:
        return OpClass::Lzcnt;
      case Opcode::TZCNT:
        return OpClass::Tzcnt;
      case Opcode::BSF:
      case Opcode::BSR:
        return OpClass::Bitscan;
      case Opcode::BT:
      case Opcode::BTS:
      case Opcode::BTR:
        return OpClass::BitTest;
      case Opcode::SETZ:
        return OpClass::Setz;
      case Opcode::SETNZ:
        return OpClass::Setnz;
      case Opcode::JMP:
        return OpClass::Jmp;
      case Opcode::JZ:
      case Opcode::JNZ:
      case Opcode::JC:
      case Opcode::JNC:
      case Opcode::JL:
      case Opcode::JGE:
      case Opcode::JLE:
      case Opcode::JG:
        return OpClass::Jcc;
      case Opcode::CALL:
        return OpClass::Call;
      case Opcode::RET:
        return OpClass::Ret;
      case Opcode::PUSH:
        return OpClass::Push;
      case Opcode::POP:
        return OpClass::Pop;
      case Opcode::MOVAPS:
      case Opcode::MOVUPS:
        return OpClass::MovVec;
      case Opcode::PXOR:
        return OpClass::Pxor;
      case Opcode::PADDD:
        return OpClass::Paddd;
      case Opcode::ADDPS:
        return OpClass::Addps;
      case Opcode::MULPS:
        return OpClass::Mulps;
      case Opcode::DIVPS:
        return OpClass::Divps;
      case Opcode::ADDPD:
        return OpClass::Addpd;
      case Opcode::MULPD:
        return OpClass::Mulpd;
      case Opcode::DIVPD:
        return OpClass::Divpd;
      case Opcode::VADDPS:
        return OpClass::Vaddps;
      case Opcode::VMULPS:
        return OpClass::Vmulps;
      case Opcode::VFMADD231PS:
        return OpClass::Vfma;
      case Opcode::RDTSC:
        return OpClass::Rdtsc;
      case Opcode::RDPMC:
        return OpClass::Rdpmc;
      case Opcode::RDMSR:
        return OpClass::Rdmsr;
      case Opcode::WRMSR:
        return OpClass::Wrmsr;
      case Opcode::WBINVD:
        return OpClass::Wbinvd;
      case Opcode::CLFLUSH:
        return OpClass::Clflush;
      case Opcode::PREFETCHT0:
      case Opcode::PREFETCHNTA:
        return OpClass::Prefetch;
      case Opcode::CLI:
        return OpClass::Cli;
      case Opcode::STI:
        return OpClass::Sti;
      case Opcode::PFC_PAUSE:
      case Opcode::PFC_RESUME:
        return OpClass::PfcMarker;
      case Opcode::LFENCE:
      case Opcode::MFENCE:
        return OpClass::Fence;
      case Opcode::SFENCE:
        return OpClass::SFence;
      case Opcode::CPUID:
        return OpClass::Cpuid;
      default:
        return OpClass::Unhandled;
    }
}

} // namespace

Program
Program::decode(const uarch::MicroArch &ua, std::vector<Segment> segments)
{
    Program prog;
    const uarch::PortFamily family = ua.family;

    for (auto &seg : segments) {
        if (seg.repeat == 0 || seg.code.empty())
            continue;

        Block block;
        block.entryBegin = static_cast<std::uint32_t>(
            prog.entries_.size());
        block.entryCount = static_cast<std::uint32_t>(seg.code.size());
        block.repeat = seg.repeat;
        block.firstVirtual = prog.virtualSize_;

        for (const Instruction &insn : seg.code) {
            const x86::OpcodeInfo &info = insn.info();
            if (!uarch::supportsOpcode(family, insn.opcode)) {
                fatal("invalid opcode: ", info.mnemonic,
                      " is not supported on ", ua.name);
            }

            DecodedInsn d;
            d.insnIdx = static_cast<std::uint32_t>(prog.insns_.size());
            d.target = insn.targetIdx;
            d.targetAbsolute = seg.absoluteTargets;
            d.privileged = info.privileged;
            d.readsFlags = info.readsFlags;
            d.writesFlags = info.writesFlags;
            d.isBranch = insn.isBranch();
            d.zeroIdiom = insn.isZeroIdiom();
            d.hasLoad = insn.isLoad();
            d.hasStore = insn.isStore();
            d.opWidth = static_cast<std::uint16_t>(
                insn.operands.empty() ? 64
                                      : insn.operands[0].widthBits);

            // Memory operand position (at most one in this subset).
            for (std::size_t i = 0; i < insn.operands.size(); ++i) {
                if (insn.operands[i].kind == OperandKind::Memory) {
                    d.memOpIdx = static_cast<std::int8_t>(i);
                    break;
                }
            }

            // Resolved core timing + µop port pool slice.
            uarch::CoreTiming timing = uarch::coreTiming(family, insn);
            d.latency = static_cast<std::uint16_t>(timing.latency);
            d.blockCycles =
                static_cast<std::uint16_t>(timing.blockCycles);
            d.uopBegin = static_cast<std::uint32_t>(
                prog.portPool_.size());
            d.uopCount = static_cast<std::uint16_t>(
                timing.uopPorts.size());
            prog.portPool_.insert(prog.portPool_.end(),
                                  timing.uopPorts.begin(),
                                  timing.uopPorts.end());

            // Memory µop decomposition (mirrors the executor's
            // special cases for stack/prefetch opcodes, which handle
            // their memory traffic inline).
            d.doLoadUop = d.hasLoad && insn.opcode != Opcode::POP &&
                          insn.opcode != Opcode::RET &&
                          insn.opcode != Opcode::PREFETCHT0 &&
                          insn.opcode != Opcode::PREFETCHNTA;
            d.doStoreUop = d.hasStore && insn.opcode != Opcode::PUSH &&
                           insn.opcode != Opcode::CALL;

            unsigned n_uops = static_cast<unsigned>(d.uopCount) +
                              (d.hasLoad ? 1u : 0u) +
                              (d.hasStore ? 2u : 0u);
            d.nIssueUops = static_cast<std::uint8_t>(
                std::max(1u, n_uops));

            // Source-readiness registers: explicit register operands
            // that are read (a destination counts only when the
            // instruction reads it), plus the implicit reads. A zero
            // idiom reads nothing.
            d.srcBegin = static_cast<std::uint32_t>(
                prog.regPool_.size());
            if (!d.zeroIdiom) {
                for (std::size_t i = 0; i < insn.operands.size(); ++i) {
                    const Operand &op = insn.operands[i];
                    if (op.kind != OperandKind::Register)
                        continue;
                    bool is_dest = i == 0 &&
                                   insn.opcode != Opcode::CMP &&
                                   insn.opcode != Opcode::TEST &&
                                   insn.opcode != Opcode::BT &&
                                   insn.opcode != Opcode::PUSH;
                    if (!is_dest || insn.destIsRead())
                        addReg(prog.regPool_, d.srcBegin, op.reg);
                }
                for (Reg r : info.implicitReads)
                    addReg(prog.regPool_, d.srcBegin, r);
            }
            d.srcCount = static_cast<std::uint16_t>(
                prog.regPool_.size() - d.srcBegin);

            // Address-readiness registers: base/index of the memory
            // operand; the stack opcodes also wait on RSP.
            d.addrBegin = static_cast<std::uint32_t>(
                prog.regPool_.size());
            if (d.memOpIdx >= 0) {
                const x86::MemRef &mem =
                    insn.operands[d.memOpIdx].mem;
                if (mem.base != Reg::Invalid)
                    addReg(prog.regPool_, d.addrBegin, mem.base);
                if (mem.index != Reg::Invalid)
                    addReg(prog.regPool_, d.addrBegin, mem.index);
            }
            if (insn.opcode == Opcode::PUSH ||
                insn.opcode == Opcode::POP ||
                insn.opcode == Opcode::CALL ||
                insn.opcode == Opcode::RET) {
                addReg(prog.regPool_, d.addrBegin, Reg::RSP);
            }
            d.addrCount = static_cast<std::uint16_t>(
                prog.regPool_.size() - d.addrBegin);

            // Definition set (consumed by the static analyzer; the
            // executor keys readiness on the slices above): the
            // written explicit destination(s) plus the implicit
            // writes. The one-operand multiply/divide group takes a
            // pure source operand and writes RDX:RAX instead --
            // MUL/DIV carry that in OpcodeInfo, one-operand IMUL
            // does not, so it is spelled out here.
            d.dstBegin = static_cast<std::uint32_t>(
                prog.regPool_.size());
            bool one_op_imul = insn.opcode == Opcode::IMUL &&
                               insn.operands.size() == 1;
            bool dest_written =
                !insn.operands.empty() &&
                insn.operands[0].kind == OperandKind::Register &&
                insn.opcode != Opcode::CMP &&
                insn.opcode != Opcode::TEST &&
                insn.opcode != Opcode::BT &&
                insn.opcode != Opcode::PUSH &&
                insn.opcode != Opcode::MUL &&
                insn.opcode != Opcode::DIV &&
                insn.opcode != Opcode::IDIV && !one_op_imul;
            if (dest_written)
                addReg(prog.regPool_, d.dstBegin, insn.operands[0].reg);
            if (insn.opcode == Opcode::XCHG &&
                insn.operands.size() > 1 &&
                insn.operands[1].kind == OperandKind::Register) {
                addReg(prog.regPool_, d.dstBegin, insn.operands[1].reg);
            }
            for (Reg r : info.implicitWrites)
                addReg(prog.regPool_, d.dstBegin, r);
            if (one_op_imul) {
                addReg(prog.regPool_, d.dstBegin, Reg::RAX);
                addReg(prog.regPool_, d.dstBegin, Reg::RDX);
            }
            d.dstCount = static_cast<std::uint16_t>(
                prog.regPool_.size() - d.dstBegin);

            prog.entries_.push_back(d);
            prog.insns_.push_back(insn);

            // Hot struct-of-arrays mirror (same index as entries_).
            prog.opClass_.push_back(opcodeClass(insn.opcode));
            std::uint16_t flags = 0;
            if (d.zeroIdiom)
                flags |= hotflag::kZeroIdiom;
            if (d.readsFlags)
                flags |= hotflag::kReadsFlags;
            if (d.doLoadUop)
                flags |= hotflag::kDoLoadUop;
            if (d.doStoreUop)
                flags |= hotflag::kDoStoreUop;
            if (d.hasLoad)
                flags |= hotflag::kHasLoad;
            if (d.hasStore)
                flags |= hotflag::kHasStore;
            if (d.isBranch)
                flags |= hotflag::kIsBranch;
            if (d.targetAbsolute)
                flags |= hotflag::kTargetAbsolute;
            if (d.privileged)
                flags |= hotflag::kPrivileged;
            HotTiming ht;
            ht.latency = d.latency;
            ht.blockCycles = d.blockCycles;
            ht.opWidth = d.opWidth;
            ht.flags = flags;
            ht.uopCount = d.uopCount;
            ht.nIssueUops = d.nIssueUops;
            ht.memOpIdx = d.memOpIdx;
            prog.hotTiming_.push_back(ht);
            HotRefs hr;
            hr.uopBegin = d.uopBegin;
            hr.srcBegin = d.srcBegin;
            hr.addrBegin = d.addrBegin;
            hr.target = d.target;
            hr.srcCount = d.srcCount;
            hr.addrCount = d.addrCount;
            prog.hotRefs_.push_back(hr);
        }

        prog.virtualSize_ +=
            static_cast<std::uint64_t>(block.entryCount) * block.repeat;
        prog.blocks_.push_back(block);
    }

    return prog;
}

Program
Program::decode(const uarch::MicroArch &ua,
                std::vector<x86::Instruction> code)
{
    std::vector<Segment> segments(1);
    segments[0].code = std::move(code);
    return decode(ua, std::move(segments));
}

std::vector<Instruction>
Program::materialize() const
{
    std::vector<Instruction> out;
    out.reserve(virtualSize_);
    for (const Block &block : blocks_) {
        for (std::uint64_t iter = 0; iter < block.repeat; ++iter) {
            std::uint64_t copy_base =
                block.firstVirtual + iter * block.entryCount;
            for (std::uint32_t i = 0; i < block.entryCount; ++i) {
                const DecodedInsn &d = entries_[block.entryBegin + i];
                Instruction insn = insns_[d.insnIdx];
                if (insn.targetIdx >= 0 && !d.targetAbsolute) {
                    insn.targetIdx = static_cast<std::int32_t>(
                        insn.targetIdx +
                        static_cast<std::int64_t>(copy_base));
                }
                out.push_back(std::move(insn));
            }
        }
    }
    return out;
}

} // namespace nb::sim
