/**
 * @file
 * Machine framework: construction, scheduling, interrupts, MSRs, and
 * the frozen reference execution loop. The primary threaded executor
 * lives in dispatch.cc; reference instruction semantics in exec.cc.
 */

#include "machine.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace nb::sim
{

Machine::Machine(const uarch::MicroArch &ua, std::uint64_t seed)
    : uarch_(ua), ports_(ua.ports()), rng_(seed),
      pmu_(ua.numProgCounters, ua.hasFixedCounters, ua.refClockRatio),
      caches_(ua.cacheConfig, &rng_)
{
    sched_.portFree.assign(ports_.numPorts, 0);
    sched_.portUse.assign(ports_.numPorts, 0);
    scheduleNextInterrupt();
}

void
Machine::setInterruptsEnabled(bool enabled)
{
    interruptsEnabled_ = enabled;
    if (enabled)
        scheduleNextInterrupt();
}

void
Machine::scheduleNextInterrupt()
{
    std::uint64_t period = uarch_.interruptPeriodCycles;
    // +/- 20% jitter.
    std::uint64_t jitter = rng_.nextRange(period * 8 / 10, period * 12 / 10);
    nextInterrupt_ = sched_.maxCompletion + jitter;
}

Cycles
Machine::issueSlot(unsigned effective_issue_width)
{
    // Scheduler-window back-pressure: stall issue until the oldest
    // in-flight µop completes.
    if (sched_.window.size() >= uarch_.windowSize) {
        Cycles oldest = sched_.window.front();
        sched_.window.pop_front();
        if (oldest > sched_.issueCycle) {
            sched_.issueCycle = oldest;
            sched_.issuedInCycle = 0;
        }
    }
    if (sched_.issuedInCycle >= effective_issue_width) {
        ++sched_.issueCycle;
        sched_.issuedInCycle = 0;
    }
    ++sched_.issuedInCycle;
    return sched_.issueCycle;
}

Machine::UopTiming
Machine::dispatchUop(uarch::PortMask ports, Cycles ready, unsigned latency,
                     unsigned block_cycles)
{
    ready = std::max(ready, sched_.minDispatch);
    if (ports == 0) {
        // µop that occupies no execution port (e.g. eliminated or
        // fence-internal); completes at readiness.
        Cycles done = ready + latency;
        sched_.maxCompletion = std::max(sched_.maxCompletion, done);
        sched_.window.push_back(done);
        return {ready, done};
    }

    // Choose the allowed port with the earliest dispatch opportunity;
    // break ties towards the least-used port, so that symmetric ports
    // (e.g. the two load ports) split a dependent chain evenly.
    unsigned best_port = 0;
    Cycles best_cycle = ~Cycles{0};
    unsigned n_ports = ports_.numPorts;
    for (unsigned p = 0; p < n_ports; ++p) {
        if (!(ports & (1u << p)))
            continue;
        Cycles c = std::max(ready, sched_.portFree[p]);
        if (c < best_cycle ||
            (c == best_cycle &&
             sched_.portUse[p] < sched_.portUse[best_port])) {
            best_cycle = c;
            best_port = p;
        }
    }
    NB_ASSERT(best_cycle != ~Cycles{0}, "empty port mask");

    ++sched_.portUse[best_port];
    sched_.portFree[best_port] = best_cycle + 1 + block_cycles;
    Cycles done = best_cycle + std::max(1u, latency);
    if (latency == 0)
        done = best_cycle + 1;
    sched_.maxCompletion = std::max(sched_.maxCompletion, done);
    sched_.window.push_back(done);

    count(EventId::UopsExecuted, 1, best_cycle);
    if (best_port < 8)
        count(portEvent(best_port), 1, best_cycle);
    return {best_cycle, done};
}

void
Machine::retireInstr(Cycles completion, bool is_branch, bool mispredicted)
{
    Cycles retire = std::max(completion, sched_.lastRetire);
    if (retire == sched_.lastRetire &&
        sched_.retiredInCycle >= uarch_.retireWidth) {
        ++retire;
    }
    if (retire != sched_.lastRetire)
        sched_.retiredInCycle = 0;
    ++sched_.retiredInCycle;
    sched_.lastRetire = retire;
    sched_.maxCompletion = std::max(sched_.maxCompletion, retire);

    count(EventId::InstrRetired, 1, retire);
    if (is_branch) {
        count(EventId::BrInstRetired, 1, retire);
        if (mispredicted)
            count(EventId::BrMispRetired, 1, retire);
    }
}

void
Machine::flushPendingCounts()
{
    for (unsigned i = 0; i < kNumEvents; ++i) {
        if (pendingCounts_[i] != 0) {
            pmu_.commit(static_cast<EventId>(i), pendingCounts_[i]);
            pendingCounts_[i] = 0;
        }
    }
}

void
Machine::countLoadLevel(const cache::AccessResult &res, Cycles at)
{
    using cache::HitLevel;
    count(EventId::MemLoads, 1, at);
    switch (res.level) {
      case HitLevel::L1:
        count(EventId::MemLoadL1Hit, 1, at);
        break;
      case HitLevel::L2:
        count(EventId::MemLoadL1Miss, 1, at);
        count(EventId::MemLoadL2Hit, 1, at);
        break;
      case HitLevel::L3:
        count(EventId::MemLoadL1Miss, 1, at);
        count(EventId::MemLoadL2Miss, 1, at);
        count(EventId::MemLoadL3Hit, 1, at);
        break;
      case HitLevel::Memory:
        count(EventId::MemLoadL1Miss, 1, at);
        count(EventId::MemLoadL2Miss, 1, at);
        count(EventId::MemLoadL3Miss, 1, at);
        break;
    }
}

Addr
Machine::effectiveAddress(const x86::MemRef &mem) const
{
    Addr addr = static_cast<Addr>(mem.disp);
    if (mem.base != x86::Reg::Invalid)
        addr += arch_.readGpr(mem.base, 64);
    if (mem.index != x86::Reg::Invalid)
        addr += arch_.readGpr(mem.index, 64) * mem.scale;
    return addr;
}

std::pair<std::uint64_t, Cycles>
Machine::loadValue(Addr vaddr, unsigned bytes)
{
    Addr paddr = memory_.translate(vaddr);
    // Address translation consults the TLB hierarchy; misses add their
    // penalty to the load-to-use latency.
    TlbResult tlb_res = tlb_.access(vaddr);
    std::uint64_t evictions_before = caches_.l1().stats().evictions;
    auto res = caches_.access(paddr, cache::AccessType::Load);
    std::uint64_t evictions_after = caches_.l1().stats().evictions;
    Cycles at = sched_.maxCompletion;
    countLoadLevel(res, at);
    if (tlb_res.level == TlbLevel::Stlb)
        count(EventId::DtlbMissStlbHit, 1, at);
    else if (tlb_res.level == TlbLevel::PageWalk)
        count(EventId::DtlbMissWalk, 1, at);
    if (evictions_after > evictions_before) {
        count(EventId::L1dReplacement, evictions_after - evictions_before,
              at);
    }
    return {memory_.phys().read(paddr, bytes),
            res.latency + tlb_res.penalty};
}

void
Machine::storeValue(Addr vaddr, std::uint64_t value, unsigned bytes)
{
    Addr paddr = memory_.translate(vaddr);
    tlb_.access(vaddr); // stores translate too (no latency modelled)
    std::uint64_t evictions_before = caches_.l1().stats().evictions;
    caches_.access(paddr, cache::AccessType::Store);
    std::uint64_t evictions_after = caches_.l1().stats().evictions;
    Cycles at = sched_.maxCompletion;
    count(EventId::MemStores, 1, at);
    if (evictions_after > evictions_before) {
        count(EventId::L1dReplacement, evictions_after - evictions_before,
              at);
    }
    memory_.phys().write(paddr, value, bytes);
}

VecReg
Machine::loadVec(Addr vaddr, unsigned bytes, Cycles *latency)
{
    VecReg v{};
    Cycles max_lat = 0;
    for (unsigned off = 0; off < bytes; off += 8) {
        auto [value, lat] = loadValue(vaddr + off, 8);
        v[off / 8] = value;
        max_lat = std::max(max_lat, lat);
    }
    *latency = max_lat;
    return v;
}

void
Machine::storeVec(Addr vaddr, const VecReg &value, unsigned bytes)
{
    for (unsigned off = 0; off < bytes; off += 8)
        storeValue(vaddr + off, value[off / 8], 8);
}

void
Machine::requirePrivilege(const x86::Instruction &insn) const
{
    if (insn.info().privileged && privilege_ != Privilege::Kernel) {
        fatal("general protection fault: privileged instruction '",
              insn.toString(), "' executed in user mode");
    }
}

void
Machine::maybeInterrupt(ExecContext &ctx)
{
    if (!interruptsEnabled_ || sched_.maxCompletion < nextInterrupt_)
        return;

    // Timer interrupt: the handler runs a few hundred instructions,
    // perturbing counts and cache state (§IV-A2, [30, 31]).
    Cycles at = sched_.maxCompletion;
    std::uint64_t handler_instr = rng_.nextRange(300, 900);
    std::uint64_t handler_cycles = rng_.nextRange(3000, 10000);
    count(EventId::InstrRetired, handler_instr, at);
    count(EventId::UopsIssued, handler_instr + handler_instr / 4, at);
    count(EventId::UopsExecuted, handler_instr, at);
    count(EventId::BrInstRetired, handler_instr / 5, at);
    count(EventId::BrMispRetired, rng_.nextRange(0, 4), at);

    // The handler touches some cache lines in a reserved physical range.
    constexpr Addr kHandlerBase = 0xF000'0000ULL;
    unsigned lines = static_cast<unsigned>(rng_.nextRange(8, 32));
    for (unsigned i = 0; i < lines; ++i) {
        Addr line = kHandlerBase +
                    rng_.nextBelow(512) * kCacheLineSize;
        caches_.access(line, cache::AccessType::Load);
    }

    // Pipeline restart after the handler.
    sched_.issueCycle = at + handler_cycles;
    sched_.issuedInCycle = 0;
    sched_.minDispatch = std::max(sched_.minDispatch, at + handler_cycles);
    sched_.maxCompletion = at + handler_cycles;
    sched_.lastRetire = std::max(sched_.lastRetire, at + handler_cycles);
    ++ctx.stats.interrupts;
    scheduleNextInterrupt();
}

ExecStats
Machine::executeReference(const Program &prog)
{
    ExecContext ctx;
    ctx.program = &prog;
    ctx.stats.startCycle = sched_.maxCompletion;

    // Front-end footprint model (§III-F): code that no longer fits the
    // instruction cache decodes at a reduced rate. The footprint is
    // the *dynamic* layout's size -- repeat-encoded programs occupy
    // the same i-cache space as their materialized equivalent.
    std::uint64_t footprint = prog.virtualSize() * 4; // 4 bytes/insn
    ctx.effectiveIssueWidth = uarch_.issueWidth;
    if (footprint > 256 * 1024)
        ctx.effectiveIssueWidth = std::max(1u, uarch_.issueWidth / 4);
    else if (footprint > 32 * 1024)
        ctx.effectiveIssueWidth = std::max(2u, uarch_.issueWidth / 2);

    // Cursor over the virtual index space: (block, iteration within
    // the block's repeat count, offset within the pattern). Sequential
    // advance is O(1); a taken branch relocates by scanning the block
    // list (blocks are contiguous in virtual space and few).
    const std::vector<Program::Block> &blocks = prog.blocks();
    const std::uint64_t vsize = prog.virtualSize();
    std::size_t block_idx = 0;
    std::uint64_t iter = 0;
    std::uint32_t offset = 0;
    std::uint64_t vidx = 0;      // virtual index of the cursor
    std::uint64_t copy_base = 0; // virtual index of the current copy

    auto relocate = [&](std::uint64_t v) {
        for (block_idx = 0; block_idx < blocks.size(); ++block_idx) {
            const Program::Block &b = blocks[block_idx];
            std::uint64_t span =
                static_cast<std::uint64_t>(b.entryCount) * b.repeat;
            if (v < b.firstVirtual + span) {
                std::uint64_t rel = v - b.firstVirtual;
                iter = rel / b.entryCount;
                offset = static_cast<std::uint32_t>(
                    rel % b.entryCount);
                copy_base = b.firstVirtual + iter * b.entryCount;
                vidx = v;
                return;
            }
        }
        vidx = v; // past the end: control falls off the program
    };

    while (vidx < vsize) {
        if (ctx.stats.instructions >= maxInstr_) {
            fatal("instruction budget exceeded (", maxInstr_,
                  "); possible endless loop in microbenchmark");
        }
        const Program::Block &b = blocks[block_idx];
        const DecodedInsn &d = prog.entry(b.entryBegin + offset);
        ctx.copyBase = copy_base;
        // Advance the cursor to the fallthrough position.
        ++vidx;
        if (++offset == b.entryCount) {
            offset = 0;
            if (++iter == b.repeat) {
                iter = 0;
                ++block_idx;
            }
            copy_base = vidx;
        }
        ctx.nextIdx = vidx;
        executeInstr(d, ctx);
        ++ctx.stats.instructions;
        if (ctx.nextIdx != vidx)
            relocate(ctx.nextIdx); // a taken branch redirected us
        maybeInterrupt(ctx);
    }

    ctx.stats.endCycle = sched_.maxCompletion;
    return ctx.stats;
}

ExecStats
Machine::execute(const std::vector<x86::Instruction> &code)
{
    return execute(Program::decode(uarch_, code));
}

std::uint64_t
Machine::readMsr(std::uint32_t addr)
{
    return readMsrAt(addr, sched_.maxCompletion);
}

std::uint64_t
Machine::readMsrAt(std::uint32_t addr, Cycles now)
{
    if (addr == msr::kAperf)
        return pmu_.aperf(now);
    if (addr == msr::kMperf)
        return pmu_.mperf(now);
    if (addr == msr::kPrefetchControl)
        return caches_.prefetcherControl();
    if (addr >= msr::kPmc0 && addr < msr::kPmc0 + pmu_.numProg())
        return pmu_.readProg(addr - msr::kPmc0, now);
    if (addr >= msr::kFixedCtr0 && addr < msr::kFixedCtr0 + 3 &&
        pmu_.hasFixed())
        return pmu_.readFixed(addr - msr::kFixedCtr0, now);
    if (uarch_.hasUncoreCounters) {
        unsigned n = caches_.numSlices();
        if (addr >= msr::kCboxLookupBase &&
            addr < msr::kCboxLookupBase + n)
            return caches_.cboxStats(addr - msr::kCboxLookupBase).lookups;
        if (addr >= msr::kCboxHitBase && addr < msr::kCboxHitBase + n)
            return caches_.cboxStats(addr - msr::kCboxHitBase).hits;
        if (addr >= msr::kCboxMissBase && addr < msr::kCboxMissBase + n)
            return caches_.cboxStats(addr - msr::kCboxMissBase).misses;
    }
    fatal("RDMSR: unimplemented MSR 0x", std::hex, addr);
}

void
Machine::writeMsr(std::uint32_t addr, std::uint64_t value)
{
    if (addr == msr::kPrefetchControl) {
        caches_.setPrefetcherControl(value);
        return;
    }
    if (addr >= msr::kPerfEvtSel0 &&
        addr < msr::kPerfEvtSel0 + pmu_.numProg()) {
        unsigned idx = addr - msr::kPerfEvtSel0;
        bool enable = (value >> 22) & 1;
        if (!enable) {
            pmu_.disableProg(idx);
            return;
        }
        EventCode code{static_cast<std::uint8_t>(value & 0xFF),
                       static_cast<std::uint8_t>((value >> 8) & 0xFF)};
        if (!pmu_.configureProg(idx, code)) {
            warn("WRMSR: unknown event code ", std::hex,
                 static_cast<int>(code.evsel), ".",
                 static_cast<int>(code.umask));
        }
        return;
    }
    fatal("WRMSR: unimplemented MSR 0x", std::hex, addr);
}

} // namespace nb::sim
