/**
 * @file
 * Simulated data-TLB hierarchy.
 *
 * The paper names TLB analysis as the first direction for future work
 * ("This includes, for example, details on how the TLBs ... work",
 * §VIII). This module provides the substrate for that extension: a
 * two-level TLB (L1 DTLB + unified STLB) with LRU replacement, page-walk
 * costs on misses, and the corresponding performance events. The
 * characterization tool that measures TLB capacities through generated
 * microbenchmarks lives in nb::cachetools.
 */

#ifndef NB_SIM_TLB_HH
#define NB_SIM_TLB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace nb::sim
{

/** Where a TLB lookup was satisfied. */
enum class TlbLevel : std::uint8_t
{
    Dtlb,
    Stlb,
    PageWalk,
};

/** Geometry of one TLB level. */
struct TlbLevelConfig
{
    unsigned entries = 64;
    unsigned assoc = 4;
};

/** Configuration of the TLB hierarchy. */
struct TlbConfig
{
    TlbLevelConfig dtlb{64, 4};     ///< L1 data TLB
    TlbLevelConfig stlb{1536, 12};  ///< unified second-level TLB
    Cycles stlbLatency = 7;         ///< extra cycles on a DTLB miss
    Cycles walkLatency = 26;        ///< extra cycles on an STLB miss
};

/** Result of a translation lookup. */
struct TlbResult
{
    TlbLevel level = TlbLevel::Dtlb;
    /** Extra latency this lookup adds to the access. */
    Cycles penalty = 0;
};

/** A set-associative, LRU-replaced TLB level. */
class TlbArray
{
  public:
    explicit TlbArray(const TlbLevelConfig &config);

    /** Look up a virtual page number; fills on miss. Returns hit. */
    bool access(Addr vpn);

    /** Probe without state change. */
    bool probe(Addr vpn) const;

    void flush();

    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }

  private:
    struct Entry
    {
        Addr vpn = 0;
        bool valid = false;
        std::uint64_t stamp = 0;
    };

    unsigned numSets_;
    unsigned assoc_;
    std::vector<Entry> entries_;
    std::uint64_t clock_ = 0;
};

/** The two-level data-TLB hierarchy. */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config = TlbConfig{});

    /** Translate-side lookup for the page containing @p vaddr. */
    TlbResult access(Addr vaddr);

    /** Flush both levels (e.g. on a (simulated) CR3 write). */
    void flush();

    const TlbConfig &config() const { return config_; }

    /** Statistics. */
    std::uint64_t dtlbMisses() const { return dtlbMisses_; }
    std::uint64_t stlbMisses() const { return stlbMisses_; }

  private:
    TlbConfig config_;
    TlbArray dtlb_;
    TlbArray stlb_;
    std::uint64_t dtlbMisses_ = 0;
    std::uint64_t stlbMisses_ = 0;
};

} // namespace nb::sim

#endif // NB_SIM_TLB_HH
