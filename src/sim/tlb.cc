/**
 * @file
 * TLB implementation.
 */

#include "tlb.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace nb::sim
{

TlbArray::TlbArray(const TlbLevelConfig &config)
    : numSets_(config.entries / config.assoc), assoc_(config.assoc)
{
    NB_ASSERT(config.entries % config.assoc == 0,
              "TLB entries must divide by associativity");
    NB_ASSERT(isPowerOfTwo(numSets_), "TLB set count must be 2^k");
    entries_.resize(config.entries);
}

bool
TlbArray::access(Addr vpn)
{
    unsigned set = static_cast<unsigned>(vpn) & (numSets_ - 1);
    Entry *base = &entries_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].vpn == vpn) {
            base[w].stamp = ++clock_;
            return true;
        }
    }
    // Miss: fill the LRU way.
    Entry *victim = base;
    for (unsigned w = 1; w < assoc_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].stamp < victim->stamp)
            victim = &base[w];
    }
    victim->vpn = vpn;
    victim->valid = true;
    victim->stamp = ++clock_;
    return false;
}

bool
TlbArray::probe(Addr vpn) const
{
    unsigned set = static_cast<unsigned>(vpn) & (numSets_ - 1);
    const Entry *base = &entries_[static_cast<std::size_t>(set) *
                                  assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].vpn == vpn)
            return true;
    }
    return false;
}

void
TlbArray::flush()
{
    for (auto &entry : entries_)
        entry.valid = false;
}

Tlb::Tlb(const TlbConfig &config)
    : config_(config), dtlb_(config.dtlb), stlb_(config.stlb)
{
}

TlbResult
Tlb::access(Addr vaddr)
{
    Addr vpn = vaddr / kPageSize;
    TlbResult result;
    if (dtlb_.access(vpn))
        return result;
    ++dtlbMisses_;
    if (stlb_.access(vpn)) {
        result.level = TlbLevel::Stlb;
        result.penalty = config_.stlbLatency;
        return result;
    }
    ++stlbMisses_;
    result.level = TlbLevel::PageWalk;
    result.penalty = config_.walkLatency;
    return result;
}

void
Tlb::flush()
{
    dtlb_.flush();
    stlb_.flush();
}

} // namespace nb::sim
