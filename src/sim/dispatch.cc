/**
 * @file
 * The primary execution path: a threaded (computed-goto) interpreter
 * over the Program's struct-of-arrays hot layout.
 *
 * Control flow dispatches on the per-entry OpClass through a label
 * table instead of re-deriving everything from the Instruction each
 * time: the hot fields (timing, flags, pool offsets) come from the
 * packed HotTiming/HotRefs parallel arrays, and the AoS DecodedInsn
 * pool is never touched on this path. PMU events that are not
 * time-resolved are batched by Machine::count() (see BatchCountScope)
 * and committed in bulk on return.
 *
 * Parity contract: every observable -- ExecStats, architectural
 * registers and flags, counter totals, time-resolved samples, the RNG
 * stream, branch-predictor state -- must be bit-identical to
 * Machine::executeReference() (machine.cc + exec.cc). The semantics
 * bodies below mirror the executeInstr switch case for case; keep the
 * two in lockstep and extend the parity suite when adding opcodes.
 */

#include <bit>
#include <optional>
#include <sstream>

#include "common/bits.hh"
#include "common/logging.hh"
#include "fault/fault.hh"
#include "sim/machine.hh"
#include "sim/semantics.hh"
#include "uarch/timing.hh"

namespace nb::sim
{

using x86::Instruction;
using x86::MemRef;
using x86::Opcode;
using x86::Operand;
using x86::OperandKind;
using x86::Reg;

void
Machine::budgetCheckpoint(ExecContext &ctx)
{
    const Cycles consumed = sched_.maxCompletion - ctx.stats.startCycle;
    fault::maybeInject(fault::Site::Execute, consumed);
    if (cycleDeadline_ == 0 || sched_.maxCompletion < cycleDeadline_)
        return;
    // Commit the batched PMU state so the error carries an accurate
    // partial snapshot (the flush is idempotent; the BatchCountScope
    // flush during unwind then finds nothing pending).
    flushPendingCounts();
    std::ostringstream os;
    os << "cycle budget exceeded (" << cycleBudget_ << " cycles): "
       << ctx.stats.instructions << " instructions retired, "
       << consumed << " cycles consumed in this call";
    if (pmu_.hasFixed()) {
        const Cycles now = sched_.maxCompletion;
        os << "; partial PMU fixed counters: instructions="
           << pmu_.readFixed(0, now)
           << ", core_cycles=" << pmu_.readFixed(1, now)
           << ", ref_cycles=" << pmu_.readFixed(2, now);
    }
    const std::string msg = os.str();
    detail::emitMessage("fatal: ", msg);
    throw BudgetExceededError(msg, ctx.stats.instructions, consumed,
                              cycleBudget_);
}

ExecStats
Machine::execute(const Program &prog)
{
    // Batch non-time-resolved PMU accounting for the whole call; the
    // scope flushes on every exit path, including fatal()/exceptions.
    BatchCountScope batch_scope(*this);

    ExecContext ctx;
    ctx.program = &prog;
    ctx.stats.startCycle = sched_.maxCompletion;

    // Opt-in observation sink (see ExecObserver): accrual is purely
    // additive bookkeeping on already-computed values, so attaching an
    // observer cannot perturb timing, semantics, or PMU state. The
    // nullptr check is one predicted-not-taken branch when detached.
    ExecObserver *const obs = execObserver_;

    // Front-end footprint model (§III-F): code that no longer fits the
    // instruction cache decodes at a reduced rate. The footprint is
    // the *dynamic* layout's size -- repeat-encoded programs occupy
    // the same i-cache space as their materialized equivalent.
    std::uint64_t footprint = prog.virtualSize() * 4; // 4 bytes/insn
    ctx.effectiveIssueWidth = uarch_.issueWidth;
    if (footprint > 256 * 1024)
        ctx.effectiveIssueWidth = std::max(1u, uarch_.issueWidth / 4);
    else if (footprint > 32 * 1024)
        ctx.effectiveIssueWidth = std::max(2u, uarch_.issueWidth / 2);
    const unsigned issue_width = ctx.effectiveIssueWidth;

    // Struct-of-arrays views over the program's hot layout.
    const OpClass *op_class = prog.opClasses();
    const HotTiming *hot_timing = prog.hotTiming();
    const HotRefs *hot_refs = prog.hotRefs();
    const Instruction *insn_arr = prog.insnArray();
    const uarch::PortMask *port_pool = prog.portPool();
    const Reg *reg_pool = prog.regPool();

    // Cursor over the virtual index space: (block, iteration within
    // the block's repeat count, offset within the pattern). Sequential
    // advance is O(1); a taken branch relocates by scanning the block
    // list (blocks are contiguous in virtual space and few).
    const std::vector<Program::Block> &blocks = prog.blocks();
    const std::uint64_t vsize = prog.virtualSize();
    std::size_t block_idx = 0;
    std::uint64_t iter = 0;
    std::uint32_t offset = 0;
    std::uint64_t vidx = 0;      // virtual index of the cursor
    std::uint64_t copy_base = 0; // virtual index of the current copy

    auto relocate = [&](std::uint64_t v) {
        for (block_idx = 0; block_idx < blocks.size(); ++block_idx) {
            const Program::Block &b = blocks[block_idx];
            std::uint64_t span =
                static_cast<std::uint64_t>(b.entryCount) * b.repeat;
            if (v < b.firstVirtual + span) {
                std::uint64_t rel = v - b.firstVirtual;
                iter = rel / b.entryCount;
                offset = static_cast<std::uint32_t>(rel % b.entryCount);
                copy_base = b.firstVirtual + iter * b.entryCount;
                vidx = v;
                return;
            }
        }
        vidx = v; // past the end: control falls off the program
    };

    // ---------------------------------------------------------------
    // Per-instruction state. Everything lives before the first label
    // and is *assigned* per instruction, so the computed gotos below
    // never jump into the scope of a fresh initialization (which C++
    // forbids). `loaded`/`loaded_vec` are not re-zeroed per
    // instruction: every Memory-operand read implies kDoLoadUop set
    // them this instruction (POP/RET/PREFETCH never read them).
    // ---------------------------------------------------------------
    std::uint32_t entry = 0;
    const Instruction *insn = nullptr;
    HotTiming ht{};
    HotRefs hr{};
    unsigned flags = 0;
    const Operand *mem_op = nullptr;
    Cycles src_ready = 0;
    Cycles addr_ready = 0;
    Cycles issue_ready = 0;
    Cycles load_done = 0;
    Cycles core_done = 0;
    Cycles first_dispatch = 0;
    Cycles result_ready = 0;
    std::uint64_t loaded = 0;
    VecReg loaded_vec{};
    Addr mem_vaddr = 0;
    bool is_branch = false;
    bool taken = false;
    bool mispredicted = false;
    std::uint64_t branch_target = 0;
    std::optional<std::uint64_t> store_value;
    std::optional<VecReg> store_vec;
    unsigned store_bytes = 8;
    unsigned op_width = 64;

    // Scheduler primitives, inlined from machine.cc so the whole
    // dispatch loop optimizes as one unit (the out-of-line member
    // calls cost ~4 calls per instruction on the reference path).
    // Bodies are copies of Machine::issueSlot / dispatchUop /
    // retireInstr -- keep them in lockstep.
    const unsigned window_size = uarch_.windowSize;
    const unsigned retire_width = uarch_.retireWidth;
    const unsigned n_ports = ports_.numPorts;
    const uarch::PortMask port_limit =
        static_cast<uarch::PortMask>((1u << n_ports) - 1);

    auto issue_slot = [&]() -> Cycles {
        // Scheduler-window back-pressure: stall issue until the
        // oldest in-flight µop completes.
        if (sched_.window.size() >= window_size) {
            Cycles oldest = sched_.window.front();
            sched_.window.pop_front();
            if (oldest > sched_.issueCycle) {
                sched_.issueCycle = oldest;
                sched_.issuedInCycle = 0;
            }
        }
        if (sched_.issuedInCycle >= issue_width) {
            ++sched_.issueCycle;
            sched_.issuedInCycle = 0;
        }
        ++sched_.issuedInCycle;
        if (obs)
            ++obs->uopsIssued;
        return sched_.issueCycle;
    };

    auto dispatch_uop = [&](uarch::PortMask ports, Cycles ready,
                            unsigned latency,
                            unsigned block_cycles) -> UopTiming {
        ready = std::max(ready, sched_.minDispatch);
        if (ports == 0) {
            // µop that occupies no execution port (e.g. eliminated or
            // fence-internal); completes at readiness.
            Cycles done = ready + latency;
            sched_.maxCompletion = std::max(sched_.maxCompletion, done);
            sched_.window.push_back(done);
            if (obs)
                ++obs->uopsDispatched;
            return {ready, done};
        }
        // Choose the allowed port with the earliest dispatch
        // opportunity; break ties towards the least-used port.
        // Iterating set bits visits ports in ascending index order --
        // the same pick order as the reference's 0..numPorts scan.
        unsigned best_port = 0;
        Cycles best_cycle = ~Cycles{0};
        for (unsigned m = ports & port_limit; m != 0; m &= m - 1) {
            unsigned p = static_cast<unsigned>(std::countr_zero(m));
            Cycles c = std::max(ready, sched_.portFree[p]);
            if (c < best_cycle ||
                (c == best_cycle &&
                 sched_.portUse[p] < sched_.portUse[best_port])) {
                best_cycle = c;
                best_port = p;
            }
        }
        NB_ASSERT(best_cycle != ~Cycles{0}, "empty port mask");

        ++sched_.portUse[best_port];
        sched_.portFree[best_port] = best_cycle + 1 + block_cycles;
        Cycles done = best_cycle + std::max(1u, latency);
        if (latency == 0)
            done = best_cycle + 1;
        sched_.maxCompletion = std::max(sched_.maxCompletion, done);
        sched_.window.push_back(done);

        count(EventId::UopsExecuted, 1, best_cycle);
        if (best_port < 8)
            count(portEvent(best_port), 1, best_cycle);
        if (obs) {
            ++obs->uopsDispatched;
            ++obs->portUops[best_port];
        }
        return {best_cycle, done};
    };

    auto retire_insn = [&](Cycles completion, bool is_br, bool mispred) {
        Cycles retire = std::max(completion, sched_.lastRetire);
        if (retire == sched_.lastRetire &&
            sched_.retiredInCycle >= retire_width) {
            ++retire;
        }
        if (retire != sched_.lastRetire)
            sched_.retiredInCycle = 0;
        ++sched_.retiredInCycle;
        sched_.lastRetire = retire;
        sched_.maxCompletion = std::max(sched_.maxCompletion, retire);
        if (obs)
            obs->retireStallCycles += retire - completion;

        count(EventId::InstrRetired, 1, retire);
        if (is_br) {
            count(EventId::BrInstRetired, 1, retire);
            if (mispred)
                count(EventId::BrMispRetired, 1, retire);
        }
    };

    // Shared prologue: source/address readiness, issue slots, the load
    // µop, and the core µops -- everything executeInstr does between
    // the fence special cases and the semantics switch.
    auto prologue = [&]() {
        src_ready = 0;
        if (!(flags & hotflag::kZeroIdiom)) {
            const Reg *src = reg_pool + hr.srcBegin;
            for (unsigned i = 0; i < hr.srcCount; ++i) {
                src_ready = std::max(
                    src_ready,
                    sched_.regReady[static_cast<unsigned>(src[i])]);
            }
            if (flags & hotflag::kReadsFlags)
                src_ready = std::max(src_ready, sched_.flagsReady);
        }
        addr_ready = 0;
        const Reg *addr = reg_pool + hr.addrBegin;
        for (unsigned i = 0; i < hr.addrCount; ++i) {
            addr_ready = std::max(
                addr_ready,
                sched_.regReady[static_cast<unsigned>(addr[i])]);
        }

        issue_ready = 0;
        for (unsigned i = 0; i < ht.nIssueUops; ++i) {
            Cycles ic = issue_slot();
            count(EventId::UopsIssued, 1, ic);
            issue_ready = std::max(issue_ready, ic);
            ++ctx.stats.uops;
        }

        load_done = 0;
        mem_vaddr = 0;
        if (mem_op)
            mem_vaddr = effectiveAddress(mem_op->mem);

        if (flags & hotflag::kDoLoadUop) {
            NB_ASSERT(mem_op != nullptr, "load without memory operand");
            Cycles ready = std::max(addr_ready, issue_ready);
            auto lt = dispatch_uop(ports_.loadPorts, ready, 1, 0);
            Cycles lat;
            if (mem_op->widthBits > 64) {
                loaded_vec =
                    loadVec(mem_vaddr, mem_op->widthBits / 8, &lat);
            } else {
                auto [value, l] =
                    loadValue(mem_vaddr, mem_op->widthBits / 8);
                loaded = value;
                lat = l;
            }
            load_done = lt.dispatch + lat;
            sched_.maxCompletion =
                std::max(sched_.maxCompletion, load_done);
        }

        Cycles core_ready = std::max({src_ready, issue_ready, load_done});
        core_done = core_ready;
        first_dispatch = core_ready;
        if (ht.uopCount != 0) {
            const uarch::PortMask *uop_ports = port_pool + hr.uopBegin;
            auto t0 = dispatch_uop(uop_ports[0], core_ready, ht.latency,
                                  ht.blockCycles);
            core_done = t0.done;
            first_dispatch = t0.dispatch;
            for (unsigned i = 1; i < ht.uopCount; ++i) {
                auto ti = dispatch_uop(uop_ports[i], core_ready, 1, 0);
                core_done = std::max(core_done, ti.done);
            }
        } else if (flags & hotflag::kHasLoad) {
            core_done = load_done;
        } else {
            // NOP-like: completes at issue.
            core_done = issue_ready;
            sched_.maxCompletion =
                std::max(sched_.maxCompletion, core_done);
            sched_.window.push_back(core_done);
        }
        result_ready = core_done;
    };

    // Pattern-relative branch targets resolve against the current
    // copy's virtual base (see program.hh).
    auto resolve_target = [&]() -> std::uint64_t {
        std::uint64_t t = static_cast<std::uint64_t>(hr.target);
        return flags & hotflag::kTargetAbsolute ? t : ctx.copyBase + t;
    };

    auto read_src = [&](const Operand &op) -> std::uint64_t {
        switch (op.kind) {
          case OperandKind::Register:
            return arch_.readGpr(op.reg, op.widthBits);
          case OperandKind::Immediate:
            return static_cast<std::uint64_t>(op.imm) &
                   widthMask(op.widthBits);
          case OperandKind::Memory:
            return loaded & widthMask(op.widthBits);
          case OperandKind::None:
            break;
        }
        panic("unreadable operand");
    };
    auto read_vec_src = [&](const Operand &op) -> VecReg {
        if (op.kind == OperandKind::Register)
            return arch_.readVec(op.reg);
        if (op.kind == OperandKind::Memory)
            return loaded_vec;
        panic("unreadable vector operand");
    };
    auto write_dst = [&](std::uint64_t value) {
        const Operand &dst = insn->operands[0];
        if (dst.kind == OperandKind::Register) {
            arch_.writeGpr(dst.reg, dst.widthBits, value);
            sched_.regReady[static_cast<unsigned>(dst.reg)] =
                result_ready;
        } else if (dst.kind == OperandKind::Memory) {
            store_value = value;
        } else {
            panic("bad destination operand");
        }
    };
    auto write_vec_dst = [&](const VecReg &value) {
        const Operand &dst = insn->operands[0];
        if (dst.kind == OperandKind::Register) {
            arch_.writeVec(dst.reg, value);
            sched_.regReady[static_cast<unsigned>(dst.reg)] =
                result_ready;
        } else if (dst.kind == OperandKind::Memory) {
            store_vec = value;
        } else {
            panic("bad vector destination");
        }
    };
    auto set_zf_sf = [&](std::uint64_t result, unsigned width) {
        arch_.zf = (result & widthMask(width)) == 0;
        arch_.sf = (result & signBit(width)) != 0;
    };
    auto flags_written = [&]() { sched_.flagsReady = result_ready; };

    // One label per OpClass, in enum order.
    static const void *const handlers[] = {
        &&op_nop,        &&op_mov,        &&op_movsx,
        &&op_lea,        &&op_xchg,       &&op_bswap,
        &&op_cmov,       &&op_add_adc,    &&op_sub_sbb_cmp,
        &&op_logic,      &&op_inc_dec,    &&op_neg,
        &&op_not,        &&op_imul,       &&op_mul,
        &&op_div,        &&op_shift,      &&op_popcnt,
        &&op_lzcnt,      &&op_tzcnt,      &&op_bitscan,
        &&op_bit_test,   &&op_setz,       &&op_setnz,
        &&op_jmp,        &&op_jcc,        &&op_call,
        &&op_ret,        &&op_push,       &&op_pop,
        &&op_mov_vec,    &&op_pxor,       &&op_paddd,
        &&op_addps,      &&op_mulps,      &&op_divps,
        &&op_addpd,      &&op_mulpd,      &&op_divpd,
        &&op_vaddps,     &&op_vmulps,     &&op_vfma,
        &&op_rdtsc,      &&op_rdpmc,      &&op_rdmsr,
        &&op_wrmsr,      &&op_wbinvd,     &&op_clflush,
        &&op_prefetch,   &&op_cli,        &&op_sti,
        &&op_pfc_marker, &&op_fence,      &&op_sfence,
        &&op_cpuid,      &&op_unhandled,
    };
    static_assert(sizeof(handlers) / sizeof(handlers[0]) ==
                  kNumOpClasses);

next_insn:
    if (vidx >= vsize)
        goto finished;
    if (ctx.stats.instructions >= maxInstr_) {
        fatal("instruction budget exceeded (", maxInstr_,
              "); possible endless loop in microbenchmark");
    }
    // Amortized resilience checkpoint (cycle budget + execute-site
    // fault injection): one predictable mask test per instruction;
    // the deadline compare and fault-plan probe run every 1024th
    // instruction, and the cold path lives out of line.
    if ((ctx.stats.instructions & 1023u) == 0 &&
        (cycleDeadline_ != 0 || fault::activePlan() != nullptr))
        budgetCheckpoint(ctx);
    {
        const Program::Block &b = blocks[block_idx];
        entry = b.entryBegin + offset;
        ctx.copyBase = copy_base;
        // Advance the cursor to the fallthrough position.
        ++vidx;
        if (++offset == b.entryCount) {
            offset = 0;
            if (++iter == b.repeat) {
                iter = 0;
                ++block_idx;
            }
            copy_base = vidx;
        }
    }
    ctx.nextIdx = vidx;
    insn = insn_arr + entry;
    ht = hot_timing[entry];
    hr = hot_refs[entry];
    flags = ht.flags;
    op_width = ht.opWidth;
    mem_op = ht.memOpIdx >= 0 ? &insn->operands[ht.memOpIdx] : nullptr;
    store_bytes = mem_op ? mem_op->widthBits / 8 : 8;
    is_branch = (flags & hotflag::kIsBranch) != 0;
    taken = false;
    mispredicted = false;
    branch_target = ctx.nextIdx;
    store_value.reset();
    store_vec.reset();
    if (flags & hotflag::kPrivileged)
        requirePrivilege(*insn);
    goto *handlers[static_cast<unsigned>(op_class[entry])];

    // ----------------------------------------------------------- ALU
op_nop:
    prologue();
    goto epilogue;

op_mov:
    prologue();
    write_dst(read_src(insn->operands[1]));
    goto epilogue;

op_movsx:
    prologue();
    {
        std::uint64_t v = read_src(insn->operands[1]);
        unsigned sw = insn->operands[1].widthBits;
        if (v & signBit(sw))
            v |= ~widthMask(sw);
        write_dst(v);
    }
    goto epilogue;

op_lea:
    prologue();
    write_dst(mem_vaddr & widthMask(op_width));
    goto epilogue;

op_xchg:
    prologue();
    {
        std::uint64_t a = read_src(insn->operands[0]);
        std::uint64_t b = read_src(insn->operands[1]);
        write_dst(b);
        const Operand &src = insn->operands[1];
        if (src.kind == OperandKind::Register) {
            arch_.writeGpr(src.reg, src.widthBits, a);
            sched_.regReady[static_cast<unsigned>(src.reg)] =
                result_ready;
        } else {
            store_value = a;
        }
    }
    goto epilogue;

op_bswap:
    prologue();
    {
        std::uint64_t v = read_src(insn->operands[0]);
        if (op_width == 64)
            v = __builtin_bswap64(v);
        else
            v = __builtin_bswap32(static_cast<std::uint32_t>(v));
        write_dst(v);
    }
    goto epilogue;

op_cmov:
    prologue();
    {
        bool cond = insn->opcode == Opcode::CMOVZ    ? arch_.zf
                    : insn->opcode == Opcode::CMOVNZ ? !arch_.zf
                    : insn->opcode == Opcode::CMOVC  ? arch_.cf
                                                     : !arch_.cf;
        std::uint64_t v = cond ? read_src(insn->operands[1])
                               : read_src(insn->operands[0]);
        write_dst(v);
    }
    goto epilogue;

op_add_adc:
    prologue();
    {
        std::uint64_t a = read_src(insn->operands[0]);
        std::uint64_t b = read_src(insn->operands[1]);
        std::uint64_t carry =
            insn->opcode == Opcode::ADC && arch_.cf ? 1 : 0;
        std::uint64_t r = (a + b + carry) & widthMask(op_width);
        arch_.cf = r < a || (carry && r == a);
        arch_.of = ((a ^ r) & (b ^ r) & signBit(op_width)) != 0;
        set_zf_sf(r, op_width);
        flags_written();
        write_dst(r);
    }
    goto epilogue;

op_sub_sbb_cmp:
    prologue();
    {
        std::uint64_t a = read_src(insn->operands[0]);
        std::uint64_t b = read_src(insn->operands[1]);
        std::uint64_t borrow =
            insn->opcode == Opcode::SBB && arch_.cf ? 1 : 0;
        std::uint64_t r = (a - b - borrow) & widthMask(op_width);
        arch_.cf = a < b + borrow;
        arch_.of = ((a ^ b) & (a ^ r) & signBit(op_width)) != 0;
        set_zf_sf(r, op_width);
        flags_written();
        if (insn->opcode != Opcode::CMP)
            write_dst(r);
    }
    goto epilogue;

op_logic:
    prologue();
    {
        std::uint64_t a = read_src(insn->operands[0]);
        std::uint64_t b = read_src(insn->operands[1]);
        std::uint64_t r;
        if (insn->opcode == Opcode::OR)
            r = a | b;
        else if (insn->opcode == Opcode::XOR)
            r = a ^ b;
        else
            r = a & b;
        r &= widthMask(op_width);
        arch_.cf = false;
        arch_.of = false;
        set_zf_sf(r, op_width);
        flags_written();
        if (insn->opcode != Opcode::TEST)
            write_dst(r);
    }
    goto epilogue;

op_inc_dec:
    prologue();
    {
        std::uint64_t a = read_src(insn->operands[0]);
        std::uint64_t r =
            (insn->opcode == Opcode::INC ? a + 1 : a - 1) &
            widthMask(op_width);
        // INC/DEC preserve CF.
        arch_.of = insn->opcode == Opcode::INC
                       ? r == signBit(op_width)
                       : a == signBit(op_width);
        set_zf_sf(r, op_width);
        flags_written();
        write_dst(r);
    }
    goto epilogue;

op_neg:
    prologue();
    {
        std::uint64_t a = read_src(insn->operands[0]);
        std::uint64_t r = (0 - a) & widthMask(op_width);
        arch_.cf = a != 0;
        set_zf_sf(r, op_width);
        flags_written();
        write_dst(r);
    }
    goto epilogue;

op_not:
    prologue();
    write_dst(~read_src(insn->operands[0]) & widthMask(op_width));
    goto epilogue;

op_imul:
    prologue();
    {
        if (insn->operands.size() == 1) {
            // RDX:RAX = RAX * src (signed widening).
            auto a = static_cast<__int128>(
                static_cast<std::int64_t>(arch_.readGpr(Reg::RAX, 64)));
            auto b = static_cast<__int128>(static_cast<std::int64_t>(
                read_src(insn->operands[0])));
            __int128 p = a * b;
            arch_.writeGpr(Reg::RAX, 64, static_cast<std::uint64_t>(p));
            arch_.writeGpr(Reg::RDX, 64,
                           static_cast<std::uint64_t>(p >> 64));
            sched_.regReady[static_cast<unsigned>(Reg::RAX)] =
                result_ready;
            sched_.regReady[static_cast<unsigned>(Reg::RDX)] =
                result_ready;
        } else if (insn->operands.size() == 2) {
            std::uint64_t r = read_src(insn->operands[0]) *
                              read_src(insn->operands[1]);
            write_dst(r & widthMask(op_width));
        } else {
            std::uint64_t r = read_src(insn->operands[1]) *
                              read_src(insn->operands[2]);
            write_dst(r & widthMask(op_width));
        }
        flags_written();
    }
    goto epilogue;

op_mul:
    prologue();
    {
        auto a = static_cast<unsigned __int128>(
            arch_.readGpr(Reg::RAX, 64));
        auto b = static_cast<unsigned __int128>(
            read_src(insn->operands[0]));
        unsigned __int128 p = a * b;
        arch_.writeGpr(Reg::RAX, 64, static_cast<std::uint64_t>(p));
        arch_.writeGpr(Reg::RDX, 64,
                       static_cast<std::uint64_t>(p >> 64));
        sched_.regReady[static_cast<unsigned>(Reg::RAX)] = result_ready;
        sched_.regReady[static_cast<unsigned>(Reg::RDX)] = result_ready;
        flags_written();
    }
    goto epilogue;

op_div:
    prologue();
    {
        std::uint64_t divisor = read_src(insn->operands[0]);
        if (divisor == 0)
            fatal("divide error (#DE): division by zero");
        unsigned __int128 dividend =
            (static_cast<unsigned __int128>(
                 arch_.readGpr(Reg::RDX, 64))
             << 64) |
            arch_.readGpr(Reg::RAX, 64);
        std::uint64_t q, rem;
        if (insn->opcode == Opcode::DIV) {
            q = static_cast<std::uint64_t>(dividend / divisor);
            rem = static_cast<std::uint64_t>(dividend % divisor);
        } else {
            auto sd = static_cast<__int128>(dividend);
            auto sv = static_cast<std::int64_t>(divisor);
            q = static_cast<std::uint64_t>(sd / sv);
            rem = static_cast<std::uint64_t>(sd % sv);
        }
        arch_.writeGpr(Reg::RAX, 64, q);
        arch_.writeGpr(Reg::RDX, 64, rem);
        sched_.regReady[static_cast<unsigned>(Reg::RAX)] = result_ready;
        sched_.regReady[static_cast<unsigned>(Reg::RDX)] = result_ready;
        flags_written();
    }
    goto epilogue;

op_shift:
    prologue();
    {
        std::uint64_t a = read_src(insn->operands[0]);
        unsigned max_shift = op_width == 64 ? 63 : 31;
        unsigned n =
            static_cast<unsigned>(read_src(insn->operands[1])) &
            max_shift;
        std::uint64_t r = a;
        if (n != 0) {
            switch (insn->opcode) {
              case Opcode::SHL:
                arch_.cf = (a >> (op_width - n)) & 1;
                r = a << n;
                break;
              case Opcode::SHR:
                arch_.cf = (a >> (n - 1)) & 1;
                r = a >> n;
                break;
              case Opcode::SAR: {
                std::uint64_t s = a;
                if (a & signBit(op_width))
                    s |= ~widthMask(op_width);
                arch_.cf = (s >> (n - 1)) & 1;
                r = static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(s) >> n);
                break;
              }
              case Opcode::ROL:
                r = (a << n) | (a >> (op_width - n));
                break;
              case Opcode::ROR:
                r = (a >> n) | (a << (op_width - n));
                break;
              default:
                break;
            }
            r &= widthMask(op_width);
            set_zf_sf(r, op_width);
            flags_written();
        }
        write_dst(r);
    }
    goto epilogue;

op_popcnt:
    prologue();
    {
        std::uint64_t v = read_src(insn->operands[1]);
        write_dst(static_cast<std::uint64_t>(std::popcount(v)));
        arch_.zf = v == 0;
        flags_written();
    }
    goto epilogue;

op_lzcnt:
    prologue();
    {
        std::uint64_t v = read_src(insn->operands[1]);
        unsigned lz =
            v == 0 ? op_width
                   : static_cast<unsigned>(std::countl_zero(v)) -
                         (64 - op_width);
        write_dst(lz);
        arch_.cf = v == 0;
        flags_written();
    }
    goto epilogue;

op_tzcnt:
    prologue();
    {
        std::uint64_t v = read_src(insn->operands[1]);
        unsigned tz = v == 0
                          ? op_width
                          : static_cast<unsigned>(std::countr_zero(v));
        write_dst(tz);
        arch_.cf = v == 0;
        flags_written();
    }
    goto epilogue;

op_bitscan:
    prologue();
    {
        std::uint64_t v = read_src(insn->operands[1]);
        arch_.zf = v == 0;
        flags_written();
        if (v != 0) {
            unsigned pos =
                insn->opcode == Opcode::BSF
                    ? static_cast<unsigned>(std::countr_zero(v))
                    : 63 - static_cast<unsigned>(std::countl_zero(v));
            write_dst(pos);
        }
    }
    goto epilogue;

op_bit_test:
    prologue();
    {
        std::uint64_t a = read_src(insn->operands[0]);
        unsigned pos = static_cast<unsigned>(
                           read_src(insn->operands[1])) %
                       op_width;
        arch_.cf = (a >> pos) & 1;
        flags_written();
        if (insn->opcode == Opcode::BTS)
            write_dst(a | (1ULL << pos));
        else if (insn->opcode == Opcode::BTR)
            write_dst(a & ~(1ULL << pos));
    }
    goto epilogue;

op_setz:
    prologue();
    write_dst(arch_.zf ? 1 : 0);
    goto epilogue;

op_setnz:
    prologue();
    write_dst(arch_.zf ? 0 : 1);
    goto epilogue;

    // ------------------------------------------------- control flow
op_jmp:
    prologue();
    taken = true;
    branch_target = resolve_target();
    goto epilogue;

op_jcc:
    prologue();
    {
        switch (insn->opcode) {
          case Opcode::JZ:
            taken = arch_.zf;
            break;
          case Opcode::JNZ:
            taken = !arch_.zf;
            break;
          case Opcode::JC:
            taken = arch_.cf;
            break;
          case Opcode::JNC:
            taken = !arch_.cf;
            break;
          case Opcode::JL:
            taken = arch_.sf != arch_.of;
            break;
          case Opcode::JGE:
            taken = arch_.sf == arch_.of;
            break;
          case Opcode::JLE:
            taken = arch_.zf || arch_.sf != arch_.of;
            break;
          case Opcode::JG:
            taken = !arch_.zf && arch_.sf == arch_.of;
            break;
          default:
            break;
        }
        if (taken)
            branch_target = resolve_target();
    }
    goto epilogue;

op_call:
    prologue();
    {
        std::uint64_t rsp = arch_.readGpr(Reg::RSP, 64) - 8;
        arch_.writeGpr(Reg::RSP, 64, rsp);
        storeValue(rsp, ctx.nextIdx, 8);
        sched_.regReady[static_cast<unsigned>(Reg::RSP)] = result_ready;
        taken = true;
        branch_target = resolve_target();
    }
    goto epilogue;

op_ret:
    prologue();
    {
        std::uint64_t rsp = arch_.readGpr(Reg::RSP, 64);
        dispatch_uop(ports_.loadPorts, std::max(addr_ready, issue_ready),
                    1, 0);
        auto [value, lat] = loadValue(rsp, 8);
        (void)lat;
        arch_.writeGpr(Reg::RSP, 64, rsp + 8);
        sched_.regReady[static_cast<unsigned>(Reg::RSP)] = result_ready;
        taken = true;
        if (value > vsize)
            fatal("RET to invalid target ", value);
        branch_target = value;
    }
    goto epilogue;

op_push:
    prologue();
    {
        std::uint64_t rsp = arch_.readGpr(Reg::RSP, 64) - 8;
        arch_.writeGpr(Reg::RSP, 64, rsp);
        storeValue(rsp, read_src(insn->operands[0]), 8);
        sched_.regReady[static_cast<unsigned>(Reg::RSP)] = result_ready;
    }
    goto epilogue;

op_pop:
    prologue();
    {
        std::uint64_t rsp = arch_.readGpr(Reg::RSP, 64);
        auto pt = dispatch_uop(ports_.loadPorts,
                              std::max(addr_ready, issue_ready), 1, 0);
        auto [value, lat] = loadValue(rsp, 8);
        arch_.writeGpr(Reg::RSP, 64, rsp + 8);
        result_ready = std::max(result_ready, pt.dispatch + lat);
        write_dst(value);
        sched_.regReady[static_cast<unsigned>(Reg::RSP)] = result_ready;
    }
    goto epilogue;

    // ------------------------------------------------------- vector
op_mov_vec:
    prologue();
    write_vec_dst(read_vec_src(insn->operands[1]));
    goto epilogue;

op_pxor:
    prologue();
    {
        VecReg a = read_vec_src(insn->operands[0]);
        VecReg b = read_vec_src(insn->operands[1]);
        VecReg r{};
        for (unsigned i = 0; i < 4; ++i)
            r[i] = a[i] ^ b[i];
        write_vec_dst(r);
    }
    goto epilogue;

op_paddd:
    prologue();
    {
        VecReg a = read_vec_src(insn->operands[0]);
        VecReg b = read_vec_src(insn->operands[1]);
        VecReg r{};
        for (unsigned i = 0; i < 4; ++i) {
            std::uint32_t lo = static_cast<std::uint32_t>(a[i]) +
                               static_cast<std::uint32_t>(b[i]);
            std::uint32_t hi = static_cast<std::uint32_t>(a[i] >> 32) +
                               static_cast<std::uint32_t>(b[i] >> 32);
            r[i] = static_cast<std::uint64_t>(hi) << 32 | lo;
        }
        write_vec_dst(r);
    }
    goto epilogue;

op_addps:
    prologue();
    write_vec_dst(mapPs(read_vec_src(insn->operands[0]),
                        read_vec_src(insn->operands[1]), 128,
                        [](float x, float y) { return asBits(x + y); }));
    goto epilogue;

op_mulps:
    prologue();
    write_vec_dst(mapPs(read_vec_src(insn->operands[0]),
                        read_vec_src(insn->operands[1]), 128,
                        [](float x, float y) { return asBits(x * y); }));
    goto epilogue;

op_divps:
    prologue();
    write_vec_dst(mapPs(read_vec_src(insn->operands[0]),
                        read_vec_src(insn->operands[1]), 128,
                        [](float x, float y) {
                            return asBits(y == 0.0f ? 0.0f : x / y);
                        }));
    goto epilogue;

op_addpd:
    prologue();
    write_vec_dst(mapPd(read_vec_src(insn->operands[0]),
                        read_vec_src(insn->operands[1]), 128,
                        [](double x, double y) { return x + y; }));
    goto epilogue;

op_mulpd:
    prologue();
    write_vec_dst(mapPd(read_vec_src(insn->operands[0]),
                        read_vec_src(insn->operands[1]), 128,
                        [](double x, double y) { return x * y; }));
    goto epilogue;

op_divpd:
    prologue();
    write_vec_dst(mapPd(read_vec_src(insn->operands[0]),
                        read_vec_src(insn->operands[1]), 128,
                        [](double x, double y) {
                            return y == 0.0 ? 0.0 : x / y;
                        }));
    goto epilogue;

op_vaddps:
    prologue();
    write_vec_dst(mapPs(read_vec_src(insn->operands[1]),
                        read_vec_src(insn->operands[2]), 256,
                        [](float x, float y) { return asBits(x + y); }));
    goto epilogue;

op_vmulps:
    prologue();
    write_vec_dst(mapPs(read_vec_src(insn->operands[1]),
                        read_vec_src(insn->operands[2]), 256,
                        [](float x, float y) { return asBits(x * y); }));
    goto epilogue;

op_vfma:
    prologue();
    {
        VecReg acc = read_vec_src(insn->operands[0]);
        VecReg prod = mapPs(read_vec_src(insn->operands[1]),
                            read_vec_src(insn->operands[2]), 256,
                            [](float x, float y) {
                                return asBits(x * y);
                            });
        write_vec_dst(mapPs(acc, prod, 256, [](float x, float y) {
            return asBits(x + y);
        }));
    }
    goto epilogue;

    // ------------------------------------------- counters and system
op_rdtsc:
    prologue();
    {
        std::uint64_t tsc = first_dispatch;
        arch_.writeGpr(Reg::RAX, 64, tsc & 0xFFFFFFFF);
        arch_.writeGpr(Reg::RDX, 64, tsc >> 32);
        sched_.regReady[static_cast<unsigned>(Reg::RAX)] = result_ready;
        sched_.regReady[static_cast<unsigned>(Reg::RDX)] = result_ready;
    }
    goto epilogue;

op_rdpmc:
    prologue();
    {
        if (privilege_ != Privilege::Kernel && !rdpmcUser_) {
            fatal("general protection fault: RDPMC in user mode with "
                  "CR4.PCE = 0");
        }
        std::uint32_t idx = static_cast<std::uint32_t>(
            arch_.readGpr(Reg::RCX, 32));
        std::uint64_t value;
        // The counters are sampled at the cycle the µop executes --
        // NOT serialized against older instructions (§IV-A1).
        Cycles sample = first_dispatch;
        if (idx >= kRdpmcFixedBase) {
            if (!pmu_.hasFixed())
                fatal("RDPMC: no fixed counters on ", uarch_.name);
            value = pmu_.readFixed(idx - kRdpmcFixedBase, sample);
        } else {
            if (idx >= pmu_.numProg())
                fatal("RDPMC: counter index ", idx, " out of range");
            value = pmu_.readProg(idx, sample);
        }
        arch_.writeGpr(Reg::RAX, 64, value & 0xFFFFFFFF);
        arch_.writeGpr(Reg::RDX, 64, value >> 32);
        sched_.regReady[static_cast<unsigned>(Reg::RAX)] = result_ready;
        sched_.regReady[static_cast<unsigned>(Reg::RDX)] = result_ready;
    }
    goto epilogue;

op_rdmsr:
    prologue();
    {
        std::uint32_t addr = static_cast<std::uint32_t>(
            arch_.readGpr(Reg::RCX, 32));
        std::uint64_t value = readMsrAt(addr, first_dispatch);
        arch_.writeGpr(Reg::RAX, 64, value & 0xFFFFFFFF);
        arch_.writeGpr(Reg::RDX, 64, value >> 32);
        sched_.regReady[static_cast<unsigned>(Reg::RAX)] = result_ready;
        sched_.regReady[static_cast<unsigned>(Reg::RDX)] = result_ready;
    }
    goto epilogue;

op_wrmsr:
    prologue();
    {
        std::uint32_t addr = static_cast<std::uint32_t>(
            arch_.readGpr(Reg::RCX, 32));
        std::uint64_t value = (arch_.readGpr(Reg::RDX, 64) << 32) |
                              arch_.readGpr(Reg::RAX, 32);
        writeMsr(addr, value);
        // Serializing (§IV-A1).
        sched_.minDispatch = std::max(sched_.minDispatch, core_done);
    }
    goto epilogue;

op_wbinvd:
    prologue();
    caches_.wbinvd();
    sched_.minDispatch = std::max(sched_.minDispatch, core_done);
    goto epilogue;

op_clflush:
    prologue();
    caches_.clflush(memory_.translate(mem_vaddr));
    goto epilogue;

op_prefetch:
    prologue();
    {
        Addr paddr = memory_.translate(mem_vaddr);
        caches_.access(paddr, insn->opcode == Opcode::PREFETCHT0
                                  ? cache::AccessType::PrefetchT0
                                  : cache::AccessType::PrefetchNTA);
        // Occupies a load port but produces no register result.
        dispatch_uop(ports_.loadPorts, std::max(addr_ready, issue_ready),
                    1, 0);
    }
    goto epilogue;

op_cli:
    prologue();
    interruptsEnabled_ = false;
    goto epilogue;

op_sti:
    prologue();
    interruptsEnabled_ = true;
    scheduleNextInterrupt();
    goto epilogue;

    // --------------------------------- fences and markers (§IV-A1).
    // These replicate executeInstr's early returns: no shared
    // prologue, no store/branch epilogue, no ctx.stats.uops.
op_pfc_marker:
    // Magic markers: pause/resume counting (§III-I). Acts like a
    // light dispatch fence with a small fixed overhead.
    {
        Cycles fence_point = sched_.maxCompletion + 5;
        sched_.minDispatch = std::max(sched_.minDispatch, fence_point);
        pmu_.setPaused(insn->opcode == Opcode::PFC_PAUSE);
        retire_insn(fence_point, false, false);
    }
    goto after_insn;

op_fence:
    // LFENCE/MFENCE: dispatches only after all prior instructions
    // completed locally; no later instruction begins execution until
    // it completes.
    {
        Cycles fence_point = sched_.maxCompletion;
        Cycles done = fence_point + 2;
        sched_.minDispatch = std::max(sched_.minDispatch, done);
        count(EventId::UopsIssued, 1, issue_slot());
        retire_insn(done, false, false);
    }
    goto after_insn;

op_sfence:
    count(EventId::UopsIssued, 1, issue_slot());
    retire_insn(sched_.maxCompletion + 1, false, false);
    goto after_insn;

op_cpuid:
    // Serializing, but with a variable latency and µop count
    // (Paoloni's observation): unsuitable for short benchmarks.
    {
        Cycles fence_point = sched_.maxCompletion;
        unsigned extra_uops =
            static_cast<unsigned>(rng_.nextRange(16, 48));
        Cycles extra_lat = rng_.nextRange(0, 200);
        Cycles done = fence_point + 100 + extra_lat;
        const uarch::PortMask *cpuid_ports = port_pool + hr.uopBegin;
        for (unsigned i = 0; i < extra_uops; ++i) {
            count(EventId::UopsIssued, 1, issue_slot());
            dispatch_uop(cpuid_ports[i % ht.uopCount], fence_point, 1, 0);
        }
        sched_.minDispatch = std::max(sched_.minDispatch, done);
        sched_.maxCompletion = std::max(sched_.maxCompletion, done);
        // Leaf-dependent model values.
        arch_.writeGpr(Reg::RAX, 64, 0x000506E3); // family/model-ish id
        arch_.writeGpr(Reg::RBX, 64, 0x756E6547);
        arch_.writeGpr(Reg::RCX, 64, 0x6C65746E);
        arch_.writeGpr(Reg::RDX, 64, 0x49656E69);
        for (Reg r : {Reg::RAX, Reg::RBX, Reg::RCX, Reg::RDX})
            sched_.regReady[static_cast<unsigned>(r)] = done;
        retire_insn(done, false, false);
    }
    goto after_insn;

op_unhandled:
    panic("unhandled opcode in executor: ", insn->info().mnemonic);

    // ---------------------------------------------------------------
    // Shared epilogue: store µops, branch prediction, retirement.
    // ---------------------------------------------------------------
epilogue:
    if (flags & hotflag::kDoStoreUop) {
        NB_ASSERT(mem_op != nullptr, "store without memory operand");
        Cycles addr_rdy = std::max(addr_ready, issue_ready);
        auto sa = dispatch_uop(ports_.storeAddrPorts, addr_rdy, 1, 0);
        Cycles data_rdy = std::max(result_ready, issue_ready);
        auto sd = dispatch_uop(ports_.storeDataPorts, data_rdy, 1, 0);
        Cycles store_done = std::max(sa.done, sd.done);
        sched_.maxCompletion = std::max(sched_.maxCompletion, store_done);
        if (store_vec) {
            storeVec(mem_vaddr, *store_vec, store_bytes);
        } else if (store_value) {
            storeValue(mem_vaddr, *store_value, store_bytes);
        }
        result_ready = std::max(result_ready, store_done);
    } else if (flags & hotflag::kHasStore) {
        // PUSH/CALL already performed the write; account the µops.
        Cycles addr_rdy = std::max(addr_ready, issue_ready);
        dispatch_uop(ports_.storeAddrPorts, addr_rdy, 1, 0);
        dispatch_uop(ports_.storeDataPorts, addr_rdy, 1, 0);
    }

    if (is_branch) {
        std::uint64_t key = ctx.nextIdx - 1;
        auto [it, inserted] = branchTable_.try_emplace(key, 1);
        std::uint8_t &counter = it->second;
        bool predicted_taken = counter >= 2;
        if (insn->opcode == Opcode::JMP ||
            insn->opcode == Opcode::CALL ||
            insn->opcode == Opcode::RET) {
            predicted_taken = taken; // unconditional / RAS-predicted
        }
        mispredicted = predicted_taken != taken;
        if (taken && counter < 3)
            ++counter;
        else if (!taken && counter > 0)
            --counter;
        if (mispredicted) {
            // Pipeline restart.
            Cycles redirect = core_done + 15;
            sched_.issueCycle = std::max(sched_.issueCycle, redirect);
            sched_.issuedInCycle = 0;
        }
        if (taken)
            ctx.nextIdx = branch_target;
    }

    retire_insn(result_ready, is_branch, mispredicted);
    // fall through

after_insn:
    ++ctx.stats.instructions;
    if (ctx.nextIdx != vidx)
        relocate(ctx.nextIdx); // a taken branch redirected us
    if (interruptsEnabled_ && sched_.maxCompletion >= nextInterrupt_)
        maybeInterrupt(ctx);
    goto next_insn;

finished:
    ctx.stats.endCycle = sched_.maxCompletion;
    if (obs) {
        obs->instructions += ctx.stats.instructions;
        obs->cycles += ctx.stats.endCycle - ctx.stats.startCycle;
    }
    return ctx.stats;
}

} // namespace nb::sim
