/**
 * @file
 * Performance-event catalog (paper §II, §III-J).
 *
 * Events are identified by an (event-select, umask) pair like on real
 * Intel/AMD PMUs; configuration files map these codes to names. The
 * catalog maps codes to the semantic EventId values the simulator
 * increments. Like in nanoBench, events are NOT hard-coded in the tool;
 * new configuration files can name any catalogued code.
 */

#ifndef NB_SIM_EVENTS_HH
#define NB_SIM_EVENTS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace nb::sim
{

/** Semantic performance events the simulated core can count. */
enum class EventId : std::uint8_t
{
    // Fixed-function (§II-A1)
    InstrRetired,
    CoreCycles,
    RefCycles,
    // Programmable (§II-A2)
    UopsIssued,
    UopsExecuted,
    UopsPort0,
    UopsPort1,
    UopsPort2,
    UopsPort3,
    UopsPort4,
    UopsPort5,
    UopsPort6,
    UopsPort7,
    MemLoadL1Hit,
    MemLoadL1Miss,
    MemLoadL2Hit,
    MemLoadL2Miss,
    MemLoadL3Hit,
    MemLoadL3Miss,
    L1dReplacement,
    DtlbMissStlbHit,
    DtlbMissWalk,
    BrInstRetired,
    BrMispRetired,
    MemLoads,
    MemStores,
    NumEvents,
};

inline constexpr unsigned kNumEvents =
    static_cast<unsigned>(EventId::NumEvents);

/** Raw programmable-counter event code, as written in config files. */
struct EventCode
{
    std::uint8_t evsel = 0;
    std::uint8_t umask = 0;

    bool operator==(const EventCode &) const = default;
    auto operator<=>(const EventCode &) const = default;
};

/** One catalog entry. */
struct EventInfo
{
    EventCode code;
    EventId id;
    std::string name;
};

/** The full event catalog. */
const std::vector<EventInfo> &eventCatalog();

/** Look up an event by code; nullopt if not catalogued. */
std::optional<EventInfo> findEvent(EventCode code);

/** Look up an event by name; nullopt if unknown. */
std::optional<EventInfo> findEvent(const std::string &name);

/** Canonical name of a semantic event. */
std::string eventIdName(EventId id);

/** The port-dispatch event for port @p port (0-7). */
EventId portEvent(unsigned port);

} // namespace nb::sim

#endif // NB_SIM_EVENTS_HH
