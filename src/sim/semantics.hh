/**
 * @file
 * Pure value-semantics helpers shared by the two executors (the
 * threaded dispatcher in dispatch.cc and the frozen reference path in
 * exec.cc): float/double bit casts, packed-lane maps, and width masks.
 * Internal to sim/; no state, no timing.
 */

#ifndef NB_SIM_SEMANTICS_HH
#define NB_SIM_SEMANTICS_HH

#include <cstdint>
#include <cstring>

#include "common/types.hh"

namespace nb::sim
{

inline float
asFloat(std::uint32_t bits_)
{
    float f;
    std::memcpy(&f, &bits_, sizeof(f));
    return f;
}

inline std::uint32_t
asBits(float f)
{
    std::uint32_t b;
    std::memcpy(&b, &f, sizeof(b));
    return b;
}

inline double
asDouble(std::uint64_t bits_)
{
    double d;
    std::memcpy(&d, &bits_, sizeof(d));
    return d;
}

inline std::uint64_t
asBits(double d)
{
    std::uint64_t b;
    std::memcpy(&b, &d, sizeof(b));
    return b;
}

/** Apply a float op to each 32-bit lane of the used lanes. */
template <typename F>
VecReg
mapPs(const VecReg &a, const VecReg &b, unsigned width_bits, F &&f)
{
    VecReg out{};
    unsigned lanes64 = width_bits / 64;
    for (unsigned i = 0; i < lanes64; ++i) {
        std::uint32_t lo = f(asFloat(static_cast<std::uint32_t>(a[i])),
                             asFloat(static_cast<std::uint32_t>(b[i])));
        std::uint32_t hi = f(asFloat(static_cast<std::uint32_t>(a[i] >> 32)),
                             asFloat(static_cast<std::uint32_t>(b[i] >> 32)));
        out[i] = static_cast<std::uint64_t>(hi) << 32 | lo;
    }
    return out;
}

/** Apply a double op to each 64-bit lane. */
template <typename F>
VecReg
mapPd(const VecReg &a, const VecReg &b, unsigned width_bits, F &&f)
{
    VecReg out{};
    for (unsigned i = 0; i < width_bits / 64; ++i)
        out[i] = asBits(f(asDouble(a[i]), asDouble(b[i])));
    return out;
}

inline std::uint64_t
widthMask(unsigned width_bits)
{
    return width_bits >= 64 ? ~0ULL : (1ULL << width_bits) - 1;
}

inline std::uint64_t
signBit(unsigned width_bits)
{
    return 1ULL << (width_bits - 1);
}

} // namespace nb::sim

#endif // NB_SIM_SEMANTICS_HH
