/**
 * @file
 * The simulated machine: one x86-64 core with an out-of-order back-end,
 * a PMU, a cache hierarchy, virtual memory, and an interrupt model.
 *
 * Timing model. Instructions are executed sequentially for semantics,
 * while timing is computed with a dataflow scheduler: each µop dispatches
 * to one of its allowed execution ports no earlier than (a) its issue
 * cycle (bounded by the issue width and the scheduler window), (b) the
 * cycle its register/memory inputs are ready, (c) the port's next free
 * cycle, and (d) any pending dispatch fence. Load µops take their latency
 * from the cache hierarchy. Retirement is in order.
 *
 * This reproduces the behaviours the paper's methodology depends on:
 *  - counter-reading instructions (RDPMC/RDMSR) are *not* serializing:
 *    without a fence they dispatch as soon as their inputs are ready and
 *    sample the counters at that early cycle (§IV-A1);
 *  - LFENCE dispatches only after all older instructions have completed
 *    locally and blocks younger ones until it completes (§IV-A1);
 *  - CPUID serializes too, but contributes a variable latency and µop
 *    count of its own (Paoloni's observation, §IV-A1);
 *  - timer interrupts perturb counts unless disabled (kernel mode,
 *    §III-D / §IV-A2);
 *  - privileged instructions fault outside kernel mode (§III-D).
 */

#ifndef NB_SIM_MACHINE_HH
#define NB_SIM_MACHINE_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/arch_state.hh"
#include "sim/memory.hh"
#include "sim/pmu.hh"
#include "sim/program.hh"
#include "sim/tlb.hh"
#include "uarch/uarch.hh"
#include "x86/instruction.hh"

namespace nb::sim
{

/** Current privilege level of the simulated core. */
enum class Privilege : std::uint8_t
{
    User,
    Kernel,
};

/** Model-specific register addresses implemented by the machine. */
namespace msr
{
inline constexpr std::uint32_t kMperf = 0xE7;
inline constexpr std::uint32_t kAperf = 0xE8;
inline constexpr std::uint32_t kPerfEvtSel0 = 0x186; ///< +i per counter
inline constexpr std::uint32_t kPmc0 = 0xC1;         ///< +i per counter
inline constexpr std::uint32_t kPrefetchControl = 0x1A4;
inline constexpr std::uint32_t kFixedCtr0 = 0x309;   ///< +i per counter
/** Uncore C-Box counters (lookups/hits/misses per slice). */
inline constexpr std::uint32_t kCboxLookupBase = 0x700; ///< +slice
inline constexpr std::uint32_t kCboxHitBase = 0x720;    ///< +slice
inline constexpr std::uint32_t kCboxMissBase = 0x740;   ///< +slice
} // namespace msr

/**
 * Opt-in observation sink for the threaded executor (execute()).
 * When attached via Machine::setExecObserver, the dispatch loop
 * accrues what the core *actually did* -- per-port dispatched µops,
 * issue/dispatch totals, retire-stall cycles -- across execute()
 * calls. Observation is strictly read-only: attaching an observer
 * must leave every observable (ExecStats, arch state, PMU totals,
 * time-resolved samples) bit-identical, which the parity tests pin.
 * Counters accumulate until reset(); obs::observeSpec() wraps this
 * in the paper's differential pattern to cancel harness overhead.
 */
struct ExecObserver
{
    /** Upper bound on modeled execution ports; must cover every
     *  uarch::PortLayout (Zen models 10). The dispatch loop indexes
     *  this array unchecked on its hot path, so Machine asserts the
     *  bound when an observer is attached. */
    static constexpr unsigned kMaxPorts = 16;

    std::array<std::uint64_t, kMaxPorts> portUops{};
    std::uint64_t uopsIssued = 0;
    std::uint64_t uopsDispatched = 0;
    std::uint64_t retireStallCycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;

    void reset() { *this = ExecObserver{}; }
};

/** Statistics of one execute() call. */
struct ExecStats
{
    std::uint64_t instructions = 0;
    std::uint64_t uops = 0;
    Cycles startCycle = 0;
    Cycles endCycle = 0;
    std::uint64_t interrupts = 0;

    Cycles cycles() const { return endCycle - startCycle; }
};

/** One simulated x86-64 core plus its memory system. */
class Machine
{
  public:
    Machine(const uarch::MicroArch &ua, std::uint64_t seed = 42);

    const uarch::MicroArch &uarch() const { return uarch_; }
    ArchState &arch() { return arch_; }
    Memory &memory() { return memory_; }
    Pmu &pmu() { return pmu_; }
    cache::Hierarchy &caches() { return caches_; }
    Tlb &tlb() { return tlb_; }
    Rng &rng() { return rng_; }

    void setPrivilege(Privilege p) { privilege_ = p; }
    Privilege privilege() const { return privilege_; }

    /** Master toggle for the timer-interrupt model. */
    void setInterruptsEnabled(bool enabled);
    bool interruptsEnabled() const { return interruptsEnabled_; }

    /** CR4.PCE: whether RDPMC is allowed in user mode (§II). */
    void setRdpmcUserEnabled(bool enabled) { rdpmcUser_ = enabled; }

    /** Monotonic cycle clock (completion frontier of all issued work). */
    Cycles cycles() const { return sched_.maxCompletion; }

    /**
     * Execute a predecoded program until control falls off the end.
     * This is the primary execution path (sim/dispatch.cc): a threaded
     * computed-goto interpreter over the Program's struct-of-arrays
     * hot layout, with PMU accounting for non-time-resolved events
     * batched locally and committed in bulk when the call returns.
     *
     * @throws nb::FatalError on faults (privilege violation, page fault,
     *         divide error) and on exceeding the instruction budget.
     */
    ExecStats execute(const Program &prog);

    /**
     * The pre-threaded-dispatch execution path (switch-based
     * executeInstr per dynamic instruction, per-event PMU accounting),
     * kept frozen as the parity reference: execute() must stay
     * bit-identical to it in every observable (ExecStats, registers,
     * flags, counter totals and time-resolved samples), which the
     * parity suite and the dispatch_vs_predecode bench gate pin.
     */
    ExecStats executeReference(const Program &prog);

    /**
     * Execute a code sequence until control falls off the end.
     * Deprecated compatibility shim: decodes into a Program (paying
     * the decode cost on every call) and executes it. Decode a
     * sim::Program once and use the overload above.
     */
    [[deprecated("decode a sim::Program once and execute(prog)")]]
    ExecStats execute(const std::vector<x86::Instruction> &code);

    /** Instruction budget per execute() call (runaway-loop guard). */
    void setMaxInstructions(std::uint64_t budget) { maxInstr_ = budget; }

    /**
     * Arm (or, with 0, disarm) a cycle budget: once simulated time
     * advances @p budget cycles past the current cycle, execute()
     * throws nb::BudgetExceededError from an amortized checkpoint in
     * the dispatch loop (so a runaway microbenchmark costs at most
     * ~one epoch past its budget instead of hanging the caller). The
     * deadline is absolute, so one budget spans every execute() call
     * of a Runner::run. Callers must disarm before returning a pooled
     * machine (Runner::run does this via RAII).
     */
    void
    setCycleBudget(std::uint64_t budget)
    {
        cycleBudget_ = budget;
        cycleDeadline_ = budget ? sched_.maxCompletion + budget : 0;
    }

    /** The armed cycle budget (0 = disarmed). */
    std::uint64_t cycleBudget() const { return cycleBudget_; }

    /** MSR file (RDMSR/WRMSR reach this; also usable from C++). */
    std::uint64_t readMsr(std::uint32_t addr);
    void writeMsr(std::uint32_t addr, std::uint64_t value);

    /** MSR read sampled "as of" a specific cycle (counter MSRs only
     *  differ from readMsr by the sampling point). */
    std::uint64_t readMsrAt(std::uint32_t addr, Cycles cycle);

    /** Attach (or with nullptr detach) an execution observer; the
     *  machine does not own it. See ExecObserver. */
    void setExecObserver(ExecObserver *observer)
    {
        NB_ASSERT(!observer || uarch_.ports().numPorts <=
                                   ExecObserver::kMaxPorts,
                  "ExecObserver::kMaxPorts too small for ",
                  uarch_.name);
        execObserver_ = observer;
    }
    ExecObserver *execObserver() const { return execObserver_; }

  private:
    // ------------------------------------------------ timing machinery
    struct Scheduler
    {
        std::array<Cycles, static_cast<unsigned>(x86::Reg::NumRegs)>
            regReady{};
        Cycles flagsReady = 0;
        std::vector<Cycles> portFree;
        Cycles issueCycle = 0;
        unsigned issuedInCycle = 0;
        Cycles minDispatch = 0;   ///< dispatch fence (LFENCE/CPUID)
        Cycles maxCompletion = 0; ///< completion frontier
        Cycles lastRetire = 0;
        unsigned retiredInCycle = 0;
        std::deque<Cycles> window; ///< in-flight µop completions
        /** µops dispatched per port (tie-break: least-loaded port). */
        std::vector<std::uint64_t> portUse;
    };

    /** Account one issue slot; returns the issue cycle. */
    Cycles issueSlot(unsigned effective_issue_width);

    /** Dispatch/completion cycles of one µop. */
    struct UopTiming
    {
        Cycles dispatch;
        Cycles done;
    };

    /**
     * Dispatch a µop. Picks the allowed port with the earliest dispatch
     * cycle (round-robin tie-break), accounts port-dispatch events, and
     * returns the dispatch and completion cycles.
     */
    UopTiming dispatchUop(uarch::PortMask ports, Cycles ready,
                          unsigned latency, unsigned block_cycles);

    void retireInstr(Cycles completion, bool is_branch, bool mispredicted);

    // --------------------------------------------------- execution core
    struct ExecContext
    {
        const Program *program = nullptr;
        /** Virtual index of the next instruction (the fallthrough /
         *  return address while executeInstr runs). */
        std::uint64_t nextIdx = 0;
        /** Virtual index of the current pattern copy's first entry
         *  (resolves pattern-relative branch targets). */
        std::uint64_t copyBase = 0;
        ExecStats stats;
        unsigned effectiveIssueWidth = 4;
    };

    void executeInstr(const DecodedInsn &d, ExecContext &ctx);

    /** Memory helpers (semantics + timing + events). */
    Addr effectiveAddress(const x86::MemRef &mem) const;
    /** Performs the cache access + phys read; returns (value, latency).*/
    std::pair<std::uint64_t, Cycles> loadValue(Addr vaddr, unsigned bytes);
    void storeValue(Addr vaddr, std::uint64_t value, unsigned bytes);
    VecReg loadVec(Addr vaddr, unsigned bytes, Cycles *latency);
    void storeVec(Addr vaddr, const VecReg &value, unsigned bytes);

    void requirePrivilege(const x86::Instruction &insn) const;

    /** Inject a timer interrupt if one is due. */
    void maybeInterrupt(ExecContext &ctx);
    void scheduleNextInterrupt();

    /** Cold path of the dispatch loop's amortized resilience
     *  checkpoint: fault-injection arrival (execute site) and the
     *  cycle-budget deadline. Throws InjectedFault or
     *  BudgetExceededError. */
    void budgetCheckpoint(ExecContext &ctx);

    /**
     * Count a PMU event at a cycle. While the threaded executor runs
     * (batchEvents_), events that are not time-resolved (not selected
     * on a programmable counter, not InstrRetired) accrue in a local
     * pending array -- the pause gate is applied here, at accrual time
     * -- and are committed to the PMU totals in bulk when execute()
     * returns. Time-resolved events always reach the PMU immediately
     * so per-cycle sampling semantics are exact.
     */
    void count(EventId e, std::uint64_t n, Cycles at)
    {
        if (!batchEvents_) {
            pmu_.count(e, n, at);
            return;
        }
        if (n == 0 || pmu_.isPaused())
            return;
        auto idx = static_cast<unsigned>(e);
        if (pmu_.loggedMask() >> idx & 1)
            pmu_.count(e, n, at);
        else
            pendingCounts_[idx] += n;
    }

    /** Commit the batched event counts (see count()). */
    void flushPendingCounts();

    /** RAII scope that turns on batched counting and always flushes,
     *  including on the fatal()/exception paths out of execute(). */
    struct BatchCountScope
    {
        explicit BatchCountScope(Machine &m) : machine(m)
        {
            machine.batchEvents_ = true;
        }
        ~BatchCountScope()
        {
            machine.batchEvents_ = false;
            machine.flushPendingCounts();
        }
        BatchCountScope(const BatchCountScope &) = delete;
        BatchCountScope &operator=(const BatchCountScope &) = delete;
        Machine &machine;
    };

    /** Count load-hit-level events for a finished load. */
    void countLoadLevel(const cache::AccessResult &res, Cycles at);

    // ------------------------------------------------------ members
    const uarch::MicroArch &uarch_;
    uarch::PortLayout ports_;
    Rng rng_;
    ArchState arch_;
    Memory memory_;
    Pmu pmu_;
    cache::Hierarchy caches_;
    Tlb tlb_;
    Scheduler sched_;
    Privilege privilege_ = Privilege::User;
    bool interruptsEnabled_ = true;
    bool rdpmcUser_ = true;
    /** Batched-counting mode (threaded executor only; see count()). */
    bool batchEvents_ = false;
    /** Pause-gated pending counts of non-time-resolved events. */
    std::array<std::uint64_t, kNumEvents> pendingCounts_{};
    std::uint64_t maxInstr_ = 50'000'000;
    /** Armed cycle budget and its absolute deadline (0 = disarmed);
     *  see setCycleBudget(). */
    std::uint64_t cycleBudget_ = 0;
    Cycles cycleDeadline_ = 0;
    Cycles nextInterrupt_ = 0;
    /** Observation sink (threaded executor only); not owned. */
    ExecObserver *execObserver_ = nullptr;

    /** Branch predictor: 2-bit saturating counters per virtual code
     *  index. */
    std::unordered_map<std::uint64_t, std::uint8_t> branchTable_;
};

} // namespace nb::sim

#endif // NB_SIM_MACHINE_HH
