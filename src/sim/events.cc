/**
 * @file
 * Event-catalog implementation. Codes follow the Intel SDM encodings for
 * recognizability (e.g. A1.01 = UOPS_DISPATCHED_PORT.PORT_0).
 */

#include "events.hh"

#include "common/logging.hh"

namespace nb::sim
{

const std::vector<EventInfo> &
eventCatalog()
{
    static const std::vector<EventInfo> catalog = {
        {{0xC0, 0x00}, EventId::InstrRetired, "INST_RETIRED.ANY_P"},
        {{0x3C, 0x00}, EventId::CoreCycles, "CPU_CLK_UNHALTED.THREAD_P"},
        {{0x3C, 0x01}, EventId::RefCycles, "CPU_CLK_UNHALTED.REF_XCLK"},
        {{0x0E, 0x01}, EventId::UopsIssued, "UOPS_ISSUED.ANY"},
        {{0xB1, 0x01}, EventId::UopsExecuted, "UOPS_EXECUTED.THREAD"},
        {{0xA1, 0x01}, EventId::UopsPort0, "UOPS_DISPATCHED_PORT.PORT_0"},
        {{0xA1, 0x02}, EventId::UopsPort1, "UOPS_DISPATCHED_PORT.PORT_1"},
        {{0xA1, 0x04}, EventId::UopsPort2, "UOPS_DISPATCHED_PORT.PORT_2"},
        {{0xA1, 0x08}, EventId::UopsPort3, "UOPS_DISPATCHED_PORT.PORT_3"},
        {{0xA1, 0x10}, EventId::UopsPort4, "UOPS_DISPATCHED_PORT.PORT_4"},
        {{0xA1, 0x20}, EventId::UopsPort5, "UOPS_DISPATCHED_PORT.PORT_5"},
        {{0xA1, 0x40}, EventId::UopsPort6, "UOPS_DISPATCHED_PORT.PORT_6"},
        {{0xA1, 0x80}, EventId::UopsPort7, "UOPS_DISPATCHED_PORT.PORT_7"},
        {{0xD1, 0x01}, EventId::MemLoadL1Hit, "MEM_LOAD_RETIRED.L1_HIT"},
        {{0xD1, 0x08}, EventId::MemLoadL1Miss, "MEM_LOAD_RETIRED.L1_MISS"},
        {{0xD1, 0x02}, EventId::MemLoadL2Hit, "MEM_LOAD_RETIRED.L2_HIT"},
        {{0xD1, 0x10}, EventId::MemLoadL2Miss, "MEM_LOAD_RETIRED.L2_MISS"},
        {{0xD1, 0x04}, EventId::MemLoadL3Hit, "MEM_LOAD_RETIRED.L3_HIT"},
        {{0xD1, 0x20}, EventId::MemLoadL3Miss, "MEM_LOAD_RETIRED.L3_MISS"},
        {{0x51, 0x01}, EventId::L1dReplacement, "L1D.REPLACEMENT"},
        {{0x08, 0x20}, EventId::DtlbMissStlbHit,
         "DTLB_LOAD_MISSES.STLB_HIT"},
        {{0x08, 0x01}, EventId::DtlbMissWalk,
         "DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK"},
        {{0xC4, 0x00}, EventId::BrInstRetired,
         "BR_INST_RETIRED.ALL_BRANCHES"},
        {{0xC5, 0x00}, EventId::BrMispRetired,
         "BR_MISP_RETIRED.ALL_BRANCHES"},
        {{0xD0, 0x81}, EventId::MemLoads, "MEM_INST_RETIRED.ALL_LOADS"},
        {{0xD0, 0x82}, EventId::MemStores, "MEM_INST_RETIRED.ALL_STORES"},
    };
    return catalog;
}

std::optional<EventInfo>
findEvent(EventCode code)
{
    for (const auto &e : eventCatalog()) {
        if (e.code == code)
            return e;
    }
    return std::nullopt;
}

std::optional<EventInfo>
findEvent(const std::string &name)
{
    for (const auto &e : eventCatalog()) {
        if (e.name == name)
            return e;
    }
    return std::nullopt;
}

std::string
eventIdName(EventId id)
{
    for (const auto &e : eventCatalog()) {
        if (e.id == id)
            return e.name;
    }
    switch (id) {
      case EventId::InstrRetired:
        return "INST_RETIRED";
      case EventId::CoreCycles:
        return "CORE_CYCLES";
      case EventId::RefCycles:
        return "REF_CYCLES";
      default:
        return "UNKNOWN_EVENT";
    }
}

EventId
portEvent(unsigned port)
{
    NB_ASSERT(port < 8, "port event index out of range: ", port);
    return static_cast<EventId>(static_cast<unsigned>(EventId::UopsPort0) +
                                port);
}

} // namespace nb::sim
