/**
 * @file
 * Performance monitoring unit of the simulated core (paper §II).
 *
 * Models:
 *  - three Intel fixed-function counters (instructions retired, core
 *    cycles, reference cycles), readable with RDPMC (§II-A1);
 *  - APERF/MPERF, readable only with RDMSR (kernel space, §II-A1);
 *  - N programmable counters with event selection (§II-A2);
 *  - time-resolved sampling: every increment is tagged with the cycle it
 *    occurred at, and reads sample "as of" the cycle the reading µop
 *    executes. This is what makes the serialization experiments
 *    (§IV-A1) meaningful: an unfenced RDPMC executes early and samples
 *    an earlier cycle.
 *  - global pause/resume gating used by the magic-byte feature (§III-I).
 */

#ifndef NB_SIM_PMU_HH
#define NB_SIM_PMU_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/events.hh"

namespace nb::sim
{

/** Index base for fixed counters in RDPMC (as on real Intel CPUs). */
inline constexpr std::uint32_t kRdpmcFixedBase = 0x40000000;

/** The PMU of one simulated logical core. */
class Pmu
{
  public:
    /**
     * @param num_prog Number of programmable counters.
     * @param has_fixed Intel-style fixed counters present.
     * @param ref_ratio Reference-clock to core-clock frequency ratio.
     */
    Pmu(unsigned num_prog, bool has_fixed, double ref_ratio);

    unsigned numProg() const { return numProg_; }
    bool hasFixed() const { return hasFixed_; }

    /** Program counter @p idx to count the event with @p code.
     *  Returns false if the code is not in the catalog. */
    bool configureProg(unsigned idx, EventCode code);

    /** Disable counter @p idx. */
    void disableProg(unsigned idx);

    /** Event configured on a counter (NumEvents if disabled). */
    EventId progEvent(unsigned idx) const;

    /** Record @p n occurrences of @p event at @p cycle. */
    void count(EventId event, std::uint64_t n, Cycles cycle);

    /**
     * Bitmask over EventId of events whose increments are time-resolved
     * (selected on a programmable counter, plus InstrRetired which
     * backs fixed counter 0). Events outside the mask only ever
     * contribute to scalar totals, so callers on the hot path may
     * accumulate them locally and commit() the sums in bulk.
     */
    std::uint64_t loggedMask() const { return loggedMask_; }

    /**
     * Fold @p n pre-gated occurrences of @p event into the scalar
     * total. Used to flush batched counts for non-logged events: the
     * pause gate was already applied when the counts accrued, so no
     * pause check happens here, and nothing is logged.
     */
    void commit(EventId event, std::uint64_t n)
    {
        totals_[static_cast<unsigned>(event)] += n;
    }

    /** Pause/resume all counting (magic-byte feature, §III-I). */
    void setPaused(bool paused) { paused_ = paused; }
    bool isPaused() const { return paused_; }

    /**
     * Start a new sampling epoch: drops the time-resolved logs (their
     * totals are folded into the epoch base). Called before each
     * generated-code run to bound memory.
     */
    void beginEpoch();

    /** Value of programmable counter @p idx as of @p cycle. */
    std::uint64_t readProg(unsigned idx, Cycles cycle) const;

    /** Value of fixed counter @p idx (0 = instructions retired,
     *  1 = core cycles, 2 = reference cycles) as of @p cycle. */
    std::uint64_t readFixed(unsigned idx, Cycles cycle) const;

    /** APERF (core clock) / MPERF (reference clock) MSR values. */
    std::uint64_t aperf(Cycles cycle) const;
    std::uint64_t mperf(Cycles cycle) const;

    /** Total (end-of-time) value of a semantic event; for tests. */
    std::uint64_t total(EventId event) const;

  private:
    struct Increment
    {
        Cycles cycle;
        std::uint32_t n;
    };

    bool eventLogged(EventId event) const;
    std::uint64_t sample(EventId event, Cycles cycle) const;
    void rebuildLoggedMask();

    unsigned numProg_;
    bool hasFixed_;
    double refRatio_;
    bool paused_ = false;

    /** Event selection per programmable counter. */
    std::vector<EventId> progSel_;
    /** Cached bitmask form of eventLogged() (see loggedMask()). */
    std::uint64_t loggedMask_ = 0;

    /** Scalar totals per semantic event. */
    std::array<std::uint64_t, kNumEvents> totals_{};
    /** Epoch-base totals per semantic event. */
    std::array<std::uint64_t, kNumEvents> epochBase_{};
    /** Time-resolved increments since the epoch began (selected events
     *  and InstrRetired only). */
    std::array<std::vector<Increment>, kNumEvents> logs_{};
};

} // namespace nb::sim

#endif // NB_SIM_PMU_HH
