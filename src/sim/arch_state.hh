/**
 * @file
 * Architectural register state of the simulated core.
 */

#ifndef NB_SIM_ARCH_STATE_HH
#define NB_SIM_ARCH_STATE_HH

#include <array>
#include <cstdint>

#include "common/logging.hh"
#include "x86/reg.hh"

namespace nb::sim
{

/** 256-bit vector register as four 64-bit lanes. */
using VecReg = std::array<std::uint64_t, 4>;

/** All architectural registers plus the status flags the model tracks. */
struct ArchState
{
    std::array<std::uint64_t, x86::kNumGprs> gpr{};
    std::array<VecReg, x86::kNumVecRegs> vec{};
    bool zf = false;
    bool cf = false;
    bool sf = false;
    bool of = false;

    /** Read a GPR at a given width (zero-extended into 64 bits). */
    std::uint64_t
    readGpr(x86::Reg r, unsigned width_bits) const
    {
        NB_ASSERT(x86::isGpr(r), "readGpr of non-GPR");
        std::uint64_t v = gpr[static_cast<unsigned>(r)];
        switch (width_bits) {
          case 64:
            return v;
          case 32:
            return v & 0xFFFFFFFFULL;
          case 16:
            return v & 0xFFFFULL;
          case 8:
            return v & 0xFFULL;
          default:
            panic("bad GPR width ", width_bits);
        }
    }

    /**
     * Write a GPR at a given width. 32-bit writes zero the upper half
     * (x86-64 semantics); 8/16-bit writes merge into the low bits.
     */
    void
    writeGpr(x86::Reg r, unsigned width_bits, std::uint64_t value)
    {
        NB_ASSERT(x86::isGpr(r), "writeGpr of non-GPR");
        std::uint64_t &slot = gpr[static_cast<unsigned>(r)];
        switch (width_bits) {
          case 64:
            slot = value;
            break;
          case 32:
            slot = value & 0xFFFFFFFFULL;
            break;
          case 16:
            slot = (slot & ~0xFFFFULL) | (value & 0xFFFFULL);
            break;
          case 8:
            slot = (slot & ~0xFFULL) | (value & 0xFFULL);
            break;
          default:
            panic("bad GPR width ", width_bits);
        }
    }

    const VecReg &
    readVec(x86::Reg r) const
    {
        NB_ASSERT(x86::isVec(r), "readVec of non-vector reg");
        return vec[static_cast<unsigned>(r) - x86::kNumGprs];
    }

    void
    writeVec(x86::Reg r, const VecReg &value)
    {
        NB_ASSERT(x86::isVec(r), "writeVec of non-vector reg");
        vec[static_cast<unsigned>(r) - x86::kNumGprs] = value;
    }
};

} // namespace nb::sim

#endif // NB_SIM_ARCH_STATE_HH
